// Boeing-787-style bounded analysis of a very large fault tree.
//
//   build/examples/example_boeing_bounds
//
// The tutorial's bounding story: for a major 787 subsystem the fault tree
// was too large for exact solution, so certified bounds were computed
// instead. This example builds a synthetic tree of the same shape (a wide
// OR over many k-of-n voting clusters — proprietary structure replaced per
// DESIGN.md), then shows
//   * exact BDD solution while it is cheap,
//   * union / Esary-Proschan / Bonferroni bounds from truncated cut lists,
//   * how the bound width shrinks as more cuts and deeper terms are used.
#include <chrono>
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("== Bounded analysis of a wide voting fault tree ==========\n\n");

  // 60 clusters of 2-of-4 voting over events with q = 2e-3 — about the
  // point where full cut enumeration gets expensive on bigger variants.
  const std::uint32_t clusters = 60, k = 2, n = 4;
  const double q_event = 2e-3;
  const auto gen = ftree::generate_wide_tree(clusters, k, n, q_event);
  const ftree::FaultTree tree(gen.top, gen.events);
  std::printf("tree: %u clusters x (%u-of-%u), %zu basic events, "
              "BDD %zu nodes\n\n",
              clusters, k, n, tree.event_count(), tree.bdd_node_count());

  auto t0 = Clock::now();
  const double exact = tree.top_probability_limit();
  const double t_exact = ms_since(t0);
  std::printf("exact (BDD)            : %.6e      (%.2f ms)\n", exact,
              t_exact);

  const auto qv = tree.event_probs(-1.0);
  t0 = Clock::now();
  const auto cuts = tree.manager().minimal_solutions(tree.top_ref());
  const double t_cuts = ms_since(t0);
  std::printf("minimal cut sets       : %zu          (%.2f ms)\n\n",
              cuts.size(), t_cuts);

  std::printf("%-26s %-14s %-14s %-10s\n", "method", "lower", "upper",
              "width");
  t0 = Clock::now();
  const Interval u = ftree::union_bound(cuts, qv);
  std::printf("%-26s %.6e  %.6e  %.2e  (%.2f ms)\n", "union/max", u.lo, u.hi,
              u.width(), ms_since(t0));

  t0 = Clock::now();
  const Interval ep = ftree::esary_proschan_bound(cuts, {}, qv);
  std::printf("%-26s %.6e  %.6e  %.2e  (%.2f ms)\n", "Esary-Proschan", ep.lo,
              ep.hi, ep.width(), ms_since(t0));

  for (std::uint32_t depth = 1; depth <= 3; ++depth) {
    t0 = Clock::now();
    const Interval b = ftree::bonferroni_bound(cuts, qv, depth);
    std::printf("Bonferroni depth %-9u %.6e  %.6e  %.2e  (%.2f ms)\n", depth,
                b.lo, b.hi, b.width(), ms_since(t0));
  }

  // Truncated cut list: keep only the most probable cuts (here: all cuts
  // have equal probability, so keep a prefix) — the realistic situation
  // where full enumeration is impossible and the analyst works from the
  // dominant cuts. The union upper bound from a truncated list must be
  // corrected by the tail mass; we report the raw truncated bounds to show
  // the effect.
  std::printf("\ntruncated cut lists (union bound, raw):\n");
  for (const std::size_t keep :
       {cuts.size() / 8, cuts.size() / 4, cuts.size() / 2, cuts.size()}) {
    const std::vector<ftree::CutSet> subset(cuts.begin(),
                                            cuts.begin() + keep);
    const Interval ub = ftree::union_bound(subset, qv);
    std::printf("  %5zu/%zu cuts: [%.6e, %.6e]  miss %.1e\n", keep,
                cuts.size(), ub.lo, ub.hi, exact - ub.hi < 0 ? 0.0
                                             : exact - ub.hi);
  }

  std::printf("\nVerdict: Bonferroni depth 2 already brackets the exact\n"
              "value to %.1e at a fraction of full enumeration cost.\n",
              ftree::bonferroni_bound(cuts, qv, 2).width());
  return 0;
}
