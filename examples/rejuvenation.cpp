// Software rejuvenation policy study (non-exponential distributions).
//
//   build/examples/example_rejuvenation
//
// The tutorial's software-aging example: a server degrades over time
// (Weibull wear-out failure), and preventive *rejuvenation* restarts it on
// a deterministic schedule — a semi-Markov / Markov-regenerative model, not
// a CTMC (a deterministic timer races an increasing-hazard clock). The study
// sweeps the rejuvenation interval and reports steady-state availability —
// exhibiting the classic U-shaped downtime curve with an optimal interval.
//
// Also shows the phase-type route: fit a PH to the Weibull and solve the
// same question on an expanded CTMC, comparing both answers.
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

// SMP over {healthy, rejuvenating, failed}.
//  healthy: race of Weibull(2, scale) failure vs deterministic(d) timer
//  rejuvenating: deterministic-ish short restart (Erlang keeps it general)
//  failed: full repair (lognormal, heavy tail)
double availability_smp(double d, DistPtr lifetime, DistPtr rejuv_time,
                        DistPtr repair_time) {
  semimarkov::SemiMarkov s;
  const auto healthy = s.add_state("healthy");
  const auto rejuv = s.add_state("rejuvenating");
  const auto failed = s.add_state("failed");
  s.add_race_transition(healthy, failed, lifetime);
  s.add_race_transition(healthy, rejuv, deterministic(d));
  s.add_transition(rejuv, healthy, 1.0, rejuv_time);
  s.add_transition(failed, healthy, 1.0, repair_time);
  return s.steady_state()[healthy];
}

}  // namespace

int main() {
  std::printf("== Software rejuvenation: optimal restart interval =======\n\n");

  // Hours. Aging failure: Weibull shape 2 (wear-out), scale 1000 h.
  const auto lifetime = weibull(2.0, 1000.0);
  const auto rejuv_time = erlang(4, 4.0 / 0.1);   // ~6-minute restart
  const auto repair_time = lognormal(0.7, 0.8);   // ~2.8 h mean repair

  std::printf("failure: %s (mean %.0f h)\n", lifetime->describe().c_str(),
              lifetime->mean());
  std::printf("rejuvenation: %.2f h; repair: %.2f h mean\n\n",
              rejuv_time->mean(), repair_time->mean());

  std::printf("%-14s %-14s %-14s\n", "interval [h]", "availability",
              "downtime/yr");
  double best_d = 0.0, best_a = 0.0;
  for (double d : {50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    const double a = availability_smp(d, lifetime, rejuv_time, repair_time);
    std::printf("%-14.0f %.8f   %8.1f min\n", d, a,
                core::downtime_minutes_per_year(a));
    if (a > best_a) {
      best_a = a;
      best_d = d;
    }
  }
  const double no_rejuv =
      lifetime->mean() / (lifetime->mean() + repair_time->mean());
  std::printf("%-14s %.8f   %8.1f min\n", "never", no_rejuv,
              core::downtime_minutes_per_year(no_rejuv));
  std::printf("\nbest interval ~%.0f h (availability %.8f)\n\n", best_d,
              best_a);

  // Phase-type route: expand the Weibull into a PH and build a CTMC.
  std::printf("Cross-check at d = %.0f h via phase-type expansion:\n",
              best_d);
  const phase::PhaseType ph_life = phase::fit_distribution(*lifetime);
  std::printf("  PH fit: order %zu, mean %.1f, cv %.3f (Weibull cv %.3f)\n",
              ph_life.order(), ph_life.mean(), ph_life.cv(),
              lifetime->cv());
  // CTMC: PH stages for aging; rejuvenation timer approximated by an
  // Erlang-8 deterministic surrogate (the PH way to model a timer).
  const unsigned timer_stages = 8;
  const double timer_rate = timer_stages / best_d;
  markov::Ctmc c;
  const std::size_t nph = ph_life.order();
  // States: (aging stage i, timer stage j), plus rejuv + failed.
  std::vector<std::vector<markov::StateId>> grid(nph);
  for (std::size_t i = 0; i < nph; ++i) {
    for (unsigned j = 0; j < timer_stages; ++j) {
      grid[i].push_back(
          c.add_state("a" + std::to_string(i) + "_t" + std::to_string(j)));
    }
  }
  const auto rejuv = c.add_state("rejuv");
  const auto failed = c.add_state("failed");
  const auto t_mat = ph_life.t();
  const auto exits = ph_life.exit_rates();
  for (std::size_t i = 0; i < nph; ++i) {
    for (unsigned j = 0; j < timer_stages; ++j) {
      // Aging moves within PH stages / to failed.
      for (std::size_t i2 = 0; i2 < nph; ++i2) {
        if (i2 != i && t_mat(i, i2) > 0.0) {
          c.add_transition(grid[i][j], grid[i2][j], t_mat(i, i2));
        }
      }
      if (exits[i] > 0.0) c.add_transition(grid[i][j], failed, exits[i]);
      // Timer ticks.
      if (j + 1 < timer_stages) {
        c.add_transition(grid[i][j], grid[i][j + 1], timer_rate);
      } else {
        c.add_transition(grid[i][j], rejuv, timer_rate);
      }
    }
  }
  c.add_transition(rejuv, grid[0][0], 1.0 / rejuv_time->mean());
  c.add_transition(failed, grid[0][0], 1.0 / repair_time->mean());
  const auto pi = c.steady_state();
  const double a_ph = 1.0 - pi[rejuv] - pi[failed];
  const double a_smp =
      availability_smp(best_d, lifetime, rejuv_time, repair_time);
  std::printf("  SMP (exact kernel)   : %.8f\n", a_smp);
  std::printf("  PH-expanded CTMC     : %.8f  (%zu states, delta %.1e)\n",
              a_ph, c.state_count(), a_ph - a_smp);
  std::printf("\nThe two state-space routes agree to the PH fitting error —\n"
              "the tutorial's point about handling non-exponentials.\n");

  // ---- MRGP: TWO-PHASE aging (robust -> fragile) under ONE non-resetting
  // timer. An SMP race cannot express this (the deterministic clock would
  // restart at the robust->fragile jump); the MRGP solver handles it
  // exactly, and shows rejuvenation pays off much more once aging is
  // observable as a fragile phase.
  std::printf("\nMRGP extension: two-phase aging under the same timer\n");
  std::printf("%-14s %-14s\n", "interval [h]", "availability");
  for (double interval : {100.0, 200.0, 400.0, 800.0, 1e7}) {
    markov::Ctmc sub;
    const auto robust = sub.add_state("robust");
    const auto fragile = sub.add_state("fragile");
    const auto crashed = sub.add_state("crashed");
    const auto rejuving = sub.add_state("rejuving");
    const auto rejuv_ok = sub.add_state("rejuv_ok");
    const auto fixing = sub.add_state("fixing");
    const auto fixed = sub.add_state("fixed");
    sub.add_transition(robust, fragile, 1.0 / 500.0);    // aging onset
    sub.add_transition(fragile, crashed, 1.0 / 250.0);   // crash when aged
    sub.add_transition(rejuving, rejuv_ok, 1.0 / rejuv_time->mean());
    sub.add_transition(fixing, fixed, 1.0 / repair_time->mean());

    semimarkov::Mrgp mrgp(std::move(sub));
    semimarkov::RegenerationRule live;
    live.timer = deterministic(interval);
    live.timer_branch.assign(7, 1);  // timer -> rejuvenation cycle
    const auto reg_live = mrgp.add_regeneration(robust, live);
    const auto reg_rejuv = mrgp.add_regeneration(rejuving, {});
    const auto reg_fix = mrgp.add_regeneration(fixing, {});
    (void)reg_rejuv;
    mrgp.set_exit_branch(crashed, reg_fix);
    mrgp.set_exit_branch(rejuv_ok, reg_live);
    mrgp.set_exit_branch(fixed, reg_live);
    const double avail =
        mrgp.steady_state_reward({1, 1, 0, 0, 0, 0, 0});
    std::printf("%-14.0f %.8f\n", interval, avail);
  }
  std::printf("(the last row ~= never rejuvenating)\n");
  return 0;
}
