// Dynamic fault tree for an avionics-style flight control computer.
//
//   build/examples/example_avionics_dft
//
// A HARP-lineage example (the DFT formalism comes from Trivedi's group):
// a flight-control system with
//   * a primary computing channel with a COLD spare (powered off, cannot
//     fail in dormancy),
//   * a sensor bus pair with a WARM spare (dormancy 0.3),
//   * a 2-of-3 actuator voting group (static),
//   * a power conditioning unit whose failure BEFORE the backup-bus
//     switchover matters (priority-AND).
// The tool converts each dynamic gate to a small CTMC module (PH lifetime)
// and solves the static remainder with BDDs — largeness avoidance in the
// reliability domain. Mission reliability over a 10-hour flight and MTTF
// are reported, plus the effect of spare dormancy.
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

int main() {
  std::printf("== Avionics DFT: spares, sequence logic, voting ==========\n\n");

  // Failure rates per hour.
  const std::map<std::string, double> rates{
      {"fcc_primary", 1e-4}, {"fcc_spare", 1e-4},
      {"bus_a", 5e-5},       {"bus_b", 5e-5},
      {"act1", 2e-4},        {"act2", 2e-4},        {"act3", 2e-4},
      {"pcu", 3e-5},         {"bus_switch", 1e-5},
  };

  const auto build = [&rates](double bus_dormancy) {
    // Computing channel: cold spare.
    const auto fcc = dft::Node::spare_gate(
        "fcc_pair",
        {dft::Node::basic("fcc_primary"), dft::Node::basic("fcc_spare")},
        0.0);
    // Sensor bus: warm spare.
    const auto bus = dft::Node::spare_gate(
        "bus_pair", {dft::Node::basic("bus_a"), dft::Node::basic("bus_b")},
        bus_dormancy);
    // Actuators: 2-of-3 must work, i.e. the group fails when 2 fail.
    const auto actuators = dft::Node::k_of_n_gate(
        2, {dft::Node::basic("act1"), dft::Node::basic("act2"),
            dft::Node::basic("act3")});
    // Power sequencing hazard: PCU failing BEFORE the bus switch is the
    // dangerous order (switchover impossible); the reverse order is benign.
    const auto power_seq = dft::Node::pand_gate(
        "power_seq",
        {dft::Node::basic("pcu"), dft::Node::basic("bus_switch")});

    return dft::Dft(
        dft::Node::or_gate({fcc, bus, actuators, power_seq}), rates);
  };

  const dft::Dft system = build(0.3);
  std::printf("dynamic modules converted to CTMCs: %zu\n",
              system.module_count());
  std::printf("static remainder BDD nodes        : %zu\n\n",
              system.static_tree().bdd_node_count());

  std::printf("%-12s %-16s %-16s\n", "mission [h]", "unreliability",
              "reliability");
  for (double t : {1.0, 10.0, 100.0, 1000.0}) {
    std::printf("%-12.0f %-16.6e %-16.9f\n", t, system.unreliability(t),
                system.reliability(t));
  }

  std::printf("\neffect of sensor-bus spare dormancy on 10 h mission:\n");
  std::printf("%-12s %-16s\n", "dormancy", "unreliability");
  for (double d : {0.0, 0.3, 0.6, 1.0}) {
    const dft::Dft variant = build(d);
    std::printf("%-12.1f %-16.6e\n", d, variant.unreliability(10.0));
  }

  std::printf("\nFor contrast, a purely static tree that ignores spare\n"
              "sequencing (hot-spare assumption everywhere):\n");
  const dft::Dft hot = build(1.0);
  std::printf("  static (hot) 10 h unreliability : %.6e\n",
              hot.unreliability(10.0));
  std::printf("  dynamic (0.3) 10 h unreliability: %.6e\n",
              system.unreliability(10.0));
  std::printf("  -> the static approximation overestimates failure "
              "probability by %.0f%%\n",
              100.0 * (hot.unreliability(10.0) / system.unreliability(10.0) -
                       1.0));
  return 0;
}
