// Cisco GGSN-style redundant-gateway availability study.
//
//   build/examples/example_ggsn_availability
//
// The tutorial's telecom case-study shape: an active/standby gateway pair
// where a failure of the active node is *covered* (detected and switched
// over in seconds) with probability c, and uncovered otherwise (traffic
// down until manual recovery). Software faults are cleared by reboot;
// hardware faults need field service. The study sweeps the coverage factor
// and reports downtime per year — the crossover argument the tutorial makes
// for investing in detection rather than more hardware.
//
// Time unit: hours.
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

struct GgsnParams {
  double lam_hw = 1.0 / 30000.0;   // hardware failure rate
  double lam_sw = 1.0 / 1500.0;    // software failure rate
  double mu_reboot = 6.0;          // 10-minute reboot
  double mu_hw = 1.0 / 4.0;        // 4-hour field repair
  double mu_switch = 120.0;        // 30-second failover
  double mu_manual = 2.0;          // 30-minute manual recovery (uncovered)
  double coverage = 0.95;
};

// Full CTMC of the active/standby pair. States encode (active ok?, standby
// ok?, traffic up?). Both failure classes are folded per node; reboots fix
// software, field service fixes hardware (approximated by a combined
// restoration rate weighted by the failure mix).
double ggsn_availability(const GgsnParams& p) {
  const double lam = p.lam_hw + p.lam_sw;
  // Mean restoration rate of one node: mix of reboot and hardware repair.
  const double w_sw = p.lam_sw / lam;
  const double mu_node = 1.0 / (w_sw / p.mu_reboot + (1 - w_sw) / p.mu_hw);

  markov::Ctmc c;
  const auto both = c.add_state("both_up");         // traffic up
  const auto swo = c.add_state("switching");        // covered switchover
  const auto solo = c.add_state("standby_carries"); // traffic up
  const auto manual = c.add_state("uncovered");     // traffic down
  const auto dual = c.add_state("dual_failure");    // traffic down

  c.add_transition(both, swo, lam * p.coverage);
  c.add_transition(both, manual, lam * (1.0 - p.coverage));
  c.add_transition(swo, solo, p.mu_switch);
  c.add_transition(solo, dual, lam);          // surviving node fails
  c.add_transition(solo, both, mu_node);      // failed node restored
  c.add_transition(manual, solo, p.mu_manual);
  c.add_transition(dual, solo, mu_node);
  // Standby can also fail silently while both up; fold into lam above.

  const auto pi = c.steady_state();
  return pi[both] + pi[solo];
}

}  // namespace

int main() {
  std::printf("== GGSN active/standby availability vs coverage =========\n\n");
  GgsnParams p;

  std::printf("%-10s %-14s %-12s %-10s\n", "coverage", "availability",
              "downtime/yr", "nines");
  for (double c : {0.80, 0.90, 0.95, 0.99, 0.999, 0.9999}) {
    p.coverage = c;
    const double a = ggsn_availability(p);
    std::printf("%-10.4f %.9f  %8.2f min   %.2f\n", c, a,
                core::downtime_minutes_per_year(a), core::nines(a));
  }

  // Compare against simply buying a third gateway (2-of-3, same coverage).
  std::printf("\nAlternative: better software (halve lam_sw) at c = 0.95\n");
  p.coverage = 0.95;
  p.lam_sw = 1.0 / 3000.0;
  const double a_sw = ggsn_availability(p);
  std::printf("  availability %.9f (%.2f min/yr)\n", a_sw,
              core::downtime_minutes_per_year(a_sw));

  p.lam_sw = 1.0 / 1500.0;

  // Parametric sensitivity: which parameter buys the most availability?
  std::printf("\nFinite-difference sensitivities at c = 0.95 "
              "(dA per 1%% parameter improvement):\n");
  const double base = ggsn_availability(p);
  struct Knob {
    const char* name;
    double* value;
    double factor;  // "1% improvement" multiplier
  };
  GgsnParams q = p;
  Knob knobs[] = {
      {"coverage           ", &q.coverage, 1.0005},  // toward 1
      {"software MTBF      ", &q.lam_sw, 0.99},
      {"hardware MTBF      ", &q.lam_hw, 0.99},
      {"manual recovery    ", &q.mu_manual, 1.01},
      {"switchover speed   ", &q.mu_switch, 1.01},
  };
  for (auto& k : knobs) {
    q = p;
    *k.value *= k.factor;
    if (q.coverage > 1.0) q.coverage = 1.0;
    const double a = ggsn_availability(q);
    std::printf("  %s dA = %+.3e\n", k.name, a - base);
  }
  return 0;
}
