// Sun-Microsystems-style high-availability cluster study.
//
//   build/examples/example_sun_cluster
//
// The fourth of the tutorial's industry case studies: a two-node HA cluster
// (Sun Cluster lineage) with
//   * per-node OS/hardware failures, OS faults cleared by reboot,
//   * failover managed by a membership monitor with imperfect coverage,
//   * a quorum device whose loss during single-node operation forces a
//     cluster-wide outage (dependency!),
//   * deferred hardware service (fix-when-broken-twice economics).
// Modeled as an SRN (the dependencies rule out combinatorial models),
// converted automatically to a CTMC, and validated against the token-game
// simulator. Reports availability, downtime, and the usual what-ifs.
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

struct ClusterParams {
  double lam_node = 1.0 / 2000.0;   // node failure (OS dominated), /h
  double mu_reboot = 2.0;           // 30-minute reboot+rejoin
  double lam_quorum = 1.0 / 50000.0;
  double mu_quorum = 1.0 / 8.0;     // quorum device replacement
  double coverage = 0.96;           // failover success probability
  double mu_manual = 1.0;           // manual recovery of failed failover
};

spn::Srn build_cluster(const ClusterParams& p) {
  spn::Srn net;
  const auto nodes_up = net.add_place("nodes_up", 2);
  const auto nodes_down = net.add_place("nodes_down", 0);
  const auto deciding = net.add_place("deciding", 0);
  const auto outage = net.add_place("outage", 0);  // uncovered failover
  const auto quorum_ok = net.add_place("quorum_ok", 1);
  const auto quorum_bad = net.add_place("quorum_bad", 0);

  // Node failure routes through the membership decision.
  const auto fail = net.add_timed(
      "node_fail",
      [nodes_up, p](const spn::Marking& m) { return p.lam_node * m[nodes_up]; });
  net.add_input_arc(fail, nodes_up);
  net.add_output_arc(fail, deciding);

  // Covered: the survivor carries on. Uncovered: cluster outage.
  const auto covered = net.add_immediate("covered", p.coverage);
  net.add_input_arc(covered, deciding);
  net.add_output_arc(covered, nodes_down);
  // The outage marker is a binary flag: a second uncovered failure while
  // already in outage must not stack another token (unbounded place).
  const auto uncovered = net.add_immediate("uncovered", 1.0 - p.coverage);
  net.add_input_arc(uncovered, deciding);
  net.add_output_arc(uncovered, outage);
  net.add_output_arc(uncovered, nodes_down);
  net.add_inhibitor_arc(uncovered, outage);
  const auto uncovered_again =
      net.add_immediate("uncovered_again", 1.0 - p.coverage);
  net.add_input_arc(uncovered_again, deciding);
  net.add_output_arc(uncovered_again, nodes_down);
  net.set_guard(uncovered_again,
                [outage](const spn::Marking& m) { return m[outage] >= 1; });

  // Reboot returns a node (and clears an outage marker if present —
  // recovery of the failed node restores the cluster).
  const auto reboot = net.add_timed(
      "reboot", [nodes_down, p](const spn::Marking& m) {
        return p.mu_reboot * m[nodes_down];
      });
  net.add_input_arc(reboot, nodes_down);
  net.add_output_arc(reboot, nodes_up);

  // Manual recovery clears the outage state faster than a full reboot path.
  const auto manual = net.add_timed("manual_recovery", p.mu_manual);
  net.add_input_arc(manual, outage);

  // Quorum device fails and is replaced.
  const auto qfail = net.add_timed("quorum_fail", p.lam_quorum);
  net.add_input_arc(qfail, quorum_ok);
  net.add_output_arc(qfail, quorum_bad);
  const auto qfix = net.add_timed("quorum_fix", p.mu_quorum);
  net.add_input_arc(qfix, quorum_bad);
  net.add_output_arc(qfix, quorum_ok);

  return net;
}

// Service is up when: no uncovered outage, and (both nodes up, or one node
// up with quorum intact — a solo node without quorum must halt).
spn::GuardFn service_up(const spn::Srn& net) {
  const auto nodes_up = net.place_index("nodes_up");
  const auto outage = net.place_index("outage");
  const auto quorum_ok = net.place_index("quorum_ok");
  return [nodes_up, outage, quorum_ok](const spn::Marking& m) {
    if (m[outage] > 0) return false;
    if (m[nodes_up] == 2) return true;
    return m[nodes_up] == 1 && m[quorum_ok] == 1;
  };
}

}  // namespace

int main() {
  std::printf("== Sun-style HA cluster availability =====================\n\n");
  ClusterParams p;
  spn::Srn net = build_cluster(p);
  const auto g = net.generate();
  std::printf("SRN: %zu places, %zu transitions -> %zu tangible markings "
              "(%zu vanishing eliminated)\n\n",
              net.place_count(), net.transition_count(), g.markings.size(),
              g.vanishing_count);

  const double avail = net.probability(service_up(net));
  std::printf("service availability : %.9f (%.2f nines)\n", avail,
              core::nines(avail));
  std::printf("downtime             : %.1f min/year\n\n",
              core::downtime_minutes_per_year(avail));

  // Cross-validate with the token-game simulator (interval availability
  // over a long window approximates the steady state).
  sim::SrnSimulator simulator(net);
  const auto reward = [up = service_up(net)](const spn::Marking& m) {
    return up(m) ? 1.0 : 0.0;
  };
  const auto est = simulator.accumulated_reward(reward, 50000.0, 400, 99);
  std::printf("simulated interval availability over 50k h: %.6f +/- %.6f\n",
              est.mean / 50000.0, est.half_width / 50000.0);
  std::printf("  -> %s the analytic value\n\n",
              std::abs(est.mean / 50000.0 - avail) <
                      3.5 * est.half_width / 50000.0 + 1e-3
                  ? "covers"
                  : "MISSES");

  std::printf("what-if analysis:\n");
  struct Scenario {
    const char* label;
    ClusterParams params;
  };
  ClusterParams better_cov = p;
  better_cov.coverage = 0.995;
  ClusterParams faster_reboot = p;
  faster_reboot.mu_reboot = 6.0;
  ClusterParams solid_quorum = p;
  solid_quorum.lam_quorum = 1e-7;
  for (const Scenario& s : {Scenario{"coverage 0.96 -> 0.995 ", better_cov},
                            Scenario{"reboot 30 min -> 10 min", faster_reboot},
                            Scenario{"quorum device hardened ", solid_quorum}}) {
    spn::Srn variant = build_cluster(s.params);
    const double a = variant.probability(service_up(variant));
    std::printf("  %s : %.9f (%+.1f min/yr)\n", s.label, a,
                core::downtime_minutes_per_year(a) -
                    core::downtime_minutes_per_year(avail));
  }
  std::printf("\nThe coverage knob dominates — the same conclusion the\n"
              "tutorial draws for the Cisco GGSN and SIP studies.\n");
  return 0;
}
