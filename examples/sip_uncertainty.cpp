// SIP-cluster availability with parametric uncertainty.
//
//   build/examples/example_sip_uncertainty
//
// The tutorial's closing challenge: model inputs come from finite field
// data, so the availability prediction deserves a confidence interval, not
// a point value. An IBM-SIP-on-WebSphere-style cluster (N app servers
// behind a proxy pair, session state replicated) is evaluated with
//   * conjugate posteriors on every rate (Gamma) and the failover coverage
//     (Beta) from synthetic field counts,
//   * Latin-hypercube propagation through the full hierarchical model,
//   * reporting mean, 90% / 99% intervals, and the downtime distribution.
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

// Availability of the cluster given concrete parameters.
double cluster_availability(const std::map<std::string, double>& p) {
  const double lam_app = p.at("lam_app");
  const double mu_app = p.at("mu_app");
  const double lam_proxy = p.at("lam_proxy");
  const double mu_proxy = p.at("mu_proxy");
  const double coverage = p.at("coverage");

  // Proxy pair with imperfect failover (CTMC).
  markov::Ctmc c;
  const auto both = c.add_state("both");
  const auto solo = c.add_state("solo");
  const auto down_c = c.add_state("down_cov");
  const auto down_u = c.add_state("down_unc");
  c.add_transition(both, solo, 2 * lam_proxy * coverage);
  c.add_transition(both, down_u, 2 * lam_proxy * (1 - coverage));
  c.add_transition(solo, down_c, lam_proxy);
  c.add_transition(solo, both, mu_proxy);
  c.add_transition(down_c, solo, mu_proxy);
  c.add_transition(down_u, solo, mu_proxy);
  const auto pi = c.steady_state();
  const double a_proxy = pi[both] + pi[solo];

  // App tier: 6 servers, need 4 (session replication tolerates 2 gone).
  std::vector<rbd::BlockPtr> servers;
  std::map<std::string, ComponentModel> models;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "app" + std::to_string(i);
    servers.push_back(rbd::Block::component(name));
    models.emplace(name, ComponentModel::repairable(lam_app, mu_app));
  }
  const rbd::Rbd app_tier(rbd::Block::k_of_n(4, servers), models);

  return a_proxy * app_tier.availability();
}

}  // namespace

int main() {
  std::printf("== SIP cluster availability under parametric uncertainty ==\n\n");

  // Synthetic field data (counts and exposures; hours).
  // 23 app-server failures over 18 node-years, etc.
  const double hours_per_year = 24 * 365.25;
  const std::vector<uncertainty::ParamSpec> params{
      {"lam_app",
       uncertainty::rate_posterior(23.0, 18.0 * hours_per_year)},
      {"mu_app", uncertainty::rate_posterior(23.0, 23.0 * 0.6)},
      {"lam_proxy",
       uncertainty::rate_posterior(4.0, 9.0 * hours_per_year)},
      {"mu_proxy", uncertainty::rate_posterior(4.0, 4.0 * 0.4)},
      {"coverage", uncertainty::probability_posterior(46.0, 50.0)},
  };
  std::printf("posteriors from field data:\n");
  for (const auto& p : params) {
    std::printf("  %-10s %s  (mean %.4g, cv %.2f)\n", p.name.c_str(),
                p.dist->describe().c_str(), p.dist->mean(), p.dist->cv());
  }

  Rng rng(20260707);
  const auto res = uncertainty::propagate(params, cluster_availability, 3000,
                                          rng,
                                          uncertainty::Sampling::kLatinHypercube);

  const auto [lo90, hi90] = res.interval(0.90);
  const auto [lo99, hi99] = res.interval(0.99);
  std::printf("\navailability: mean %.8f  sd %.2e\n", res.mean, res.stddev);
  std::printf("  90%% interval [%.8f, %.8f]\n", lo90, hi90);
  std::printf("  99%% interval [%.8f, %.8f]\n", lo99, hi99);
  std::printf("\ndowntime min/yr: median %.1f,  90%% [%0.1f, %.1f]\n",
              core::downtime_minutes_per_year(res.percentile(0.5)),
              core::downtime_minutes_per_year(hi90),
              core::downtime_minutes_per_year(lo90));

  // The plug-in (point-estimate) answer, for contrast.
  std::map<std::string, double> point;
  for (const auto& p : params) point[p.name] = p.dist->mean();
  std::printf("\nplug-in point estimate: %.8f — inside the interval but\n"
              "hides a %.0fx spread in predicted downtime.\n",
              cluster_availability(point),
              core::downtime_minutes_per_year(lo90) > 0
                  ? core::downtime_minutes_per_year(lo90) /
                        std::max(0.01, core::downtime_minutes_per_year(hi90))
                  : 0.0);
  return 0;
}
