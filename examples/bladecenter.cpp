// IBM BladeCenter-style hierarchical availability model.
//
//   build/examples/example_bladecenter
//
// Reconstructs the shape of the tutorial's IBM case study: a blade server
// chassis whose availability model is a *hierarchy* —
//
//   level 0 (this file's output): chassis availability, downtime, ranking
//   level 1: RBD over subsystems (midplane, power, cooling, switches, blades)
//   level 2: per-subsystem state-space models where dependencies matter:
//            - power:    2 PSUs, shared repair crew        (CTMC)
//            - cooling:  2 blowers, load-sharing rate rise (CTMC)
//            - blades:   14 blades, k-of-n with deferred repair (SRN)
//            - switches: duplex pair with imperfect failover coverage (CTMC)
//
// Parameters are order-of-magnitude values typical of published studies
// (field MTTFs of 10^5-10^6 h, repair of hours); see DESIGN.md for the
// substitution note. Times in hours.
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

// Duplex subsystem with one shared repair crew: states 2,1,0 up.
double duplex_shared_repair_availability(double lambda, double mu) {
  markov::Ctmc c;
  const auto s2 = c.add_state("2");
  const auto s1 = c.add_state("1");
  const auto s0 = c.add_state("0");
  c.add_transition(s2, s1, 2 * lambda);
  c.add_transition(s1, s0, lambda);
  c.add_transition(s1, s2, mu);
  c.add_transition(s0, s1, mu);
  const auto pi = c.steady_state();
  return pi[s2] + pi[s1];  // down only when both units are down
}

// Load-sharing blower pair: when one blower fails the survivor runs hotter
// (failure rate inflated by `stress`).
double cooling_availability(double lambda, double mu, double stress) {
  markov::Ctmc c;
  const auto s2 = c.add_state("2");
  const auto s1 = c.add_state("1");
  const auto s0 = c.add_state("0");
  c.add_transition(s2, s1, 2 * lambda);
  c.add_transition(s1, s0, stress * lambda);
  c.add_transition(s1, s2, mu);
  c.add_transition(s0, s1, mu);
  const auto pi = c.steady_state();
  return pi[s2] + pi[s1];
}

// Duplex switch pair with imperfect failover: an uncovered failure takes
// the pair down until a full recovery.
double switch_availability(double lambda, double mu, double coverage,
                           double recovery_rate) {
  markov::Ctmc c;
  const auto ok = c.add_state("both");
  const auto solo = c.add_state("solo");
  const auto down_cov = c.add_state("down_covered");
  const auto down_unc = c.add_state("down_uncovered");
  c.add_transition(ok, solo, 2 * lambda * coverage);
  c.add_transition(ok, down_unc, 2 * lambda * (1.0 - coverage));
  c.add_transition(solo, down_cov, lambda);
  c.add_transition(solo, ok, mu);
  c.add_transition(down_cov, solo, mu);
  c.add_transition(down_unc, ok, recovery_rate);
  const auto pi = c.steady_state();
  return pi[ok] + pi[solo];
}

// Blade farm: n blades, system needs k; repair is deferred — a technician
// is dispatched only when 2+ blades are down (the tutorial's "deferred
// repair" economics). Modeled as an SRN.
double blade_farm_availability(unsigned n, unsigned k, double lambda,
                               double mu) {
  spn::Srn net;
  const auto up = net.add_place("up", n);
  const auto down = net.add_place("down", 0);
  const auto fail = net.add_timed(
      "fail", [up, lambda](const spn::Marking& m) { return lambda * m[up]; });
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, down);
  // Repair crew fixes one blade at a time, dispatched at 2 down; once on
  // site it drains the queue (hysteresis is approximated by allowing repair
  // while >= 1 down but at reduced rate when exactly 1 is down).
  const auto repair_full = net.add_timed("repair", mu);
  net.add_input_arc(repair_full, down, 2);
  net.add_output_arc(repair_full, up, 1);
  net.add_output_arc(repair_full, down, 1);  // net effect: one blade back
  const auto repair_slow = net.add_timed("repair_slow", mu * 0.25);
  net.add_input_arc(repair_slow, down, 1);
  net.add_output_arc(repair_slow, up, 1);
  net.add_inhibitor_arc(repair_slow, down, 2);

  return net.probability(
      [up, k](const spn::Marking& m) { return m[up] >= k; });
}

}  // namespace

int main() {
  std::printf("== BladeCenter-style hierarchical availability ==========\n\n");

  core::Hierarchy h;
  // Field-plausible parameters (hours).
  h.set_parameter("lam_psu", 1.0 / 150000.0);
  h.set_parameter("mu_psu", 1.0 / 8.0);
  h.set_parameter("lam_blower", 1.0 / 90000.0);
  h.set_parameter("mu_blower", 1.0 / 8.0);
  h.set_parameter("blower_stress", 1.8);
  h.set_parameter("lam_switch", 1.0 / 120000.0);
  h.set_parameter("mu_switch", 1.0 / 4.0);
  h.set_parameter("switch_coverage", 0.98);
  h.set_parameter("switch_recovery", 1.0 / 0.5);
  h.set_parameter("lam_blade", 1.0 / 60000.0);
  h.set_parameter("mu_blade", 1.0 / 24.0);  // deferred: a day to a fix
  h.set_parameter("lam_midplane", 1.0 / 1000000.0);
  h.set_parameter("mu_midplane", 1.0 / 24.0);

  h.define("A_power", [](const core::Hierarchy& hh) {
    return duplex_shared_repair_availability(hh.value("lam_psu"),
                                             hh.value("mu_psu"));
  });
  h.define("A_cooling", [](const core::Hierarchy& hh) {
    return cooling_availability(hh.value("lam_blower"),
                                hh.value("mu_blower"),
                                hh.value("blower_stress"));
  });
  h.define("A_switch", [](const core::Hierarchy& hh) {
    return switch_availability(hh.value("lam_switch"), hh.value("mu_switch"),
                               hh.value("switch_coverage"),
                               hh.value("switch_recovery"));
  });
  h.define("A_blades_13of14", [](const core::Hierarchy& hh) {
    return blade_farm_availability(14, 13, hh.value("lam_blade"),
                                   hh.value("mu_blade"));
  });
  h.define("A_midplane", [](const core::Hierarchy& hh) {
    return core::availability_from_mttf_mttr(1.0 / hh.value("lam_midplane"),
                                             1.0 / hh.value("mu_midplane"));
  });
  h.define("A_chassis", [](const core::Hierarchy& hh) {
    const auto root = rbd::Block::series({
        rbd::Block::component("midplane"),
        rbd::Block::component("power"),
        rbd::Block::component("cooling"),
        rbd::Block::component("switch"),
        rbd::Block::component("blades"),
    });
    const rbd::Rbd r(
        root,
        {{"midplane", ComponentModel::fixed(hh.value("A_midplane"))},
         {"power", ComponentModel::fixed(hh.value("A_power"))},
         {"cooling", ComponentModel::fixed(hh.value("A_cooling"))},
         {"switch", ComponentModel::fixed(hh.value("A_switch"))},
         {"blades", ComponentModel::fixed(hh.value("A_blades_13of14"))}});
    return r.availability();
  });

  const char* subsystems[] = {"A_midplane", "A_power", "A_cooling",
                              "A_switch", "A_blades_13of14"};
  std::printf("%-18s %-14s %-12s\n", "subsystem", "availability",
              "downtime/yr");
  for (const char* s : subsystems) {
    const double a = h.value(s);
    std::printf("%-18s %.9f   %8.2f min\n", s, a,
                core::downtime_minutes_per_year(a));
  }
  const double chassis = h.value("A_chassis");
  std::printf("\nchassis availability: %.9f (%.2f nines, %.1f min/yr)\n",
              chassis, core::nines(chassis),
              core::downtime_minutes_per_year(chassis));

  // What-if: an on-site technician halves blade repair time.
  h.set_parameter("mu_blade", 1.0 / 12.0);
  const double improved = h.value("A_chassis");
  std::printf("with 12 h blade repair SLA:  %.9f (%+.1f min/yr)\n", improved,
              core::downtime_minutes_per_year(improved) -
                  core::downtime_minutes_per_year(chassis));
  return 0;
}
