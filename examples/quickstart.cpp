// Quickstart: one tour through RelKit's model types.
//
//   build/examples/example_quickstart
//
// Walks the tutorial's journey on a toy web service:
//   1. reliability block diagram       (non-state-space)
//   2. fault tree with importance      (non-state-space)
//   3. CTMC with shared repair         (state-space, dependency)
//   4. hierarchical composition        (largeness avoidance)
#include <cstdio>

#include "core/relkit.hpp"

int main() {
  using namespace relkit;

  std::printf("== RelKit quickstart =====================================\n");

  // ---- 1. RBD: two web servers in parallel, in series with a database.
  const auto web1 = rbd::Block::component("web1");
  const auto web2 = rbd::Block::component("web2");
  const auto db = rbd::Block::component("db");
  const auto system =
      rbd::Block::series({rbd::Block::parallel({web1, web2}), db});

  const rbd::Rbd diagram(
      system, {{"web1", ComponentModel::repairable(1.0 / 500.0, 1.0 / 2.0)},
               {"web2", ComponentModel::repairable(1.0 / 500.0, 1.0 / 2.0)},
               {"db", ComponentModel::repairable(1.0 / 2000.0, 1.0 / 4.0)}});

  const double avail = diagram.availability();
  std::printf("\n[RBD] steady-state availability  : %.6f (%.2f nines)\n",
              avail, core::nines(avail));
  std::printf("[RBD] downtime                   : %.1f min/year\n",
              core::downtime_minutes_per_year(avail));
  std::printf("[RBD] minimal cut sets:\n");
  for (const auto& cut : diagram.minimal_cut_sets()) {
    std::printf("      {");
    for (std::size_t i = 0; i < cut.size(); ++i) {
      std::printf("%s%s", i ? ", " : " ", cut[i].c_str());
    }
    std::printf(" }\n");
  }

  // ---- 2. Fault tree for the same system, with importance measures.
  const auto top = ftree::Node::or_gate(
      {ftree::Node::and_gate(
           {ftree::Node::basic("web1"), ftree::Node::basic("web2")}),
       ftree::Node::basic("db")});
  const ftree::FaultTree tree(
      top, {{"web1", ftree::EventModel::repairable(1.0 / 500.0, 1.0 / 2.0)},
            {"web2", ftree::EventModel::repairable(1.0 / 500.0, 1.0 / 2.0)},
            {"db", ftree::EventModel::repairable(1.0 / 2000.0, 1.0 / 4.0)}});
  std::printf("\n[FT ] top-event probability      : %.3e\n",
              tree.top_probability_limit());
  std::printf("[FT ] importance (steady state):\n");
  std::printf("      %-6s %12s %12s %8s\n", "event", "Birnbaum", "F-V",
              "RAW");
  for (const auto& row : tree.importance(-1.0)) {
    std::printf("      %-6s %12.4e %12.4e %8.2f\n", row.event.c_str(),
                row.birnbaum, row.fussell_vesely, row.raw);
  }

  // ---- 3. CTMC: both web servers share ONE repair person — a dependency
  // the RBD cannot express. Availability drops accordingly.
  markov::Ctmc chain;
  const auto s0 = chain.add_state("both_up");
  const auto s1 = chain.add_state("one_down");
  const auto s2 = chain.add_state("both_down");
  const double lw = 1.0 / 500.0, mw = 1.0 / 2.0;
  chain.add_transition(s0, s1, 2 * lw);
  chain.add_transition(s1, s2, lw);
  chain.add_transition(s1, s0, mw);
  chain.add_transition(s2, s1, mw);  // one repair person
  const auto pi = chain.steady_state();
  std::printf("\n[CTMC] web tier, shared repair   : A = %.8f\n",
              pi[s0] + pi[s1]);
  const rbd::Rbd independent(
      rbd::Block::parallel({web1, web2}),
      {{"web1", ComponentModel::repairable(lw, mw)},
       {"web2", ComponentModel::repairable(lw, mw)}});
  std::printf("[CTMC] vs independent repair     : A = %.8f\n",
              independent.availability());

  // ---- 4. Hierarchy: feed the CTMC result into the top-level RBD.
  core::Hierarchy h;
  h.define("web_tier", [&](const core::Hierarchy&) {
    return pi[s0] + pi[s1];
  });
  h.define("db_tier", [](const core::Hierarchy&) {
    return core::availability_from_mttf_mttr(2000.0, 4.0);
  });
  h.define("service", [](const core::Hierarchy& hh) {
    const auto root = rbd::Block::series(
        {rbd::Block::component("web"), rbd::Block::component("db")});
    const rbd::Rbd r(root,
                     {{"web", ComponentModel::fixed(hh.value("web_tier"))},
                      {"db", ComponentModel::fixed(hh.value("db_tier"))}});
    return r.availability();
  });
  const double service = h.value("service");
  std::printf("\n[HIER] service availability      : %.8f (%.1f min/yr)\n",
              service, core::downtime_minutes_per_year(service));

  std::printf("\nDone.\n");
  return 0;
}
