// Workstations-and-file-server performability (Trivedi's classic WFS
// example — Markov *reward* analysis, not just up/down availability).
//
//   build/examples/example_wfs_performability
//
// N workstations and one file server: the system delivers useful work only
// while the file server is up, and throughput is proportional to the number
// of working workstations. A pure availability view ("system up iff server
// and >=1 workstation up") hides the capacity degradation; attaching a
// throughput reward to each CTMC state exposes it:
//   * expected reward rate at t (transient capacity),
//   * steady-state expected capacity,
//   * expected accumulated work over a mission window,
//   * capacity-oriented availability  E[capacity]/max vs binary A.
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

constexpr int kWorkstations = 4;
constexpr double kLamW = 1.0 / 500.0;   // workstation MTTF 500 h
constexpr double kMuW = 1.0 / 2.0;      // 2 h repair
constexpr double kLamS = 1.0 / 2000.0;  // file-server MTTF
constexpr double kMuS = 1.0 / 4.0;      // 4 h repair

// State = (workstations up 0..N, server up/down); single shared repair
// crew that prioritizes the file server (the dependency making this a
// CTMC rather than an RBD).
struct Wfs {
  markov::Ctmc chain;
  std::vector<double> throughput;  // reward rate per state
  std::vector<markov::StateId> id; // (w, s) -> state
  int index(int w, int s) const { return w * 2 + s; }
};

Wfs build() {
  Wfs model;
  model.id.resize((kWorkstations + 1) * 2);
  for (int w = kWorkstations; w >= 0; --w) {
    for (int s = 1; s >= 0; --s) {
      model.id[model.index(w, s)] = model.chain.add_state(
          "w" + std::to_string(w) + (s ? "_serverUp" : "_serverDown"));
      // Throughput: proportional to workstations, zero without the server.
      model.throughput.push_back(s ? static_cast<double>(w) : 0.0);
    }
  }
  for (int w = 0; w <= kWorkstations; ++w) {
    for (int s = 0; s <= 1; ++s) {
      const auto from = model.id[model.index(w, s)];
      if (w > 0) {
        model.chain.add_transition(from, model.id[model.index(w - 1, s)],
                                   w * kLamW);
      }
      if (s == 1) {
        model.chain.add_transition(from, model.id[model.index(w, 0)], kLamS);
      }
      // Single crew, server first.
      if (s == 0) {
        model.chain.add_transition(from, model.id[model.index(w, 1)], kMuS);
      } else if (w < kWorkstations) {
        model.chain.add_transition(from, model.id[model.index(w + 1, s)],
                                   kMuW);
      }
    }
  }
  return model;
}

}  // namespace

int main() {
  std::printf("== WFS performability: rewards beat binary availability ===\n\n");
  const Wfs model = build();
  std::printf("CTMC: %zu states (%d workstations x server)\n\n",
              model.chain.state_count(), kWorkstations);

  const auto pi0 =
      model.chain.point_mass(model.id[model.index(kWorkstations, 1)]);

  // Binary availability: server up and at least one workstation up.
  std::vector<double> up_indicator(model.chain.state_count(), 0.0);
  for (int w = 1; w <= kWorkstations; ++w) {
    up_indicator[model.id[model.index(w, 1)]] = 1.0;
  }

  const double a_binary =
      markov::reward_rate_steady(model.chain, up_indicator);
  const double cap_steady =
      markov::reward_rate_steady(model.chain, model.throughput);
  std::printf("binary availability            : %.9f\n", a_binary);
  std::printf("steady expected capacity       : %.6f of %d workstations\n",
              cap_steady, kWorkstations);
  std::printf("capacity-oriented availability : %.9f\n\n",
              cap_steady / kWorkstations);

  std::printf("transient expected capacity (from all-up):\n");
  std::printf("%-10s %-14s %-14s\n", "t [h]", "E[capacity]", "binary A(t)");
  for (double t : {1.0, 10.0, 100.0, 1000.0}) {
    const double cap =
        markov::reward_rate_at(model.chain, model.throughput, pi0, t);
    const double a =
        markov::reward_rate_at(model.chain, up_indicator, pi0, t);
    std::printf("%-10.0f %-14.6f %-14.9f\n", t, cap, a);
  }

  const double mission = 720.0;  // one month
  const double work = markov::accumulated_reward(model.chain,
                                                 model.throughput, pi0,
                                                 mission);
  std::printf("\nexpected work in %.0f h mission : %.1f workstation-hours\n",
              mission, work);
  std::printf("(lost to failures: %.1f = %.2f%%)\n",
              kWorkstations * mission - work,
              100.0 * (1.0 - work / (kWorkstations * mission)));

  // The punchline: binary availability hides roughly 3x more capacity
  // loss than it reports — the tutorial's argument for reward models.
  std::printf("\ninterval availability (binary)  : %.9f\n",
              markov::interval_availability(model.chain, up_indicator, pi0,
                                            mission));
  std::printf("interval capacity utilization   : %.6f\n",
              work / (kWorkstations * mission));
  return 0;
}
