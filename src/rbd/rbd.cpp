#include "rbd/rbd.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/quadrature.hpp"

namespace relkit::rbd {

BlockPtr Block::component(std::string name) {
  detail::require(!name.empty(), "Block::component: empty name");
  return BlockPtr(new Block(Kind::kComponent, std::move(name), {}, 0));
}

BlockPtr Block::series(std::vector<BlockPtr> children) {
  detail::require_model(!children.empty(), "series block needs children");
  return BlockPtr(new Block(Kind::kSeries, {}, std::move(children), 0));
}

BlockPtr Block::parallel(std::vector<BlockPtr> children) {
  detail::require_model(!children.empty(), "parallel block needs children");
  return BlockPtr(new Block(Kind::kParallel, {}, std::move(children), 0));
}

BlockPtr Block::k_of_n(std::uint32_t k, std::vector<BlockPtr> children) {
  detail::require_model(!children.empty(), "k-of-n block needs children");
  detail::require_model(k >= 1 && k <= children.size(),
                        "k-of-n block: require 1 <= k <= n");
  return BlockPtr(new Block(Kind::kKofN, {}, std::move(children), k));
}

Rbd::Rbd(BlockPtr root, std::map<std::string, ComponentModel> components) {
  detail::require_model(root != nullptr, "Rbd: null root block");

  // Assign variable levels in first-appearance DFS order (a good static
  // ordering for series-parallel structures).
  std::function<void(const Block&)> collect = [&](const Block& b) {
    if (b.kind() == Block::Kind::kComponent) {
      const auto it = components.find(b.component_name());
      detail::require_model(it != components.end(),
                            "Rbd: leaf references unknown component '" +
                                b.component_name() + "'");
      if (!index_.count(b.component_name())) {
        const auto level = static_cast<std::uint32_t>(names_.size());
        index_.emplace(b.component_name(), level);
        names_.push_back(b.component_name());
        models_.push_back(it->second);
      }
      return;
    }
    for (const auto& c : b.children()) collect(*c);
  };
  collect(*root);

  // Success function over x_i = "component i up".
  std::function<bdd::NodeRef(const Block&)> build_up = [&](const Block& b) {
    switch (b.kind()) {
      case Block::Kind::kComponent:
        return mgr_.var(index_.at(b.component_name()));
      case Block::Kind::kSeries: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(b.children().size());
        for (const auto& c : b.children()) refs.push_back(build_up(*c));
        return mgr_.and_all(refs);
      }
      case Block::Kind::kParallel: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(b.children().size());
        for (const auto& c : b.children()) refs.push_back(build_up(*c));
        return mgr_.or_all(refs);
      }
      case Block::Kind::kKofN: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(b.children().size());
        for (const auto& c : b.children()) refs.push_back(build_up(*c));
        return mgr_.at_least(b.k(), refs);
      }
    }
    return bdd::Manager::zero();
  };
  // Failure function over y_i = "component i down" (dual gates), used for
  // minimal cut sets; it is coherent in the y variables.
  std::function<bdd::NodeRef(const Block&)> build_down = [&](const Block& b) {
    switch (b.kind()) {
      case Block::Kind::kComponent:
        return mgr_.var(index_.at(b.component_name()));
      case Block::Kind::kSeries: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(b.children().size());
        for (const auto& c : b.children()) refs.push_back(build_down(*c));
        return mgr_.or_all(refs);
      }
      case Block::Kind::kParallel: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(b.children().size());
        for (const auto& c : b.children()) refs.push_back(build_down(*c));
        return mgr_.and_all(refs);
      }
      case Block::Kind::kKofN: {
        // Success needs >= k up; failure means >= n-k+1 down.
        std::vector<bdd::NodeRef> refs;
        refs.reserve(b.children().size());
        for (const auto& c : b.children()) refs.push_back(build_down(*c));
        const auto need =
            static_cast<std::uint32_t>(refs.size()) - b.k() + 1;
        return mgr_.at_least(need, refs);
      }
    }
    return bdd::Manager::zero();
  };

  success_ = build_up(*root);
  failure_ = build_down(*root);
}

std::vector<double> Rbd::probs_at(double t) const {
  std::vector<double> p(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    p[i] = t < 0.0 ? models_[i].prob_up_limit() : models_[i].prob_up_at(t);
  }
  return p;
}

double Rbd::prob_vector_eval(const std::vector<double>& p) const {
  return mgr_.prob(success_, p);
}

double Rbd::reliability(double t) const {
  detail::require(t >= 0.0, "Rbd::reliability: t must be >= 0");
  return prob_vector_eval(probs_at(t));
}

double Rbd::availability() const { return prob_vector_eval(probs_at(-1.0)); }

double Rbd::prob_up(const std::map<std::string, double>& prob) const {
  std::vector<double> p(models_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const auto it = prob.find(names_[i]);
    detail::require(it != prob.end(),
                    "Rbd::prob_up: missing probability for '" + names_[i] +
                        "'");
    detail::require(it->second >= 0.0 && it->second <= 1.0,
                    "Rbd::prob_up: probability out of [0,1]");
    p[i] = it->second;
  }
  return prob_vector_eval(p);
}

double Rbd::mttf() const {
  for (const auto& m : models_) {
    detail::require_model(m.kind != ComponentModel::Kind::kRepairable,
                          "Rbd::mttf: undefined with repairable components; "
                          "use availability() instead");
  }
  return integrate_to_inf([this](double t) { return reliability(t); }, 1e-10);
}

std::vector<std::vector<std::string>> Rbd::minimal_cut_sets(
    std::size_t limit) const {
  const auto raw = mgr_.minimal_solutions(failure_, limit);
  std::vector<std::vector<std::string>> out;
  out.reserve(raw.size());
  for (const auto& cut : raw) {
    std::vector<std::string> named;
    named.reserve(cut.size());
    for (const auto v : cut) named.push_back(names_[v]);
    out.push_back(std::move(named));
  }
  return out;
}

std::vector<std::vector<std::string>> Rbd::minimal_path_sets(
    std::size_t limit) const {
  const auto raw = mgr_.minimal_solutions(success_, limit);
  std::vector<std::vector<std::string>> out;
  out.reserve(raw.size());
  for (const auto& path : raw) {
    std::vector<std::string> named;
    named.reserve(path.size());
    for (const auto v : path) named.push_back(names_[v]);
    out.push_back(std::move(named));
  }
  return out;
}

std::vector<ImportanceRow> Rbd::importance(double t) const {
  const std::vector<double> p = probs_at(t);
  const double r_sys = prob_vector_eval(p);
  const double unrel = 1.0 - r_sys;

  // Fussell-Vesely needs the mincut structure; reuse the failure BDD and
  // down-variable probabilities q_i = 1 - p_i.
  std::vector<double> q(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) q[i] = 1.0 - p[i];

  std::vector<ImportanceRow> rows;
  rows.reserve(names_.size());
  const auto cuts = mgr_.minimal_solutions(failure_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    ImportanceRow row;
    row.component = names_[i];
    row.birnbaum =
        mgr_.birnbaum(success_, p, static_cast<std::uint32_t>(i));
    row.criticality =
        unrel > 0.0 ? row.birnbaum * q[i] / unrel : 0.0;
    // FV_i = P(union of mincuts containing i) / P(failure), approximated by
    // the standard rare-event sum of cut products (upper bound form).
    double fv_num = 0.0;
    for (const auto& cut : cuts) {
      if (std::find(cut.begin(), cut.end(), static_cast<std::uint32_t>(i)) ==
          cut.end()) {
        continue;
      }
      double prod = 1.0;
      for (const auto v : cut) prod *= q[v];
      fv_num += prod;
    }
    row.fussell_vesely = unrel > 0.0 ? std::min(1.0, fv_num / unrel) : 0.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::size_t Rbd::bdd_node_count() const { return mgr_.node_count(success_); }

}  // namespace relkit::rbd
