// Reliability Block Diagrams (RBD).
//
// The first non-state-space model type of the tutorial. An RBD is a
// series/parallel/k-of-n composition of blocks; a leaf block references a
// named component. The same component may appear in several leaves (that is
// how non-series-parallel structures such as the bridge are expressed), and
// the BDD compilation handles such repeated events exactly.
//
// Components are independent — the tutorial's key efficiency assumption —
// and each carries one of three behaviour models:
//   * fixed probability of being up (time-independent studies),
//   * a lifetime distribution (reliability analysis, no repair),
//   * exponential failure + repair rates (availability analysis).
//
// Measures: reliability R(t), MTTF, steady-state and instantaneous
// availability, Birnbaum / criticality / Fussell-Vesely importance, minimal
// cut sets, and the BDD itself for inspection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "common/component.hpp"
#include "common/distributions.hpp"

namespace relkit::rbd {

/// Structural node of a block diagram.
class Block;
using BlockPtr = std::shared_ptr<const Block>;

class Block {
 public:
  enum class Kind { kComponent, kSeries, kParallel, kKofN };

  Kind kind() const { return kind_; }
  const std::string& component_name() const { return name_; }
  const std::vector<BlockPtr>& children() const { return children_; }
  std::uint32_t k() const { return k_; }

  /// Leaf referencing component `name`.
  static BlockPtr component(std::string name);
  /// All children must be up.
  static BlockPtr series(std::vector<BlockPtr> children);
  /// At least one child up.
  static BlockPtr parallel(std::vector<BlockPtr> children);
  /// At least k children up.
  static BlockPtr k_of_n(std::uint32_t k, std::vector<BlockPtr> children);

 private:
  Block(Kind kind, std::string name, std::vector<BlockPtr> children,
        std::uint32_t k)
      : kind_(kind), name_(std::move(name)), children_(std::move(children)),
        k_(k) {}

  Kind kind_;
  std::string name_;
  std::vector<BlockPtr> children_;
  std::uint32_t k_ = 0;
};

/// Behaviour model of one independent component (shared across the
/// combinatorial model types).
using ComponentModel = relkit::ComponentModel;

/// Importance measures of one component within a diagram (see the tutorial's
/// "which component should we improve" discussion).
struct ImportanceRow {
  std::string component;
  double birnbaum = 0.0;       ///< dR_sys / dp_i
  double criticality = 0.0;    ///< Birnbaum * (1-p_i) / (1-R_sys)
  double fussell_vesely = 0.0; ///< P(some mincut containing i fails) / P(fail)
};

/// A compiled reliability block diagram.
class Rbd {
 public:
  /// Compiles `root` over the given component behaviour models. Every
  /// component name referenced by a leaf must be present in `components`.
  Rbd(BlockPtr root, std::map<std::string, ComponentModel> components);

  /// Number of distinct components.
  std::size_t component_count() const { return names_.size(); }
  /// Component names in variable order.
  const std::vector<std::string>& component_names() const { return names_; }
  /// Component behaviour models, aligned with component_names() (used by
  /// the CLI to build a SystemSimulator for --rare-event cross-checks).
  const std::vector<ComponentModel>& component_models() const {
    return models_;
  }

  /// P(system up) with every component at its prob_up_at(t).
  double reliability(double t) const;
  /// P(system up) in the limit t -> infinity (steady-state availability when
  /// components are repairable).
  double availability() const;
  /// P(system up) under explicit per-component probabilities.
  double prob_up(const std::map<std::string, double>& prob) const;

  /// Mean time to failure: integral of reliability(t) dt. Requires every
  /// component to be kLifetime or kFixedProb (a repairable-component RBD has
  /// no finite-system-lifetime semantics without a repair model of the
  /// system itself).
  double mttf() const;

  /// Minimal cut sets: minimal sets of components whose joint failure brings
  /// the system down.
  std::vector<std::vector<std::string>> minimal_cut_sets(
      std::size_t limit = 1u << 20) const;

  /// Minimal path sets: minimal sets of components whose joint functioning
  /// keeps the system up.
  std::vector<std::vector<std::string>> minimal_path_sets(
      std::size_t limit = 1u << 20) const;

  /// Importance measures at time t (or at the steady state when t < 0).
  std::vector<ImportanceRow> importance(double t) const;

  /// Size of the success BDD in nodes.
  std::size_t bdd_node_count() const;

 private:
  std::vector<double> probs_at(double t) const;
  double prob_vector_eval(const std::vector<double>& p) const;

  mutable bdd::Manager mgr_;
  bdd::NodeRef success_ = bdd::Manager::zero();
  bdd::NodeRef failure_ = bdd::Manager::zero();  // over "down" variables
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> index_;
  std::vector<ComponentModel> models_;
};

}  // namespace relkit::rbd
