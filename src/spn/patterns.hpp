// Reusable SRN templates for the availability patterns that appear in
// every study the tutorial walks through. Each builder returns a net plus
// the place handles a caller needs to express rewards, so models compose
// the audited template instead of re-wiring arcs by hand.
#pragma once

#include <cstdint>

#include "spn/srn.hpp"

namespace relkit::spn {

/// Machine-repairman: `machines` units fail at `failure_rate` each and
/// queue for `crews` repair crews (rate `repair_rate` each).
struct MachineRepairman {
  Srn net;
  PlaceId up = 0;
  PlaceId down = 0;
  /// Steady-state P(at least k machines up).
  double availability(std::uint32_t k) const;
  /// Steady-state expected number of machines waiting or in repair.
  double expected_down() const;
};
MachineRepairman machine_repairman(std::uint32_t machines,
                                   double failure_rate, double repair_rate,
                                   std::uint32_t crews = 1);

/// Active/standby pair with imperfect failover coverage, built as an SRN:
/// covered failures switch over instantly (immediate transitions), an
/// uncovered failure leaves the service down until manual recovery.
struct FailoverPair {
  Srn net;
  PlaceId active = 0;     ///< 1 token while service is being delivered
  PlaceId standby_ok = 0; ///< 1 token while a standby is available
  PlaceId down = 0;       ///< 1 token during an uncovered outage
  PlaceId repairing = 0;  ///< failed units awaiting repair
  double availability() const;
};
FailoverPair failover_pair(double failure_rate, double repair_rate,
                           double coverage, double manual_recovery_rate);

/// Software rejuvenation net (exponential clocks): robust -> fragile aging,
/// fragile -> failed crash, scheduled rejuvenation from either live state,
/// full repair from failure. The SRN equivalent of
/// markov::software_rejuvenation, useful as a building block inside larger
/// nets.
struct RejuvenationNet {
  Srn net;
  PlaceId robust = 0;
  PlaceId fragile = 0;
  PlaceId rejuvenating = 0;
  PlaceId failed = 0;
  double availability() const;
};
RejuvenationNet rejuvenation_net(double aging_rate, double failure_rate,
                                 double repair_rate, double rejuvenation_rate,
                                 double rejuvenation_duration_rate);

}  // namespace relkit::spn
