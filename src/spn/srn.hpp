// Stochastic reward nets (SRN) — generalized stochastic Petri nets with
// guards, inhibitor arcs, marking-dependent rates, and reward functions.
//
// The tutorial's high-level front end to Markov models: dependencies such as
// shared repair facilities, imperfect coverage, and failover sequencing are
// expressed as a small net, and the tool generates the underlying CTMC by
// reachability analysis. Immediate transitions (zero delay, probabilistic
// weights, priorities) produce *vanishing* markings that are eliminated on
// the fly, so the generated chain contains only tangible markings.
//
// Rewards are functions of the marking; steady-state / transient /
// accumulated expected rewards are delegated to the markov module.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "markov/ctmc.hpp"

namespace relkit::spn {

using PlaceId = std::size_t;
using TransId = std::size_t;
/// Token counts per place, indexed by PlaceId.
using Marking = std::vector<std::uint32_t>;

/// Marking-dependent firing rate of a timed transition.
using RateFn = std::function<double(const Marking&)>;
/// Enabling guard; evaluated after arc conditions.
using GuardFn = std::function<bool(const Marking&)>;
/// Reward rate assigned to a tangible marking.
using RewardFn = std::function<double(const Marking&)>;

/// The CTMC generated from an SRN by reachability analysis.
struct GeneratedChain {
  markov::Ctmc ctmc;
  /// Tangible markings; index = CTMC state id.
  std::vector<Marking> markings;
  /// Initial distribution over tangible markings (the initial marking may
  /// be vanishing, spreading mass over several tangibles).
  std::vector<double> initial;
  /// Number of vanishing markings eliminated during generation.
  std::size_t vanishing_count = 0;
};

/// A stochastic reward net.
class Srn {
 public:
  /// Adds a place with an initial token count.
  PlaceId add_place(std::string name, std::uint32_t initial_tokens = 0);

  /// Adds a timed (exponential) transition with a constant rate.
  TransId add_timed(std::string name, double rate);
  /// Adds a timed transition with a marking-dependent rate; the function
  /// must return a rate > 0 for every marking in which the transition is
  /// enabled.
  TransId add_timed(std::string name, RateFn rate);
  /// Adds an immediate transition (fires in zero time). Among enabled
  /// immediates of the highest priority, one is chosen with probability
  /// proportional to its weight.
  TransId add_immediate(std::string name, double weight = 1.0,
                        unsigned priority = 1);

  /// Input arc: transition needs `mult` tokens in `p` and consumes them.
  void add_input_arc(TransId t, PlaceId p, std::uint32_t mult = 1);
  /// Output arc: firing deposits `mult` tokens into `p`.
  void add_output_arc(TransId t, PlaceId p, std::uint32_t mult = 1);
  /// Inhibitor arc: transition is disabled while `p` holds >= `mult` tokens.
  void add_inhibitor_arc(TransId t, PlaceId p, std::uint32_t mult = 1);
  /// Additional enabling guard.
  void set_guard(TransId t, GuardFn guard);

  std::size_t place_count() const { return places_.size(); }
  std::size_t transition_count() const { return transitions_.size(); }
  const std::string& place_name(PlaceId p) const;
  PlaceId place_index(const std::string& name) const;
  const Marking& initial_marking() const { return initial_; }

  /// True if `t` is enabled in `m` (arcs + inhibitors + guard).
  bool enabled(TransId t, const Marking& m) const;
  /// Marking after firing `t` from `m` (caller must check enabled()).
  Marking fire(TransId t, const Marking& m) const;

  /// True for timed (exponential) transitions, false for immediates.
  bool is_timed(TransId t) const;
  /// Firing rate of a timed transition in marking `m`.
  double rate_of(TransId t, const Marking& m) const;
  /// Weight / priority of an immediate transition.
  double weight_of(TransId t) const;
  unsigned priority_of(TransId t) const;
  const std::string& transition_name(TransId t) const;

  /// Generates the tangible-marking CTMC. Throws ModelError on an immediate-
  /// transition cycle (vanishing loop), on a timed transition with
  /// non-positive rate in an enabled marking, or when more than `max_states`
  /// tangible markings are reached.
  GeneratedChain generate(std::size_t max_states = 1u << 20) const;

  // ---- measures (each call generates and solves the chain) ----

  /// Steady-state expected reward rate (irreducible nets).
  double steady_state_reward(const RewardFn& reward) const;
  /// Expected instantaneous reward rate at time t.
  double transient_reward(const RewardFn& reward, double t) const;
  /// Expected reward accumulated over [0, t].
  double accumulated_reward(const RewardFn& reward, double t) const;
  /// Steady-state expected token count of a place.
  double expected_tokens(PlaceId p) const;
  /// Steady-state probability that `predicate` holds.
  double probability(const GuardFn& predicate) const;
  /// Mean time until `absorbed` first holds (the predicate must mark an
  /// absorbing set of tangible markings).
  double mean_time_to_absorption(const GuardFn& absorbed) const;

 private:
  struct Transition {
    std::string name;
    bool timed;
    RateFn rate;            // timed
    double weight = 1.0;    // immediate
    unsigned priority = 1;  // immediate
    GuardFn guard;
    std::vector<std::pair<PlaceId, std::uint32_t>> inputs;
    std::vector<std::pair<PlaceId, std::uint32_t>> outputs;
    std::vector<std::pair<PlaceId, std::uint32_t>> inhibitors;
  };

  std::vector<std::string> places_;
  std::map<std::string, PlaceId> place_index_;
  Marking initial_;
  std::vector<Transition> transitions_;
};

}  // namespace relkit::spn
