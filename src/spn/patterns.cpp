#include "spn/patterns.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace relkit::spn {

double MachineRepairman::availability(std::uint32_t k) const {
  const PlaceId place = up;
  return net.probability(
      [place, k](const Marking& m) { return m[place] >= k; });
}

double MachineRepairman::expected_down() const {
  const PlaceId place = down;
  return net.steady_state_reward(
      [place](const Marking& m) { return static_cast<double>(m[place]); });
}

MachineRepairman machine_repairman(std::uint32_t machines,
                                   double failure_rate, double repair_rate,
                                   std::uint32_t crews) {
  detail::require(machines >= 1, "machine_repairman: need machines");
  detail::require(failure_rate > 0.0 && repair_rate > 0.0,
                  "machine_repairman: rates must be > 0");
  detail::require(crews >= 1, "machine_repairman: need crews");
  MachineRepairman out;
  out.up = out.net.add_place("up", machines);
  out.down = out.net.add_place("down", 0);
  const PlaceId up = out.up;
  const PlaceId down = out.down;
  const TransId fail = out.net.add_timed(
      "fail",
      [up, failure_rate](const Marking& m) { return failure_rate * m[up]; });
  out.net.add_input_arc(fail, up);
  out.net.add_output_arc(fail, down);
  const TransId repair = out.net.add_timed(
      "repair", [down, repair_rate, crews](const Marking& m) {
        return repair_rate *
               static_cast<double>(std::min<std::uint32_t>(m[down], crews));
      });
  out.net.add_input_arc(repair, down);
  out.net.add_output_arc(repair, up);
  return out;
}

double FailoverPair::availability() const {
  const PlaceId place = active;
  return net.probability(
      [place](const Marking& m) { return m[place] >= 1; });
}

FailoverPair failover_pair(double failure_rate, double repair_rate,
                           double coverage, double manual_recovery_rate) {
  detail::require(failure_rate > 0.0 && repair_rate > 0.0 &&
                      manual_recovery_rate > 0.0,
                  "failover_pair: rates must be > 0");
  detail::require(coverage > 0.0 && coverage < 1.0,
                  "failover_pair: coverage in (0,1) (use a plain duplex for "
                  "perfect coverage)");
  FailoverPair out;
  Srn& net = out.net;
  out.active = net.add_place("active", 1);
  out.standby_ok = net.add_place("standby_ok", 1);
  const PlaceId choosing = net.add_place("choosing", 0);
  out.down = net.add_place("down", 0);
  out.repairing = net.add_place("repairing", 0);

  // Active unit fails -> coverage decision.
  const TransId fail_active = net.add_timed("fail_active", failure_rate);
  net.add_input_arc(fail_active, out.active);
  net.add_output_arc(fail_active, choosing);

  // Covered and standby available: standby becomes active instantly.
  const TransId covered = net.add_immediate("covered", coverage);
  net.add_input_arc(covered, choosing);
  net.add_input_arc(covered, out.standby_ok);
  net.add_output_arc(covered, out.active);
  net.add_output_arc(covered, out.repairing);

  // Uncovered (or no standby): service down until manual recovery.
  const TransId uncovered = net.add_immediate("uncovered", 1.0 - coverage);
  net.add_input_arc(uncovered, choosing);
  net.add_input_arc(uncovered, out.standby_ok);
  net.add_output_arc(uncovered, out.down);
  net.add_output_arc(uncovered, out.standby_ok);
  net.add_output_arc(uncovered, out.repairing);

  // Failure with no standby left: straight to down.
  const TransId no_spare = net.add_immediate("no_spare", 1.0, 2);
  net.add_input_arc(no_spare, choosing);
  net.add_inhibitor_arc(no_spare, out.standby_ok);
  net.add_output_arc(no_spare, out.down);
  net.add_output_arc(no_spare, out.repairing);

  // Manual recovery brings the survivor (if any) back as active.
  const TransId manual = net.add_timed("manual", manual_recovery_rate);
  net.add_input_arc(manual, out.down);
  net.add_input_arc(manual, out.standby_ok);
  net.add_output_arc(manual, out.active);

  // Repair restocks the standby pool. When the service is down, a repaired
  // standby still needs the manual-recovery action (rate above) to take
  // over — uncovered outages end only through `manual`.
  const TransId repair_to_standby = net.add_timed("repair", repair_rate);
  net.add_input_arc(repair_to_standby, out.repairing);
  net.add_output_arc(repair_to_standby, out.standby_ok);

  return out;
}

double RejuvenationNet::availability() const {
  const PlaceId r = robust;
  const PlaceId f = fragile;
  return net.probability(
      [r, f](const Marking& m) { return m[r] + m[f] >= 1; });
}

RejuvenationNet rejuvenation_net(double aging_rate, double failure_rate,
                                 double repair_rate, double rejuvenation_rate,
                                 double rejuvenation_duration_rate) {
  detail::require(aging_rate > 0.0 && failure_rate > 0.0 &&
                      repair_rate > 0.0 && rejuvenation_rate > 0.0 &&
                      rejuvenation_duration_rate > 0.0,
                  "rejuvenation_net: rates must be > 0");
  RejuvenationNet out;
  Srn& net = out.net;
  out.robust = net.add_place("robust", 1);
  out.fragile = net.add_place("fragile", 0);
  out.rejuvenating = net.add_place("rejuvenating", 0);
  out.failed = net.add_place("failed", 0);

  const TransId age = net.add_timed("age", aging_rate);
  net.add_input_arc(age, out.robust);
  net.add_output_arc(age, out.fragile);

  const TransId crash = net.add_timed("crash", failure_rate);
  net.add_input_arc(crash, out.fragile);
  net.add_output_arc(crash, out.failed);

  const TransId rejuv_r = net.add_timed("rejuv_robust", rejuvenation_rate);
  net.add_input_arc(rejuv_r, out.robust);
  net.add_output_arc(rejuv_r, out.rejuvenating);

  const TransId rejuv_f = net.add_timed("rejuv_fragile", rejuvenation_rate);
  net.add_input_arc(rejuv_f, out.fragile);
  net.add_output_arc(rejuv_f, out.rejuvenating);

  const TransId done = net.add_timed("rejuv_done", rejuvenation_duration_rate);
  net.add_input_arc(done, out.rejuvenating);
  net.add_output_arc(done, out.robust);

  const TransId repair = net.add_timed("repair", repair_rate);
  net.add_input_arc(repair, out.failed);
  net.add_output_arc(repair, out.robust);
  return out;
}

}  // namespace relkit::spn
