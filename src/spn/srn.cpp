#include "spn/srn.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "common/error.hpp"

namespace relkit::spn {

PlaceId Srn::add_place(std::string name, std::uint32_t initial_tokens) {
  detail::require(!name.empty(), "Srn::add_place: empty name");
  detail::require(!place_index_.count(name),
                  "Srn::add_place: duplicate place '" + name + "'");
  const PlaceId id = places_.size();
  place_index_.emplace(name, id);
  places_.push_back(std::move(name));
  initial_.push_back(initial_tokens);
  return id;
}

TransId Srn::add_timed(std::string name, double rate) {
  detail::require(rate > 0.0, "Srn::add_timed: rate must be > 0");
  return add_timed(std::move(name), [rate](const Marking&) { return rate; });
}

TransId Srn::add_timed(std::string name, RateFn rate) {
  detail::require(!name.empty(), "Srn::add_timed: empty name");
  detail::require(rate != nullptr, "Srn::add_timed: null rate function");
  Transition t;
  t.name = std::move(name);
  t.timed = true;
  t.rate = std::move(rate);
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

TransId Srn::add_immediate(std::string name, double weight,
                           unsigned priority) {
  detail::require(!name.empty(), "Srn::add_immediate: empty name");
  detail::require(weight > 0.0, "Srn::add_immediate: weight must be > 0");
  detail::require(priority >= 1, "Srn::add_immediate: priority must be >= 1");
  Transition t;
  t.name = std::move(name);
  t.timed = false;
  t.weight = weight;
  t.priority = priority;
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

void Srn::add_input_arc(TransId t, PlaceId p, std::uint32_t mult) {
  detail::require(t < transitions_.size() && p < places_.size(),
                  "Srn::add_input_arc: id out of range");
  detail::require(mult >= 1, "Srn::add_input_arc: multiplicity must be >= 1");
  transitions_[t].inputs.emplace_back(p, mult);
}

void Srn::add_output_arc(TransId t, PlaceId p, std::uint32_t mult) {
  detail::require(t < transitions_.size() && p < places_.size(),
                  "Srn::add_output_arc: id out of range");
  detail::require(mult >= 1, "Srn::add_output_arc: multiplicity must be >= 1");
  transitions_[t].outputs.emplace_back(p, mult);
}

void Srn::add_inhibitor_arc(TransId t, PlaceId p, std::uint32_t mult) {
  detail::require(t < transitions_.size() && p < places_.size(),
                  "Srn::add_inhibitor_arc: id out of range");
  detail::require(mult >= 1,
                  "Srn::add_inhibitor_arc: multiplicity must be >= 1");
  transitions_[t].inhibitors.emplace_back(p, mult);
}

void Srn::set_guard(TransId t, GuardFn guard) {
  detail::require(t < transitions_.size(), "Srn::set_guard: id out of range");
  transitions_[t].guard = std::move(guard);
}

const std::string& Srn::place_name(PlaceId p) const {
  detail::require(p < places_.size(), "Srn::place_name: out of range");
  return places_[p];
}

PlaceId Srn::place_index(const std::string& name) const {
  const auto it = place_index_.find(name);
  detail::require(it != place_index_.end(),
                  "Srn::place_index: unknown place '" + name + "'");
  return it->second;
}

bool Srn::enabled(TransId t, const Marking& m) const {
  detail::require(t < transitions_.size(), "Srn::enabled: id out of range");
  const Transition& tr = transitions_[t];
  for (const auto& [p, mult] : tr.inputs) {
    if (m[p] < mult) return false;
  }
  for (const auto& [p, mult] : tr.inhibitors) {
    if (m[p] >= mult) return false;
  }
  if (tr.guard && !tr.guard(m)) return false;
  return true;
}

bool Srn::is_timed(TransId t) const {
  detail::require(t < transitions_.size(), "Srn::is_timed: out of range");
  return transitions_[t].timed;
}

double Srn::rate_of(TransId t, const Marking& m) const {
  detail::require(t < transitions_.size(), "Srn::rate_of: out of range");
  detail::require(transitions_[t].timed, "Srn::rate_of: immediate transition");
  return transitions_[t].rate(m);
}

double Srn::weight_of(TransId t) const {
  detail::require(t < transitions_.size(), "Srn::weight_of: out of range");
  detail::require(!transitions_[t].timed, "Srn::weight_of: timed transition");
  return transitions_[t].weight;
}

unsigned Srn::priority_of(TransId t) const {
  detail::require(t < transitions_.size(), "Srn::priority_of: out of range");
  detail::require(!transitions_[t].timed,
                  "Srn::priority_of: timed transition");
  return transitions_[t].priority;
}

const std::string& Srn::transition_name(TransId t) const {
  detail::require(t < transitions_.size(),
                  "Srn::transition_name: out of range");
  return transitions_[t].name;
}

Marking Srn::fire(TransId t, const Marking& m) const {
  const Transition& tr = transitions_[t];
  Marking next = m;
  for (const auto& [p, mult] : tr.inputs) next[p] -= mult;
  for (const auto& [p, mult] : tr.outputs) next[p] += mult;
  return next;
}

namespace {

// Enabled immediate transitions of the highest priority level.
std::vector<TransId> enabled_immediates(const Srn& srn,
                                        const std::vector<bool>& timed,
                                        const std::vector<unsigned>& priority,
                                        const Marking& m) {
  std::vector<TransId> best;
  unsigned best_priority = 0;
  for (TransId t = 0; t < timed.size(); ++t) {
    if (timed[t] || !srn.enabled(t, m)) continue;
    if (priority[t] > best_priority) {
      best_priority = priority[t];
      best.clear();
    }
    if (priority[t] == best_priority) best.push_back(t);
  }
  return best;
}

}  // namespace

GeneratedChain Srn::generate(std::size_t max_states) const {
  detail::require_model(!places_.empty(), "Srn::generate: no places");
  detail::require_model(!transitions_.empty(), "Srn::generate: no transitions");

  std::vector<bool> timed(transitions_.size());
  std::vector<unsigned> priority(transitions_.size());
  std::vector<double> weight(transitions_.size());
  for (TransId t = 0; t < transitions_.size(); ++t) {
    timed[t] = transitions_[t].timed;
    priority[t] = transitions_[t].priority;
    weight[t] = transitions_[t].weight;
  }

  GeneratedChain out;
  std::map<Marking, std::size_t> tangible_index;

  // Eliminates vanishing markings: distributes `prob` mass from `m` over
  // tangible markings reachable through immediate firings only.
  // `on_path` detects immediate cycles.
  std::function<void(const Marking&, double, std::set<Marking>&,
                     std::map<Marking, double>&)>
      resolve = [&](const Marking& m, double prob, std::set<Marking>& on_path,
                    std::map<Marking, double>& tangible_mass) {
        const auto imms = enabled_immediates(*this, timed, priority, m);
        if (imms.empty()) {
          tangible_mass[m] += prob;
          return;
        }
        ++out.vanishing_count;
        detail::require_model(!on_path.count(m),
                              "Srn::generate: cycle of immediate transitions "
                              "(vanishing loop)");
        on_path.insert(m);
        double total_weight = 0.0;
        for (const TransId t : imms) total_weight += weight[t];
        for (const TransId t : imms) {
          resolve(fire(t, m), prob * weight[t] / total_weight, on_path,
                  tangible_mass);
        }
        on_path.erase(m);
      };

  auto intern = [&](const Marking& m) {
    const auto it = tangible_index.find(m);
    if (it != tangible_index.end()) return it->second;
    const std::size_t id = out.markings.size();
    detail::require_model(id < max_states,
                          "Srn::generate: more than " +
                              std::to_string(max_states) +
                              " tangible markings");
    tangible_index.emplace(m, id);
    out.markings.push_back(m);
    out.ctmc.add_state("m" + std::to_string(id));
    return id;
  };

  // Resolve the initial marking (it may be vanishing).
  {
    std::set<Marking> on_path;
    std::map<Marking, double> mass;
    resolve(initial_, 1.0, on_path, mass);
    for (const auto& [m, p] : mass) {
      const std::size_t id = intern(m);
      if (out.initial.size() <= id) out.initial.resize(id + 1, 0.0);
      out.initial[id] += p;
    }
  }

  // BFS over tangible markings.
  std::deque<std::size_t> frontier;
  for (std::size_t id = 0; id < out.markings.size(); ++id) {
    frontier.push_back(id);
  }
  while (!frontier.empty()) {
    const std::size_t id = frontier.front();
    frontier.pop_front();
    const Marking m = out.markings[id];

    for (TransId t = 0; t < transitions_.size(); ++t) {
      if (!timed[t] || !enabled(t, m)) continue;
      const double rate = transitions_[t].rate(m);
      detail::require_model(rate > 0.0,
                            "Srn::generate: transition '" +
                                transitions_[t].name +
                                "' enabled with non-positive rate");
      std::set<Marking> on_path;
      std::map<Marking, double> mass;
      resolve(fire(t, m), 1.0, on_path, mass);
      for (const auto& [next, p] : mass) {
        const bool fresh = !tangible_index.count(next);
        const std::size_t nid = intern(next);
        if (fresh) frontier.push_back(nid);
        if (nid != id) {
          out.ctmc.add_transition(id, nid, rate * p);
        }
        // Self-loop mass (nid == id) contributes nothing to the generator.
      }
    }
  }
  out.initial.resize(out.markings.size(), 0.0);
  return out;
}

double Srn::steady_state_reward(const RewardFn& reward) const {
  detail::require(reward != nullptr, "steady_state_reward: null reward");
  const GeneratedChain g = generate();
  const std::vector<double> pi = g.ctmc.steady_state();
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) acc += pi[i] * reward(g.markings[i]);
  return acc;
}

double Srn::transient_reward(const RewardFn& reward, double t) const {
  detail::require(reward != nullptr, "transient_reward: null reward");
  const GeneratedChain g = generate();
  const std::vector<double> pi = g.ctmc.transient(g.initial, t);
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) acc += pi[i] * reward(g.markings[i]);
  return acc;
}

double Srn::accumulated_reward(const RewardFn& reward, double t) const {
  detail::require(reward != nullptr, "accumulated_reward: null reward");
  const GeneratedChain g = generate();
  const std::vector<double> cum = g.ctmc.cumulative_time(g.initial, t);
  double acc = 0.0;
  for (std::size_t i = 0; i < cum.size(); ++i) {
    acc += cum[i] * reward(g.markings[i]);
  }
  return acc;
}

double Srn::expected_tokens(PlaceId p) const {
  detail::require(p < places_.size(), "expected_tokens: out of range");
  return steady_state_reward(
      [p](const Marking& m) { return static_cast<double>(m[p]); });
}

double Srn::probability(const GuardFn& predicate) const {
  detail::require(predicate != nullptr, "probability: null predicate");
  return steady_state_reward(
      [&predicate](const Marking& m) { return predicate(m) ? 1.0 : 0.0; });
}

double Srn::mean_time_to_absorption(const GuardFn& absorbed) const {
  detail::require(absorbed != nullptr, "mean_time_to_absorption: null");
  const GeneratedChain g = generate();
  // Build a copy of the chain where `absorbed` markings lose their outgoing
  // transitions.
  markov::Ctmc chain;
  for (std::size_t i = 0; i < g.markings.size(); ++i) {
    chain.add_state("m" + std::to_string(i));
  }
  const markov::Ctmc& src = g.ctmc;
  const SparseMatrix q = src.sparse_generator();
  for (std::size_t r = 0; r < g.markings.size(); ++r) {
    if (absorbed(g.markings[r])) continue;
    for (std::size_t k = q.row_begin(r); k < q.row_end(r); ++k) {
      if (q.col(k) == r) continue;
      chain.add_transition(r, q.col(k), q.value(k));
    }
  }
  // Initial mass must avoid absorbed markings.
  std::vector<double> pi0 = g.initial;
  for (std::size_t i = 0; i < pi0.size(); ++i) {
    detail::require_model(!(pi0[i] > 0.0 && absorbed(g.markings[i])),
                          "mean_time_to_absorption: initial marking already "
                          "absorbed");
  }
  return chain.absorbing_analysis(pi0).mean_time_to_absorption;
}

}  // namespace relkit::spn
