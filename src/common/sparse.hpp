// Sparse matrix support for large state-space models.
//
// State-space solvers (CTMC steady-state via SOR, transient via
// uniformization) need only row-oriented access and matrix-vector products,
// so RelKit uses a plain CSR representation assembled from triplets.
//
// The matvec products accept an optional parallel::ThreadPool and then run
// row-chunked on it. Determinism contract (docs/parallelism.md): a null
// pool (or a 1-job pool) is the verbatim historical sequential loop, and
// any worker count produces the same result because chunk boundaries
// depend only on the row count and per-chunk partials merge in chunk-index
// order.
#pragma once

#include <cstddef>
#include <vector>

namespace relkit::parallel {
class ThreadPool;
}  // namespace relkit::parallel

namespace relkit {

/// Compressed sparse row matrix of double.
///
/// Build with SparseBuilder; entries within a row are sorted by column and
/// duplicates are summed.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Row r occupies [row_begin(r), row_end(r)) in col()/value().
  std::size_t row_begin(std::size_t r) const { return row_ptr_[r]; }
  std::size_t row_end(std::size_t r) const { return row_ptr_[r + 1]; }
  std::size_t col(std::size_t k) const { return cols_idx_[k]; }
  double value(std::size_t k) const { return values_[k]; }
  double& value(std::size_t k) { return values_[k]; }

  /// y = A x  (returns y).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = x A  (row vector times matrix; the natural product for probability
  /// vectors over a generator/transition matrix).
  std::vector<double> multiply_left(const std::vector<double>& x) const;

  /// y = A x, row-chunked on `pool` (each output entry is produced by
  /// exactly one chunk, so the result is bit-identical to the sequential
  /// product for every worker count). pool == nullptr runs sequentially.
  std::vector<double> multiply(const std::vector<double>& x,
                               parallel::ThreadPool* pool) const;

  /// y = x A on `pool`: each row chunk scatters into a private partial
  /// vector and the partials are summed in chunk-index order, which
  /// reproduces the sequential accumulation order per output entry.
  /// pool == nullptr runs sequentially (the historical loop, verbatim).
  std::vector<double> multiply_left(const std::vector<double>& x,
                                    parallel::ThreadPool* pool) const;

  /// Entry (r, c), or 0 if absent (binary search within the row).
  double at(std::size_t r, std::size_t c) const;

  /// Transposed copy (CSR of A^T).
  SparseMatrix transposed() const;

  /// True when every stored value is finite (no NaN/Inf). Used by the
  /// robustness layer to reject corrupted generators before solving.
  bool all_finite() const;

  /// Largest absolute stored value (0 for an empty matrix); the natural
  /// rate scale for residual acceptance thresholds.
  double max_abs() const;

  /// Dense copy (tests / small direct solves).
  std::vector<std::vector<double>> to_dense() const;

 private:
  friend class SparseBuilder;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> cols_idx_;
  std::vector<double> values_;
};

/// Triplet assembler for SparseMatrix.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  /// Accumulates `value` at (r, c); duplicates are summed at build time.
  void add(std::size_t r, std::size_t c, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Builds the CSR matrix. Entries with |value| == 0 after summing are
  /// dropped. The builder can be reused afterwards (it is left empty).
  SparseMatrix build();

 private:
  struct Triplet {
    std::size_t r, c;
    double v;
  };
  std::size_t rows_, cols_;
  std::vector<Triplet> triplets_;
};

}  // namespace relkit
