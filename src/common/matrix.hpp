// Small dense linear algebra used by the exact (direct) solvers.
//
// RelKit's state-space solvers operate on sparse matrices (sparse.hpp); the
// dense Matrix here backs the direct methods used on small systems — LU
// factorization, matrix exponential via scaling-and-squaring (used as the
// reference oracle in tests), and phase-type arithmetic.
#pragma once

#include <cstddef>
#include <vector>

namespace relkit {

/// Dense row-major matrix of double.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0);

  /// Creates the n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product (throws InvalidArgument on shape mismatch).
  Matrix operator*(const Matrix& other) const;

  /// Matrix-vector product y = A x.
  std::vector<double> operator*(const std::vector<double>& x) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Maximum absolute entry.
  double max_abs() const;

  /// Sum of |entries| in row r (used for uniformization rate bounds).
  double row_abs_sum(std::size_t r) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by LU factorization with partial pivoting.
/// Throws NumericalError if A is (numerically) singular.
std::vector<double> lu_solve(Matrix a, std::vector<double> b);

/// Solves x^T A = b^T, i.e. A^T x = b.
std::vector<double> lu_solve_transposed(const Matrix& a,
                                        const std::vector<double>& b);

/// Matrix inverse via LU (for small matrices; phase-type moments).
Matrix inverse(const Matrix& a);

/// exp(A) by scaling and squaring with a Pade(6) approximant.
/// Reference oracle for transient CTMC tests; O(n^3 log scale).
Matrix expm(const Matrix& a);

/// Dot product with size check.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Max-norm of a vector.
double max_abs(const std::vector<double>& v);

/// Sum of elements.
double sum(const std::vector<double>& v);

}  // namespace relkit
