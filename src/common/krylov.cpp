#include "common/krylov.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/reorder.hpp"
#include "obs/hw_counters.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"

namespace relkit {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// max_i |(pi Q)_i| from the transposed generator (same helper as the SOR
/// kernel; row-chunked when a pool is given, chunk maxima fold in
/// chunk-index order so the value is jobs-independent).
double steady_residual(const SparseMatrix& qt, const std::vector<double>& diag,
                       const std::vector<double>& v,
                       parallel::ThreadPool* pool) {
  const std::size_t n = qt.rows();
  auto worst_in = [&](std::size_t begin, std::size_t end) {
    double worst = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      double acc = diag[i] * v[i];
      for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
        acc += qt.value(k) * v[qt.col(k)];
      }
      worst = std::max(worst, std::abs(acc));
    }
    return worst;
  };
  if (pool == nullptr || pool->jobs() <= 1) return worst_in(0, n);
  return parallel::reduce_chunks<double>(
      *pool, n, parallel::default_chunk(n), 0.0, worst_in,
      [](double& acc, double part) { acc = std::max(acc, part); });
}

/// ILU0 factors of a CSR matrix, stored in place on the matrix's own
/// pattern: strictly-lower entries are L (unit diagonal implied), the
/// diagonal and strictly-upper entries are U.
struct Ilu0 {
  SparseMatrix lu;
  std::vector<std::size_t> diag_idx;  ///< position of (i, i) in lu

  /// z = M^{-1} r via the two triangular solves (inherently sequential).
  void apply(const std::vector<double>& r, std::vector<double>& z) const {
    const std::size_t n = lu.rows();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = r[i];
      for (std::size_t k = lu.row_begin(i); k < diag_idx[i]; ++k) {
        acc -= lu.value(k) * z[lu.col(k)];
      }
      z[i] = acc;
    }
    for (std::size_t i = n; i-- > 0;) {
      double acc = z[i];
      for (std::size_t k = diag_idx[i] + 1; k < lu.row_end(i); ++k) {
        acc -= lu.value(k) * z[lu.col(k)];
      }
      z[i] = acc / lu.value(diag_idx[i]);
    }
  }
};

/// Incomplete LU with zero fill-in (IKJ form restricted to the pattern of
/// `a`). Near-zero pivots are nudged to a tiny value instead of failing:
/// the factor is only a preconditioner, and BiCGSTAB verifies the true
/// residual anyway.
Ilu0 ilu0_factor(const SparseMatrix& a) {
  const std::size_t n = a.rows();
  Ilu0 f;
  f.lu = a;
  f.diag_idx.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    bool found = false;
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      if (a.col(k) == i) {
        f.diag_idx[i] = k;
        found = true;
        break;
      }
    }
    detail::require(found, "ilu0_factor: structurally zero diagonal");
  }
  std::vector<std::ptrdiff_t> pos(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = f.lu.row_begin(i); k < f.lu.row_end(i); ++k) {
      pos[f.lu.col(k)] = static_cast<std::ptrdiff_t>(k);
    }
    for (std::size_t kk = f.lu.row_begin(i); kk < f.diag_idx[i]; ++kk) {
      const std::size_t kcol = f.lu.col(kk);
      double pivot = f.lu.value(f.diag_idx[kcol]);
      if (std::abs(pivot) < 1e-300) pivot = pivot < 0.0 ? -1e-300 : 1e-300;
      const double lik = f.lu.value(kk) / pivot;
      f.lu.value(kk) = lik;
      for (std::size_t jj = f.diag_idx[kcol] + 1; jj < f.lu.row_end(kcol);
           ++jj) {
        const std::ptrdiff_t p = pos[f.lu.col(jj)];
        if (p >= 0) {
          f.lu.value(static_cast<std::size_t>(p)) -= lik * f.lu.value(jj);
        }
      }
    }
    for (std::size_t k = f.lu.row_begin(i); k < f.lu.row_end(i); ++k) {
      pos[f.lu.col(k)] = -1;
    }
  }
  return f;
}

}  // namespace

const char* preconditioner_name(Preconditioner p) {
  switch (p) {
    case Preconditioner::kNone: return "none";
    case Preconditioner::kJacobi: return "jacobi";
    case Preconditioner::kIlu0: return "ilu0";
  }
  return "?";
}

BicgstabResult bicgstab_steady_state(const SparseMatrix& qt,
                                     const std::vector<double>& diag,
                                     const BicgstabOptions& opts) {
  const std::size_t n = qt.rows();
  detail::require(qt.cols() == n, "bicgstab_steady_state: Q^T must be square");
  detail::require(diag.size() == n,
                  "bicgstab_steady_state: diag size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    detail::require(diag[i] < 0.0,
                    "bicgstab_steady_state: diagonal must be negative (no "
                    "absorbing states in an irreducible chain)");
  }

  auto& injector = testing::FaultInjector::instance();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t max_iters = injector.cap(
      "bicgstab.max_iters", opts.budget.cap_iterations(opts.max_iters));

  const parallel::PoolLease lease(opts.jobs);
  obs::Span span("solver.bicgstab");
  obs::HwCounterGroup hw_counters(span);
  span.set("n", n);
  span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));
  span.set("precond", preconditioner_name(opts.precond));
  static obs::Counter& solves_counter = obs::counter("markov.bicgstab.solves");
  static obs::Counter& iters_counter =
      obs::counter("markov.bicgstab.iterations");
  solves_counter.add();

  robust::SolveReport report;
  report.note_attempt("bicgstab");

  if (n == 1) {
    report.method = "bicgstab";
    report.converged = true;
    report.note_attempt_result("bicgstab", 0, 0.0, true);
    robust::record_last_report(report);
    return {{1.0}, 0, 0.0, report};
  }

  // RCM permutation (perm[new] = old). The normalization row replaces the
  // equation of the state ordered LAST, so its dense row of ones sits at
  // the bottom of the factored pattern instead of wrecking the band.
  std::vector<std::size_t> perm;
  if (opts.use_rcm && n > 2) {
    perm = rcm_ordering(qt);
  } else {
    perm.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  }
  const std::vector<std::size_t> inv = invert_ordering(perm);

  // Bandwidth of the (permuted) generator pattern, for the span and the
  // markov.rcm.bandwidth gauge — the normalization row is excluded (it is
  // dense by construction).
  std::size_t band_before = 0;
  std::size_t band_after = 0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = qt.row_begin(r); k < qt.row_end(r); ++k) {
      const std::size_t c = qt.col(k);
      band_before = std::max(band_before, r > c ? r - c : c - r);
      const std::size_t pr = inv[r], pc = inv[c];
      band_after = std::max(band_after, pr > pc ? pr - pc : pc - pr);
    }
  }
  span.set("bandwidth_before", band_before);
  span.set("bandwidth", band_after);
  if (opts.use_rcm) {
    obs::gauge("markov.rcm.bandwidth").set(static_cast<double>(band_after));
  }

  // A x = b: rows 0..n-2 are the permuted equations (pi Q)_i = 0 (row i of
  // qt *is* equation i: A(i, j) = Q(j, i)); the last row is sum(pi) = 1.
  const std::size_t norm_row = n - 1;
  SparseBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == norm_row) continue;
    const std::size_t old = perm[i];
    double d = diag[old];
    for (std::size_t k = qt.row_begin(old); k < qt.row_end(old); ++k) {
      const std::size_t c = qt.col(k);
      if (c == old) {
        d += qt.value(k);  // fold stray diagonal entries into diag
      } else {
        builder.add(i, inv[c], qt.value(k));
      }
    }
    builder.add(i, i, d);
  }
  for (std::size_t j = 0; j < n; ++j) builder.add(norm_row, j, 1.0);
  const SparseMatrix a = builder.build();

  std::vector<double> rhs(n, 0.0);
  rhs[norm_row] = 1.0;

  // Preconditioner setup.
  Ilu0 ilu;
  std::vector<double> jacobi_diag;
  if (opts.precond == Preconditioner::kIlu0) {
    ilu = ilu0_factor(a);
  } else if (opts.precond == Preconditioner::kJacobi) {
    jacobi_diag.assign(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a.at(i, i);
      if (d != 0.0) jacobi_diag[i] = d;
    }
  }
  std::vector<double> precond_scratch(n);
  auto apply_precond = [&](const std::vector<double>& r,
                           std::vector<double>& z) {
    switch (opts.precond) {
      case Preconditioner::kIlu0:
        ilu.apply(r, z);
        break;
      case Preconditioner::kJacobi:
        for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / jacobi_diag[i];
        break;
      case Preconditioner::kNone:
        z = r;
        break;
    }
  };

  // Candidate in original state order, clamped and normalized exactly the
  // way the robust layer verifies (so an accepted kernel result is also an
  // accepted chain result).
  auto normalized_candidate = [&](const std::vector<double>& x,
                                  std::vector<double>& out) -> bool {
    out.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double v = x[inv[i]];
      if (!std::isfinite(v)) return false;
      if (v < 0.0) v = 0.0;
      out[i] = v;
      total += v;
    }
    if (!(total > 0.0)) return false;
    for (double& v : out) v /= total;
    return true;
  };

  std::vector<double> x(n, 1.0 / static_cast<double>(n));  // uniform start
  std::vector<double> r(n), candidate(n);
  {
    const std::vector<double> ax = a.multiply(x, lease.get());
    for (std::size_t i = 0; i < n; ++i) r[i] = rhs[i] - ax[i];
  }
  std::vector<double> r0 = r;
  std::vector<double> p(n, 0.0), v(n, 0.0), s(n), t(n);
  std::vector<double> phat(n), shat(n);
  double rho = 1.0, alpha = 1.0, omega = 1.0;

  std::vector<double> best;
  double best_res = std::numeric_limits<double>::infinity();
  if (normalized_candidate(x, candidate)) {
    best = candidate;
    best_res = steady_residual(qt, diag, candidate, lease.get());
  }

  auto give_up = [&](const std::string& why,
                     std::size_t it) -> robust::ConvergenceError {
    report.iterations = it;
    report.residual = best_res;
    report.wall_seconds = seconds_since(start);
    report.note_attempt_result("bicgstab", it, best_res, false);
    span.set("iterations", it);
    span.set("residual", best_res);
    span.set("converged", false);
    robust::record_last_report(report);
    std::vector<double> partial =
        best.empty() ? std::vector<double>(n, 1.0 / static_cast<double>(n))
                     : best;
    return robust::ConvergenceError(why, std::move(partial), report);
  };

  auto finish = [&](std::size_t it, double res) -> BicgstabResult {
    BicgstabResult out;
    out.pi = best;
    out.iterations = it;
    out.residual = res;
    report.method = "bicgstab";
    report.iterations = it;
    report.residual = res;
    report.converged = true;
    report.wall_seconds = seconds_since(start);
    report.note_attempt_result("bicgstab", it, res, true);
    span.set("iterations", it);
    span.set("residual", res);
    span.set("converged", true);
    out.report = report;
    robust::record_last_report(out.report);
    return out;
  };

  const double kBreakdown = 1e-300;
  double rnorm = 0.0;
  for (const double ri : r) rnorm = std::max(rnorm, std::abs(ri));

  for (std::size_t it = 1; it <= max_iters; ++it) {
    iters_counter.add();
    double rho_next = 0.0;
    for (std::size_t i = 0; i < n; ++i) rho_next += r0[i] * r[i];
    if (std::abs(rho_next) < kBreakdown) {
      // r0 became orthogonal to r: restart the recurrence from the current
      // residual (standard BiCGSTAB restart).
      r0 = r;
      rho_next = 0.0;
      for (const double ri : r) rho_next += ri * ri;
      if (rho_next < kBreakdown) {
        report.warn("residual collapsed to zero at iteration " +
                    std::to_string(it));
        break;  // exact solve of the linear system; fall to the final check
      }
      rho = alpha = omega = 1.0;
      std::fill(p.begin(), p.end(), 0.0);
      std::fill(v.begin(), v.end(), 0.0);
    }
    const double beta = (rho_next / rho) * (alpha / omega);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    apply_precond(p, phat);
    v = a.multiply(phat, lease.get());
    double r0v = 0.0;
    for (std::size_t i = 0; i < n; ++i) r0v += r0[i] * v[i];
    if (std::abs(r0v) < kBreakdown) {
      throw give_up("bicgstab_steady_state: breakdown (r0·v = 0) at "
                    "iteration " + std::to_string(it),
                    it);
    }
    alpha = rho_next / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    apply_precond(s, shat);
    t = a.multiply(shat, lease.get());
    double ts = 0.0, tt = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ts += t[i] * s[i];
      tt += t[i] * t[i];
    }
    omega = tt > kBreakdown ? ts / tt : 0.0;
    rnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
      rnorm = std::max(rnorm, std::abs(r[i]));
    }
    rho = rho_next;
    if (!std::isfinite(rnorm)) {
      report.warn("iterate became non-finite at iteration " +
                  std::to_string(it));
      throw give_up(
          "bicgstab_steady_state: iterate became non-finite at iteration " +
              std::to_string(it),
          it);
    }
    if (std::abs(omega) < kBreakdown) {
      // t -> 0 almost always means the half-step x += alpha * phat already
      // solved the system (an exact or near-exact preconditioner — ILU0 on
      // a tridiagonal chain IS the full LU). Verify the candidate before
      // declaring breakdown, or an exact solve would be thrown away.
      if (normalized_candidate(x, candidate)) {
        const double res =
            injector.tap("bicgstab.residual",
                         steady_residual(qt, diag, candidate, lease.get()));
        report.convergence.record(it, res);
        if (std::isfinite(res) && res < best_res) {
          best = candidate;
          best_res = res;
        }
        if (res < opts.tol) return finish(it, res);
      }
      report.warn("stabilizer omega collapsed at iteration " +
                  std::to_string(it));
      throw give_up("bicgstab_steady_state: omega breakdown at iteration " +
                        std::to_string(it),
                    it);
    }

    // True-residual check at the SOR cadence (every 8 iterations plus the
    // first few), and whenever the Krylov residual looks converged. The
    // residual is recorded into the trace BEFORE the deadline check so a
    // deadline abort always carries a populated ConvergenceTrace.
    if (it % 8 == 0 || it <= 4 || rnorm <= opts.tol) {
      if (normalized_candidate(x, candidate)) {
        const double res =
            injector.tap("bicgstab.residual",
                         steady_residual(qt, diag, candidate, lease.get()));
        report.convergence.record(it, res);
        if (std::isfinite(res) && res < best_res) {
          best = candidate;
          best_res = res;
        }
        if (res < opts.tol) return finish(it, res);
      }
      if (opts.budget.deadline.expired()) {
        report.warn("deadline expired after " + std::to_string(it) +
                    " iterations");
        throw give_up("bicgstab_steady_state: deadline expired after " +
                          std::to_string(it) + " iterations (best residual " +
                          std::to_string(best_res) + ")",
                      it);
      }
    }
    if (rnorm < kBreakdown) break;  // linear system solved exactly
  }

  // Loop ended without meeting tol: one final verified check (the exact-
  // solve break lands here), then give up with the best iterate.
  if (normalized_candidate(x, candidate)) {
    const double res = steady_residual(qt, diag, candidate, lease.get());
    report.convergence.record(report.iterations + 1, res);
    if (std::isfinite(res) && res < best_res) {
      best = candidate;
      best_res = res;
    }
    if (res < opts.tol) return finish(max_iters, res);
  }
  report.warn("iteration budget exhausted");
  throw give_up("bicgstab_steady_state: no convergence after " +
                    std::to_string(max_iters) + " iterations (best residual " +
                    std::to_string(best_res) + ")",
                max_iters);
}

}  // namespace relkit
