#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/special.hpp"

namespace relkit {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::std_error() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::ci_halfwidth(double confidence) const {
  detail::require(confidence > 0.0 && confidence < 1.0,
                  "ci_halfwidth: confidence in (0,1)");
  detail::require(n_ >= 2, "ci_halfwidth: need at least 2 observations");
  const double z = normal_quantile(0.5 + 0.5 * confidence);
  return z * std_error();
}

double percentile(std::vector<double> samples, double p) {
  detail::require(!samples.empty(), "percentile: empty sample set");
  detail::require(p >= 0.0 && p <= 1.0, "percentile: p in [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double idx = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace relkit
