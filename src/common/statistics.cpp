#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/special.hpp"

namespace relkit {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::std_error() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::ci_halfwidth(double confidence) const {
  detail::require(confidence > 0.0 && confidence < 1.0,
                  "ci_halfwidth: confidence in (0,1)");
  detail::require(n_ >= 2, "ci_halfwidth: need at least 2 observations");
  const double z = normal_quantile(0.5 + 0.5 * confidence);
  return z * std_error();
}

void BivariateStats::add(double x, double y) {
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx * inv_n;
  mean_y_ += dy * inv_n;
  m2x_ += dx * (x - mean_x_);
  m2y_ += dy * (y - mean_y_);
  mxy_ += dx * (y - mean_y_);
}

void BivariateStats::merge(const BivariateStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double w = na * nb / (na + nb);
  const double dx = other.mean_x_ - mean_x_;
  const double dy = other.mean_y_ - mean_y_;
  mean_x_ += dx * nb / (na + nb);
  mean_y_ += dy * nb / (na + nb);
  m2x_ += other.m2x_ + dx * dx * w;
  m2y_ += other.m2y_ + dy * dy * w;
  mxy_ += other.mxy_ + dx * dy * w;
  n_ += other.n_;
}

double BivariateStats::variance_x() const {
  if (n_ < 2) return 0.0;
  return m2x_ / static_cast<double>(n_ - 1);
}

double BivariateStats::variance_y() const {
  if (n_ < 2) return 0.0;
  return m2y_ / static_cast<double>(n_ - 1);
}

double BivariateStats::covariance() const {
  if (n_ < 2) return 0.0;
  return mxy_ / static_cast<double>(n_ - 1);
}

double BivariateStats::ratio() const {
  detail::require(n_ >= 1 && mean_y_ != 0.0,
                  "BivariateStats::ratio: mean_y must be nonzero");
  return mean_x_ / mean_y_;
}

double BivariateStats::ratio_std_error() const {
  if (n_ < 2) return 0.0;
  const double r = ratio();
  const double s2 =
      variance_x() - 2.0 * r * covariance() + r * r * variance_y();
  // Rounding can push the quadratic form a hair negative; clamp.
  const double var = std::max(s2, 0.0) / static_cast<double>(n_);
  return std::sqrt(var) / std::abs(mean_y_);
}

double BivariateStats::ratio_ci_halfwidth(double confidence) const {
  detail::require(confidence > 0.0 && confidence < 1.0,
                  "ratio_ci_halfwidth: confidence in (0,1)");
  detail::require(n_ >= 2, "ratio_ci_halfwidth: need at least 2 pairs");
  const double z = normal_quantile(0.5 + 0.5 * confidence);
  return z * ratio_std_error();
}

double percentile(std::vector<double> samples, double p) {
  detail::require(!samples.empty(), "percentile: empty sample set");
  detail::require(p >= 0.0 && p <= 1.0, "percentile: p in [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double idx = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace relkit
