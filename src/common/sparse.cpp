#include "common/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/hw_counters.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"

namespace relkit {

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  detail::require(x.size() == cols_, "SparseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[cols_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> SparseMatrix::multiply_left(
    const std::vector<double>& x) const {
  detail::require(x.size() == rows_,
                  "SparseMatrix::multiply_left: size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[cols_idx_[k]] += xr * values_[k];
    }
  }
  return y;
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x,
                                           parallel::ThreadPool* pool) const {
  if (pool == nullptr || pool->jobs() <= 1) return multiply(x);
  detail::require(x.size() == cols_, "SparseMatrix::multiply: size mismatch");

  obs::Span span("markov.matvec");
  obs::HwCounterGroup hw_counters(span);
  span.set("rows", rows_);
  span.set("nnz", nnz());
  span.set("jobs", static_cast<std::uint64_t>(pool->jobs()));
  span.set("kind", "right");

  // Row-parallel: y[r] is written by exactly one chunk and every in-row
  // accumulation keeps the sequential order, so the product is bit-identical
  // to the pool-free path for any worker count.
  std::vector<double> y(rows_, 0.0);
  pool->for_chunks(rows_, parallel::default_chunk(rows_),
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t r = begin; r < end; ++r) {
                       double acc = 0.0;
                       for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1];
                            ++k) {
                         acc += values_[k] * x[cols_idx_[k]];
                       }
                       y[r] = acc;
                     }
                   });
  return y;
}

std::vector<double> SparseMatrix::multiply_left(
    const std::vector<double>& x, parallel::ThreadPool* pool) const {
  if (pool == nullptr || pool->jobs() <= 1) return multiply_left(x);
  detail::require(x.size() == rows_,
                  "SparseMatrix::multiply_left: size mismatch");

  obs::Span span("markov.matvec");
  obs::HwCounterGroup hw_counters(span);
  span.set("rows", rows_);
  span.set("nnz", nnz());
  span.set("jobs", static_cast<std::uint64_t>(pool->jobs()));
  span.set("kind", "left");

  // Scatter product: each chunk accumulates into a private vector; partials
  // merge in chunk-index order, which replays the sequential per-entry
  // accumulation order (rows ascend within a chunk and across chunks).
  return parallel::reduce_chunks<std::vector<double>>(
      *pool, rows_, parallel::default_chunk(rows_),
      std::vector<double>(cols_, 0.0),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> part(cols_, 0.0);
        for (std::size_t r = begin; r < end; ++r) {
          const double xr = x[r];
          if (xr == 0.0) continue;
          for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            part[cols_idx_[k]] += xr * values_[k];
          }
        }
        return part;
      },
      [](std::vector<double>& acc, const std::vector<double>& part) {
        for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += part[c];
      });
}

bool SparseMatrix::all_finite() const {
  for (const double v : values_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double SparseMatrix::max_abs() const {
  double worst = 0.0;
  for (const double v : values_) worst = std::max(worst, std::abs(v));
  return worst;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  detail::require(r < rows_ && c < cols_, "SparseMatrix::at: out of range");
  const auto first = cols_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = cols_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - cols_idx_.begin())];
}

SparseMatrix SparseMatrix::transposed() const {
  SparseBuilder b(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      b.add(cols_idx_[k], r, values_[k]);
    }
  }
  return b.build();
}

std::vector<std::vector<double>> SparseMatrix::to_dense() const {
  std::vector<std::vector<double>> d(rows_, std::vector<double>(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d[r][cols_idx_[k]] += values_[k];
    }
  }
  return d;
}

void SparseBuilder::add(std::size_t r, std::size_t c, double value) {
  detail::require(r < rows_ && c < cols_, "SparseBuilder::add: out of range");
  if (value == 0.0) return;
  triplets_.push_back({r, c, value});
}

SparseMatrix SparseBuilder::build() {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.r != b.r ? a.r < b.r : a.c < b.c;
            });
  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  std::size_t i = 0;
  while (i < triplets_.size()) {
    const std::size_t r = triplets_[i].r;
    const std::size_t c = triplets_[i].c;
    double v = 0.0;
    while (i < triplets_.size() && triplets_[i].r == r && triplets_[i].c == c) {
      v += triplets_[i].v;
      ++i;
    }
    if (v != 0.0) {
      m.cols_idx_.push_back(c);
      m.values_.push_back(v);
      ++m.row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  triplets_.clear();
  return m;
}

}  // namespace relkit
