// Special functions needed by the distribution and uncertainty modules:
// regularized incomplete gamma, regularized incomplete beta, and the
// standard-normal cdf/quantile. Implementations follow the classic
// series/continued-fraction evaluations (Abramowitz & Stegun; Lentz's
// algorithm) with double-precision stopping criteria.
#pragma once

namespace relkit {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// for a > 0, x >= 0. P is the cdf of a Gamma(shape=a, rate=1) variate.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1];
/// the cdf of a Beta(a, b) variate.
double beta_inc(double a, double b, double x);

/// Standard normal cdf Phi(x).
double normal_cdf(double x);

/// Standard normal quantile Phi^{-1}(p) for p in (0, 1)
/// (Acklam's rational approximation refined with one Halley step).
double normal_quantile(double p);

}  // namespace relkit
