#include "common/reorder.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace relkit {

namespace {

/// Symmetrized adjacency (structure of A + A^T, diagonal dropped) as
/// flat CSR-style neighbor lists.
struct Adjacency {
  std::vector<std::size_t> offsets;  // n + 1
  std::vector<std::size_t> neighbors;
};

Adjacency symmetrized_adjacency(const SparseMatrix& a) {
  const std::size_t n = a.rows();
  std::vector<std::size_t> degree(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const std::size_t c = a.col(k);
      if (c == r) continue;
      ++degree[r];
      ++degree[c];
    }
  }
  Adjacency adj;
  adj.offsets.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) adj.offsets[r + 1] = adj.offsets[r] + degree[r];
  adj.neighbors.resize(adj.offsets[n]);
  std::vector<std::size_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const std::size_t c = a.col(k);
      if (c == r) continue;
      adj.neighbors[cursor[r]++] = c;
      adj.neighbors[cursor[c]++] = r;
    }
  }
  // Duplicate edges (an entry present in both A and A^T) are harmless for
  // BFS but inflate degrees uniformly; RCM only compares degrees, so no
  // dedup pass is needed.
  return adj;
}

}  // namespace

std::vector<std::size_t> rcm_ordering(const SparseMatrix& a) {
  const std::size_t n = a.rows();
  detail::require(a.cols() == n, "rcm_ordering: matrix must be square");
  const Adjacency adj = symmetrized_adjacency(a);
  auto degree_of = [&](std::size_t v) {
    return adj.offsets[v + 1] - adj.offsets[v];
  };

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<std::size_t> scratch;

  for (std::size_t seed_scan = 0; seed_scan < n; ++seed_scan) {
    if (visited[seed_scan]) continue;
    // Seed: the lowest-degree unvisited vertex of this component, found by
    // a BFS from the first unvisited vertex (cheap pseudo-peripheral pick:
    // the last level of that BFS tends to contain peripheral vertices).
    std::size_t seed = seed_scan;
    {
      std::deque<std::size_t> bfs{seed_scan};
      std::vector<std::size_t> component;
      std::vector<char> seen(n, 0);
      seen[seed_scan] = 1;
      std::size_t last = seed_scan;
      while (!bfs.empty()) {
        const std::size_t v = bfs.front();
        bfs.pop_front();
        last = v;
        for (std::size_t k = adj.offsets[v]; k < adj.offsets[v + 1]; ++k) {
          const std::size_t w = adj.neighbors[k];
          if (!seen[w] && !visited[w]) {
            seen[w] = 1;
            bfs.push_back(w);
          }
        }
      }
      // Re-seed from a vertex in the farthest BFS level with minimal degree
      // among the seen set's last vertex and the scan vertex.
      seed = degree_of(last) <= degree_of(seed_scan) ? last : seed_scan;
    }

    // Cuthill-McKee BFS from the seed, neighbors in increasing-degree order.
    std::deque<std::size_t> queue{seed};
    visited[seed] = 1;
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      scratch.clear();
      for (std::size_t k = adj.offsets[v]; k < adj.offsets[v + 1]; ++k) {
        const std::size_t w = adj.neighbors[k];
        if (!visited[w]) {
          visited[w] = 1;
          scratch.push_back(w);
        }
      }
      std::sort(scratch.begin(), scratch.end(),
                [&](std::size_t x, std::size_t y) {
                  const std::size_t dx = degree_of(x), dy = degree_of(y);
                  return dx != dy ? dx < dy : x < y;
                });
      for (const std::size_t w : scratch) queue.push_back(w);
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> invert_ordering(
    const std::vector<std::size_t>& perm) {
  std::vector<std::size_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) inv[perm[i]] = i;
  return inv;
}

SparseMatrix permute_symmetric(const SparseMatrix& a,
                               const std::vector<std::size_t>& perm) {
  const std::size_t n = a.rows();
  detail::require(a.cols() == n && perm.size() == n,
                  "permute_symmetric: size mismatch");
  const std::vector<std::size_t> inv = invert_ordering(perm);
  SparseBuilder b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      b.add(inv[r], inv[a.col(k)], a.value(k));
    }
  }
  return b.build();
}

std::vector<double> permute_vector(const std::vector<double>& x,
                                   const std::vector<std::size_t>& perm) {
  detail::require(x.size() == perm.size(), "permute_vector: size mismatch");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[i] = x[perm[i]];
  return out;
}

std::size_t bandwidth(const SparseMatrix& a) {
  std::size_t band = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const std::size_t c = a.col(k);
      band = std::max(band, r > c ? r - c : c - r);
    }
  }
  return band;
}

}  // namespace relkit
