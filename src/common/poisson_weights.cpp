#include "common/poisson_weights.hpp"

#include <cmath>
#include <deque>

#include "common/error.hpp"

namespace relkit {

PoissonWeights poisson_weights(double lambda, double eps) {
  detail::require(lambda >= 0.0, "poisson_weights: lambda must be >= 0");
  detail::require(eps > 0.0 && eps < 1.0, "poisson_weights: eps in (0,1)");

  PoissonWeights out;
  if (lambda == 0.0) {
    out.left = 0;
    out.weights = {1.0};
    return out;
  }

  const std::size_t mode = static_cast<std::size_t>(std::floor(lambda));

  // Unnormalized weights relative to the mode (w_mode = 1). Extend down and
  // up until the running term is negligible relative to the accumulated sum.
  std::deque<double> w{1.0};
  std::size_t left = mode;
  double total = 1.0;

  // Downward: w_{n-1} = w_n * n / lambda.
  {
    double term = 1.0;
    std::size_t n = mode;
    while (n > 0) {
      term *= static_cast<double>(n) / lambda;
      if (term < eps * total && n < mode) break;
      w.push_front(term);
      total += term;
      --n;
      left = n;
    }
  }
  // Upward: w_{n+1} = w_n * lambda / (n+1).
  {
    double term = 1.0;
    std::size_t n = mode;
    // Hard cap well beyond mode + 10 sqrt(lambda) as a safety net.
    const std::size_t cap =
        mode + 20 + static_cast<std::size_t>(12.0 * std::sqrt(lambda));
    while (n < cap) {
      term *= lambda / static_cast<double>(n + 1);
      if (term < eps * total) break;
      w.push_back(term);
      total += term;
      ++n;
    }
  }

  out.left = left;
  out.weights.assign(w.begin(), w.end());
  const double inv = 1.0 / total;
  for (double& x : out.weights) x *= inv;
  return out;
}

}  // namespace relkit
