#include "common/linsolve.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"

namespace relkit {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// max_i |(pi Q)_i| from the transposed generator, row-chunked when a pool
/// is given. Each row's accumulation stays in sequential order and the
/// chunk maxima fold in chunk-index order, so the value is independent of
/// the worker count.
double steady_residual(const SparseMatrix& qt, const std::vector<double>& diag,
                       const std::vector<double>& v,
                       parallel::ThreadPool* pool) {
  const std::size_t n = qt.rows();
  auto worst_in = [&](std::size_t begin, std::size_t end) {
    double worst = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      double acc = diag[i] * v[i];
      for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
        acc += qt.value(k) * v[qt.col(k)];
      }
      worst = std::max(worst, std::abs(acc));
    }
    return worst;
  };
  if (pool == nullptr || pool->jobs() <= 1) return worst_in(0, n);
  return parallel::reduce_chunks<double>(
      *pool, n, parallel::default_chunk(n), 0.0, worst_in,
      [](double& acc, double part) { acc = std::max(acc, part); });
}

}  // namespace

std::vector<double> gth_steady_state(Matrix q) {
  const std::size_t n = q.rows();
  detail::require(n == q.cols(), "gth_steady_state: Q must be square");
  detail::require(n >= 1, "gth_steady_state: empty generator");
  obs::Span span("solver.gth");
  span.set("n", n);
  static obs::Counter& solves = obs::counter("markov.gth_solves");
  solves.add();

  // Forward elimination: fold state k into states 0..k-1. GTH uses the row
  // sum of remaining off-diagonals as the pivot (never the possibly
  // cancellation-damaged diagonal) and performs no subtractions.
  for (std::size_t k = n; k-- > 1;) {
    double s = 0.0;
    for (std::size_t j = 0; j < k; ++j) s += q(k, j);
    if (s <= 0.0) {
      throw NumericalError(
          "gth_steady_state: chain is reducible (state " + std::to_string(k) +
          " cannot reach lower-numbered states)");
    }
    for (std::size_t i = 0; i < k; ++i) q(i, k) /= s;
    for (std::size_t i = 0; i < k; ++i) {
      const double qik = q(i, k);
      if (qik == 0.0) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (i == j) continue;
        q(i, j) += qik * q(k, j);
      }
    }
  }

  // Back substitution: pi_k = sum_{i<k} pi_i q(i,k) on the folded matrix.
  std::vector<double> pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += pi[i] * q(i, k);
    pi[k] = acc;
  }

  double total = 0.0;
  for (double x : pi) total += x;
  for (double& x : pi) x /= total;
  return pi;
}

std::vector<double> gth_steady_state_dtmc(const Matrix& p) {
  const std::size_t n = p.rows();
  detail::require(n == p.cols(), "gth_steady_state_dtmc: P must be square");
  Matrix q = p;
  for (std::size_t i = 0; i < n; ++i) q(i, i) -= 1.0;
  return gth_steady_state(std::move(q));
}

SorResult sor_steady_state(const SparseMatrix& qt,
                           const std::vector<double>& diag,
                           const SorOptions& opts) {
  const std::size_t n = qt.rows();
  detail::require(qt.cols() == n, "sor_steady_state: Q^T must be square");
  detail::require(diag.size() == n, "sor_steady_state: diag size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    detail::require(diag[i] < 0.0,
                    "sor_steady_state: diagonal must be negative (no "
                    "absorbing states in an irreducible chain)");
  }

  auto& injector = testing::FaultInjector::instance();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t max_iters =
      injector.cap("sor.max_iters", opts.budget.cap_iterations(opts.max_iters));

  const parallel::PoolLease lease(opts.jobs);
  obs::Span span("solver.sor");
  span.set("n", n);
  span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));
  static obs::Counter& sweeps_counter = obs::counter("markov.sor_sweeps");
  static obs::Histogram& residual_hist =
      obs::histogram("markov.sor_residual");

  robust::SolveReport report;
  report.note_attempt("sor");

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  double omega = opts.omega;
  double omega_cap = 1.6;  // halves toward 1.0 whenever SOR diverges

  // r_i = sum_j v_j Q_ji = (Q^T v)_i ; includes the diagonal term. The
  // sweep mutates pi in place (Gauss-Seidel), but the residual reads a
  // fixed vector — a Jacobi-style pass — so it chunks across the pool.
  auto residual_of = [&](const std::vector<double>& v) {
    return steady_residual(qt, diag, v, lease.get());
  };

  // Best (lowest-residual) iterate so far, so non-convergence can still hand
  // back the most trustworthy partial result.
  std::vector<double> best = pi;
  double best_res = residual_of(pi);
  double prev_res = best_res;

  auto give_up = [&](const std::string& why) -> robust::ConvergenceError {
    report.residual = best_res;
    report.wall_seconds = seconds_since(start);
    report.note_attempt_result("sor", report.iterations, best_res, false);
    span.set("iterations", report.iterations);
    span.set("residual", best_res);
    span.set("converged", false);
    robust::record_last_report(report);
    return robust::ConvergenceError(why, best, report);
  };

  SorResult out;
  for (std::size_t it = 1; it <= max_iters; ++it) {
    sweeps_counter.add();
    // One SOR sweep: pi_i <- (1-w) pi_i + w * (sum_{j != i} pi_j Q_ji)/(-Q_ii).
    // Alternate sweep direction so information propagates both ways along
    // chain-structured models (symmetric Gauss-Seidel), which otherwise
    // need O(n) sweeps on birth-death chains.
    const bool forward = (it % 2) == 1;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = forward ? step : n - 1 - step;
      double acc = 0.0;
      for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
        const std::size_t j = qt.col(k);
        if (j == i) continue;  // diagonal handled via diag[]
        acc += qt.value(k) * pi[j];
      }
      const double gs = acc / (-diag[i]);
      pi[i] = (1.0 - omega) * pi[i] + omega * gs;
      if (pi[i] < 0.0) pi[i] = 0.0;
    }
    // Normalize every sweep; the homogeneous system is defined up to scale.
    double total = 0.0;
    for (double x : pi) total += x;
    total = injector.tap("sor.sweep-total", total);
    if (!std::isfinite(total) || total <= 0.0) {
      report.iterations = it;
      report.warn("sweep " + std::to_string(it) +
                  " produced a non-finite or collapsed iterate");
      throw give_up("sor_steady_state: iterate became non-finite or "
                    "collapsed at sweep " +
                    std::to_string(it));
    }
    for (double& x : pi) x /= total;

    if (it % 8 == 0 || it <= 4) {
      if (opts.budget.deadline.expired()) {
        report.iterations = it;
        report.warn("deadline expired after " + std::to_string(it) +
                    " sweeps");
        throw give_up("sor_steady_state: deadline expired after " +
                      std::to_string(it) + " sweeps (best residual " +
                      std::to_string(best_res) + ")");
      }
      const double res = residual_of(pi);
      residual_hist.observe(res);
      report.convergence.record(it, res);
      if (std::isfinite(res) && res < best_res) {
        best = pi;
        best_res = res;
      }
      if (res < opts.tol) {
        out.pi = std::move(pi);
        out.iterations = it;
        out.residual = res;
        report.method = "sor";
        report.iterations = it;
        report.residual = res;
        report.converged = true;
        report.wall_seconds = seconds_since(start);
        report.note_attempt_result("sor", it, res, true);
        span.set("iterations", it);
        span.set("residual", res);
        span.set("omega", omega);
        span.set("converged", true);
        out.report = report;
        robust::record_last_report(out.report);
        return out;
      }
      // Crude adaptive relaxation: push omega up while the residual keeps
      // shrinking (over-relaxation usually pays on availability chains).
      // Divergence resets to plain Gauss-Seidel AND lowers the ceiling, so
      // chains that tolerate no over-relaxation settle at omega = 1.
      if (opts.adaptive_omega) {
        if (res <= prev_res) {
          omega = std::min(omega_cap, omega + 0.1);
        } else if (res > 3.0 * prev_res) {
          // Violent divergence: halve the over-relaxation headroom
          // permanently and restart from plain Gauss-Seidel. Chains that
          // tolerate no over-relaxation settle at omega = 1; tolerant
          // chains never get here and climb to the cap.
          omega_cap = 1.0 + 0.5 * (std::min(omega, omega_cap) - 1.0);
          omega = 1.0;
        } else {
          // Mild wobble: ease off without burning the ceiling.
          omega = std::max(1.0, omega - 0.1);
        }
      }
      prev_res = res;
    }
  }
  report.iterations = max_iters;
  report.warn("sweep budget exhausted");
  throw give_up("sor_steady_state: no convergence after " +
                std::to_string(max_iters) + " sweeps (best residual " +
                std::to_string(best_res) + ")");
}

PowerResult power_steady_state(const SparseMatrix& p,
                               const PowerOptions& opts) {
  const std::size_t n = p.rows();
  detail::require(p.cols() == n, "power_steady_state: P must be square");
  detail::require(opts.theta > 0.0 && opts.theta <= 1.0,
                  "power_steady_state: theta in (0,1]");

  auto& injector = testing::FaultInjector::instance();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t max_iters = injector.cap(
      "power.max_iters", opts.budget.cap_iterations(opts.max_iters));

  const parallel::PoolLease lease(opts.jobs);
  obs::Span span("solver.power");
  span.set("n", n);
  span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));
  static obs::Counter& steps_counter = obs::counter("markov.power_steps");

  robust::SolveReport report;
  report.note_attempt("power");

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> best = pi;
  double best_delta = std::numeric_limits<double>::infinity();

  auto give_up = [&](const std::string& why,
                     std::size_t it) -> robust::ConvergenceError {
    report.iterations = it;
    report.residual = best_delta;
    report.wall_seconds = seconds_since(start);
    report.note_attempt_result("power", it, best_delta, false);
    span.set("iterations", it);
    span.set("delta", best_delta);
    span.set("converged", false);
    robust::record_last_report(report);
    return robust::ConvergenceError(why, best, report);
  };

  for (std::size_t it = 0; it < max_iters; ++it) {
    steps_counter.add();
    std::vector<double> next = p.multiply_left(pi, lease.get());
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = (1.0 - opts.theta) * pi[i] + opts.theta * next[i];
      delta = std::max(delta, std::abs(next[i] - pi[i]));
    }
    delta = injector.tap("power.delta", delta);
    report.convergence.record(it + 1, delta);
    double total = 0.0;
    for (double x : next) total += x;
    if (!std::isfinite(total) || total <= 0.0 || !std::isfinite(delta)) {
      report.warn("iterate became non-finite at step " + std::to_string(it));
      throw give_up("power_steady_state: iterate became non-finite at step " +
                        std::to_string(it),
                    it);
    }
    for (double& x : next) x /= total;
    pi.swap(next);
    if (delta < best_delta) {
      best = pi;
      best_delta = delta;
    }
    if (delta < opts.tol) {
      PowerResult out;
      out.pi = std::move(pi);
      out.iterations = it + 1;
      out.delta = delta;
      report.method = "power";
      report.iterations = it + 1;
      report.residual = delta;
      report.converged = true;
      report.wall_seconds = seconds_since(start);
      report.note_attempt_result("power", it + 1, delta, true);
      span.set("iterations", it + 1);
      span.set("delta", delta);
      span.set("converged", true);
      out.report = report;
      robust::record_last_report(out.report);
      return out;
    }
    if ((it & 63u) == 0 && opts.budget.deadline.expired()) {
      report.warn("deadline expired after " + std::to_string(it) + " steps");
      throw give_up("power_steady_state: deadline expired after " +
                        std::to_string(it) + " steps",
                    it);
    }
  }
  report.warn("iteration budget exhausted");
  throw give_up("power_steady_state: no convergence after " +
                    std::to_string(max_iters) + " steps (best delta " +
                    std::to_string(best_delta) + ")",
                max_iters);
}

std::vector<double> power_steady_state(const SparseMatrix& p, double tol,
                                       std::size_t max_iters, double theta) {
  PowerOptions opts;
  opts.tol = tol;
  opts.max_iters = max_iters;
  opts.theta = theta;
  return power_steady_state(p, opts).pi;
}

}  // namespace relkit
