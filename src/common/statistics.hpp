// Streaming statistics and confidence intervals for the simulator and the
// uncertainty-propagation module.
#pragma once

#include <cstddef>
#include <vector>

namespace relkit {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Folds another accumulator in (Chan et al. parallel combine). Used by
  /// the parallel simulator / uncertainty paths to merge per-chunk
  /// accumulators; merging in a fixed chunk order keeps the result
  /// deterministic for any worker count.
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than 2 observations).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Two-sided normal-approximation CI half-width at the given confidence
  /// level (e.g. 0.95). Requires count() >= 2.
  double ci_halfwidth(double confidence = 0.95) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Paired Welford accumulator for ratio estimators E[X]/E[Y] (regenerative
/// simulation: X = per-cycle reward, Y = per-cycle length). Tracks means,
/// second moments and the cross moment so the delta-method variance of the
/// ratio is available online; merge() combines per-chunk accumulators
/// deterministically (Chan et al.), mirroring OnlineStats.
class BivariateStats {
 public:
  /// Adds one (x, y) pair.
  void add(double x, double y);

  /// Folds another accumulator in; merging in a fixed chunk order keeps the
  /// result independent of the worker count.
  void merge(const BivariateStats& other);

  std::size_t count() const { return n_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }
  /// Unbiased sample variances / covariance (0 if fewer than 2 pairs).
  double variance_x() const;
  double variance_y() const;
  double covariance() const;

  /// The ratio estimate mean_x / mean_y. Requires mean_y != 0.
  double ratio() const;
  /// Delta-method standard error of ratio():
  ///   sqrt((Sxx - 2 r Sxy + r^2 Syy) / n) / |mean_y|.
  double ratio_std_error() const;
  /// Two-sided normal-approximation CI half-width of the ratio at the given
  /// confidence level. Requires count() >= 2.
  double ratio_ci_halfwidth(double confidence = 0.95) const;

 private:
  std::size_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2x_ = 0.0;
  double m2y_ = 0.0;
  double mxy_ = 0.0;  ///< co-moment sum((x - mean_x)(y - mean_y))
};

/// p-th percentile (p in [0,1]) by linear interpolation; sorts a copy.
double percentile(std::vector<double> samples, double p);

}  // namespace relkit
