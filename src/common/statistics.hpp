// Streaming statistics and confidence intervals for the simulator and the
// uncertainty-propagation module.
#pragma once

#include <cstddef>
#include <vector>

namespace relkit {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Folds another accumulator in (Chan et al. parallel combine). Used by
  /// the parallel simulator / uncertainty paths to merge per-chunk
  /// accumulators; merging in a fixed chunk order keeps the result
  /// deterministic for any worker count.
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than 2 observations).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Two-sided normal-approximation CI half-width at the given confidence
  /// level (e.g. 0.95). Requires count() >= 2.
  double ci_halfwidth(double confidence = 0.95) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (p in [0,1]) by linear interpolation; sorts a copy.
double percentile(std::vector<double> samples, double p);

}  // namespace relkit
