// Closed-interval arithmetic for bounding algorithms.
//
// The tutorial's Boeing 787 story: when a combinatorial model is too large
// to solve exactly, compute certified lower/upper bounds instead. Bound
// computations in src/ftree return Interval values; the helpers here keep
// the invariant lo <= hi and clamp probabilities to [0, 1].
#pragma once

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace relkit {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lower, double upper) : lo(lower), hi(upper) {
    detail::require(lower <= upper, "Interval: lower > upper");
  }
  /// Degenerate interval [x, x].
  static Interval point(double x) { return Interval(x, x); }

  double width() const { return hi - lo; }
  double midpoint() const { return 0.5 * (lo + hi); }
  bool contains(double x) const { return lo <= x && x <= hi; }

  Interval operator+(const Interval& o) const {
    return Interval(lo + o.lo, hi + o.hi);
  }
  Interval operator-(const Interval& o) const {
    return Interval(lo - o.hi, hi - o.lo);
  }
  /// Product for nonnegative intervals (probabilities); asserts lo >= 0.
  Interval operator*(const Interval& o) const {
    detail::require(lo >= 0.0 && o.lo >= 0.0,
                    "Interval::operator*: requires nonnegative intervals");
    return Interval(lo * o.lo, hi * o.hi);
  }
  /// Complement 1 - I, for probabilities.
  Interval complement() const { return Interval(1.0 - hi, 1.0 - lo); }
  /// Clamp to [0, 1].
  Interval clamp01() const {
    return Interval(std::clamp(lo, 0.0, 1.0), std::clamp(hi, 0.0, 1.0));
  }
  /// Intersection (tightest combination of two valid bounds).
  Interval intersect(const Interval& o) const {
    const double l = std::max(lo, o.lo);
    const double h = std::min(hi, o.hi);
    detail::require(l <= h + 1e-12, "Interval::intersect: disjoint bounds");
    return Interval(l, std::max(l, h));
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& i) {
  return os << "[" << i.lo << ", " << i.hi << "]";
}

}  // namespace relkit
