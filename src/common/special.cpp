#include "common/special.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace relkit {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 3.0e-15;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

// Series representation of P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEps) {
      return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
    }
  }
  throw NumericalError("gamma_p: series did not converge");
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1
// (modified Lentz).
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) {
      return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
    }
  }
  throw NumericalError("gamma_q: continued fraction did not converge");
}

// Continued fraction for the incomplete beta (modified Lentz).
double beta_cf(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) return h;
  }
  throw NumericalError("beta_inc: continued fraction did not converge");
}

}  // namespace

double gamma_p(double a, double x) {
  detail::require(a > 0.0 && x >= 0.0, "gamma_p: require a > 0, x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  detail::require(a > 0.0 && x >= 0.0, "gamma_q: require a > 0, x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double beta_inc(double a, double b, double x) {
  detail::require(a > 0.0 && b > 0.0, "beta_inc: require a, b > 0");
  detail::require(x >= 0.0 && x <= 1.0, "beta_inc: require x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  detail::require(p > 0.0 && p < 1.0, "normal_quantile: require p in (0,1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the true cdf.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace relkit
