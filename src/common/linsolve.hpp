// Linear solvers specialized for stationary analysis of Markov models.
//
// Two regimes, as in the tutorial's discussion of state-space methods:
//  * small/medium chains — GTH elimination (Grassmann-Taksar-Heyman), a
//    subtraction-free variant of Gaussian elimination that is numerically
//    exact for stochastic matrices;
//  * large sparse chains — successive over-relaxation (SOR) / Gauss-Seidel
//    sweeps on pi Q = 0 with periodic normalization.
//
// Iterative solvers honor a robust::Budget (wall-clock deadline and/or
// iteration cap) and on non-convergence throw robust::ConvergenceError
// carrying the best iterate and a SolveReport instead of discarding work.
// For automatic fallback between methods use robust::robust_steady_state.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "common/sparse.hpp"
#include "robust/budget.hpp"
#include "robust/report.hpp"

namespace relkit {

/// Stationary distribution of an irreducible CTMC from its dense generator Q
/// (rows sum to 0, off-diagonals >= 0), via GTH elimination. O(n^3), no
/// subtractions, stable for stiff chains.
std::vector<double> gth_steady_state(Matrix q);

/// Stationary distribution of an irreducible DTMC from its dense transition
/// probability matrix P (rows sum to 1), via GTH on Q = P - I.
std::vector<double> gth_steady_state_dtmc(const Matrix& p);

/// Options for the iterative stationary solver.
struct SorOptions {
  double omega = 1.0;        ///< Relaxation factor; 1.0 = Gauss-Seidel.
  double tol = 1e-12;        ///< Convergence: max |pi Q| componentwise.
  std::size_t max_iters = 200000;
  bool adaptive_omega = true;  ///< Probe omega in [1.0, 1.9] while iterating.
  robust::Budget budget;       ///< Deadline / sweep cap (default unlimited).
  /// Parallelism degree for the residual evaluation (the Gauss-Seidel
  /// sweep itself is inherently sequential; the residual is a Jacobi-style
  /// pass over fixed pi, so its rows chunk freely). 0 = the process-wide
  /// parallel::default_jobs(); 1 = force sequential.
  unsigned jobs = 0;
};

/// Result of the iterative solver.
struct SorResult {
  std::vector<double> pi;
  std::size_t iterations = 0;
  double residual = 0.0;
  robust::SolveReport report;
};

/// Stationary distribution of an irreducible CTMC given the *transposed*
/// generator in CSR form (row i of `qt` holds column i of Q, off-diagonal
/// entries only) and the diagonal of Q. Throws robust::ConvergenceError —
/// carrying the best iterate and a report — if the iteration does not reach
/// tol within the sweep budget or the deadline, or if the iterate becomes
/// non-finite.
SorResult sor_steady_state(const SparseMatrix& qt,
                           const std::vector<double>& diag,
                           const SorOptions& opts = {});

/// Options for power iteration on a DTMC.
struct PowerOptions {
  double tol = 1e-13;
  std::size_t max_iters = 500000;
  /// Damping: pi <- (1-theta) pi + theta pi P breaks periodicity
  /// (theta in (0, 1]).
  double theta = 0.9;
  robust::Budget budget;
  /// Parallelism degree for the per-step vector-matrix product.
  /// 0 = parallel::default_jobs(); 1 = force sequential (the historical
  /// bit-identical path).
  unsigned jobs = 0;
};

/// Result of power iteration.
struct PowerResult {
  std::vector<double> pi;
  std::size_t iterations = 0;
  double delta = 0.0;  ///< last max-norm change between iterates
  robust::SolveReport report;
};

/// Power iteration for the stationary vector of a DTMC in CSR form.
/// Throws robust::ConvergenceError (best iterate + report) on failure.
PowerResult power_steady_state(const SparseMatrix& p,
                               const PowerOptions& opts);

/// Convenience wrapper with the historical signature.
std::vector<double> power_steady_state(const SparseMatrix& p,
                                       double tol = 1e-13,
                                       std::size_t max_iters = 500000,
                                       double theta = 0.9);

}  // namespace relkit
