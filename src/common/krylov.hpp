// Krylov-subspace stationary solver: preconditioned BiCGSTAB on pi Q = 0.
//
// The tutorial's largeness problem in one sentence: availability models
// explode to 10^5..10^6 states, dense GTH is O(n^3), and stationary SOR
// needs a sweep count that grows with the chain diameter. BiCGSTAB is the
// standard Krylov answer for the unsymmetric singular system pi Q = 0: the
// singularity is removed by replacing one equation with the normalization
// sum(pi) = 1 (the replaced equation is redundant for an irreducible
// chain), giving a nonsingular sparse system solved with O(nnz) matvecs.
//
// Two preconditioners, per the classic trade-off:
//   * diagonal (Jacobi) — free to build, helps stiff diagonals;
//   * ILU0 — incomplete LU on the matrix's own sparsity pattern, far
//     stronger on banded/NCD chains, O(nnz) setup.
//
// A reverse Cuthill-McKee permutation (common/reorder.hpp) is applied
// before factoring/iterating and inverted on the result: bandwidth
// reduction improves both matvec locality and the quality of the ILU0
// pattern. The contracts match the other iterative kernels: a
// robust::Budget (deadline / iteration cap) is honored, progress is
// recorded into a ConvergenceTrace, and non-convergence throws
// robust::ConvergenceError carrying the best normalized iterate.
#pragma once

#include <cstddef>
#include <vector>

#include "common/sparse.hpp"
#include "robust/budget.hpp"
#include "robust/report.hpp"

namespace relkit {

/// Preconditioner for the Krylov solver.
enum class Preconditioner {
  kNone,    ///< unpreconditioned (debugging / well-conditioned chains)
  kJacobi,  ///< diagonal scaling
  kIlu0,    ///< incomplete LU, zero fill-in (the default)
};

/// Printable name ("none", "jacobi", "ilu0").
const char* preconditioner_name(Preconditioner p);

/// Options for the BiCGSTAB stationary solver.
struct BicgstabOptions {
  /// Convergence target: max_i |(pi Q)_i| of the normalized iterate (the
  /// same verified residual the robust layer accepts on).
  double tol = 1e-10;
  std::size_t max_iters = 50000;
  Preconditioner precond = Preconditioner::kIlu0;
  /// Apply the RCM bandwidth-reducing permutation before solving (inverted
  /// on the result; pure locality/ILU-quality, never changes the answer).
  bool use_rcm = true;
  robust::Budget budget;  ///< deadline / iteration cap (default unlimited)
  /// Parallelism degree for the matvec kernels. 0 = the process-wide
  /// parallel::default_jobs(); 1 = force the bit-identical sequential path
  /// (the dot products and triangular solves are sequential at any jobs,
  /// so results are identical across worker counts).
  unsigned jobs = 0;
};

/// Result of the BiCGSTAB stationary solve.
struct BicgstabResult {
  std::vector<double> pi;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< verified max|pi Q| of the returned iterate
  robust::SolveReport report;
};

/// Stationary distribution of an irreducible CTMC given the *transposed*
/// generator in CSR form (row i of `qt` holds column i of Q, off-diagonal
/// entries; any accidental diagonal entries are folded into `diag`) and
/// the diagonal of Q (all entries < 0). Throws robust::ConvergenceError —
/// best normalized iterate + report with ConvergenceTrace — when the
/// iteration exhausts its budget, the deadline expires, or the iterate
/// degenerates.
BicgstabResult bicgstab_steady_state(const SparseMatrix& qt,
                                     const std::vector<double>& diag,
                                     const BicgstabOptions& opts = {});

}  // namespace relkit
