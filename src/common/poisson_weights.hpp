// Stable Poisson probability weights for uniformization.
//
// Transient CTMC analysis by uniformization needs the Poisson pmf
// p_n = e^{-qt} (qt)^n / n! for n in a window around the mode, where qt can
// reach 10^6 and e^{-qt} underflows catastrophically. Following the idea of
// Fox & Glynn (CACM 1988), weights are accumulated outward from the mode in
// relative terms and normalized at the end, so no intermediate quantity
// under- or overflows.
#pragma once

#include <cstddef>
#include <vector>

namespace relkit {

/// Normalized Poisson weights covering at least mass 1 - eps.
struct PoissonWeights {
  /// Smallest n with a retained weight.
  std::size_t left = 0;
  /// weights[i] ~= Poisson(lambda) pmf at n = left + i, normalized so the
  /// retained window sums to exactly 1 (the discarded tail mass, < eps, is
  /// redistributed proportionally — standard for uniformization, which needs
  /// a convex combination).
  std::vector<double> weights;
};

/// Computes the weight window for Poisson(lambda), lambda >= 0.
/// eps is the total tail mass allowed outside the window.
PoissonWeights poisson_weights(double lambda, double eps = 1e-12);

}  // namespace relkit
