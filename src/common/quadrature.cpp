#include "common/quadrature.hpp"

#include <cmath>

#include "common/error.hpp"

namespace relkit {

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double fa,
                double b, double fb, double m, double fm, double whole,
                double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol) {
  detail::require(tol > 0.0, "integrate: tol must be > 0");
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive(f, a, fa, b, fb, m, fm, whole, tol, 60);
}

double integrate_to_inf(const std::function<double(double)>& f, double tol) {
  // t = x / (1 - x): [0, 1) -> [0, inf). Evaluate strictly inside (0, 1).
  auto g = [&f](double x) {
    if (x >= 1.0) return 0.0;
    const double om = 1.0 - x;
    const double t = x / om;
    const double v = f(t);
    if (!std::isfinite(v)) return 0.0;
    return v / (om * om);
  };
  return integrate(g, 0.0, 1.0 - 1e-12, tol);
}

}  // namespace relkit
