// Numerical integration used for MTTF = integral of R(t) dt and other
// survival-function integrals that have no closed form (Weibull mixtures,
// BDD-evaluated system reliability).
#pragma once

#include <functional>

namespace relkit {

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance tol.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10);

/// Integral of f over [0, inf) via the substitution t = x / (1 - x),
/// dt = dx / (1-x)^2. f must decay (integrably) at infinity — true for any
/// survival function with finite mean.
double integrate_to_inf(const std::function<double(double)>& f,
                        double tol = 1e-10);

}  // namespace relkit
