// Behaviour model of one independent component, shared by the combinatorial
// model types (RBD, fault tree, reliability graph).
//
// A component is "up" with a probability that may be constant, derived from
// a lifetime distribution (no repair), or the 2-state CTMC availability of
// an exponentially failing/repairable unit.
#pragma once

#include <cmath>

#include "common/distributions.hpp"
#include "common/error.hpp"

namespace relkit {

struct ComponentModel {
  enum class Kind { kFixedProb, kLifetime, kRepairable };
  Kind kind = Kind::kFixedProb;

  double prob_up = 1.0;        ///< kFixedProb
  DistPtr lifetime;            ///< kLifetime
  double failure_rate = 0.0;   ///< kRepairable (exponential)
  double repair_rate = 0.0;    ///< kRepairable (exponential)

  /// Time-independent probability of being up.
  static ComponentModel fixed(double prob_up) {
    detail::require(prob_up >= 0.0 && prob_up <= 1.0,
                    "ComponentModel::fixed: prob in [0,1]");
    ComponentModel m;
    m.kind = Kind::kFixedProb;
    m.prob_up = prob_up;
    return m;
  }

  /// Non-repairable component with a lifetime distribution.
  static ComponentModel with_lifetime(DistPtr lifetime) {
    detail::require(lifetime != nullptr,
                    "ComponentModel::with_lifetime: null distribution");
    ComponentModel m;
    m.kind = Kind::kLifetime;
    m.lifetime = std::move(lifetime);
    return m;
  }

  /// Repairable component (exponential failure/repair), for availability.
  static ComponentModel repairable(double failure_rate, double repair_rate) {
    detail::require(failure_rate > 0.0 && repair_rate > 0.0,
                    "ComponentModel::repairable: rates must be > 0");
    ComponentModel m;
    m.kind = Kind::kRepairable;
    m.failure_rate = failure_rate;
    m.repair_rate = repair_rate;
    return m;
  }

  /// P(component up at time t). For kRepairable this is the 2-state CTMC
  /// closed form A(t) = mu/(l+mu) + l/(l+mu) e^{-(l+mu)t}.
  double prob_up_at(double t) const {
    switch (kind) {
      case Kind::kFixedProb:
        return prob_up;
      case Kind::kLifetime:
        return lifetime->survival(t);
      case Kind::kRepairable: {
        const double l = failure_rate, mu = repair_rate;
        return mu / (l + mu) + l / (l + mu) * std::exp(-(l + mu) * t);
      }
    }
    return 0.0;
  }

  /// Limiting probability of being up (steady-state availability for
  /// kRepairable; 0 for kLifetime).
  double prob_up_limit() const {
    switch (kind) {
      case Kind::kFixedProb:
        return prob_up;
      case Kind::kLifetime:
        return 0.0;
      case Kind::kRepairable:
        return repair_rate / (failure_rate + repair_rate);
    }
    return 0.0;
  }
};

}  // namespace relkit
