// Deterministic, fast pseudo-random number generation for simulation and
// Monte-Carlo uncertainty propagation.
//
// RelKit uses xoshiro256** (Blackman & Vigna), seeded through splitmix64 so
// that any 64-bit seed yields a well-mixed state. The generator satisfies
// std::uniform_random_bit_generator and can therefore be used with <random>
// distributions, but RelKit supplies its own inverse-CDF samplers in
// distributions.hpp so that results are reproducible across standard
// libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace relkit {

/// xoshiro256** 1.0 — public-domain algorithm by David Blackman and
/// Sebastiano Vigna. 256-bit state, period 2^256 - 1.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly distributed bits.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as input to -log(u).
  double uniform_pos() { return 1.0 - uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = -n % n;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derives an independent stream for parallel/replicated runs.
  Rng split() { return Rng((*this)() ^ 0xd2b74407b1ce6e93ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace relkit
