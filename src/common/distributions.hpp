// Lifetime / repair-time distributions.
//
// The tutorial stresses that real failure and repair processes are often not
// exponential; RelKit therefore models times-to-event with a polymorphic
// Distribution interface. Exponential is the special case every Markov
// solver exploits (is_exponential()/rate()); Weibull, lognormal,
// deterministic, etc. are handled by the semi-Markov solver, by phase-type
// expansion (src/phase), or by simulation (src/sim).
//
// All distributions are supported on [0, inf) and are immutable value types
// shared through std::shared_ptr<const Distribution> (alias DistPtr).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace relkit {

/// Abstract nonnegative continuous distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// P(X <= t). Must be 0 for t <= 0 and nondecreasing.
  virtual double cdf(double t) const = 0;

  /// Density at t (0 outside the support; may be infinite at boundary for
  /// the deterministic distribution, which reports 0).
  virtual double pdf(double t) const = 0;

  /// E[X].
  virtual double mean() const = 0;

  /// Var[X].
  virtual double variance() const = 0;

  /// Draws one variate.
  virtual double sample(Rng& rng) const = 0;

  /// Inverse cdf; the default implementation brackets and bisects cdf().
  /// p must lie in (0, 1).
  virtual double quantile(double p) const;

  /// Survival function R(t) = 1 - F(t).
  double survival(double t) const { return 1.0 - cdf(t); }

  /// Hazard rate h(t) = f(t) / R(t); +inf when R(t) == 0.
  double hazard(double t) const;

  /// Human-readable description, e.g. "weibull(shape=2, scale=100)".
  virtual std::string describe() const = 0;

  /// True only for Exponential, enabling exact Markov treatment.
  virtual bool is_exponential() const { return false; }

  /// Coefficient of variation sqrt(Var)/E; classifies PH fitting strategy.
  double cv() const;
};

using DistPtr = std::shared_ptr<const Distribution>;

/// Exponential(rate): the memoryless workhorse of availability models.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  double sample(Rng& rng) const override;
  double quantile(double p) const override;
  std::string describe() const override;
  bool is_exponential() const override { return true; }
  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Weibull(shape k, scale lambda): F(t) = 1 - exp(-(t/lambda)^k).
/// k < 1 models infant mortality, k > 1 wear-out (tutorial's canonical
/// non-exponential lifetime).
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override;
  double variance() const override;
  double sample(Rng& rng) const override;
  double quantile(double p) const override;
  std::string describe() const override;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_, scale_;
};

/// Lognormal(mu, sigma) of the underlying normal: common repair-time model.
class Lognormal final : public Distribution {
 public:
  Lognormal(double mu, double sigma);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override;
  double variance() const override;
  double sample(Rng& rng) const override;
  double quantile(double p) const override;
  std::string describe() const override;

 private:
  double mu_, sigma_;
};

/// Erlang(k, rate): sum of k iid exponentials; PH with a chain structure.
class Erlang final : public Distribution {
 public:
  Erlang(unsigned k, double rate);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override { return k_ / rate_; }
  double variance() const override { return k_ / (rate_ * rate_); }
  double sample(Rng& rng) const override;
  std::string describe() const override;
  unsigned stages() const { return static_cast<unsigned>(k_); }
  double rate() const { return rate_; }

 private:
  double k_;
  double rate_;
};

/// Gamma(shape, rate). Conjugate posterior of exponential-rate data; used by
/// the uncertainty module and as a general lifetime model.
class Gamma final : public Distribution {
 public:
  Gamma(double shape, double rate);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override { return shape_ / rate_; }
  double variance() const override { return shape_ / (rate_ * rate_); }
  double sample(Rng& rng) const override;
  std::string describe() const override;
  double shape() const { return shape_; }
  double rate() const { return rate_; }

 private:
  double shape_, rate_;
};

/// Beta(a, b) on [0, 1]: prior/posterior for coverage probabilities.
class Beta final : public Distribution {
 public:
  Beta(double a, double b);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override { return a_ / (a_ + b_); }
  double variance() const override;
  double sample(Rng& rng) const override;
  std::string describe() const override;

 private:
  double a_, b_;
};

/// Hypoexponential: sequence of independent exponential stages with distinct
/// or repeated rates (general series PH). CV < 1.
class HypoExponential final : public Distribution {
 public:
  explicit HypoExponential(std::vector<double> rates);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override;
  double variance() const override;
  double sample(Rng& rng) const override;
  std::string describe() const override;
  const std::vector<double>& rates() const { return rates_; }

 private:
  std::vector<double> rates_;
};

/// Hyperexponential: probabilistic mixture of exponentials. CV > 1.
class HyperExponential final : public Distribution {
 public:
  HyperExponential(std::vector<double> probs, std::vector<double> rates);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override;
  double variance() const override;
  double sample(Rng& rng) const override;
  std::string describe() const override;
  const std::vector<double>& probs() const { return probs_; }
  const std::vector<double>& rates() const { return rates_; }

 private:
  std::vector<double> probs_, rates_;
};

/// Deterministic(d): point mass at d (e.g. scheduled rejuvenation interval).
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);
  double cdf(double t) const override;
  double pdf(double) const override { return 0.0; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  double sample(Rng&) const override { return value_; }
  double quantile(double) const override { return value_; }
  std::string describe() const override;
  double value() const { return value_; }

 private:
  double value_;
};

/// Uniform(a, b) on [a, b], 0 <= a < b.
class Uniform final : public Distribution {
 public:
  Uniform(double a, double b);
  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override { return 0.5 * (a_ + b_); }
  double variance() const override;
  double sample(Rng& rng) const override;
  double quantile(double p) const override;
  std::string describe() const override;

 private:
  double a_, b_;
};

// Convenience factories returning shared immutable instances.
DistPtr exponential(double rate);
DistPtr weibull(double shape, double scale);
DistPtr lognormal(double mu, double sigma);
DistPtr erlang(unsigned k, double rate);
DistPtr gamma_dist(double shape, double rate);
DistPtr beta_dist(double a, double b);
DistPtr hypoexponential(std::vector<double> rates);
DistPtr hyperexponential(std::vector<double> probs, std::vector<double> rates);
DistPtr deterministic(double value);
DistPtr uniform(double a, double b);

}  // namespace relkit
