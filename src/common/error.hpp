// Error hierarchy used across all RelKit modules.
//
// All public RelKit functions report failure by throwing a subclass of
// relkit::Error. Precondition violations on user-supplied models throw
// ModelError; numerical failures (non-convergence, singular systems) throw
// NumericalError; out-of-range or inconsistent arguments throw
// InvalidArgument.
#pragma once

#include <stdexcept>
#include <string>

namespace relkit {

/// Base class of every exception thrown by RelKit.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A user-supplied model is structurally invalid (e.g. a fault-tree gate with
/// no inputs, a CTMC row that does not sum to zero, an unknown state name).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// A numerical method failed (singular matrix, iteration did not converge,
/// overflow in a weight computation).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// An argument is outside its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
/// Throws InvalidArgument with `msg` unless `cond` holds.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}
/// Throws ModelError with `msg` unless `cond` holds.
inline void require_model(bool cond, const std::string& msg) {
  if (!cond) throw ModelError(msg);
}
}  // namespace detail

}  // namespace relkit
