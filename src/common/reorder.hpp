// Bandwidth-reducing matrix reordering for the sparse iterative solvers.
//
// Reverse Cuthill-McKee (RCM) permutes a sparse matrix so that nonzeros
// cluster around the diagonal. For the CSR kernels this is pure locality:
// a matvec on a banded matrix walks `x` almost sequentially instead of
// jumping across the whole vector, and an ILU0 factorization on the
// reordered pattern drops far less of the true fill. The ordering is
// computed on the *symmetrized* sparsity pattern (structure of A + A^T),
// which is the standard choice for the unsymmetric generators CTMCs
// produce.
//
// The permutation convention throughout: `perm[new_index] = old_index`
// (an ordering, i.e. the list of old indices in their new positions).
#pragma once

#include <cstddef>
#include <vector>

#include "common/sparse.hpp"

namespace relkit {

/// Reverse Cuthill-McKee ordering of the symmetrized pattern of `a`
/// (square). Every connected component is BFS-levelized from a pseudo-
/// peripheral low-degree seed, neighbors visited in increasing-degree
/// order, and the concatenated order is reversed. Returns
/// `perm[new] = old`; a disconnected pattern is handled per component.
std::vector<std::size_t> rcm_ordering(const SparseMatrix& a);

/// Inverse of an ordering: `inv[old] = new`.
std::vector<std::size_t> invert_ordering(const std::vector<std::size_t>& perm);

/// Symmetric permutation B = P A P^T, i.e.
/// B(i, j) = A(perm[i], perm[j]). Preserves the diagonal as a set.
SparseMatrix permute_symmetric(const SparseMatrix& a,
                               const std::vector<std::size_t>& perm);

/// Permutes a vector into the new index space: out[new] = x[perm[new]].
std::vector<double> permute_vector(const std::vector<double>& x,
                                   const std::vector<std::size_t>& perm);

/// Half-bandwidth of `a`: max |row - col| over stored entries (0 for a
/// diagonal or empty matrix).
std::size_t bandwidth(const SparseMatrix& a);

}  // namespace relkit
