#include "common/matrix.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace relkit {

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  detail::require(rows_ == other.rows_ && cols_ == other.cols_,
                  "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  detail::require(rows_ == other.rows_ && cols_ == other.cols_,
                  "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(const Matrix& other) const {
  detail::require(cols_ == other.rows_, "Matrix::operator*: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& x) const {
  detail::require(cols_ == x.size(), "Matrix * vector: shape mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::row_abs_sum(std::size_t r) const {
  double s = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) s += std::abs((*this)(r, j));
  return s;
}

namespace {

// In-place LU with partial pivoting; perm[i] is the source row of pivot i.
// Returns false when a pivot underflows (singular matrix).
bool lu_factor(Matrix& a, std::vector<std::size_t>& perm) {
  const std::size_t n = a.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::abs(a(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(perm[k], perm[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) /= a(k, k);
      const double lik = a(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
  return true;
}

std::vector<double> lu_backsolve(const Matrix& lu,
                                 const std::vector<std::size_t>& perm,
                                 const std::vector<double>& b) {
  const std::size_t n = lu.rows();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x[j];
    x[ii] = acc / lu(ii, ii);
  }
  return x;
}

}  // namespace

std::vector<double> lu_solve(Matrix a, std::vector<double> b) {
  detail::require(a.rows() == a.cols(), "lu_solve: matrix must be square");
  detail::require(a.rows() == b.size(), "lu_solve: size mismatch");
  std::vector<std::size_t> perm;
  if (!lu_factor(a, perm)) throw NumericalError("lu_solve: singular matrix");
  return lu_backsolve(a, perm, b);
}

std::vector<double> lu_solve_transposed(const Matrix& a,
                                        const std::vector<double>& b) {
  return lu_solve(a.transposed(), b);
}

Matrix inverse(const Matrix& a) {
  detail::require(a.rows() == a.cols(), "inverse: matrix must be square");
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm;
  if (!lu_factor(lu, perm)) throw NumericalError("inverse: singular matrix");
  Matrix out(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const std::vector<double> col = lu_backsolve(lu, perm, e);
    for (std::size_t i = 0; i < n; ++i) out(i, j) = col[i];
    e[j] = 0.0;
  }
  return out;
}

Matrix expm(const Matrix& a) {
  detail::require(a.rows() == a.cols(), "expm: matrix must be square");
  const std::size_t n = a.rows();

  // Scale so that ||A/2^s||_inf <= 0.5.
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) norm = std::max(norm, a.row_abs_sum(i));
  int s = 0;
  if (norm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
    s = std::max(s, 0);
  }
  Matrix x = a * std::pow(2.0, -s);

  // Pade(6,6) approximant: c_k = c_{k-1} * (p-k+1) / ((2p-k+1) k).
  const int p = 6;
  std::vector<double> coef(p + 1);
  coef[0] = 1.0;
  for (int k = 1; k <= p; ++k) {
    coef[k] = coef[k - 1] * static_cast<double>(p - k + 1) /
              static_cast<double>((2 * p - k + 1) * k);
  }

  Matrix term = Matrix::identity(n);
  Matrix numer = Matrix::identity(n);
  Matrix denom = Matrix::identity(n);
  for (int k = 1; k <= p; ++k) {
    term = term * x;
    Matrix scaled = term * coef[k];
    numer += scaled;
    if (k % 2 == 0) {
      denom += scaled;
    } else {
      denom -= scaled;
    }
  }

  // Solve denom * R = numer column by column.
  Matrix lu = denom;
  std::vector<std::size_t> perm;
  if (!lu_factor(lu, perm)) throw NumericalError("expm: Pade denominator singular");
  Matrix r(n, n);
  std::vector<double> col(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = numer(i, j);
    const std::vector<double> sol = lu_backsolve(lu, perm, col);
    for (std::size_t i = 0; i < n; ++i) r(i, j) = sol[i];
  }

  for (int i = 0; i < s; ++i) r = r * r;
  return r;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  detail::require(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace relkit
