#include "common/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/poisson_weights.hpp"
#include "common/special.hpp"

namespace relkit {

double Distribution::quantile(double p) const {
  detail::require(p > 0.0 && p < 1.0, "quantile: require p in (0,1)");
  // Bracket [0, hi] by doubling, then bisect.
  double hi = std::max(1.0, mean() + 10.0 * std::sqrt(variance()));
  int guard = 0;
  while (cdf(hi) < p) {
    hi *= 2.0;
    if (++guard > 200) throw NumericalError("quantile: failed to bracket");
  }
  double lo = 0.0;
  for (int i = 0; i < 200 && (hi - lo) > 1e-14 * (1.0 + hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double Distribution::hazard(double t) const {
  const double r = survival(t);
  if (r <= 0.0) return std::numeric_limits<double>::infinity();
  return pdf(t) / r;
}

double Distribution::cv() const {
  const double m = mean();
  detail::require(m > 0.0, "cv: mean must be positive");
  return std::sqrt(variance()) / m;
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  detail::require(rate > 0.0, "Exponential: rate must be > 0");
}
double Exponential::cdf(double t) const {
  return t <= 0.0 ? 0.0 : -std::expm1(-rate_ * t);
}
double Exponential::pdf(double t) const {
  return t < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * t);
}
double Exponential::sample(Rng& rng) const {
  return -std::log(rng.uniform_pos()) / rate_;
}
double Exponential::quantile(double p) const {
  detail::require(p > 0.0 && p < 1.0, "quantile: require p in (0,1)");
  return -std::log1p(-p) / rate_;
}
std::string Exponential::describe() const {
  std::ostringstream os;
  os << "exponential(rate=" << rate_ << ")";
  return os.str();
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  detail::require(shape > 0.0 && scale > 0.0,
                  "Weibull: shape and scale must be > 0");
}
double Weibull::cdf(double t) const {
  return t <= 0.0 ? 0.0 : -std::expm1(-std::pow(t / scale_, shape_));
}
double Weibull::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = t / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}
double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}
double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}
double Weibull::sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
}
double Weibull::quantile(double p) const {
  detail::require(p > 0.0 && p < 1.0, "quantile: require p in (0,1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}
std::string Weibull::describe() const {
  std::ostringstream os;
  os << "weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ------------------------------------------------------------------ Lognormal

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  detail::require(sigma > 0.0, "Lognormal: sigma must be > 0");
}
double Lognormal::cdf(double t) const {
  return t <= 0.0 ? 0.0 : normal_cdf((std::log(t) - mu_) / sigma_);
}
double Lognormal::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (t * sigma_ * std::sqrt(2.0 * M_PI));
}
double Lognormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }
double Lognormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}
double Lognormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * normal_quantile(rng.uniform_pos()));
}
double Lognormal::quantile(double p) const {
  detail::require(p > 0.0 && p < 1.0, "quantile: require p in (0,1)");
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}
std::string Lognormal::describe() const {
  std::ostringstream os;
  os << "lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

// --------------------------------------------------------------------- Erlang

Erlang::Erlang(unsigned k, double rate) : k_(k), rate_(rate) {
  detail::require(k >= 1, "Erlang: need at least one stage");
  detail::require(rate > 0.0, "Erlang: rate must be > 0");
}
double Erlang::cdf(double t) const {
  return t <= 0.0 ? 0.0 : gamma_p(k_, rate_ * t);
}
double Erlang::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  return std::exp(k_ * std::log(rate_) + (k_ - 1.0) * std::log(t) - rate_ * t -
                  std::lgamma(k_));
}
double Erlang::sample(Rng& rng) const {
  double acc = 0.0;
  for (unsigned i = 0; i < static_cast<unsigned>(k_); ++i) {
    acc += -std::log(rng.uniform_pos());
  }
  return acc / rate_;
}
std::string Erlang::describe() const {
  std::ostringstream os;
  os << "erlang(k=" << static_cast<unsigned>(k_) << ", rate=" << rate_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------- Gamma

Gamma::Gamma(double shape, double rate) : shape_(shape), rate_(rate) {
  detail::require(shape > 0.0 && rate > 0.0,
                  "Gamma: shape and rate must be > 0");
}
double Gamma::cdf(double t) const {
  return t <= 0.0 ? 0.0 : gamma_p(shape_, rate_ * t);
}
double Gamma::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  return std::exp(shape_ * std::log(rate_) + (shape_ - 1.0) * std::log(t) -
                  rate_ * t - std::lgamma(shape_));
}
double Gamma::sample(Rng& rng) const {
  // Marsaglia & Tsang (2000); the shape < 1 case uses the boost
  // G(a) = G(a+1) U^{1/a}.
  double a = shape_;
  double boost = 1.0;
  if (a < 1.0) {
    boost = std::pow(rng.uniform_pos(), 1.0 / a);
    a += 1.0;
  }
  const double d = a - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal_quantile(rng.uniform_pos());
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform_pos();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v / rate_;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v / rate_;
    }
  }
}
std::string Gamma::describe() const {
  std::ostringstream os;
  os << "gamma(shape=" << shape_ << ", rate=" << rate_ << ")";
  return os.str();
}

// ----------------------------------------------------------------------- Beta

Beta::Beta(double a, double b) : a_(a), b_(b) {
  detail::require(a > 0.0 && b > 0.0, "Beta: a and b must be > 0");
}
double Beta::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= 1.0) return 1.0;
  return beta_inc(a_, b_, t);
}
double Beta::pdf(double t) const {
  if (t <= 0.0 || t >= 1.0) return 0.0;
  return std::exp((a_ - 1.0) * std::log(t) + (b_ - 1.0) * std::log1p(-t) +
                  std::lgamma(a_ + b_) - std::lgamma(a_) - std::lgamma(b_));
}
double Beta::variance() const {
  const double s = a_ + b_;
  return a_ * b_ / (s * s * (s + 1.0));
}
double Beta::sample(Rng& rng) const {
  const Gamma ga(a_, 1.0);
  const Gamma gb(b_, 1.0);
  const double x = ga.sample(rng);
  const double y = gb.sample(rng);
  return x / (x + y);
}
std::string Beta::describe() const {
  std::ostringstream os;
  os << "beta(a=" << a_ << ", b=" << b_ << ")";
  return os.str();
}

// ------------------------------------------------------------ HypoExponential

HypoExponential::HypoExponential(std::vector<double> rates)
    : rates_(std::move(rates)) {
  detail::require(!rates_.empty(), "HypoExponential: need at least one stage");
  for (double r : rates_) {
    detail::require(r > 0.0, "HypoExponential: all rates must be > 0");
  }
}

namespace {
// Probability of having completed all `k` stages (or being in the last
// transient stage, for the pdf) of a pure-series chain by time t, computed
// by uniformization. Stable for repeated rates, unlike the classic
// partial-fraction closed form.
struct SeriesChainProbs {
  double absorbed;   // P(all stages done by t)
  double last_stage; // P(currently in final transient stage at t)
};

SeriesChainProbs series_chain_probs(const std::vector<double>& rates,
                                    double t) {
  const std::size_t k = rates.size();
  if (t <= 0.0) return {0.0, k == 1 ? 1.0 : 0.0};
  // Tail guard: P(not absorbed by t) <= sum_i P(stage i alone takes more
  // than t/k) = sum_i exp(-rate_i t / k). When that bound is below double
  // noise, skip the O(q t) uniformization entirely (t can be astronomically
  // large when callers integrate the survival function to infinity).
  {
    double bound = 0.0;
    for (double r : rates) bound += std::exp(-r * t / static_cast<double>(k));
    if (bound < 1e-18) return {1.0, 0.0};
  }
  double q = 0.0;
  for (double r : rates) q = std::max(q, r);
  const PoissonWeights pw = poisson_weights(q * t);

  // pi over states 0..k (k = absorbed). Step with P = I + Q/q.
  std::vector<double> pi(k + 1, 0.0);
  pi[0] = 1.0;
  double absorbed = 0.0;
  double last = 0.0;
  std::vector<double> next(k + 1, 0.0);
  std::size_t n = 0;
  const std::size_t total_steps = pw.left + pw.weights.size();
  for (; n < total_steps; ++n) {
    if (n >= pw.left) {
      const double w = pw.weights[n - pw.left];
      absorbed += w * pi[k];
      last += w * pi[k - 1];
    }
    if (n + 1 == total_steps) break;
    // next = pi * (I + Q/q)
    for (std::size_t i = 0; i <= k; ++i) next[i] = pi[i];
    for (std::size_t i = 0; i < k; ++i) {
      const double flow = pi[i] * rates[i] / q;
      next[i] -= flow;
      next[i + 1] += flow;
    }
    pi.swap(next);
  }
  return {absorbed, last};
}
}  // namespace

double HypoExponential::cdf(double t) const {
  return series_chain_probs(rates_, t).absorbed;
}
double HypoExponential::pdf(double t) const {
  if (t < 0.0) return 0.0;
  return rates_.back() * series_chain_probs(rates_, t).last_stage;
}
double HypoExponential::mean() const {
  double m = 0.0;
  for (double r : rates_) m += 1.0 / r;
  return m;
}
double HypoExponential::variance() const {
  double v = 0.0;
  for (double r : rates_) v += 1.0 / (r * r);
  return v;
}
double HypoExponential::sample(Rng& rng) const {
  double acc = 0.0;
  for (double r : rates_) acc += -std::log(rng.uniform_pos()) / r;
  return acc;
}
std::string HypoExponential::describe() const {
  std::ostringstream os;
  os << "hypoexponential(rates=[";
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    os << (i ? ", " : "") << rates_[i];
  }
  os << "])";
  return os.str();
}

// ----------------------------------------------------------- HyperExponential

HyperExponential::HyperExponential(std::vector<double> probs,
                                   std::vector<double> rates)
    : probs_(std::move(probs)), rates_(std::move(rates)) {
  detail::require(probs_.size() == rates_.size() && !probs_.empty(),
                  "HyperExponential: probs/rates size mismatch");
  double s = 0.0;
  for (double p : probs_) {
    detail::require(p >= 0.0, "HyperExponential: negative probability");
    s += p;
  }
  detail::require(std::abs(s - 1.0) < 1e-9,
                  "HyperExponential: probabilities must sum to 1");
  for (double r : rates_) {
    detail::require(r > 0.0, "HyperExponential: all rates must be > 0");
  }
}
double HyperExponential::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i] * -std::expm1(-rates_[i] * t);
  }
  return acc;
}
double HyperExponential::pdf(double t) const {
  if (t < 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i] * rates_[i] * std::exp(-rates_[i] * t);
  }
  return acc;
}
double HyperExponential::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) m += probs_[i] / rates_[i];
  return m;
}
double HyperExponential::variance() const {
  double m2 = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    m2 += 2.0 * probs_[i] / (rates_[i] * rates_[i]);
  }
  const double m = mean();
  return m2 - m * m;
}
double HyperExponential::sample(Rng& rng) const {
  double u = rng.uniform();
  std::size_t branch = probs_.size() - 1;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (u < probs_[i]) {
      branch = i;
      break;
    }
    u -= probs_[i];
  }
  return -std::log(rng.uniform_pos()) / rates_[branch];
}
std::string HyperExponential::describe() const {
  std::ostringstream os;
  os << "hyperexponential(k=" << probs_.size() << ")";
  return os.str();
}

// -------------------------------------------------------------- Deterministic

Deterministic::Deterministic(double value) : value_(value) {
  detail::require(value >= 0.0, "Deterministic: value must be >= 0");
}
double Deterministic::cdf(double t) const { return t >= value_ ? 1.0 : 0.0; }
std::string Deterministic::describe() const {
  std::ostringstream os;
  os << "deterministic(" << value_ << ")";
  return os.str();
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double a, double b) : a_(a), b_(b) {
  detail::require(a >= 0.0 && b > a, "Uniform: require 0 <= a < b");
}
double Uniform::cdf(double t) const {
  if (t <= a_) return 0.0;
  if (t >= b_) return 1.0;
  return (t - a_) / (b_ - a_);
}
double Uniform::pdf(double t) const {
  return (t >= a_ && t <= b_) ? 1.0 / (b_ - a_) : 0.0;
}
double Uniform::variance() const {
  const double w = b_ - a_;
  return w * w / 12.0;
}
double Uniform::sample(Rng& rng) const {
  return a_ + (b_ - a_) * rng.uniform();
}
double Uniform::quantile(double p) const {
  detail::require(p > 0.0 && p < 1.0, "quantile: require p in (0,1)");
  return a_ + (b_ - a_) * p;
}
std::string Uniform::describe() const {
  std::ostringstream os;
  os << "uniform(" << a_ << ", " << b_ << ")";
  return os.str();
}

// ------------------------------------------------------------------ factories

DistPtr exponential(double rate) { return std::make_shared<Exponential>(rate); }
DistPtr weibull(double shape, double scale) {
  return std::make_shared<Weibull>(shape, scale);
}
DistPtr lognormal(double mu, double sigma) {
  return std::make_shared<Lognormal>(mu, sigma);
}
DistPtr erlang(unsigned k, double rate) {
  return std::make_shared<Erlang>(k, rate);
}
DistPtr gamma_dist(double shape, double rate) {
  return std::make_shared<Gamma>(shape, rate);
}
DistPtr beta_dist(double a, double b) { return std::make_shared<Beta>(a, b); }
DistPtr hypoexponential(std::vector<double> rates) {
  return std::make_shared<HypoExponential>(std::move(rates));
}
DistPtr hyperexponential(std::vector<double> probs, std::vector<double> rates) {
  return std::make_shared<HyperExponential>(std::move(probs), std::move(rates));
}
DistPtr deterministic(double value) {
  return std::make_shared<Deterministic>(value);
}
DistPtr uniform(double a, double b) {
  return std::make_shared<Uniform>(a, b);
}

}  // namespace relkit
