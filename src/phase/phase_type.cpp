#include "phase/phase_type.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/poisson_weights.hpp"

namespace relkit::phase {

PhaseType::PhaseType(std::vector<double> alpha, Matrix t)
    : alpha_(std::move(alpha)), t_(std::move(t)) {
  const std::size_t n = alpha_.size();
  detail::require(n >= 1, "PhaseType: empty representation");
  detail::require(t_.rows() == n && t_.cols() == n,
                  "PhaseType: T shape mismatch");
  double asum = 0.0;
  for (double a : alpha_) {
    detail::require(a >= -1e-12, "PhaseType: negative alpha entry");
    asum += a;
  }
  detail::require(asum <= 1.0 + 1e-9, "PhaseType: alpha sums to > 1");
  for (std::size_t i = 0; i < n; ++i) {
    detail::require(t_(i, i) < 0.0, "PhaseType: diagonal of T must be < 0");
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        detail::require(t_(i, j) >= 0.0,
                        "PhaseType: negative off-diagonal in T");
      }
      row += t_(i, j);
    }
    detail::require(row <= 1e-9, "PhaseType: T row sums must be <= 0");
  }
  mean_ = moment(1);
  const double m2 = moment(2);
  sd_ = std::sqrt(std::max(0.0, m2 - mean_ * mean_));
}

std::vector<double> PhaseType::exit_rates() const {
  const std::size_t n = order();
  std::vector<double> t0(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += t_(i, j);
    t0[i] = -row;
  }
  return t0;
}

namespace {

// One uniformization pass over the PH chain, returning the transient vector
// pi(t) = alpha exp(T t).
std::vector<double> ph_transient(const std::vector<double>& alpha,
                                 const Matrix& t, double x) {
  const std::size_t n = alpha.size();
  double q = 0.0;
  for (std::size_t i = 0; i < n; ++i) q = std::max(q, -t(i, i));
  q *= 1.02;
  const PoissonWeights pw = poisson_weights(q * x, 1e-13);

  // A = I + T/q (substochastic over transient states).
  std::vector<double> v = alpha;
  std::vector<double> out(n, 0.0);
  std::vector<double> next(n, 0.0);
  const std::size_t steps = pw.left + pw.weights.size();
  for (std::size_t step = 0; step < steps; ++step) {
    if (step >= pw.left) {
      const double w = pw.weights[step - pw.left];
      for (std::size_t i = 0; i < n; ++i) out[i] += w * v[i];
    }
    if (step + 1 == steps) break;
    for (std::size_t j = 0; j < n; ++j) {
      double acc = v[j];
      for (std::size_t i = 0; i < n; ++i) acc += v[i] * t(i, j) / q;
      next[j] = acc;
    }
    v.swap(next);
  }
  return out;
}

}  // namespace

double PhaseType::cdf(double x) const {
  if (x > mean_ + 60.0 * sd_ + 1.0 / -t_(0, 0)) return 1.0;
  if (x <= 0.0) {
    // Atom at zero when alpha sums to < 1.
    double asum = 0.0;
    for (double a : alpha_) asum += a;
    return x < 0.0 ? 0.0 : std::max(0.0, 1.0 - asum);
  }
  const std::vector<double> pi = ph_transient(alpha_, t_, x);
  double surv = 0.0;
  for (double p : pi) surv += p;
  return std::clamp(1.0 - surv, 0.0, 1.0);
}

double PhaseType::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x > mean_ + 60.0 * sd_ + 1.0 / -t_(0, 0)) return 0.0;
  const std::vector<double> pi = ph_transient(alpha_, t_, x);
  const std::vector<double> t0 = exit_rates();
  double f = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) f += pi[i] * t0[i];
  return std::max(0.0, f);
}

double PhaseType::moment(unsigned k) const {
  detail::require(k >= 1, "PhaseType::moment: k must be >= 1");
  // E[X^k] = k! alpha (-T)^{-k} 1 ; iterate y <- (-T)^{-1} y starting at 1.
  const std::size_t n = order();
  Matrix neg_t = t_;
  neg_t *= -1.0;
  std::vector<double> y(n, 1.0);
  double factorial = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    y = lu_solve(neg_t, y);
    factorial *= static_cast<double>(i);
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += alpha_[i] * y[i];
  return factorial * acc;
}

double PhaseType::sample(Rng& rng) const {
  // Play the CTMC token game over the transient states.
  const std::size_t n = order();
  const std::vector<double> t0 = exit_rates();
  // Choose initial state (or immediate absorption on the alpha deficit).
  double u = rng.uniform();
  std::size_t state = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (u < alpha_[i]) {
      state = i;
      break;
    }
    u -= alpha_[i];
  }
  double time = 0.0;
  while (state < n) {
    const double exit = -t_(state, state);
    time += -std::log(rng.uniform_pos()) / exit;
    double pick = rng.uniform() * exit;
    std::size_t next = n;  // default: absorb
    for (std::size_t j = 0; j < n; ++j) {
      if (j == state) continue;
      if (pick < t_(state, j)) {
        next = j;
        break;
      }
      pick -= t_(state, j);
    }
    if (next == n && pick >= t0[state]) {
      // Numerical leftovers: absorb.
      next = n;
    }
    state = next;
  }
  return time;
}

std::string PhaseType::describe() const {
  std::ostringstream os;
  os << "phase_type(order=" << order() << ")";
  return os.str();
}

PhaseType PhaseType::exponential(double rate) {
  detail::require(rate > 0.0, "PhaseType::exponential: rate must be > 0");
  Matrix t(1, 1);
  t(0, 0) = -rate;
  return PhaseType({1.0}, t);
}

PhaseType PhaseType::erlang(unsigned k, double rate) {
  detail::require(k >= 1, "PhaseType::erlang: k must be >= 1");
  detail::require(rate > 0.0, "PhaseType::erlang: rate must be > 0");
  Matrix t(k, k);
  for (unsigned i = 0; i < k; ++i) {
    t(i, i) = -rate;
    if (i + 1 < k) t(i, i + 1) = rate;
  }
  std::vector<double> alpha(k, 0.0);
  alpha[0] = 1.0;
  return PhaseType(alpha, t);
}

PhaseType PhaseType::hypoexponential(const std::vector<double>& rates) {
  const std::size_t k = rates.size();
  detail::require(k >= 1, "PhaseType::hypoexponential: need stages");
  Matrix t(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    detail::require(rates[i] > 0.0,
                    "PhaseType::hypoexponential: rates must be > 0");
    t(i, i) = -rates[i];
    if (i + 1 < k) t(i, i + 1) = rates[i];
  }
  std::vector<double> alpha(k, 0.0);
  alpha[0] = 1.0;
  return PhaseType(alpha, t);
}

PhaseType PhaseType::hyperexponential(const std::vector<double>& probs,
                                      const std::vector<double>& rates) {
  detail::require(probs.size() == rates.size() && !probs.empty(),
                  "PhaseType::hyperexponential: size mismatch");
  const std::size_t k = probs.size();
  Matrix t(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    detail::require(rates[i] > 0.0,
                    "PhaseType::hyperexponential: rates must be > 0");
    t(i, i) = -rates[i];
  }
  return PhaseType(probs, t);
}

PhaseType PhaseType::convolve(const PhaseType& x, const PhaseType& y) {
  const std::size_t nx = x.order();
  const std::size_t ny = y.order();
  const std::vector<double> x0 = x.exit_rates();
  Matrix t(nx + ny, nx + ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < nx; ++j) t(i, j) = x.t()(i, j);
    for (std::size_t j = 0; j < ny; ++j) {
      t(i, nx + j) = x0[i] * y.alpha()[j];
    }
  }
  for (std::size_t i = 0; i < ny; ++i) {
    for (std::size_t j = 0; j < ny; ++j) t(nx + i, nx + j) = y.t()(i, j);
  }
  double y_deficit = 1.0;
  for (double a : y.alpha()) y_deficit -= a;
  std::vector<double> alpha(nx + ny, 0.0);
  for (std::size_t i = 0; i < nx; ++i) alpha[i] = x.alpha()[i];
  // Mass of X's atom at 0 starts directly in Y.
  double x_deficit = 1.0;
  for (double a : x.alpha()) x_deficit -= a;
  for (std::size_t j = 0; j < ny; ++j) {
    alpha[nx + j] = x_deficit * y.alpha()[j];
  }
  (void)y_deficit;  // absorbed mass handled implicitly by substochastic rows
  return PhaseType(alpha, t);
}

PhaseType PhaseType::mixture(double p, const PhaseType& x,
                             const PhaseType& y) {
  detail::require(p >= 0.0 && p <= 1.0, "PhaseType::mixture: p in [0,1]");
  const std::size_t nx = x.order();
  const std::size_t ny = y.order();
  Matrix t(nx + ny, nx + ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < nx; ++j) t(i, j) = x.t()(i, j);
  }
  for (std::size_t i = 0; i < ny; ++i) {
    for (std::size_t j = 0; j < ny; ++j) t(nx + i, nx + j) = y.t()(i, j);
  }
  std::vector<double> alpha(nx + ny, 0.0);
  for (std::size_t i = 0; i < nx; ++i) alpha[i] = p * x.alpha()[i];
  for (std::size_t j = 0; j < ny; ++j) alpha[nx + j] = (1.0 - p) * y.alpha()[j];
  return PhaseType(alpha, t);
}

namespace {

// Kronecker helpers over dense matrices.
Matrix kron_sum(const Matrix& a, const Matrix& b) {
  const std::size_t na = a.rows();
  const std::size_t nb = b.rows();
  Matrix out(na * nb, na * nb);
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < na; ++j) {
      if (a(i, j) == 0.0) continue;
      for (std::size_t k = 0; k < nb; ++k) {
        out(i * nb + k, j * nb + k) += a(i, j);
      }
    }
  }
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t k = 0; k < nb; ++k) {
      for (std::size_t l = 0; l < nb; ++l) {
        out(i * nb + k, i * nb + l) += b(k, l);
      }
    }
  }
  return out;
}

std::vector<double> kron_vec(const std::vector<double>& a,
                             const std::vector<double>& b) {
  std::vector<double> out(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i * b.size() + j] = a[i] * b[j];
    }
  }
  return out;
}

}  // namespace

PhaseType PhaseType::minimum(const PhaseType& x, const PhaseType& y) {
  // min is absorbed when either chain absorbs: transient space is the
  // product of both transient spaces with the Kronecker sum generator.
  return PhaseType(kron_vec(x.alpha(), y.alpha()), kron_sum(x.t(), y.t()));
}

PhaseType PhaseType::maximum(const PhaseType& x, const PhaseType& y) {
  // max: product space while both run, then the survivor runs alone.
  const std::size_t nx = x.order();
  const std::size_t ny = y.order();
  const std::size_t n = nx * ny + nx + ny;
  const std::vector<double> x0 = x.exit_rates();
  const std::vector<double> y0 = y.exit_rates();
  Matrix t(n, n);
  // Block 1: both alive (nx*ny states, Kronecker sum), with absorption of
  // one side moving into the survivor blocks.
  const Matrix ks = kron_sum(x.t(), y.t());
  for (std::size_t i = 0; i < nx * ny; ++i) {
    for (std::size_t j = 0; j < nx * ny; ++j) t(i, j) = ks(i, j);
  }
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t k = 0; k < ny; ++k) {
      const std::size_t from = i * ny + k;
      // y absorbs -> x continues alone in block 2 (offset nx*ny).
      t(from, nx * ny + i) += y0[k];
      // x absorbs -> y continues alone in block 3 (offset nx*ny + nx).
      t(from, nx * ny + nx + k) += x0[i];
    }
  }
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < nx; ++j) {
      t(nx * ny + i, nx * ny + j) = x.t()(i, j);
    }
  }
  for (std::size_t k = 0; k < ny; ++k) {
    for (std::size_t l = 0; l < ny; ++l) {
      t(nx * ny + nx + k, nx * ny + nx + l) = y.t()(k, l);
    }
  }
  std::vector<double> alpha(n, 0.0);
  const std::vector<double> both = kron_vec(x.alpha(), y.alpha());
  double x_deficit = 1.0, y_deficit = 1.0;
  for (double a : x.alpha()) x_deficit -= a;
  for (double a : y.alpha()) y_deficit -= a;
  for (std::size_t i = 0; i < nx * ny; ++i) alpha[i] = both[i];
  // If one starts absorbed, the other runs alone.
  for (std::size_t i = 0; i < nx; ++i) {
    alpha[nx * ny + i] += y_deficit * x.alpha()[i];
  }
  for (std::size_t k = 0; k < ny; ++k) {
    alpha[nx * ny + nx + k] += x_deficit * y.alpha()[k];
  }
  return PhaseType(alpha, t);
}

PhaseType fit_moments(double mean, double cv) {
  detail::require(mean > 0.0, "fit_moments: mean must be > 0");
  detail::require(cv > 0.0, "fit_moments: cv must be > 0");
  const double cv2 = cv * cv;
  if (std::abs(cv2 - 1.0) < 1e-9) {
    return PhaseType::exponential(1.0 / mean);
  }
  if (cv2 < 1.0) {
    // Tijms' mixed Erlang E_{k-1,k}: k = smallest integer with cv2 >= 1/k.
    const auto k = static_cast<unsigned>(std::ceil(1.0 / cv2));
    if (k < 2) return PhaseType::exponential(1.0 / mean);
    const double kk = static_cast<double>(k);
    const double p =
        (kk * cv2 - std::sqrt(kk * (1.0 + cv2) - kk * kk * cv2)) /
        (1.0 + cv2);
    const double mu = (kk - p) / mean;
    // With prob p: Erlang(k-1, mu); else Erlang(k, mu). Build as one chain
    // of k stages where stage 1 is skipped with probability p.
    Matrix t(k, k);
    for (unsigned i = 0; i < k; ++i) {
      t(i, i) = -mu;
      if (i + 1 < k) t(i, i + 1) = mu;
    }
    std::vector<double> alpha(k, 0.0);
    alpha[0] = 1.0 - p;
    alpha[1] = p;
    return PhaseType(alpha, t);
  }
  // cv2 > 1: balanced-means 2-phase hyperexponential.
  const double p1 = 0.5 * (1.0 + std::sqrt((cv2 - 1.0) / (cv2 + 1.0)));
  const double l1 = 2.0 * p1 / mean;
  const double l2 = 2.0 * (1.0 - p1) / mean;
  return PhaseType::hyperexponential({p1, 1.0 - p1}, {l1, l2});
}

PhaseType fit_distribution(const Distribution& d) {
  return fit_moments(d.mean(), d.cv());
}

double cdf_distance(const Distribution& d, const PhaseType& ph,
                    unsigned points) {
  detail::require(points >= 2, "cdf_distance: need at least 2 points");
  double worst = 0.0;
  for (unsigned i = 1; i < points; ++i) {
    const double p = static_cast<double>(i) / points;
    const double x = d.quantile(p);
    worst = std::max(worst, std::abs(d.cdf(x) - ph.cdf(x)));
  }
  return worst;
}

}  // namespace relkit::phase
