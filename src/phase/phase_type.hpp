// Phase-type (PH) distributions.
//
// The tutorial's device for bringing non-exponential distributions back into
// the Markov world: any distribution on [0, inf) can be approximated by the
// absorption time of a small CTMC, after which the overall model is again a
// (larger) CTMC. This module provides
//
//   * the (alpha, T) representation with cdf/pdf/moments evaluated by
//     uniformization (stable for stiff stage rates),
//   * closure operations: convolution, mixture, minimum, maximum (Kronecker
//     constructions),
//   * classical 2-moment fitting (Trivedi/Tijms style): Erlang / mixed
//     Erlang for cv < 1, balanced-means 2-phase hyperexponential for cv > 1,
//     plain exponential at cv = 1,
//   * expansion helpers used to replace a general transition in a CTMC by
//     its PH stages.
#pragma once

#include <vector>

#include "common/distributions.hpp"
#include "common/matrix.hpp"

namespace relkit::phase {

/// A phase-type distribution PH(alpha, T): the time to absorption of a CTMC
/// with transient generator block T (n x n) and initial distribution alpha
/// over the transient states. alpha may sum to < 1; the deficit is an atom
/// at 0.
class PhaseType final : public Distribution {
 public:
  /// Validates shapes, row sums (T rows must sum to <= 0, diagonal < 0) and
  /// alpha (entries >= 0, sum <= 1).
  PhaseType(std::vector<double> alpha, Matrix t);

  std::size_t order() const { return alpha_.size(); }
  const std::vector<double>& alpha() const { return alpha_; }
  const Matrix& t() const { return t_; }
  /// Exit (absorption) rate vector t0 = -T 1.
  std::vector<double> exit_rates() const;

  // Distribution interface.
  double cdf(double x) const override;
  double pdf(double x) const override;
  double mean() const override { return mean_; }
  double variance() const override { return sd_ * sd_; }
  double sample(Rng& rng) const override;
  std::string describe() const override;

  /// k-th raw moment E[X^k] = k! alpha (-T)^{-k} 1.
  double moment(unsigned k) const;

  // ---- canonical constructions ----
  static PhaseType exponential(double rate);
  static PhaseType erlang(unsigned k, double rate);
  static PhaseType hypoexponential(const std::vector<double>& rates);
  static PhaseType hyperexponential(const std::vector<double>& probs,
                                    const std::vector<double>& rates);

  // ---- closure operations ----
  /// Distribution of X + Y (independent).
  static PhaseType convolve(const PhaseType& x, const PhaseType& y);
  /// Mixture: with probability p draw from x, else from y.
  static PhaseType mixture(double p, const PhaseType& x, const PhaseType& y);
  /// Distribution of min(X, Y) (Kronecker sum construction).
  static PhaseType minimum(const PhaseType& x, const PhaseType& y);
  /// Distribution of max(X, Y).
  static PhaseType maximum(const PhaseType& x, const PhaseType& y);

 private:
  std::vector<double> alpha_;
  Matrix t_;
  // Cached first two moments (computed once in the constructor); also used
  // as a tail guard so cdf/pdf at astronomically large x do not trigger an
  // O(q x) uniformization (PH tails are exponential, so beyond
  // mean + 60 sd the survival mass is far below double precision).
  double mean_ = 0.0;
  double sd_ = 0.0;
};

/// Fits a PH distribution to a mean and coefficient of variation by the
/// classical 2-moment recipes: exponential at cv ~ 1, mixed Erlang
/// (Tijms) for cv < 1, balanced-means hyperexponential for cv > 1.
PhaseType fit_moments(double mean, double cv);

/// Fits to the first two moments of an arbitrary distribution.
PhaseType fit_distribution(const Distribution& d);

/// L_inf distance between the cdf of `d` and the cdf of `ph` sampled on a
/// grid of `points` quantiles of d — a quick fit-quality diagnostic.
double cdf_distance(const Distribution& d, const PhaseType& ph,
                    unsigned points = 200);

}  // namespace relkit::phase
