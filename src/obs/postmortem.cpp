#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define RELKIT_HAVE_EXECINFO 1
#endif
#if __has_include(<dlfcn.h>)
#include <dlfcn.h>
#define RELKIT_HAVE_DLADDR 1
#endif

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

#ifndef RELKIT_BUILD_TYPE_STR
#define RELKIT_BUILD_TYPE_STR "unknown"
#endif
#ifndef RELKIT_GIT_DESCRIBE
#define RELKIT_GIT_DESCRIBE "unknown"
#endif

namespace relkit::obs::postmortem {

namespace {

// ---- metrics snapshot table ------------------------------------------------

constexpr std::size_t kMaxMetrics = 1024;

struct MetricEntry {
  MetricKind kind;
  const char* name;
  const void* node;
};

MetricEntry g_metrics[kMaxMetrics];
// Registrations serialize under the Registry lock; the handler only loads.
std::atomic<std::size_t> g_metric_count{0};

// ---- active solve snapshot (single-writer-at-a-time seqlock) ---------------

struct ActiveSolve {
  char method[32];
  std::uint64_t iterations;
  double residual;
  bool converged;
  double wall_seconds;
  std::uint32_t attempts;
};

ActiveSolve g_active{};
std::atomic<std::uint32_t> g_active_seq{0};  // even = stable, 0 = never set

// ---- handler state ---------------------------------------------------------

constexpr std::size_t kPathBytes = 512;
char g_report_path[kPathBytes] = "";
char g_report_tmp_path[kPathBytes] = "";
std::atomic<bool> g_installed{false};
std::atomic<bool> g_in_crash_handler{false};
std::atomic<bool> g_writing{false};
char g_terminate_reason[256] = "";
char g_altstack[64 * 1024];

constexpr int kMaxFrames = 64;
void* g_crash_frames[kMaxFrames];

// Stuck-thread sampling (watchdog -> SIGPROF -> here).
void* g_stuck_frames[kMaxFrames];
std::atomic<int> g_stuck_frame_count{0};
std::atomic<bool> g_sample_done{false};

// ---- async-signal-safe JSON emitter ----------------------------------------

/// Buffered writer over write(2). Everything here is callable from a signal
/// handler: no allocation, no stdio, no locale.
class Emitter {
 public:
  explicit Emitter(int fd) : fd_(fd) {}
  ~Emitter() { flush(); }

  void raw(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) put(s[i]);
  }
  void str(const char* s) { raw(s, std::strlen(s)); }

  void json_str(const char* s, std::size_t max = SIZE_MAX) {
    put('"');
    for (std::size_t i = 0; s[i] != '\0' && i < max; ++i) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (c == '"' || c == '\\') {
        put('\\');
        put(static_cast<char>(c));
      } else if (c < 0x20) {
        put('\\');
        put('u');
        put('0');
        put('0');
        put(hex_digit(c >> 4));
        put(hex_digit(c & 0xf));
      } else {
        put(static_cast<char>(c));
      }
    }
    put('"');
  }

  void u64(std::uint64_t v) {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }

  void i64(std::int64_t v) {
    if (v < 0) {
      put('-');
      u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }

  void hex_ptr(const void* p) {
    auto v = reinterpret_cast<std::uintptr_t>(p);
    char digits[2 * sizeof(void*)];
    int n = 0;
    do {
      digits[n++] = hex_digit(static_cast<unsigned>(v & 0xf));
      v >>= 4;
    } while (v != 0);
    put('0');
    put('x');
    while (n > 0) put(digits[--n]);
  }

  /// JSON number for a double without snprintf: scaled to [1, 10) with a
  /// decimal exponent when far from 1, six fractional digits. NaN and
  /// infinities become null (JSON has no spelling for them).
  void dbl(double v) {
    if (std::isnan(v) || std::isinf(v)) {
      str("null");
      return;
    }
    if (v < 0) {
      put('-');
      v = -v;
    }
    int exp10 = 0;
    if (v > 0) {
      while (v >= 1e15) {
        v /= 10;
        ++exp10;
      }
      while (v < 1e-4) {
        v *= 10;
        --exp10;
      }
    }
    const auto whole = static_cast<std::uint64_t>(v);
    u64(whole);
    put('.');
    double frac = v - static_cast<double>(whole);
    for (int i = 0; i < 6; ++i) {
      frac *= 10;
      const int digit = static_cast<int>(frac);
      put(static_cast<char>('0' + (digit < 0 ? 0 : digit > 9 ? 9 : digit)));
      frac -= digit;
    }
    if (exp10 != 0) {
      put('e');
      i64(exp10);
    }
  }

  void flush() {
    std::size_t off = 0;
    while (off < len_) {
      const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len_ = 0;
  }

 private:
  static char hex_digit(unsigned v) {
    return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
  }
  void put(char c) {
    if (len_ == sizeof buf_) flush();
    buf_[len_++] = c;
  }

  int fd_;
  char buf_[4096];
  std::size_t len_ = 0;
};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    default: return "signal";
  }
}

void emit_backtrace(Emitter& out, void* const* frames, int count) {
  out.str("[");
  for (int i = 0; i < count; ++i) {
    if (i != 0) out.str(",");
    out.str("\n    ");
#ifdef RELKIT_HAVE_DLADDR
    Dl_info info;
    if (dladdr(frames[i], &info) != 0 && info.dli_sname != nullptr) {
      out.str("\"");
      // Reuse json_str's escaping by emitting pieces; symbol names are
      // mangled identifiers so a plain copy is safe, but escape anyway.
      out.flush();
      char line[512];
      const auto off = reinterpret_cast<std::uintptr_t>(frames[i]) -
                       reinterpret_cast<std::uintptr_t>(info.dli_saddr);
      std::size_t n = 0;
      for (const char* s = info.dli_sname; *s && n < 400; ++s) {
        if (*s == '"' || *s == '\\') line[n++] = '\\';
        line[n++] = *s;
      }
      line[n] = '\0';
      out.str(line);
      out.str("+");
      out.hex_ptr(reinterpret_cast<const void*>(off));
      out.str("\"");
      continue;
    }
#endif
    out.str("\"");
    out.hex_ptr(frames[i]);
    out.str("\"");
  }
  out.str("\n  ]");
}

void emit_metrics(Emitter& out) {
  out.str("{");
  const std::size_t count = g_metric_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const MetricEntry& entry = g_metrics[i];
    if (i != 0) out.str(",");
    out.str("\n    ");
    out.json_str(entry.name);
    out.str(": ");
    switch (entry.kind) {
      case MetricKind::kCounter:
        out.u64(static_cast<const Counter*>(entry.node)->value());
        break;
      case MetricKind::kGauge:
        out.dbl(static_cast<const Gauge*>(entry.node)->value());
        break;
      case MetricKind::kHistogram: {
        const auto* h = static_cast<const Histogram*>(entry.node);
        out.str("{\"count\": ");
        out.u64(h->count());
        out.str(", \"sum\": ");
        out.dbl(h->sum());
        out.str("}");
        break;
      }
    }
  }
  out.str("\n  }");
}

// One dump at a time shares this scratch tail; write_report_impl serializes
// writers via g_writing.
flight::Event g_dump_tail[flight::kRingCapacity];
constexpr std::size_t kDumpTailPerThread = 64;

void emit_flight_recorder(Emitter& out) {
  out.str("[");
  bool first = true;
  for (int slot = 0; slot < static_cast<int>(flight::kMaxThreads); ++slot) {
    if (!flight::slot_used(slot)) continue;
    const std::size_t n =
        flight::copy_tail(slot, g_dump_tail, kDumpTailPerThread);
    const std::uint64_t first_seq = flight::slot_head(slot) - n;
    for (std::size_t i = 0; i < n; ++i) {
      const flight::Event& e = g_dump_tail[i];
      if (e.kind == flight::Event::kNone) continue;
      if (!first) out.str(",");
      first = false;
      out.str("\n    {\"thread\": ");
      out.u64(static_cast<std::uint64_t>(slot));
      out.str(", \"seq\": ");
      out.u64(first_seq + i);
      out.str(", \"kind\": ");
      switch (e.kind) {
        case flight::Event::kSpanBegin: out.str("\"span_begin\""); break;
        case flight::Event::kSpanEnd: out.str("\"span_end\""); break;
        default: out.str("\"counter\""); break;
      }
      out.str(", \"t\": ");
      out.dbl(e.t);
      if (e.kind == flight::Event::kCounter) {
        out.str(", \"name\": ");
        out.json_str(
            metric_node_name(reinterpret_cast<const void*>(
                static_cast<std::uintptr_t>(e.id))));
        out.str(", \"delta\": ");
        out.u64(e.value);
      } else {
        out.str(", \"id\": ");
        out.u64(e.id);
        out.str(", \"name\": ");
        out.json_str(e.name, sizeof e.name);
        if (e.kind == flight::Event::kSpanEnd) {
          out.str(", \"wall_ns\": ");
          out.u64(e.value);
        }
      }
      out.str("}");
    }
  }
  out.str("\n  ]");
}

void emit_active_solve(Emitter& out) {
  ActiveSolve copy;
  bool valid = false;
  for (int attempt = 0; attempt < 3 && !valid; ++attempt) {
    const std::uint32_t seq = g_active_seq.load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1) != 0) break;
    std::memcpy(&copy, &g_active, sizeof copy);
    valid = g_active_seq.load(std::memory_order_acquire) == seq;
  }
  if (!valid) {
    out.str("null");
    return;
  }
  out.str("{\"method\": ");
  out.json_str(copy.method, sizeof copy.method);
  out.str(", \"iterations\": ");
  out.u64(copy.iterations);
  out.str(", \"residual\": ");
  out.dbl(copy.residual);
  out.str(", \"converged\": ");
  out.str(copy.converged ? "true" : "false");
  out.str(", \"wall_seconds\": ");
  out.dbl(copy.wall_seconds);
  out.str(", \"attempts\": ");
  out.u64(copy.attempts);
  out.str("}");
}

// Forward declaration: watchdog state lives below but the report includes it.
struct WatchdogState;
WatchdogState* watchdog_state() noexcept;
void emit_watchdog(Emitter& out);

/// The one report writer, shared by the crash handler (signal context), the
/// watchdog, and write_report(). Writes to the precomputed tmp path and
/// rename(2)s into place so a report that exists is always complete.
bool write_report_impl(const char* reason, int sig, const void* fault_addr,
                       void* const* stuck_frames,
                       int stuck_frame_count) noexcept {
  if (g_report_path[0] == '\0') return false;
  // Serialize concurrent writers (watchdog vs. crash). A crash handler that
  // finds the lock held proceeds anyway after a bounded spin: losing one
  // stall report beats losing the crash report.
  bool expected = false;
  if (!g_writing.compare_exchange_strong(expected, true)) {
    for (int i = 0; i < 1000 && g_writing.load(); ++i) {
      struct timespec ts {0, 100000};
      nanosleep(&ts, nullptr);
    }
    g_writing.store(true);
  }

  const int fd = ::open(g_report_tmp_path, O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    g_writing.store(false);
    return false;
  }
  {
    Emitter out(fd);
    out.str("{\n  \"relkit_postmortem\": 1,\n  \"reason\": ");
    out.json_str(reason);
    if (sig != 0) {
      out.str(",\n  \"signal\": ");
      out.i64(sig);
      if (g_terminate_reason[0] != '\0') {
        out.str(",\n  \"terminate_reason\": ");
        out.json_str(g_terminate_reason);
      }
      if (fault_addr != nullptr) {
        out.str(",\n  \"fault_addr\": \"");
        out.hex_ptr(fault_addr);
        out.str("\"");
      }
    }
    out.str(",\n  \"pid\": ");
    out.i64(static_cast<std::int64_t>(::getpid()));
    out.str(",\n  \"unix_time\": ");
    out.i64(static_cast<std::int64_t>(::time(nullptr)));
    out.str(",\n  \"build\": {\"type\": \"" RELKIT_BUILD_TYPE_STR
            "\", \"git\": \"" RELKIT_GIT_DESCRIBE "\"}");

    struct rusage usage {};
    if (::getrusage(RUSAGE_SELF, &usage) == 0) {
      out.str(",\n  \"process\": {\"rss_peak_bytes\": ");
      out.u64(static_cast<std::uint64_t>(usage.ru_maxrss) * 1024);
      out.str(", \"cpu_user_seconds\": ");
      out.dbl(static_cast<double>(usage.ru_utime.tv_sec) +
              static_cast<double>(usage.ru_utime.tv_usec) * 1e-6);
      out.str(", \"cpu_sys_seconds\": ");
      out.dbl(static_cast<double>(usage.ru_stime.tv_sec) +
              static_cast<double>(usage.ru_stime.tv_usec) * 1e-6);
      out.str("}");
    }

    out.str(",\n  \"active_solve\": ");
    emit_active_solve(out);

    out.str(",\n  \"backtrace\": ");
#ifdef RELKIT_HAVE_EXECINFO
    const int frames = backtrace(g_crash_frames, kMaxFrames);
    emit_backtrace(out, g_crash_frames, frames);
#else
    out.str("[]");
#endif

    if (stuck_frames != nullptr && stuck_frame_count > 0) {
      out.str(",\n  \"stuck_stack\": ");
      emit_backtrace(out, stuck_frames, stuck_frame_count);
    }

    out.str(",\n  \"watchdog\": ");
    emit_watchdog(out);

    out.str(",\n  \"flight_recorder\": ");
    emit_flight_recorder(out);

    out.str(",\n  \"metrics\": ");
    emit_metrics(out);
    out.str("\n}\n");
  }
  ::close(fd);
  const bool ok = ::rename(g_report_tmp_path, g_report_path) == 0;
  g_writing.store(false);
  return ok;
}

// ---- signal / terminate handlers -------------------------------------------

void restore_and_reraise(int sig) {
  struct sigaction sa {};
  sa.sa_handler = SIG_DFL;
  sigemptyset(&sa.sa_mask);
  ::sigaction(sig, &sa, nullptr);
  ::raise(sig);
}

void crash_handler(int sig, siginfo_t* info, void*) {
  if (g_in_crash_handler.exchange(true)) {
    // Crashed while writing the report: give up and die with the signal.
    restore_and_reraise(sig);
    return;
  }
  const char* reason = signal_name(sig);
  if (sig == SIGABRT && g_terminate_reason[0] != '\0') reason = "terminate";
  write_report_impl(reason, sig, info != nullptr ? info->si_addr : nullptr,
                    nullptr, 0);
  restore_and_reraise(sig);
}

[[noreturn]] void terminate_handler() {
  const char* what = "std::terminate called without an active exception";
  try {
    if (auto current = std::current_exception()) {
      std::rethrow_exception(current);
    }
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
    what = "unhandled exception of unknown type";
  }
  std::size_t n = std::strlen(what);
  if (n > sizeof g_terminate_reason - 1) n = sizeof g_terminate_reason - 1;
  std::memcpy(g_terminate_reason, what, n);
  g_terminate_reason[n] = '\0';
  std::abort();  // lands in crash_handler(SIGABRT) with the reason preserved
}

void sample_handler(int, siginfo_t*, void*) {
#ifdef RELKIT_HAVE_EXECINFO
  g_stuck_frame_count.store(backtrace(g_stuck_frames, kMaxFrames),
                            std::memory_order_release);
#endif
  g_sample_done.store(true, std::memory_order_release);
}

// ---- watchdog --------------------------------------------------------------

struct WatchdogState {
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<bool> running{false};
  unsigned deadline_ms = 0;
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<double> progress_age_s{0.0};
  char last_stall_span[39] = {};  // written by the watchdog thread only
  Counter* stall_counter = nullptr;
};

// Leaked heap singleton: a global std::thread would terminate() in its
// destructor if the process exits without stop_watchdog(); atexit handles
// the join instead (before static destructors run).
WatchdogState* g_watchdog = nullptr;

WatchdogState* watchdog_state() noexcept { return g_watchdog; }

void emit_watchdog(Emitter& out) {
  WatchdogState* w = watchdog_state();
  if (w == nullptr) {
    out.str("{\"running\": false}");
    return;
  }
  out.str("{\"running\": ");
  out.str(w->running.load() ? "true" : "false");
  out.str(", \"deadline_ms\": ");
  out.u64(w->deadline_ms);
  out.str(", \"stalls\": ");
  out.u64(w->stalls.load());
  out.str(", \"progress_age_s\": ");
  out.dbl(w->progress_age_s.load());
  if (w->last_stall_span[0] != '\0') {
    out.str(", \"last_stall_span\": ");
    out.json_str(w->last_stall_span, sizeof w->last_stall_span);
  }
  out.str("}");
}

void handle_stall(WatchdogState* w) {
  // Pick the stalled thread: open spans and the oldest last event.
  int stuck_slot = -1;
  double oldest = 0.0;
  for (int slot = 0; slot < static_cast<int>(flight::kMaxThreads); ++slot) {
    if (!flight::slot_used(slot) || flight::slot_open_spans(slot) <= 0) {
      continue;
    }
    const double t = flight::slot_last_event_t(slot);
    if (stuck_slot < 0 || t < oldest) {
      stuck_slot = slot;
      oldest = t;
    }
  }
  if (stuck_slot < 0) return;

  // Innermost span the thread is stuck in = last begin event in its tail.
  flight::Event tail[flight::kRingCapacity];
  const std::size_t n =
      flight::copy_tail(stuck_slot, tail, flight::kRingCapacity);
  w->last_stall_span[0] = '\0';
  for (std::size_t i = n; i-- > 0;) {
    if (tail[i].kind == flight::Event::kSpanBegin) {
      std::memcpy(w->last_stall_span, tail[i].name,
                  sizeof w->last_stall_span);
      break;
    }
  }

  w->stalls.fetch_add(1, std::memory_order_relaxed);
  if (w->stall_counter != nullptr) w->stall_counter->add(1);

  // Sample the stuck thread's stack with a directed SIGPROF. The watchdog
  // double-checks the slot is still mid-span right before signalling so a
  // recycled slot cannot be hit.
  void** stuck_frames = nullptr;
  int stuck_count = 0;
  g_sample_done.store(false, std::memory_order_release);
  if (flight::slot_open_spans(stuck_slot) > 0 &&
      ::pthread_kill(flight::slot_thread(stuck_slot), SIGPROF) == 0) {
    for (int i = 0; i < 200 && !g_sample_done.load(std::memory_order_acquire);
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (g_sample_done.load(std::memory_order_acquire)) {
      stuck_frames = g_stuck_frames;
      stuck_count = g_stuck_frame_count.load(std::memory_order_acquire);
    }
  }

  write_report_impl("watchdog_stall", 0, nullptr, stuck_frames, stuck_count);
}

void watchdog_loop(WatchdogState* w) {
  std::uint64_t last_epoch = flight::progress_epoch();
  auto last_change = std::chrono::steady_clock::now();
  bool reported = false;
  const unsigned poll_ms = w->deadline_ms / 4 > 10 ? w->deadline_ms / 4 : 10;
  while (!w->stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    const std::uint64_t epoch = flight::progress_epoch();
    const auto now = std::chrono::steady_clock::now();
    if (epoch != last_epoch) {
      last_epoch = epoch;
      last_change = now;
      reported = false;
    }
    const double age =
        std::chrono::duration<double>(now - last_change).count();
    w->progress_age_s.store(age, std::memory_order_relaxed);
    if (reported || age * 1000.0 < static_cast<double>(w->deadline_ms)) {
      continue;
    }
    if (flight::open_span_threads() == 0) continue;
    reported = true;  // once per stall episode; progress resets it
    handle_stall(w);
  }
  w->running.store(false, std::memory_order_relaxed);
}

void stop_watchdog_atexit() { stop_watchdog(); }

}  // namespace

// ---- public API ------------------------------------------------------------

void register_metric_node(MetricKind kind, const char* name,
                          const void* node) noexcept {
  const std::size_t i = g_metric_count.load(std::memory_order_relaxed);
  if (i >= kMaxMetrics) return;
  g_metrics[i] = {kind, name, node};
  g_metric_count.store(i + 1, std::memory_order_release);
}

const char* metric_node_name(const void* node) noexcept {
  const std::size_t count = g_metric_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    if (g_metrics[i].node == node) return g_metrics[i].name;
  }
  return "";
}

void note_active_solve(std::string_view method, std::uint64_t iterations,
                       double residual, bool converged, double wall_seconds,
                       std::uint32_t attempts) noexcept {
  std::uint32_t seq = g_active_seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0) return;  // another writer mid-update: last-wins is fine
  if (!g_active_seq.compare_exchange_strong(seq, seq + 1,
                                            std::memory_order_acquire)) {
    return;
  }
  std::size_t n = method.size();
  if (n > sizeof g_active.method - 1) n = sizeof g_active.method - 1;
  std::memcpy(g_active.method, method.data(), n);
  g_active.method[n] = '\0';
  g_active.iterations = iterations;
  g_active.residual = residual;
  g_active.converged = converged;
  g_active.wall_seconds = wall_seconds;
  g_active.attempts = attempts;
  g_active_seq.store(seq + 2, std::memory_order_release);
}

bool install(const char* dir) {
  if (dir == nullptr || dir[0] == '\0') dir = ".";
  const int written =
      std::snprintf(g_report_path, sizeof g_report_path,
                    "%s/relkit-crash-%d.json", dir,
                    static_cast<int>(::getpid()));
  if (written <= 0 || static_cast<std::size_t>(written) >= kPathBytes - 5) {
    g_report_path[0] = '\0';
    return false;
  }
  // written < kPathBytes - 5 above, so path + ".tmp" + NUL always fits.
  std::memcpy(g_report_tmp_path, g_report_path,
              static_cast<std::size_t>(written));
  std::memcpy(g_report_tmp_path + written, ".tmp", 5);
  if (::access(dir, W_OK) != 0) {
    g_report_path[0] = '\0';
    g_report_tmp_path[0] = '\0';
    return false;
  }
  if (g_installed.exchange(true)) return true;

#ifdef RELKIT_HAVE_EXECINFO
  // Prime libgcc's unwinder outside signal context (its first call may
  // allocate while loading the unwind tables).
  void* prime[4];
  backtrace(prime, 4);
#endif

  stack_t altstack{};
  altstack.ss_sp = g_altstack;
  altstack.ss_size = sizeof g_altstack;
  ::sigaltstack(&altstack, nullptr);

  struct sigaction sa {};
  sa.sa_sigaction = crash_handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
  std::set_terminate(terminate_handler);

  // Make sure the process gauges exist in the metric table so every crash
  // report's metrics snapshot includes them.
  refresh_process_gauges();
  return true;
}

bool installed() noexcept { return g_installed.load(); }

const char* report_path() noexcept { return g_report_path; }

bool write_report(const char* reason) noexcept {
  return write_report_impl(reason, 0, nullptr, nullptr, 0);
}

void start_watchdog(unsigned deadline_ms) {
  if (deadline_ms == 0) return;
  if (g_watchdog == nullptr) {
    g_watchdog = new WatchdogState;
    std::atexit(stop_watchdog_atexit);
  }
  WatchdogState* w = g_watchdog;
  if (w->running.load()) return;

  struct sigaction sa {};
  sa.sa_sigaction = sample_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPROF, &sa, nullptr);

  w->deadline_ms = deadline_ms;
  w->stop.store(false);
  w->stall_counter = &obs::counter("obs.watchdog.stalls");
  w->running.store(true);
  w->thread = std::thread(watchdog_loop, w);
}

void stop_watchdog() {
  WatchdogState* w = g_watchdog;
  if (w == nullptr) return;
  w->stop.store(true, std::memory_order_relaxed);
  if (w->thread.joinable()) w->thread.join();
  w->running.store(false);
}

WatchdogStatus watchdog_status() {
  WatchdogStatus status;
  status.open_span_threads = flight::open_span_threads();
  WatchdogState* w = g_watchdog;
  if (w == nullptr) return status;
  status.running = w->running.load();
  status.deadline_ms = w->deadline_ms;
  status.stalls = w->stalls.load();
  status.progress_age_s = w->progress_age_s.load();
  std::memcpy(status.last_stall_span, w->last_stall_span,
              sizeof status.last_stall_span);
  return status;
}

int run_selftest(const char* mode) {
  if (mode == nullptr) return 4;
  obs::set_enabled(true);
  for (int i = 0; i < 8; ++i) {
    obs::Span span("obs.selftest");
    span.set("iteration", i);
    obs::counter("obs.selftest.events").add(1);
  }
  note_active_solve("obs.selftest", 8, 1e-12, true, 0.0, 1);

  if (std::strcmp(mode, "segv") == 0) {
    volatile int* null_pointer = nullptr;
    *null_pointer = 42;
    return 3;  // unreachable
  }
  if (std::strcmp(mode, "abort") == 0) {
    std::abort();
  }
  if (std::strcmp(mode, "terminate") == 0) {
    // Throwing across a noexcept boundary is the point: it reaches
    // std::terminate with the exception active so the handler can name it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wterminate"
    []() noexcept {
      throw std::runtime_error("obs.selftest: unhandled exception");
    }();
#pragma GCC diagnostic pop
  }
  if (std::strcmp(mode, "stall") == 0) {
    if (g_watchdog == nullptr || !g_watchdog->running.load()) {
      std::fprintf(stderr,
                   "obs-selftest stall needs --watchdog-ms to be set\n");
      return 4;
    }
    obs::Span span("obs.selftest.stall");
    // Stall inside the span: no flight events, so the watchdog must fire.
    // The report is rename(2)d into place, so existing implies complete.
    for (int i = 0; i < 3000; ++i) {
      if (installed() && ::access(g_report_path, F_OK) == 0) return 0;
      ::usleep(10000);
    }
    return 1;
  }
  std::fprintf(stderr, "unknown --obs-selftest mode '%s'\n", mode);
  return 4;
}

}  // namespace relkit::obs::postmortem
