// relkit::obs — zero-overhead-when-disabled observability.
//
// The tutorial's method comparison (non-state-space vs. state-space vs.
// hierarchical/fixed-point) is ultimately an argument about where the cost
// goes: BDD nodes, state counts, iterations to convergence. This module
// makes that cost visible without turning RelKit into a profiler project:
//
//   * a Registry of named Counters / Gauges / Histograms (BDD nodes, ITE
//     cache hits, SOR sweeps, power steps, uniformization steps, fixed-point
//     iterations, simulation events, residuals per sweep, ...);
//   * scoped Span tracing: RAII spans nest via a thread-local stack, record
//     wall and per-thread CPU time plus free-form attributes, and are
//     emitted on completion to pluggable sinks (in-memory ring buffer for
//     tree rendering, JSON-lines file for machine consumption);
//   * render_trace_tree() turns a batch of completed spans back into the
//     nested phase-by-phase cost tree the CLI prints for --trace.
//
// Cost discipline:
//   * compiled in but *disabled* (the default): every hook is one relaxed
//     atomic load and a predictable branch — bench_obs_overhead pins this
//     below 2% on the hottest paths;
//   * compiled out (cmake -DRELKIT_OBS=OFF defines RELKIT_OBS_DISABLED):
//     enabled() is constexpr false and the hooks fold away entirely;
//   * enabled: counters are relaxed atomics, spans cost two clock reads and
//     one short critical section per *phase* (never per iteration).
//
// This header deliberately depends on nothing else in RelKit so every
// module — including `common` — can instrument itself.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace relkit::obs {

#ifdef RELKIT_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// True when instrumentation is compiled in AND switched on at runtime.
/// This is the one check every hook makes; keep it inline and branchy.
inline bool enabled() {
  if constexpr (!kCompiledIn) {
    return false;
  } else {
    return detail::enabled_flag().load(std::memory_order_relaxed);
  }
}

/// Switches instrumentation on/off at runtime (no-op when compiled out).
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on && kCompiledIn, std::memory_order_relaxed);
}

// ---- metrics ---------------------------------------------------------------

namespace flight {
/// Flight-recorder hook for counter deltas (see flight_recorder.hpp);
/// defined out of line so this header keeps depending on nothing. Only
/// reached while enabled() — the disabled path stays a branch-not-taken.
void note_counter(const void* counter, std::uint64_t delta) noexcept;
}  // namespace flight

/// Monotonic event count. add() is a relaxed atomic increment (plus a
/// flight-recorder ring store) when enabled and a branch-not-taken
/// otherwise, so it is safe on hot paths.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (enabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
      flight::note_counter(this, delta);
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. current state count, final omega).
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of positive doubles over base-2 exponential buckets.
/// Bucket 0 collects v <= 0; bucket i >= 1 covers ilogb(v) == i - 1 + kMinExp
/// clamped into range, so ~1e-12 .. ~8e6 resolve and the tails saturate.
/// Thread-safe: all fields are relaxed atomics (min/max via CAS).
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kMinExp = -40;  // 2^-40 ~ 9e-13

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Approximate quantile (upper edge of the bucket holding rank q*count);
  /// returns 0 when empty.
  double quantile(double q) const;
  void reset();

  static int bucket_index(double v);
  /// Upper edge of bucket i (inf for the saturated top bucket).
  static double bucket_upper(int i);

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_extrema_{false};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Rolling-window distribution: a ring of fixed-width time slices, each a
/// base-2 bucketed histogram (same edges as Histogram), merged on read.
/// observe() lands in the slice covering "now"; slices older than the
/// window fall out of snapshots, so quantiles describe roughly the last
/// `window_seconds` only — this powers the rolling p50/p95/p99 SLO gauges
/// relkit_serve exposes at /metrics and /statusz. Thread-safe (one short
/// mutex per observe/snapshot). observe() is a no-op while instrumentation
/// is disabled, like every obs hook; the *_at seams take an explicit clock
/// and are ungated so tests stay deterministic.
class SlidingWindowHistogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;  ///< 0 when empty
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  explicit SlidingWindowHistogram(double window_seconds = 60.0,
                                  int slices = 6);
  ~SlidingWindowHistogram();
  SlidingWindowHistogram(const SlidingWindowHistogram&) = delete;
  SlidingWindowHistogram& operator=(const SlidingWindowHistogram&) = delete;

  void observe(double v);
  Snapshot snapshot() const;

  /// Deterministic seams: identical semantics with an explicit clock
  /// (seconds on any monotone axis — slices are now_s / slice-width).
  void observe_at(double v, double now_s);
  Snapshot snapshot_at(double now_s) const;

  double window_seconds() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide registry of named metrics. Registration takes a lock;
/// returned references are stable forever, so hot paths cache them:
///
///   static obs::Counter& c = obs::counter("bdd.nodes_allocated");
///   if (obs::enabled()) c.add();
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Attaches a pre-rendered OpenMetrics label set (e.g.
  /// `build_type="release",obs="on"`) to a gauge; to_openmetrics() then
  /// emits `name{labels} value`. The text must already be escaped per the
  /// OpenMetrics ABNF — this is for static identification gauges like
  /// relkit.build_info, not per-sample dimensions.
  void set_gauge_labels(std::string_view name, std::string_view labels);

  /// All registered metric names (sorted), for docs lint and tests.
  std::vector<std::string> names() const;

  /// Human-readable dump (CLI --metrics), one "kind name value" per line,
  /// sorted by name. Metrics that never recorded anything are omitted.
  std::string render_text() const;

  /// Single-line-free JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p90,p99}}}.
  std::string to_json() const;

  /// OpenMetrics text exposition (Prometheus-scrapable): per metric a
  /// `# HELP` line carrying the original dotted name, a `# TYPE` line, and
  /// sample lines — counters as `<name>_total`, histograms as cumulative
  /// `<name>_bucket{le="..."}` series over the base-2 bucket edges plus
  /// `_count`/`_sum`, terminated by `# EOF`. Names pass through
  /// sanitize_metric_name(); every registered metric is exposed, including
  /// zero-valued ones (scrapers want stable series).
  std::string to_openmetrics() const;

  /// Zeroes every metric value; registrations (and cached references)
  /// survive. Intended for tests and for the CLI's per-run scoping.
  void reset_values();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// The Content-Type an HTTP endpoint serving Registry::to_openmetrics()
/// must declare (relkit_serve's /metrics does) so Prometheus-compatible
/// scrapers negotiate the exposition correctly.
inline constexpr const char* kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Maps a RelKit metric name onto the OpenMetrics charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: '.' and every other invalid byte become '_',
/// and a leading digit gains a '_' prefix. Deterministic and idempotent;
/// tools/check_metrics.py enforces that the mapping stays injective over
/// the documented catalog (no two metrics may silently merge).
std::string sanitize_metric_name(std::string_view name);

/// Registers the scrape-identification gauges once per process:
/// `relkit.build_info` (value 1, labels build_type/git/obs — from the
/// RELKIT_BUILD_TYPE_STR / RELKIT_GIT_DESCRIBE compile definitions) and
/// `relkit.process.start_time.seconds` (Unix time of the first call).
/// Call after set_enabled(true) — gauge writes are gated like every hook.
void register_build_info();

/// Samples process-level resource gauges into the registry:
/// `relkit.process.rss_peak_bytes`, `relkit.process.cpu.user.seconds`,
/// `relkit.process.cpu.sys.seconds` (getrusage) and
/// `relkit.process.open_fds` (/proc/self/fd). Cheap enough to call on
/// every scrape/metrics dump; gauge writes are gated like every hook.
void refresh_process_gauges();

// Convenience accessors; see Registry::counter for the hot-path pattern.
inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

// ---- tracing ---------------------------------------------------------------

/// A completed span, as delivered to sinks.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (no enclosing span on the thread)
  std::uint32_t depth = 0;   ///< nesting depth on its thread (root = 0)
  std::uint64_t thread = 0;  ///< small sequential per-thread index
  std::string name;
  double start_s = 0.0;  ///< seconds since tracer epoch
  double wall_s = 0.0;
  double cpu_s = 0.0;  ///< per-thread CPU time consumed inside the span
  /// Attributes in insertion order, values preformatted to strings.
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Attribute value by key (nullptr when absent).
  const std::string* attr(std::string_view key) const;
};

/// Destination for completed spans. on_span may be called from any thread;
/// implementations synchronize internally.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(const SpanRecord& record) = 0;
};

/// Keeps the most recent `capacity` spans in memory (oldest dropped).
class RingBufferSink : public Sink {
 public:
  explicit RingBufferSink(std::size_t capacity = 8192);
  void on_span(const SpanRecord& record) override;
  /// Completed spans, oldest first.
  std::vector<SpanRecord> snapshot() const;
  std::uint64_t dropped() const;
  void clear();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Writes one JSON object per completed span to a file:
///   {"id":..,"parent":..,"thread":..,"name":"..","start_s":..,"wall_s":..,
///    "cpu_s":..,"attrs":{"k":"v",...}}
class JsonlSink : public Sink {
 public:
  /// Opens `path` for writing; returns nullptr when the file cannot be
  /// opened (callers map this to their own error policy — obs has no
  /// dependency on RelKit's exception hierarchy).
  static std::unique_ptr<JsonlSink> open(const std::string& path);
  ~JsonlSink() override;
  void on_span(const SpanRecord& record) override;
  void flush();

 private:
  struct Impl;
  explicit JsonlSink(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Serializes completed spans as Chrome trace-event JSON (the JSON Object
/// Format: {"traceEvents":[...]}), loadable in Perfetto / chrome://tracing:
/// one complete "X" event per span (ts/dur in microseconds, pid 1, tid =
/// span thread index, attrs as args, cpu time as args.cpu_us) plus one
/// "M" thread_name metadata event per thread. Events are sorted by start
/// time so the timeline nests exactly like render_trace_tree().
std::string to_chrome_json(const std::vector<SpanRecord>& records);

/// Buffers completed spans and writes them as Chrome trace-event JSON on
/// flush()/destruction (the object format needs the full batch — there is
/// no valid incremental prefix).
class ChromeTraceSink : public Sink {
 public:
  /// Opens `path` for writing; nullptr when the file cannot be opened
  /// (same error policy as JsonlSink::open).
  static std::unique_ptr<ChromeTraceSink> open(const std::string& path);
  ~ChromeTraceSink() override;
  void on_span(const SpanRecord& record) override;
  /// Writes the buffered events; idempotent (later spans are dropped once
  /// the file is finalized).
  void flush();

 private:
  struct Impl;
  explicit ChromeTraceSink(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Collects spans completed by ONE thread (by Tracer::thread_index()) and
/// hands them over on take(). This is the per-request / per-model span
/// attribution mechanism: work handled entirely on one worker thread
/// attaches a filter sink for that thread index, runs, detaches, and then
/// owns exactly its own spans — relkit_cli --batch --profile and
/// relkit_serve request tracing both rely on it.
class ThreadFilterSink : public Sink {
 public:
  explicit ThreadFilterSink(std::uint64_t thread);
  ~ThreadFilterSink() override;
  void on_span(const SpanRecord& record) override;
  /// Collected spans in completion order; empties the internal buffer.
  std::vector<SpanRecord> take();
  /// Collected spans in completion order, without clearing.
  std::vector<SpanRecord> snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Line-oriented append writer with size-based rotation: when a write would
/// push the file past `max_bytes`, the current file is renamed to `path.1`
/// (replacing any previous rotation) and a fresh file is started. Backing
/// store for relkit_serve's JSONL access log. Thread-safe.
class RotatingFileWriter {
 public:
  /// Opens `path` for appending; nullptr when it cannot be opened.
  /// max_bytes == 0 disables rotation.
  static std::unique_ptr<RotatingFileWriter> open(const std::string& path,
                                                  std::size_t max_bytes);
  ~RotatingFileWriter();
  /// Appends `line` plus '\n', rotating first when the write would exceed
  /// max_bytes (the line itself is never split across files).
  void write_line(std::string_view line);
  void flush();

 private:
  struct Impl;
  explicit RotatingFileWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// JSON-escape a string (shared by JsonlSink and Registry::to_json).
std::string json_escape(std::string_view s);

// ---- distributed trace ids -------------------------------------------------

/// 128-bit W3C trace id. "Valid" per the traceparent spec means not
/// all-zero.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceId& a, const TraceId& b) {
    return !(a == b);
  }
};

/// Random non-zero trace id from a per-thread splitmix64 generator (seeded
/// from std::random_device once per thread — no locks on the request path).
TraceId generate_trace_id();

/// 32 lowercase hex characters.
std::string trace_id_hex(const TraceId& id);

/// Parses a W3C `traceparent` header value
/// (`VV-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`, lowercase).
/// Returns an invalid (all-zero) TraceId when the value is malformed, the
/// version is "ff", or the trace-id / parent-id field is all-zero.
TraceId parse_traceparent(std::string_view header);

/// Renders `00-<trace-id>-<span-id>-01` (sampled flag set), the propagation
/// form relkit_serve echoes back to clients.
std::string make_traceparent(const TraceId& id, std::uint64_t span_id);

/// Bernoulli sampling decision from the same per-thread generator as
/// generate_trace_id(): true with probability p (p <= 0 never, p >= 1
/// always).
bool sample_trace(double p);

/// Owns the sink list and the span-id source.
class Tracer {
 public:
  static Tracer& instance();
  void add_sink(std::shared_ptr<Sink> sink);
  /// Removes one sink previously added (no-op when absent) — the batch
  /// CLI attaches a per-model collector and must detach only its own.
  void remove_sink(const std::shared_ptr<Sink>& sink);
  void remove_all_sinks();
  bool has_sinks() const;
  /// Seconds since the tracer was first touched.
  double now_s() const;
  void emit(const SpanRecord& record);
  std::uint64_t next_id();
  /// Small sequential index of the calling thread.
  std::uint64_t thread_index();

 private:
  Tracer();
  struct Impl;
  Impl& impl() const;
};

/// RAII scoped span. Inactive (and free apart from the enabled() check)
/// when instrumentation is off at construction time. Typical use:
///
///   obs::Span span("solver.sor");
///   ...
///   span.set("iterations", it);
///   span.set("residual", res);
///   // emitted on scope exit
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  /// Span id as recorded (0 while inactive) — lets callers link synthetic
  /// child records (e.g. relkit_serve's serve.queue_wait) to a live parent.
  std::uint64_t id() const { return record_.id; }
  void set(std::string_view key, std::string_view value);
  void set(std::string_view key, const char* value);
  void set(std::string_view key, double value);
  void set(std::string_view key, std::uint64_t value);
  void set(std::string_view key, int value);
  void set(std::string_view key, bool value);

 private:
  bool active_ = false;
  SpanRecord record_;
  double cpu_start_ = 0.0;
  double wall_start_raw_ = 0.0;
};

/// Renders completed spans (any order) as an indented tree with wall/CPU
/// time and attributes — the CLI's --trace output. Spans whose parent is
/// missing from `records` (ring-buffer overflow) render as roots.
std::string render_trace_tree(const std::vector<SpanRecord>& records);

// ---- profiling -------------------------------------------------------------

/// Aggregate of all completed spans sharing one name — the per-phase cost
/// table behind the CLI's --profile flag.
struct ProfileRow {
  std::string name;
  std::uint64_t count = 0;     ///< completed spans with this name
  double inclusive_wall = 0.0; ///< sum of span wall times
  double exclusive_wall = 0.0; ///< inclusive minus time in child spans
  double inclusive_cpu = 0.0;  ///< sum of per-thread CPU times
  double percent = 0.0;        ///< inclusive wall as % of total root wall
  /// Hardware-counter aggregates, summed over the spans that carried
  /// hw.* attrs (HwCounterGroup under --profile); all zero when perf
  /// counters were unavailable or profiling was off.
  std::uint64_t hw_samples = 0;      ///< spans contributing hw.* attrs
  std::uint64_t hw_cycles = 0;
  std::uint64_t hw_instructions = 0;
  std::uint64_t hw_cache_misses = 0;
};

/// One solve's profile: rows sorted by inclusive wall time (descending)
/// plus the total, which is the summed wall time of root spans.
struct ProfileReport {
  std::vector<ProfileRow> rows;
  double total_wall = 0.0;

  const ProfileRow* row(std::string_view name) const;
};

/// Aggregates completed spans by name. Exclusive time subtracts only
/// children present in `records`; a span whose parent is missing (ring
/// overflow) counts as a root. Invariant: for every name, inclusive_wall
/// equals the exact sum of that name's span wall times.
ProfileReport build_profile(const std::vector<SpanRecord>& records);

/// Fixed-width table (CLI --profile): name, calls, inclusive/exclusive
/// wall, CPU, and % of total, one row per name.
std::string render_profile_table(const ProfileReport& profile);

/// JSON array of row objects, embedded in batch-mode output lines:
/// [{"name":..,"count":..,"wall_s":..,"excl_s":..,"cpu_s":..,"pct":..},..].
std::string profile_to_json(const ProfileReport& profile);

}  // namespace relkit::obs
