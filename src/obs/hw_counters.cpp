#include "obs/hw_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/obs.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define RELKIT_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace relkit::obs {

namespace {

std::atomic<bool> g_profiling{false};

#ifdef RELKIT_HAVE_PERF

constexpr int kEvents = 4;

constexpr std::uint64_t kEventConfigs[kEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int perf_open(std::uint64_t config, int group_fd) {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(::syscall(__NR_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

/// One group per thread, opened lazily on first use and kept enabled for
/// the thread's lifetime; spans read cumulative counts and take deltas.
struct ThreadGroup {
  int fds[kEvents] = {-1, -1, -1, -1};
  bool ok = false;

  ThreadGroup() {
    for (int i = 0; i < kEvents; ++i) {
      fds[i] = perf_open(kEventConfigs[i], i == 0 ? -1 : fds[0]);
      if (fds[i] < 0) {
        close_all();
        return;
      }
    }
    if (::ioctl(fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      close_all();
      return;
    }
    ok = true;
  }

  ~ThreadGroup() { close_all(); }

  void close_all() {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    ok = false;
  }

  HwReading read() const {
    HwReading reading;
    if (!ok) return reading;
    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
    std::uint64_t buf[1 + kEvents] = {};
    if (::read(fds[0], buf, sizeof buf) < 0 || buf[0] < kEvents) {
      return reading;
    }
    reading.cycles = buf[1];
    reading.instructions = buf[2];
    reading.cache_misses = buf[3];
    reading.branch_misses = buf[4];
    reading.valid = true;
    return reading;
  }
};

ThreadGroup& thread_group() {
  thread_local ThreadGroup group;
  return group;
}

struct Probe {
  bool available = false;
  char reason[128] = "";

  Probe() {
    const int fd = perf_open(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd >= 0) {
      ::close(fd);
      available = true;
      return;
    }
    const int err = errno;
    std::snprintf(reason, sizeof reason,
                  "perf_event_open failed: %s (check "
                  "/proc/sys/kernel/perf_event_paranoid or container "
                  "seccomp policy)",
                  std::strerror(err));
  }
};

const Probe& probe() {
  static Probe result;
  return result;
}

#endif  // RELKIT_HAVE_PERF

}  // namespace

namespace hw {

bool available() {
#ifdef RELKIT_HAVE_PERF
  return probe().available;
#else
  return false;
#endif
}

const char* unavailable_reason() {
#ifdef RELKIT_HAVE_PERF
  return probe().reason;
#else
  return "perf_event_open is not supported on this platform";
#endif
}

void set_profiling(bool on) {
  g_profiling.store(on && kCompiledIn && available(),
                    std::memory_order_relaxed);
}

bool profiling() { return g_profiling.load(std::memory_order_relaxed); }

HwReading read_current_thread() {
#ifdef RELKIT_HAVE_PERF
  if (!available()) return {};
  return thread_group().read();
#else
  return {};
#endif
}

}  // namespace hw

HwCounterGroup::HwCounterGroup(Span& span) {
  if (!hw::profiling() || !span.active()) return;
  const HwReading start = hw::read_current_thread();
  if (!start.valid) return;
  start_ = start;
  span_ = &span;
}

HwCounterGroup::~HwCounterGroup() {
  if (span_ == nullptr) return;
  const HwReading delta = sample();
  if (!delta.valid) return;
  span_->set("hw.cycles", delta.cycles);
  span_->set("hw.instructions", delta.instructions);
  span_->set("hw.cache_misses", delta.cache_misses);
  span_->set("hw.branch_misses", delta.branch_misses);
}

HwReading HwCounterGroup::sample() const {
  HwReading reading;
  if (span_ == nullptr) return reading;
  const HwReading now = hw::read_current_thread();
  if (!now.valid) return reading;
  reading.cycles = now.cycles - start_.cycles;
  reading.instructions = now.instructions - start_.instructions;
  reading.cache_misses = now.cache_misses - start_.cache_misses;
  reading.branch_misses = now.branch_misses - start_.branch_misses;
  reading.valid = true;
  return reading;
}

}  // namespace relkit::obs
