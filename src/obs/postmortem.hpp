// Crash and stall postmortems. install() arms an async-signal-safe handler
// for SIGSEGV/SIGBUS/SIGFPE/SIGABRT (plus a std::terminate hook that funnels
// into SIGABRT with the exception's what() preserved) which writes a JSON
// report — backtrace, flight-recorder tails, a metrics snapshot read from
// pre-registered raw pointers, the active SolveReport summary, and build
// info — to relkit-crash-<pid>.json, then re-raises the signal so the
// process still dies with its original disposition.
//
// start_watchdog() adds a monitor thread that detects solves making no
// span progress past a deadline, bumps obs.watchdog.stalls, samples the
// stuck thread's stack via a directed SIGPROF, and writes the same report
// (reason "watchdog_stall") without killing the process.
//
// Nothing in the handler path allocates: metric nodes are registered into a
// bounded static table as the Registry creates them (node addresses are
// stable for the process lifetime), the report path is precomputed at
// install time, and all formatting is hand-rolled over write(2).
//
// Like the rest of obs, this header deliberately depends on nothing else in
// RelKit.
#pragma once

#include <cstdint>
#include <string_view>

namespace relkit::obs::postmortem {

// ---- metrics snapshot table ------------------------------------------------

/// Called by the Registry (under its lock) whenever a metric node is
/// created. `name` must outlive the process (it points into the Registry's
/// map key) and `node` must stay valid forever (Registry nodes are never
/// erased). Beyond kMaxMetrics (1024) further nodes are silently not
/// snapshotted.
enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
void register_metric_node(MetricKind kind, const char* name,
                          const void* node) noexcept;

/// Resolves a Counter* recorded by the flight recorder back to its name;
/// "" when unknown. Async-signal-safe.
const char* metric_node_name(const void* node) noexcept;

// ---- active solve snapshot -------------------------------------------------

/// Called by robust::record_last_report() so the crash report can say what
/// the process was last solving. Copies into static storage (seqlock);
/// `method` is truncated to 31 chars.
void note_active_solve(std::string_view method, std::uint64_t iterations,
                       double residual, bool converged, double wall_seconds,
                       std::uint32_t attempts) noexcept;

// ---- crash handler ---------------------------------------------------------

/// Installs the signal + terminate handlers. `dir` (nullptr or "" = current
/// directory) must exist; the report lands at <dir>/relkit-crash-<pid>.json.
/// Returns false when the directory is not writable. Idempotent (the second
/// call just re-derives the path).
bool install(const char* dir);
bool installed() noexcept;
const char* report_path() noexcept;  ///< "" before install()

/// Writes a postmortem right now from normal context (same shape as the
/// crash report, with the given reason). Used by the watchdog and tests.
bool write_report(const char* reason) noexcept;

// ---- stall watchdog --------------------------------------------------------

struct WatchdogStatus {
  bool running = false;
  unsigned deadline_ms = 0;
  std::uint64_t stalls = 0;     ///< mirrors obs.watchdog.stalls
  double progress_age_s = 0.0;  ///< time since the last flight event
  int open_span_threads = 0;
  char last_stall_span[39] = {};  ///< innermost span of the last stall
};

/// Starts the monitor thread (no-op when already running or deadline 0).
/// Requires install() for the report path; without it stalls are still
/// counted and surfaced in watchdog_status() but no report is written.
void start_watchdog(unsigned deadline_ms);
void stop_watchdog();
WatchdogStatus watchdog_status();

// ---- deployment self-test --------------------------------------------------

/// Implements --obs-selftest=MODE for both binaries: records a few spans
/// and counters so the rings are non-empty, notes a synthetic active solve,
/// then triggers the requested failure. Modes "segv", "abort" and
/// "terminate" do not return; "stall" waits (inside an open span) for the
/// watchdog report and returns 0 once it exists, 1 on timeout. Unknown
/// modes return 4 (usage).
int run_selftest(const char* mode);

}  // namespace relkit::obs::postmortem
