// Always-on flight recorder: fixed-size per-thread ring buffers of the most
// recent span begin/end events and counter deltas. All storage is static and
// preallocated; the hot-path writes are plain stores into a slot owned by the
// writing thread (wait-free, no locks, no allocation), so the recorder can
// stay on whenever instrumentation is enabled without violating the obs
// overhead contract (bench_obs_overhead prints the recorder's own line).
//
// The rings exist to be read after the fact: the crash handler and the stall
// watchdog in postmortem.{hpp,cpp} walk them from a signal handler, so every
// reader-facing accessor here is async-signal-safe (relaxed/acquire atomic
// loads and memcpy of PODs only). A reader racing a live writer can observe
// one torn event per ring; postmortem output is best-effort by design.
//
// Like the rest of obs, this header deliberately depends on nothing else in
// RelKit.
#pragma once

#include <pthread.h>

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace relkit::obs::flight {

/// Events kept per thread; the crash report dumps at most this many.
inline constexpr std::size_t kRingCapacity = 256;
/// Concurrently recorded threads. Slots are recycled when a thread exits
/// cleanly; threads beyond the limit simply go unrecorded.
inline constexpr std::size_t kMaxThreads = 64;

/// One recorded event. 64 bytes, POD, safe to memcpy from a signal handler.
struct Event {
  enum Kind : std::uint8_t { kNone = 0, kSpanBegin, kSpanEnd, kCounter };

  double t = 0.0;           ///< tracer clock, seconds since process epoch
  std::uint64_t id = 0;     ///< span id; for kCounter the Counter* address
  std::uint64_t value = 0;  ///< counter delta; span end: wall nanoseconds
  std::uint8_t kind = kNone;
  /// Truncated span name, NUL-terminated. Empty for counter events — the
  /// postmortem resolves the Counter* through its pre-registered metric
  /// table instead of copying the name on the hot path.
  char name[39] = {};
};
static_assert(sizeof(Event) == 64, "Event is sized to a cache line");

/// Recorder on/off (default on). This is the bench ablation seam, not a user
/// knob: events are only produced while obs::enabled() anyway.
void set_enabled(bool on);
bool enabled();

// ---- hot-path writers (called from obs.hpp / obs.cpp hooks) ----------------

void note_span_begin(std::uint64_t id, std::string_view name,
                     double t) noexcept;
void note_span_end(std::uint64_t id, std::string_view name, double t,
                   double wall_s) noexcept;
/// Counter delta; no clock read — the event reuses the thread's last span
/// timestamp so counters in tight loops cost a store, not a syscall.
void note_counter(const void* counter, std::uint64_t delta) noexcept;

// ---- readers ---------------------------------------------------------------

/// Total events recorded process-wide; the watchdog's notion of progress.
std::uint64_t progress_epoch() noexcept;

/// Ring-slot accessors for the postmortem writer and the watchdog. `slot`
/// ranges over [0, kMaxThreads). All are async-signal-safe.
bool slot_used(int slot) noexcept;
pthread_t slot_thread(int slot) noexcept;
int slot_open_spans(int slot) noexcept;
double slot_last_event_t(int slot) noexcept;
std::uint64_t slot_head(int slot) noexcept;  ///< events ever written

/// Copies the most recent (up to `max`) events of `slot` into `out`, oldest
/// first. Returns the count. The sequence number of out[0] is
/// slot_head(slot) - count (racy by at most the events written during the
/// copy). Async-signal-safe.
std::size_t copy_tail(int slot, Event* out, std::size_t max) noexcept;

/// Number of threads currently inside at least one span.
int open_span_threads() noexcept;

/// Normal-context convenience snapshot (tests, diagnostics).
struct SnapshotEvent {
  int slot = 0;
  std::uint64_t seq = 0;
  Event event;
};
std::vector<SnapshotEvent> snapshot(std::size_t max_per_thread = kRingCapacity);

}  // namespace relkit::obs::flight
