#include "obs/obs.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <dirent.h>
#include <sys/resource.h>
#endif

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <random>

#include "obs/flight_recorder.hpp"
#include "obs/postmortem.hpp"

#ifndef RELKIT_BUILD_TYPE_STR
#define RELKIT_BUILD_TYPE_STR "unknown"
#endif
#ifndef RELKIT_GIT_DESCRIBE
#define RELKIT_GIT_DESCRIBE "unknown"
#endif

namespace relkit::obs {

namespace {

/// Per-thread CPU seconds (CLOCK_THREAD_CPUTIME_ID where available).
double thread_cpu_seconds() {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string format_double(double v) {
  // Shortest-ish representation that still round-trips the magnitudes we
  // care about (iteration counts, residuals, seconds).
  char buf[32];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

/// Relaxed atomic min/max update via CAS.
void update_extrema(std::atomic<double>& mn, std::atomic<double>& mx,
                    std::atomic<bool>& has, double v) {
  bool had = has.load(std::memory_order_relaxed);
  if (!had && has.compare_exchange_strong(had, true,
                                          std::memory_order_relaxed)) {
    mn.store(v, std::memory_order_relaxed);
    mx.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = mn.load(std::memory_order_relaxed);
  while (v < cur &&
         !mn.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = mx.load(std::memory_order_relaxed);
  while (v > cur &&
         !mx.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---- Histogram -------------------------------------------------------------

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN
  const int e = std::ilogb(v);
  const int idx = 1 + (e - kMinExp);
  return std::clamp(idx, 1, kBuckets - 1);
}

double Histogram::bucket_upper(int i) {
  if (i <= 0) return 0.0;
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i - 1 + kMinExp + 1);
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_extrema(min_, max_, has_extrema_, v);
  }
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return has_extrema_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : std::numeric_limits<double>::infinity();
}

double Histogram::max() const {
  return has_extrema_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : -std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      const double upper = bucket_upper(i);
      // Clamp the bucket edge into the observed range so tails stay honest.
      return std::min(std::max(upper, min()), max());
    }
  }
  return max();
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  has_extrema_.store(false, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- SlidingWindowHistogram ------------------------------------------------

struct SlidingWindowHistogram::Impl {
  mutable std::mutex mu;
  double slice_width = 10.0;
  int slices = 6;
  struct Slice {
    std::int64_t tick = -1;  ///< floor(now_s / slice_width); -1 = never used
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t buckets[Histogram::kBuckets] = {};
  };
  std::vector<Slice> ring;
};

namespace {

/// Quantile over merged base-2 buckets, clamped into the observed range —
/// same convention as Histogram::quantile.
double merged_quantile(const std::uint64_t* buckets, std::uint64_t n,
                       double q, double mn, double mx) {
  if (n == 0) return 0.0;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) {
      const double upper = Histogram::bucket_upper(i);
      return std::min(std::max(upper, mn), mx);
    }
  }
  return mx;
}

}  // namespace

SlidingWindowHistogram::SlidingWindowHistogram(double window_seconds,
                                               int slices)
    : impl_(std::make_unique<Impl>()) {
  if (!(window_seconds > 0.0)) window_seconds = 60.0;
  if (slices < 1) slices = 1;
  impl_->slices = slices;
  impl_->slice_width = window_seconds / static_cast<double>(slices);
  impl_->ring.resize(static_cast<std::size_t>(slices));
}

SlidingWindowHistogram::~SlidingWindowHistogram() = default;

double SlidingWindowHistogram::window_seconds() const {
  return impl_->slice_width * static_cast<double>(impl_->slices);
}

void SlidingWindowHistogram::observe(double v) {
  if (!enabled()) return;
  observe_at(v, steady_seconds());
}

SlidingWindowHistogram::Snapshot SlidingWindowHistogram::snapshot() const {
  return snapshot_at(steady_seconds());
}

void SlidingWindowHistogram::observe_at(double v, double now_s) {
  Impl& im = *impl_;
  const auto tick = static_cast<std::int64_t>(
      std::floor(now_s / im.slice_width));
  std::lock_guard lock(im.mu);
  Impl::Slice& slice =
      im.ring[static_cast<std::size_t>(((tick % im.slices) + im.slices) %
                                       im.slices)];
  if (slice.tick != tick) {
    slice = Impl::Slice{};
    slice.tick = tick;
  }
  if (slice.count == 0 || v < slice.min) slice.min = v;
  if (slice.count == 0 || v > slice.max) slice.max = v;
  slice.count += 1;
  if (std::isfinite(v)) slice.sum += v;
  slice.buckets[Histogram::bucket_index(v)] += 1;
}

SlidingWindowHistogram::Snapshot SlidingWindowHistogram::snapshot_at(
    double now_s) const {
  Impl& im = *impl_;
  const auto tick_now = static_cast<std::int64_t>(
      std::floor(now_s / im.slice_width));
  Snapshot snap;
  std::uint64_t buckets[Histogram::kBuckets] = {};
  double mn = 0.0, mx = 0.0;
  std::lock_guard lock(im.mu);
  for (const Impl::Slice& slice : im.ring) {
    if (slice.tick < 0 || slice.tick > tick_now ||
        slice.tick <= tick_now - im.slices) {
      continue;  // never used, from the future, or aged out of the window
    }
    if (slice.count == 0) continue;
    if (snap.count == 0 || slice.min < mn) mn = slice.min;
    if (snap.count == 0 || slice.max > mx) mx = slice.max;
    snap.count += slice.count;
    snap.sum += slice.sum;
    for (int i = 0; i < Histogram::kBuckets; ++i) buckets[i] += slice.buckets[i];
  }
  if (snap.count == 0) return snap;
  snap.min = mn;
  snap.max = mx;
  snap.p50 = merged_quantile(buckets, snap.count, 0.50, mn, mx);
  snap.p90 = merged_quantile(buckets, snap.count, 0.90, mn, mx);
  snap.p95 = merged_quantile(buckets, snap.count, 0.95, mn, mx);
  snap.p99 = merged_quantile(buckets, snap.count, 0.99, mn, mx);
  return snap;
}

// ---- Registry --------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map keeps iteration sorted and node addresses stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  // Pre-rendered OpenMetrics label text per gauge (identification gauges
  // like relkit.build_info only).
  std::map<std::string, std::string, std::less<>> gauge_labels;
};

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

// New nodes register with the postmortem metric table (name c_str()s and
// node addresses are stable forever — nodes are never erased), so a crash
// handler can snapshot every metric without touching the map or the lock.

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
    postmortem::register_metric_node(postmortem::MetricKind::kCounter,
                                     it->first.c_str(), it->second.get());
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
    postmortem::register_metric_node(postmortem::MetricKind::kGauge,
                                     it->first.c_str(), it->second.get());
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
    postmortem::register_metric_node(postmortem::MetricKind::kHistogram,
                                     it->first.c_str(), it->second.get());
  }
  return *it->second;
}

void Registry::set_gauge_labels(std::string_view name,
                                std::string_view labels) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  im.gauge_labels[std::string(name)] = std::string(labels);
}

std::vector<std::string> Registry::names() const {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  std::vector<std::string> out;
  for (const auto& [name, c] : im.counters) out.push_back(name);
  for (const auto& [name, g] : im.gauges) out.push_back(name);
  for (const auto& [name, h] : im.histograms) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::string Registry::render_text() const {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  std::string out;
  for (const auto& [name, c] : im.counters) {
    if (c->value() == 0) continue;
    out += "counter   " + name + " = " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : im.gauges) {
    if (g->value() == 0.0) continue;
    out += "gauge     " + name + " = " + format_double(g->value()) + "\n";
  }
  for (const auto& [name, h] : im.histograms) {
    if (h->count() == 0) continue;
    out += "histogram " + name + ": count " + std::to_string(h->count()) +
           ", mean " +
           format_double(h->sum() / static_cast<double>(h->count())) +
           ", min " + format_double(h->min()) + ", p50 " +
           format_double(h->quantile(0.5)) + ", p99 " +
           format_double(h->quantile(0.99)) + ", max " +
           format_double(h->max()) + "\n";
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string Registry::to_json() const {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + format_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    if (!first) out += ",";
    first = false;
    const double n = static_cast<double>(h->count());
    out += "\"" + json_escape(name) + "\":{\"count\":" +
           std::to_string(h->count()) + ",\"sum\":" + format_double(h->sum()) +
           ",\"mean\":" + format_double(n > 0 ? h->sum() / n : 0.0) +
           ",\"min\":" + format_double(h->count() ? h->min() : 0.0) +
           ",\"max\":" + format_double(h->count() ? h->max() : 0.0) +
           ",\"p50\":" + format_double(h->quantile(0.5)) +
           ",\"p90\":" + format_double(h->quantile(0.9)) +
           ",\"p99\":" + format_double(h->quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {

/// HELP text escaping per the OpenMetrics ABNF: backslash and line feed.
std::string openmetrics_escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Exact, locale-free rendering of a histogram bucket edge; the `le` label
/// values must be strictly increasing strings that parse back to the same
/// doubles.
std::string format_le(double upper) {
  if (upper == std::numeric_limits<double>::infinity()) return "+Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", upper);
  return buf;
}

}  // namespace

std::string Registry::to_openmetrics() const {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  std::string out;
  auto header = [&](const std::string& name, const char* kind,
                    const std::string& sanitized) {
    out += "# HELP " + sanitized + " RelKit " + kind + " '" +
           openmetrics_escape_help(name) + "'\n";
    out += "# TYPE " + sanitized + " " + kind + "\n";
  };
  for (const auto& [name, c] : im.counters) {
    const std::string s = sanitize_metric_name(name);
    header(name, "counter", s);
    out += s + "_total " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : im.gauges) {
    const std::string s = sanitize_metric_name(name);
    header(name, "gauge", s);
    const auto lbl = im.gauge_labels.find(name);
    if (lbl != im.gauge_labels.end() && !lbl->second.empty()) {
      out += s + "{" + lbl->second + "} " + format_double(g->value()) + "\n";
    } else {
      out += s + " " + format_double(g->value()) + "\n";
    }
  }
  for (const auto& [name, h] : im.histograms) {
    const std::string s = sanitize_metric_name(name);
    header(name, "histogram", s);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += h->bucket(i);
      out += s + "_bucket{le=\"" + format_le(Histogram::bucket_upper(i)) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += s + "_count " + std::to_string(h->count()) + "\n";
    out += s + "_sum " + format_double(h->sum()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

void register_build_info() {
  static std::once_flag once;
  std::call_once(once, [] {
    Registry& reg = Registry::instance();
    reg.gauge("relkit.build_info").set(1.0);
    reg.set_gauge_labels(
        "relkit.build_info",
        std::string("build_type=\"") + RELKIT_BUILD_TYPE_STR + "\",git=\"" +
            RELKIT_GIT_DESCRIBE + "\",obs=\"" + (kCompiledIn ? "on" : "off") +
            "\"");
    reg.gauge("relkit.process.start_time.seconds")
        .set(std::chrono::duration<double>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count());
  });
}

void refresh_process_gauges() {
#if defined(__linux__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is KiB on Linux (bytes on macOS, but RelKit targets Linux).
    obs::gauge("relkit.process.rss_peak_bytes")
        .set(static_cast<double>(usage.ru_maxrss) * 1024.0);
    obs::gauge("relkit.process.cpu.user.seconds")
        .set(static_cast<double>(usage.ru_utime.tv_sec) +
             static_cast<double>(usage.ru_utime.tv_usec) * 1e-6);
    obs::gauge("relkit.process.cpu.sys.seconds")
        .set(static_cast<double>(usage.ru_stime.tv_sec) +
             static_cast<double>(usage.ru_stime.tv_usec) * 1e-6);
  }
  if (DIR* fds = opendir("/proc/self/fd")) {
    int count = 0;
    while (readdir(fds) != nullptr) ++count;
    closedir(fds);
    // Minus ".", ".." and the directory fd opendir itself holds.
    obs::gauge("relkit.process.open_fds")
        .set(static_cast<double>(count > 3 ? count - 3 : 0));
  }
#endif
}

void Registry::reset_values() {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

// ---- SpanRecord ------------------------------------------------------------

const std::string* SpanRecord::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---- sinks -----------------------------------------------------------------

struct RingBufferSink::Impl {
  mutable std::mutex mu;
  std::size_t capacity;
  std::deque<SpanRecord> records;
  std::uint64_t dropped = 0;
};

RingBufferSink::RingBufferSink(std::size_t capacity)
    : impl_(std::make_shared<Impl>()) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

void RingBufferSink::on_span(const SpanRecord& record) {
  std::lock_guard lock(impl_->mu);
  if (impl_->records.size() >= impl_->capacity) {
    impl_->records.pop_front();
    ++impl_->dropped;
  }
  impl_->records.push_back(record);
}

std::vector<SpanRecord> RingBufferSink::snapshot() const {
  std::lock_guard lock(impl_->mu);
  return {impl_->records.begin(), impl_->records.end()};
}

std::uint64_t RingBufferSink::dropped() const {
  std::lock_guard lock(impl_->mu);
  return impl_->dropped;
}

void RingBufferSink::clear() {
  std::lock_guard lock(impl_->mu);
  impl_->records.clear();
  impl_->dropped = 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- distributed trace ids -------------------------------------------------

namespace {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t& trace_rng_state() {
  thread_local std::uint64_t state = [] {
    std::random_device rd;
    const std::uint64_t seed =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    return seed != 0 ? seed : 0x6b696c6572ULL;
  }();
  return state;
}

/// Lowercase-hex-only parse (W3C traceparent is case-sensitive lowercase).
bool parse_hex_u64(std::string_view s, std::uint64_t& out) {
  out = 0;
  for (const char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

}  // namespace

TraceId generate_trace_id() {
  std::uint64_t& state = trace_rng_state();
  TraceId id;
  do {
    id.hi = splitmix64_next(state);
    id.lo = splitmix64_next(state);
  } while (!id.valid());
  return id;
}

std::string trace_id_hex(const TraceId& id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(id.hi),
                static_cast<unsigned long long>(id.lo));
  return buf;
}

TraceId parse_traceparent(std::string_view header) {
  // version "-" trace-id "-" parent-id "-" flags; future versions may append
  // "-" plus extra fields, version ff is forbidden, version 00 is exactly
  // 55 chars.
  if (header.size() < 55) return {};
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return {};
  std::uint64_t version = 0;
  if (!parse_hex_u64(header.substr(0, 2), version)) return {};
  if (version == 0xff) return {};
  if (header.size() > 55 && (version == 0 || header[55] != '-')) return {};
  TraceId id;
  std::uint64_t parent = 0, flags = 0;
  if (!parse_hex_u64(header.substr(3, 16), id.hi) ||
      !parse_hex_u64(header.substr(19, 16), id.lo) ||
      !parse_hex_u64(header.substr(36, 16), parent) ||
      !parse_hex_u64(header.substr(53, 2), flags)) {
    return {};
  }
  if (!id.valid() || parent == 0) return {};
  return id;
}

std::string make_traceparent(const TraceId& id, std::uint64_t span_id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "00-%016llx%016llx-%016llx-01",
                static_cast<unsigned long long>(id.hi),
                static_cast<unsigned long long>(id.lo),
                static_cast<unsigned long long>(span_id));
  return buf;
}

bool sample_trace(double p) {
  if (!(p > 0.0)) return false;
  if (p >= 1.0) return true;
  const double u = static_cast<double>(splitmix64_next(trace_rng_state()) >>
                                       11) *
                   0x1.0p-53;
  return u < p;
}

// ---- ThreadFilterSink ------------------------------------------------------

struct ThreadFilterSink::Impl {
  mutable std::mutex mu;
  std::uint64_t thread = 0;
  std::vector<SpanRecord> records;
};

ThreadFilterSink::ThreadFilterSink(std::uint64_t thread)
    : impl_(std::make_unique<Impl>()) {
  impl_->thread = thread;
}

ThreadFilterSink::~ThreadFilterSink() = default;

void ThreadFilterSink::on_span(const SpanRecord& record) {
  if (record.thread != impl_->thread) return;
  std::lock_guard lock(impl_->mu);
  impl_->records.push_back(record);
}

std::vector<SpanRecord> ThreadFilterSink::take() {
  std::lock_guard lock(impl_->mu);
  return std::move(impl_->records);
}

std::vector<SpanRecord> ThreadFilterSink::snapshot() const {
  std::lock_guard lock(impl_->mu);
  return impl_->records;
}

// ---- RotatingFileWriter ----------------------------------------------------

struct RotatingFileWriter::Impl {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::string path;
  std::size_t max_bytes = 0;
  std::size_t size = 0;
  ~Impl() {
    if (file) std::fclose(file);
  }
};

RotatingFileWriter::RotatingFileWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

RotatingFileWriter::~RotatingFileWriter() = default;

std::unique_ptr<RotatingFileWriter> RotatingFileWriter::open(
    const std::string& path, std::size_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return nullptr;
  auto impl = std::make_unique<Impl>();
  impl->file = f;
  impl->path = path;
  impl->max_bytes = max_bytes;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long pos = std::ftell(f);
    if (pos > 0) impl->size = static_cast<std::size_t>(pos);
  }
  return std::unique_ptr<RotatingFileWriter>(
      new RotatingFileWriter(std::move(impl)));
}

void RotatingFileWriter::write_line(std::string_view line) {
  Impl& im = *impl_;
  std::lock_guard lock(im.mu);
  if (!im.file) return;
  const std::size_t needed = line.size() + 1;
  if (im.max_bytes != 0 && im.size > 0 && im.size + needed > im.max_bytes) {
    std::fclose(im.file);
    im.file = nullptr;
    const std::string rotated = im.path + ".1";
    std::rename(im.path.c_str(), rotated.c_str());
    im.file = std::fopen(im.path.c_str(), "w");
    im.size = 0;
    if (!im.file) return;  // disk trouble: drop lines rather than crash
  }
  std::fwrite(line.data(), 1, line.size(), im.file);
  std::fputc('\n', im.file);
  im.size += needed;
}

void RotatingFileWriter::flush() {
  std::lock_guard lock(impl_->mu);
  if (impl_->file) std::fflush(impl_->file);
}

struct JsonlSink::Impl {
  std::mutex mu;
  std::FILE* file = nullptr;
  ~Impl() {
    if (file) std::fclose(file);
  }
};

JsonlSink::JsonlSink(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

JsonlSink::~JsonlSink() = default;

std::unique_ptr<JsonlSink> JsonlSink::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return nullptr;
  auto impl = std::make_unique<Impl>();
  impl->file = f;
  return std::unique_ptr<JsonlSink>(new JsonlSink(std::move(impl)));
}

void JsonlSink::on_span(const SpanRecord& r) {
  std::string line = "{\"id\":" + std::to_string(r.id) +
                     ",\"parent\":" + std::to_string(r.parent) +
                     ",\"depth\":" + std::to_string(r.depth) +
                     ",\"thread\":" + std::to_string(r.thread) +
                     ",\"name\":\"" + json_escape(r.name) + "\"" +
                     ",\"start_s\":" + format_double(r.start_s) +
                     ",\"wall_s\":" + format_double(r.wall_s) +
                     ",\"cpu_s\":" + format_double(r.cpu_s) + ",\"attrs\":{";
  bool first = true;
  for (const auto& [k, v] : r.attrs) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  line += "}}\n";
  std::lock_guard lock(impl_->mu);
  std::fwrite(line.data(), 1, line.size(), impl_->file);
}

void JsonlSink::flush() {
  std::lock_guard lock(impl_->mu);
  std::fflush(impl_->file);
}

// ---- Chrome trace ----------------------------------------------------------

std::string to_chrome_json(const std::vector<SpanRecord>& records) {
  // Stable thread set + start-time ordering so the timeline nests the way
  // render_trace_tree() does.
  std::vector<const SpanRecord*> sorted;
  sorted.reserve(records.size());
  std::vector<std::uint64_t> threads;
  for (const auto& r : records) {
    sorted.push_back(&r);
    if (std::find(threads.begin(), threads.end(), r.thread) ==
        threads.end()) {
      threads.push_back(r.thread);
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_s < b->start_s;
            });
  std::sort(threads.begin(), threads.end());

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n" + event;
  };
  for (const std::uint64_t t : threads) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"relkit thread " +
         std::to_string(t) + "\"}}");
  }
  char num[40];
  for (const SpanRecord* r : sorted) {
    std::string event = "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                        std::to_string(r->thread) + ",\"name\":\"" +
                        json_escape(r->name) + "\",\"cat\":\"relkit\"";
    std::snprintf(num, sizeof(num), "%.3f", r->start_s * 1e6);
    event += std::string(",\"ts\":") + num;
    std::snprintf(num, sizeof(num), "%.3f", r->wall_s * 1e6);
    event += std::string(",\"dur\":") + num;
    event += ",\"args\":{\"span_id\":\"" + std::to_string(r->id) +
             "\",\"parent\":\"" + std::to_string(r->parent) + "\"";
    std::snprintf(num, sizeof(num), "%.3f", r->cpu_s * 1e6);
    event += std::string(",\"cpu_us\":\"") + num + "\"";
    for (const auto& [k, v] : r->attrs) {
      event += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    event += "}}";
    emit(event);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

struct ChromeTraceSink::Impl {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::vector<SpanRecord> buffer;
  bool finalized = false;
  ~Impl() {
    if (file) std::fclose(file);
  }
};

ChromeTraceSink::ChromeTraceSink(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

std::unique_ptr<ChromeTraceSink> ChromeTraceSink::open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return nullptr;
  auto impl = std::make_unique<Impl>();
  impl->file = f;
  return std::unique_ptr<ChromeTraceSink>(
      new ChromeTraceSink(std::move(impl)));
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::on_span(const SpanRecord& record) {
  std::lock_guard lock(impl_->mu);
  if (!impl_->finalized) impl_->buffer.push_back(record);
}

void ChromeTraceSink::flush() {
  std::lock_guard lock(impl_->mu);
  if (impl_->finalized) return;
  impl_->finalized = true;
  const std::string json = to_chrome_json(impl_->buffer);
  std::fwrite(json.data(), 1, json.size(), impl_->file);
  std::fflush(impl_->file);
}

// ---- Tracer ----------------------------------------------------------------

struct Tracer::Impl {
  mutable std::mutex mu;
  std::vector<std::shared_ptr<Sink>> sinks;
  std::atomic<bool> any_sink{false};
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::uint64_t> next_thread{0};
  double epoch = steady_seconds();
};

Tracer::Tracer() = default;

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Impl& Tracer::impl() const {
  static Impl impl;
  return impl;
}

void Tracer::add_sink(std::shared_ptr<Sink> sink) {
  if (!sink) return;
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  im.sinks.push_back(std::move(sink));
  im.any_sink.store(true, std::memory_order_relaxed);
}

void Tracer::remove_sink(const std::shared_ptr<Sink>& sink) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  im.sinks.erase(std::remove(im.sinks.begin(), im.sinks.end(), sink),
                 im.sinks.end());
  im.any_sink.store(!im.sinks.empty(), std::memory_order_relaxed);
}

void Tracer::remove_all_sinks() {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  im.sinks.clear();
  im.any_sink.store(false, std::memory_order_relaxed);
}

bool Tracer::has_sinks() const {
  return impl().any_sink.load(std::memory_order_relaxed);
}

double Tracer::now_s() const { return steady_seconds() - impl().epoch; }

void Tracer::emit(const SpanRecord& record) {
  Impl& im = impl();
  // Copy the sink list under the lock, call outside it: a sink callback may
  // itself take locks (file IO) and must not serialize unrelated threads.
  std::vector<std::shared_ptr<Sink>> sinks;
  {
    std::lock_guard lock(im.mu);
    sinks = im.sinks;
  }
  for (const auto& sink : sinks) sink->on_span(record);
}

std::uint64_t Tracer::next_id() {
  return impl().next_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::thread_index() {
  thread_local std::uint64_t index =
      impl().next_thread.fetch_add(1, std::memory_order_relaxed);
  return index;
}

namespace {
/// Per-thread stack of open span ids — the nesting mechanism.
std::vector<std::uint64_t>& span_stack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}
}  // namespace

// ---- Span ------------------------------------------------------------------

Span::Span(std::string_view name) {
  if (!enabled()) return;
  Tracer& tracer = Tracer::instance();
  active_ = true;
  record_.id = tracer.next_id();
  record_.name = name;
  record_.thread = tracer.thread_index();
  auto& stack = span_stack();
  record_.parent = stack.empty() ? 0 : stack.back();
  record_.depth = static_cast<std::uint32_t>(stack.size());
  stack.push_back(record_.id);
  record_.start_s = tracer.now_s();
  wall_start_raw_ = steady_seconds();
  cpu_start_ = thread_cpu_seconds();
  flight::note_span_begin(record_.id, record_.name, record_.start_s);
}

Span::~Span() {
  if (!active_) return;
  record_.wall_s = steady_seconds() - wall_start_raw_;
  record_.cpu_s = thread_cpu_seconds() - cpu_start_;
  auto& stack = span_stack();
  // Pop this span; tolerate (and repair) out-of-order destruction.
  while (!stack.empty() && stack.back() != record_.id) stack.pop_back();
  if (!stack.empty()) stack.pop_back();
  flight::note_span_end(record_.id, record_.name,
                        record_.start_s + record_.wall_s, record_.wall_s);
  Tracer::instance().emit(record_);
}

void Span::set(std::string_view key, std::string_view value) {
  if (!active_) return;
  record_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::set(std::string_view key, const char* value) {
  set(key, std::string_view(value));
}

void Span::set(std::string_view key, double value) {
  if (!active_) return;
  record_.attrs.emplace_back(std::string(key), format_double(value));
}

void Span::set(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  record_.attrs.emplace_back(std::string(key), std::to_string(value));
}

void Span::set(std::string_view key, int value) {
  if (!active_) return;
  record_.attrs.emplace_back(std::string(key), std::to_string(value));
}

void Span::set(std::string_view key, bool value) {
  set(key, value ? std::string_view("true") : std::string_view("false"));
}

// ---- tree rendering --------------------------------------------------------

namespace {

std::string format_seconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  }
  return buf;
}

}  // namespace

std::string render_trace_tree(const std::vector<SpanRecord>& records) {
  if (records.empty()) return "(no spans recorded)\n";
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const auto& r : records) by_id.emplace(r.id, &r);
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const auto& r : records) {
    if (r.parent != 0 && by_id.count(r.parent)) {
      children[r.parent].push_back(&r);
    } else {
      roots.push_back(&r);
    }
  }
  auto by_start = [](const SpanRecord* a, const SpanRecord* b) {
    return a->start_s < b->start_s;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_start);
  }

  std::string out;
  auto render = [&](auto&& self, const SpanRecord& r, int indent) -> void {
    std::string line(static_cast<std::size_t>(indent) * 2, ' ');
    line += r.name;
    if (line.size() < 44) line.resize(44, ' ');
    line += "  wall " + format_seconds(r.wall_s);
    line += "  cpu " + format_seconds(r.cpu_s);
    if (!r.attrs.empty()) {
      line += "  [";
      bool first = true;
      for (const auto& [k, v] : r.attrs) {
        if (!first) line += " ";
        first = false;
        line += k + "=" + v;
      }
      line += "]";
    }
    out += line + "\n";
    if (auto it = children.find(r.id); it != children.end()) {
      for (const SpanRecord* kid : it->second) self(self, *kid, indent + 1);
    }
  };
  for (const SpanRecord* root : roots) render(render, *root, 0);
  return out;
}

// ---- profiling -------------------------------------------------------------

const ProfileRow* ProfileReport::row(std::string_view name) const {
  for (const auto& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

ProfileReport build_profile(const std::vector<SpanRecord>& records) {
  ProfileReport profile;
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const auto& r : records) by_id.emplace(r.id, &r);

  // Per-span child wall time, to subtract for exclusive times.
  std::map<std::uint64_t, double> child_wall;
  for (const auto& r : records) {
    if (r.parent != 0 && by_id.count(r.parent)) {
      child_wall[r.parent] += r.wall_s;
    } else {
      profile.total_wall += r.wall_s;
    }
  }

  const auto attr_u64 = [](const SpanRecord& r, std::string_view key,
                           std::uint64_t* out) {
    const std::string* value = r.attr(key);
    if (value == nullptr) return false;
    *out = std::strtoull(value->c_str(), nullptr, 10);
    return true;
  };

  std::map<std::string, ProfileRow, std::less<>> rows;
  for (const auto& r : records) {
    ProfileRow& row = rows[r.name];
    row.name = r.name;
    row.count += 1;
    row.inclusive_wall += r.wall_s;
    row.inclusive_cpu += r.cpu_s;
    // Per-span exclusive time; clock jitter can push the children's sum a
    // hair past the parent's wall, so clamp each span at zero.
    const auto it = child_wall.find(r.id);
    const double in_children = it == child_wall.end() ? 0.0 : it->second;
    row.exclusive_wall += std::max(0.0, r.wall_s - in_children);
    // Hardware-counter attrs (HwCounterGroup), present only when perf
    // profiling was on and the kernel allowed it.
    std::uint64_t cycles = 0;
    if (attr_u64(r, "hw.cycles", &cycles)) {
      std::uint64_t instructions = 0;
      std::uint64_t cache_misses = 0;
      attr_u64(r, "hw.instructions", &instructions);
      attr_u64(r, "hw.cache_misses", &cache_misses);
      row.hw_samples += 1;
      row.hw_cycles += cycles;
      row.hw_instructions += instructions;
      row.hw_cache_misses += cache_misses;
    }
  }
  for (auto& [name, row] : rows) {
    row.percent = profile.total_wall > 0.0
                      ? row.inclusive_wall / profile.total_wall * 100.0
                      : 0.0;
    profile.rows.push_back(std::move(row));
  }
  std::sort(profile.rows.begin(), profile.rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              return a.inclusive_wall > b.inclusive_wall;
            });
  return profile;
}

std::string render_profile_table(const ProfileReport& profile) {
  if (profile.rows.empty()) return "(no spans recorded)\n";
  // Hardware columns appear only when some span carried hw.* attrs, so the
  // table degrades to the classic layout where perf counters are off or
  // forbidden.
  bool hw = false;
  for (const auto& r : profile.rows) hw = hw || r.hw_samples > 0;
  std::string out;
  char line[200];
  if (hw) {
    std::snprintf(line, sizeof(line), "%-40s %7s %11s %11s %11s %7s %6s %10s\n",
                  "span", "calls", "incl wall", "excl wall", "incl cpu",
                  "% tot", "ipc", "miss/call");
  } else {
    std::snprintf(line, sizeof(line), "%-40s %7s %11s %11s %11s %7s\n",
                  "span", "calls", "incl wall", "excl wall", "incl cpu",
                  "% tot");
  }
  out += line;
  for (const auto& r : profile.rows) {
    std::snprintf(line, sizeof(line),
                  "%-40s %7llu %11s %11s %11s %6.1f%%", r.name.c_str(),
                  static_cast<unsigned long long>(r.count),
                  format_seconds(r.inclusive_wall).c_str(),
                  format_seconds(r.exclusive_wall).c_str(),
                  format_seconds(r.inclusive_cpu).c_str(), r.percent);
    out += line;
    if (hw) {
      if (r.hw_samples > 0 && r.hw_cycles > 0) {
        std::snprintf(line, sizeof(line), " %6.2f %10.1f",
                      static_cast<double>(r.hw_instructions) /
                          static_cast<double>(r.hw_cycles),
                      static_cast<double>(r.hw_cache_misses) /
                          static_cast<double>(r.count));
      } else {
        std::snprintf(line, sizeof(line), " %6s %10s", "-", "-");
      }
      out += line;
    }
    out += "\n";
  }
  std::snprintf(line, sizeof(line), "%-40s %7s %11s\n", "total (roots)", "",
                format_seconds(profile.total_wall).c_str());
  out += line;
  return out;
}

std::string profile_to_json(const ProfileReport& profile) {
  std::string out = "[";
  bool first = true;
  for (const auto& r : profile.rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(r.name) +
           "\",\"count\":" + std::to_string(r.count) +
           ",\"wall_s\":" + format_double(r.inclusive_wall) +
           ",\"excl_s\":" + format_double(r.exclusive_wall) +
           ",\"cpu_s\":" + format_double(r.inclusive_cpu) +
           ",\"pct\":" + format_double(r.percent);
    if (r.hw_samples > 0) {
      out += ",\"hw_cycles\":" + std::to_string(r.hw_cycles) +
             ",\"hw_instructions\":" + std::to_string(r.hw_instructions) +
             ",\"hw_cache_misses\":" + std::to_string(r.hw_cache_misses);
      if (r.hw_cycles > 0) {
        out += ",\"ipc\":" +
               format_double(static_cast<double>(r.hw_instructions) /
                             static_cast<double>(r.hw_cycles));
      }
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace relkit::obs
