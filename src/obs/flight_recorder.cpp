#include "obs/flight_recorder.hpp"

#include <atomic>
#include <cstring>

#include "obs/obs.hpp"

namespace relkit::obs::flight {

namespace {

struct Ring {
  // Only the owning thread stores events and bumps head; readers take
  // acquire loads of head and tolerate one torn in-flight event.
  std::atomic<std::uint64_t> head{0};
  // Monotone per-thread activity count for the stall watchdog. Owner-only
  // writer, so it advances with a relaxed load+store pair instead of a
  // lock-prefixed RMW on a cacheline shared by every thread — that RMW
  // would dominate the cost of a coalesced counter hit.
  std::atomic<std::uint64_t> progress{0};
  std::atomic<std::int32_t> open_spans{0};
  std::atomic<bool> used{false};
  pthread_t thread{};
  double last_event_t = 0.0;
  Event events[kRingCapacity];
};

Ring g_rings[kMaxThreads];
std::atomic<bool> g_recorder_on{true};

inline void bump_progress(Ring* r) noexcept {
  r->progress.store(r->progress.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
}

Ring* acquire_ring() {
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (g_rings[i].used.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      g_rings[i].thread = pthread_self();
      g_rings[i].head.store(0, std::memory_order_relaxed);
      g_rings[i].open_spans.store(0, std::memory_order_relaxed);
      g_rings[i].last_event_t = 0.0;
      // progress deliberately NOT reset: the watchdog's global sum must
      // stay monotone across slot reuse.
      return &g_rings[i];
    }
  }
  return nullptr;  // more live threads than slots: this one goes unrecorded
}

// A thread that exits cleanly hands its slot back so thread churn (server
// start/stop cycles in tests) cannot exhaust the recorder. A thread that
// crashes never runs this destructor — its tail stays visible to the crash
// handler, which is the whole point.
struct RingHandle {
  Ring* ring = acquire_ring();
  ~RingHandle() {
    if (ring != nullptr && ring->open_spans.load(std::memory_order_relaxed) == 0) {
      ring->used.store(false, std::memory_order_release);
    }
  }
};

inline Ring* ring() {
  thread_local RingHandle handle;
  return handle.ring;
}

inline void record(Ring* r, Event::Kind kind, std::uint64_t id,
                   std::uint64_t value, double t,
                   std::string_view name) noexcept {
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  Event& e = r->events[h % kRingCapacity];
  e.t = t;
  e.id = id;
  e.value = value;
  e.kind = kind;
  std::size_t n = name.size();
  if (n > sizeof e.name - 1) n = sizeof e.name - 1;
  if (n != 0) std::memcpy(e.name, name.data(), n);
  e.name[n] = '\0';
  r->last_event_t = t;
  r->head.store(h + 1, std::memory_order_release);
  bump_progress(r);
}

}  // namespace

void set_enabled(bool on) {
  g_recorder_on.store(on, std::memory_order_relaxed);
}

bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return g_recorder_on.load(std::memory_order_relaxed);
}

void note_span_begin(std::uint64_t id, std::string_view name,
                     double t) noexcept {
  if (!enabled()) return;
  Ring* r = ring();
  if (r == nullptr) return;
  r->open_spans.fetch_add(1, std::memory_order_relaxed);
  record(r, Event::kSpanBegin, id, 0, t, name);
}

void note_span_end(std::uint64_t id, std::string_view name, double t,
                   double wall_s) noexcept {
  if (!enabled()) return;
  Ring* r = ring();
  if (r == nullptr) return;
  const std::int32_t open = r->open_spans.load(std::memory_order_relaxed);
  if (open > 0) r->open_spans.store(open - 1, std::memory_order_relaxed);
  const double wall_ns = wall_s * 1e9;
  record(r, Event::kSpanEnd, id,
         wall_ns > 0 ? static_cast<std::uint64_t>(wall_ns) : 0, t, name);
}

void note_counter(const void* counter, std::uint64_t delta) noexcept {
  if (!enabled()) return;
  Ring* r = ring();
  if (r == nullptr) return;
  // Hot loops bump the same counter millions of times between spans;
  // coalescing a repeat hit into the newest event keeps the per-hook cost
  // to a compare + add and stops one counter from flushing the whole ring.
  // The summed delta carries the same forensic content as the run of
  // single-delta events it replaces.
  const std::uint64_t id = reinterpret_cast<std::uintptr_t>(counter);
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  if (h != 0) {
    Event& last = r->events[(h - 1) % kRingCapacity];
    if (last.kind == Event::kCounter && last.id == id) {
      last.value += delta;
      bump_progress(r);
      return;
    }
  }
  record(r, Event::kCounter, id, delta, r->last_event_t, {});
}

std::uint64_t progress_epoch() noexcept {
  // Sum of per-ring counts; monotone because rings never reset progress.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    total += g_rings[i].progress.load(std::memory_order_relaxed);
  }
  return total;
}

bool slot_used(int slot) noexcept {
  return g_rings[slot].used.load(std::memory_order_acquire);
}

pthread_t slot_thread(int slot) noexcept { return g_rings[slot].thread; }

int slot_open_spans(int slot) noexcept {
  return g_rings[slot].open_spans.load(std::memory_order_relaxed);
}

double slot_last_event_t(int slot) noexcept {
  return g_rings[slot].last_event_t;
}

std::uint64_t slot_head(int slot) noexcept {
  return g_rings[slot].head.load(std::memory_order_acquire);
}

std::size_t copy_tail(int slot, Event* out, std::size_t max) noexcept {
  const Ring& r = g_rings[slot];
  if (!r.used.load(std::memory_order_acquire)) return 0;
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  std::uint64_t n = head < kRingCapacity ? head : kRingCapacity;
  if (n > max) n = max;
  std::size_t written = 0;
  for (std::uint64_t i = head - n; i != head; ++i) {
    out[written++] = r.events[i % kRingCapacity];
  }
  return written;
}

int open_span_threads() noexcept {
  int threads = 0;
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    if (slot_used(static_cast<int>(i)) &&
        slot_open_spans(static_cast<int>(i)) > 0) {
      ++threads;
    }
  }
  return threads;
}

std::vector<SnapshotEvent> snapshot(std::size_t max_per_thread) {
  std::vector<SnapshotEvent> out;
  Event tail[kRingCapacity];
  if (max_per_thread > kRingCapacity) max_per_thread = kRingCapacity;
  for (int slot = 0; slot < static_cast<int>(kMaxThreads); ++slot) {
    if (!slot_used(slot)) continue;
    const std::size_t n = copy_tail(slot, tail, max_per_thread);
    const std::uint64_t first_seq = slot_head(slot) - n;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back({slot, first_seq + i, tail[i]});
    }
  }
  return out;
}

}  // namespace relkit::obs::flight
