// Hardware performance counters via perf_event_open: one per-thread group
// (cycles, instructions, cache misses, branch misses) opened lazily and kept
// enabled, so attaching counters to a span costs two read(2) snapshots and
// nesting works naturally (each span takes deltas of the cumulative counts).
//
// Containers and locked-down kernels (perf_event_paranoid >= 3, seccomp)
// routinely forbid perf_event_open; everything here degrades to a no-op in
// that case — available() says why via unavailable_reason().
//
// Like the rest of obs, this header deliberately depends on nothing else in
// RelKit.
#pragma once

#include <cstdint>

namespace relkit::obs {

class Span;

struct HwReading {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;
};

namespace hw {

/// True when perf_event_open works for this process (probed once).
bool available();
/// Human-readable reason when available() is false ("" when available).
const char* unavailable_reason();

/// Global switch: HwCounterGroup only measures while this is on (the CLI
/// turns it on under --profile; it is off by default so spans stay free).
void set_profiling(bool on);
bool profiling();

/// Cumulative counts of the calling thread's group since it was opened
/// (valid=false when perf is unavailable). Mostly a testing seam.
HwReading read_current_thread();

}  // namespace hw

/// RAII: snapshots the calling thread's counters at construction and, at
/// destruction, writes the deltas onto `span` as hw.cycles /
/// hw.instructions / hw.cache_misses / hw.branch_misses attrs (consumed by
/// the --profile IPC and cache-miss columns). A no-op unless
/// hw::profiling() && hw::available() && span.active().
class HwCounterGroup {
 public:
  explicit HwCounterGroup(Span& span);
  ~HwCounterGroup();
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  bool active() const { return span_ != nullptr; }
  /// Deltas accumulated so far (valid=false when inactive).
  HwReading sample() const;

 private:
  Span* span_ = nullptr;
  HwReading start_;
};

}  // namespace relkit::obs
