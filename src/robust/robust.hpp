// Solver resilience layer: verified steady-state solves with automatic
// fallback between methods.
//
// The tutorial's models are routinely stiff (rates spanning many orders of
// magnitude) and near-reducible (clusters coupled by tiny rates) — exactly
// the regime where a single iterative method silently stalls. The fallback
// chain tries, in order:
//
//   gth (dense, exact)            when n <= dense_primary
//   sor                           symmetric Gauss-Seidel / SOR sweeps
//   sor (omega reset)             plain Gauss-Seidel retry if the first SOR
//                                 attempt used over-relaxation
//   ad                            Courtois/Takahashi aggregation-
//                                 disaggregation, only when the NCD detector
//                                 finds a decomposition with small coupling
//   bicgstab                      preconditioned BiCGSTAB + RCM reordering
//                                 (ILU0 first, diagonal retry)
//   power                         damped power iteration on the uniformized
//                                 DTMC P = I + Q/q
//   gth (dense, last resort)      when n <= dense_fallback
//
// Every candidate result is *verified* (finite, renormalized, residual
// below verify_tol x rate-scale) before being accepted; a method whose
// answer fails verification is treated as failed, so no solver path can
// return NaN/Inf or a wrong fixed point silently. On total failure a
// ConvergenceError carries the best (lowest-residual) iterate seen plus the
// full SolveReport.
//
// A single method can be forced — per call (RobustSteadyOptions::solver),
// per thread (ScopedSolverChoice, used by relkit_serve's per-request
// "solver" field), or process-wide (set_default_solver, the CLI --solver
// flag) — in which case only that method runs, still verified.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/krylov.hpp"
#include "common/linsolve.hpp"
#include "common/sparse.hpp"
#include "robust/budget.hpp"
#include "robust/ncd.hpp"
#include "robust/report.hpp"

namespace relkit::robust {

/// Which stationary solver robust_steady_state runs.
enum class SolverChoice {
  kAuto,      ///< the verified fallback chain (default)
  kGth,       ///< dense GTH only
  kSor,       ///< SOR / symmetric Gauss-Seidel only
  kBicgstab,  ///< preconditioned BiCGSTAB + RCM only
  kPower,     ///< damped power iteration only
  kAd,        ///< NCD aggregation-disaggregation only
};

/// Printable name ("auto", "gth", "sor", "bicgstab", "power", "ad").
const char* solver_choice_name(SolverChoice c);

/// Parses a solver name as printed by solver_choice_name. Returns false
/// (and leaves `out` untouched) on an unknown name.
bool parse_solver_choice(std::string_view text, SolverChoice& out);

/// Process-wide default solver, consulted when an options struct says
/// kAuto and no thread-local override is installed. Set by the CLI
/// --solver flag. Thread-safe.
SolverChoice default_solver();
void set_default_solver(SolverChoice c);

/// The solver the current thread would use for a kAuto solve: the
/// innermost ScopedSolverChoice if one is active, else default_solver().
SolverChoice ambient_solver();

/// Swaps the calling thread's solver override slot (kAuto = no override)
/// and returns the previous value. Prefer ScopedSolverChoice.
SolverChoice exchange_solver_override(SolverChoice c);

/// RAII thread-local solver override, mirroring ScopedDeadline: requests
/// in relkit_serve install one so a per-request solver choice cannot leak
/// into other requests sharing the worker pool.
class ScopedSolverChoice {
 public:
  explicit ScopedSolverChoice(SolverChoice c)
      : prev_(exchange_solver_override(c)) {}
  ~ScopedSolverChoice() { exchange_solver_override(prev_); }
  ScopedSolverChoice(const ScopedSolverChoice&) = delete;
  ScopedSolverChoice& operator=(const ScopedSolverChoice&) = delete;

 private:
  SolverChoice prev_;
};

/// Options for the resilient steady-state solve.
struct RobustSteadyOptions {
  /// Use dense GTH as the *primary* method at or below this size.
  std::size_t dense_primary = 512;
  /// Allow dense GTH as the *last-resort* fallback at or below this size
  /// (dense O(n^3) is acceptable when the iterative methods have failed).
  std::size_t dense_fallback = 2048;
  SorOptions sor;
  PowerOptions power;
  BicgstabOptions bicgstab;  ///< Krylov tier (precond is the first attempt)
  AdOptions ncd;             ///< NCD detection threshold + A/D solve knobs
  /// In the kAuto chain, attempt A/D only when the detector reports a
  /// decomposability parameter at or below this (and >= 2 blocks, each
  /// small enough for its dense censored solve).
  double ncd_auto_coupling = 0.2;
  /// kAuto consults the thread/process ambient solver (ScopedSolverChoice
  /// / set_default_solver); any other value forces that single method.
  SolverChoice solver = SolverChoice::kAuto;
  Budget budget;  ///< overall budget; also forwarded to each attempt
  /// A candidate pi is accepted when max|pi Q| <= verify_tol * max(1, rate
  /// scale). Looser than the iterative tol on purpose: this is the "is the
  /// answer usable at all" bar, not the convergence target.
  double verify_tol = 1e-6;
  /// Parallelism degree passed through to every attempt (SOR residual
  /// evaluation, power-iteration matvec) and to the verification residual.
  /// 0 = parallel::default_jobs(); 1 = force sequential.
  unsigned jobs = 0;
};

/// Result of a resilient solve: the distribution plus full diagnostics.
struct RobustResult {
  std::vector<double> pi;
  SolveReport report;
};

/// Stationary distribution of an irreducible CTMC given the *transposed*
/// generator (row i of `qt` = column i of Q, off-diagonal entries only) and
/// the diagonal of Q. Runs the verified fallback chain described above.
/// Throws NumericalError if the generator contains non-finite entries and
/// ConvergenceError (best partial + report) if every method fails.
RobustResult robust_steady_state(const SparseMatrix& qt,
                                 const std::vector<double>& diag,
                                 const RobustSteadyOptions& opts = {});

/// max_i |(pi Q)_i| for a candidate stationary vector (qt/diag as above).
double steady_state_residual(const SparseMatrix& qt,
                             const std::vector<double>& diag,
                             const std::vector<double>& pi);

/// Same, row-chunked on `pool` (nullptr = sequential). The value is
/// independent of the worker count: per-row accumulation order is fixed and
/// the chunk maxima fold in chunk-index order.
double steady_state_residual(const SparseMatrix& qt,
                             const std::vector<double>& diag,
                             const std::vector<double>& pi,
                             parallel::ThreadPool* pool);

/// True when every element of `v` is finite.
bool all_finite(const std::vector<double>& v);

/// Repairs a probability vector in place: clamps tiny negatives to 0 and
/// renormalizes to sum 1, recording a warning in `report` when the drift
/// exceeds `drift_warn`. Throws ConvergenceError (carrying `v` as the
/// partial result and `report`) when the vector is non-finite or has no
/// positive mass — the "no silent NaN" guarantee.
void repair_distribution(std::vector<double>& v, SolveReport& report,
                         const char* context, double drift_warn = 1e-9);

}  // namespace relkit::robust
