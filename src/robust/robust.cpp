#include "robust/robust.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"

namespace relkit::robust {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Dense Q reconstructed from its transposed sparse off-diagonal part.
Matrix densify(const SparseMatrix& qt, const std::vector<double>& diag) {
  const std::size_t n = qt.rows();
  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
      q(qt.col(k), i) += qt.value(k);  // qt row i holds column i of Q
    }
    q(i, i) = diag[i];
  }
  return q;
}

/// Uniformized DTMC P = I + Q/q built from the transposed generator;
/// returned in natural (row = row of P) orientation for multiply_left.
SparseMatrix uniformized_dtmc(const SparseMatrix& qt,
                              const std::vector<double>& diag) {
  const std::size_t n = qt.rows();
  double qmax = 0.0;
  for (const double d : diag) qmax = std::max(qmax, -d);
  const double q = qmax > 0.0 ? qmax * 1.02 : 1.0;
  SparseBuilder bt(n, n);  // builds P^T, transposed at the end
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
      bt.add(i, qt.col(k), qt.value(k) / q);
    }
    bt.add(i, i, 1.0 + diag[i] / q);
  }
  return bt.build().transposed();
}

// Process default + per-thread override for the solver choice. The
// override slot uses kAuto as "no override", mirroring ambient_deadline's
// "unlimited = empty slot" convention in budget.hpp.
std::atomic<SolverChoice> g_default_solver{SolverChoice::kAuto};
thread_local SolverChoice t_solver_override = SolverChoice::kAuto;

}  // namespace

const char* solver_choice_name(SolverChoice c) {
  switch (c) {
    case SolverChoice::kAuto: return "auto";
    case SolverChoice::kGth: return "gth";
    case SolverChoice::kSor: return "sor";
    case SolverChoice::kBicgstab: return "bicgstab";
    case SolverChoice::kPower: return "power";
    case SolverChoice::kAd: return "ad";
  }
  return "?";
}

bool parse_solver_choice(std::string_view text, SolverChoice& out) {
  if (text == "auto") out = SolverChoice::kAuto;
  else if (text == "gth") out = SolverChoice::kGth;
  else if (text == "sor") out = SolverChoice::kSor;
  else if (text == "bicgstab") out = SolverChoice::kBicgstab;
  else if (text == "power") out = SolverChoice::kPower;
  else if (text == "ad") out = SolverChoice::kAd;
  else return false;
  return true;
}

SolverChoice default_solver() {
  return g_default_solver.load(std::memory_order_relaxed);
}

void set_default_solver(SolverChoice c) {
  g_default_solver.store(c, std::memory_order_relaxed);
}

SolverChoice ambient_solver() {
  return t_solver_override != SolverChoice::kAuto ? t_solver_override
                                                  : default_solver();
}

SolverChoice exchange_solver_override(SolverChoice c) {
  const SolverChoice prev = t_solver_override;
  t_solver_override = c;
  return prev;
}

bool all_finite(const std::vector<double>& v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

double steady_state_residual(const SparseMatrix& qt,
                             const std::vector<double>& diag,
                             const std::vector<double>& pi) {
  return steady_state_residual(qt, diag, pi, nullptr);
}

double steady_state_residual(const SparseMatrix& qt,
                             const std::vector<double>& diag,
                             const std::vector<double>& pi,
                             parallel::ThreadPool* pool) {
  const std::size_t n = qt.rows();
  relkit::detail::require(diag.size() == n && pi.size() == n,
                  "steady_state_residual: size mismatch");
  auto worst_in = [&](std::size_t begin, std::size_t end) {
    double worst = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      double acc = diag[i] * pi[i];
      for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
        acc += qt.value(k) * pi[qt.col(k)];
      }
      worst = std::max(worst, std::abs(acc));
    }
    return worst;
  };
  if (pool == nullptr || pool->jobs() <= 1) return worst_in(0, n);
  return parallel::reduce_chunks<double>(
      *pool, n, parallel::default_chunk(n), 0.0, worst_in,
      [](double& acc, double part) { acc = std::max(acc, part); });
}

void repair_distribution(std::vector<double>& v, SolveReport& report,
                         const char* context, double drift_warn) {
  if (!all_finite(v)) {
    report.warn(std::string(context) + ": non-finite entries in result");
    record_last_report(report);
    throw ConvergenceError(
        std::string(context) +
            ": result contains NaN/Inf — refusing to return it silently",
        v, report);
  }
  double negative_mass = 0.0;
  double total = 0.0;
  for (double& x : v) {
    if (x < 0.0) {
      negative_mass -= x;
      x = 0.0;
    }
    total += x;
  }
  if (total <= 0.0) {
    report.warn(std::string(context) + ": probability mass collapsed to 0");
    record_last_report(report);
    throw ConvergenceError(
        std::string(context) + ": probability mass collapsed to 0", v,
        report);
  }
  if (negative_mass > drift_warn) {
    report.warn(std::string(context) + ": clamped negative mass " +
                std::to_string(negative_mass));
  }
  if (std::abs(total - 1.0) > drift_warn) {
    report.warn(std::string(context) + ": renormalized (sum drifted to " +
                std::to_string(total) + ")");
  }
  for (double& x : v) x /= total;
}

RobustResult robust_steady_state(const SparseMatrix& qt,
                                 const std::vector<double>& diag,
                                 const RobustSteadyOptions& opts) {
  const std::size_t n = qt.rows();
  relkit::detail::require(qt.cols() == n, "robust_steady_state: Q^T must be square");
  relkit::detail::require(diag.size() == n,
                  "robust_steady_state: diag size mismatch");
  relkit::detail::require(n >= 1, "robust_steady_state: empty generator");

  const auto start = std::chrono::steady_clock::now();
  auto& injector = testing::FaultInjector::instance();
  SolveReport report;

  // One pool lease for the whole chain: every attempt (SOR residuals,
  // power matvecs) and the verification residual share it.
  const parallel::PoolLease lease(opts.jobs);

  // One span for the whole verified solve; each attempt below opens a child
  // span so every fallback edge is visible in the trace with its residual.
  obs::Span solve_span("robust.steady_state");
  solve_span.set("n", n);
  solve_span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));

  if (!qt.all_finite() || !all_finite(diag)) {
    throw NumericalError(
        "robust_steady_state: generator contains non-finite entries "
        "(NaN/Inf) — check the model's rates");
  }

  if (n == 1) {
    report.method = "trivial";
    report.attempts = {"trivial"};
    report.note_attempt_result("trivial", 0, 0.0, true);
    report.converged = true;
    report.wall_seconds = seconds_since(start);
    record_last_report(report);
    return {{1.0}, report};
  }

  const double rate_scale = std::max({1.0, qt.max_abs(), [&] {
                                        double worst = 0.0;
                                        for (const double d : diag) {
                                          worst = std::max(worst,
                                                           std::abs(d));
                                        }
                                        return worst;
                                      }()});
  const double accept_res = opts.verify_tol * rate_scale;

  // Best (lowest-residual) candidate across all attempts, for the partial
  // result of a total failure.
  std::vector<double> best;
  double best_res = std::numeric_limits<double>::infinity();
  auto consider = [&](const std::vector<double>& v) {
    if (v.size() != n || !all_finite(v)) return;
    std::vector<double> copy = v;
    double total = 0.0;
    for (double& x : copy) {
      if (x < 0.0) x = 0.0;
      total += x;
    }
    if (total <= 0.0) return;
    for (double& x : copy) x /= total;
    const double res = steady_state_residual(qt, diag, copy, lease.get());
    if (std::isfinite(res) && res < best_res) {
      best = std::move(copy);
      best_res = res;
    }
  };

  std::string prev_method;
  auto begin_attempt = [&](const std::string& method, obs::Span& span) {
    report.note_attempt(method);
    span.set("method", method);
    if (!prev_method.empty()) {
      report.note_fallback(prev_method, method);
      span.set("fallback_from", prev_method);
    }
    prev_method = method;
  };

  // Closes the books on one attempt: per-attempt detail in the report and
  // the same numbers as attributes on the attempt's span.
  auto finish_attempt = [&](obs::Span* span, const std::string& method,
                            std::size_t iterations, double res,
                            bool accepted) {
    report.note_attempt_result(method, iterations, res, accepted);
    if (span) {
      span->set("iterations", iterations);
      if (!std::isnan(res)) span->set("residual", res);
      span->set("accepted", accepted);
    }
  };

  // Accepts a candidate if it survives verification; otherwise records why
  // it was rejected and keeps it as a partial-result candidate.
  auto accept = [&](std::vector<double> pi, const std::string& method,
                    std::size_t iterations, obs::Span* span)
      -> std::optional<RobustResult> {
    report.iterations += iterations;
    if (!all_finite(pi)) {
      report.warn(method + ": produced non-finite entries; rejected");
      finish_attempt(span, method, iterations, std::nan(""), false);
      return std::nullopt;
    }
    double total = 0.0;
    for (double& x : pi) {
      if (x < 0.0) x = 0.0;
      total += x;
    }
    if (total <= 0.0) {
      report.warn(method + ": probability mass collapsed; rejected");
      finish_attempt(span, method, iterations, std::nan(""), false);
      return std::nullopt;
    }
    for (double& x : pi) x /= total;
    const double res = steady_state_residual(qt, diag, pi, lease.get());
    if (!std::isfinite(res) || res > accept_res) {
      report.warn(method + ": residual " + std::to_string(res) +
                  " fails verification (accept <= " +
                  std::to_string(accept_res) + ")");
      finish_attempt(span, method, iterations, res, false);
      consider(pi);
      return std::nullopt;
    }
    finish_attempt(span, method, iterations, res, true);
    report.method = method;
    report.converged = true;
    report.residual = res;
    report.wall_seconds = seconds_since(start);
    solve_span.set("method", method);
    solve_span.set("iterations", report.iterations);
    solve_span.set("residual", res);
    solve_span.set("converged", true);
    record_last_report(report);
    return RobustResult{std::move(pi), report};
  };

  auto total_failure = [&](const std::string& why) -> ConvergenceError {
    report.residual = best_res;
    report.wall_seconds = seconds_since(start);
    solve_span.set("iterations", report.iterations);
    solve_span.set("residual", best_res);
    solve_span.set("converged", false);
    record_last_report(report);
    std::vector<double> partial = best;
    if (partial.empty()) {
      partial.assign(n, 1.0 / static_cast<double>(n));
    }
    std::string message = "robust_steady_state: " + why +
                          " (best residual " + std::to_string(best_res) +
                          ")";
    for (const auto& w : report.warnings) message += "\n  note: " + w;
    return ConvergenceError(message, std::move(partial), report);
  };

  // An absorbing (zero-diagonal) state makes the chain reducible; the
  // iterative methods cannot run (they divide by the diagonal), so only
  // dense GTH gets a chance to produce its informative error.
  bool has_zero_diag = false;
  for (const double d : diag) has_zero_diag |= (d >= 0.0);
  if (has_zero_diag && n > opts.dense_fallback) {
    // Too large to densify just to produce GTH's diagnosis.
    throw NumericalError(
        "robust_steady_state: chain has a state with no exit rate "
        "(absorbing => reducible); the stationary distribution is not "
        "unique");
  }

  bool gth_tried = false;
  std::string gth_error;

  auto try_gth = [&]() -> std::optional<RobustResult> {
    obs::Span span("robust.attempt");
    begin_attempt("gth", span);
    gth_tried = true;
    if (injector.should_fail("gth")) {
      report.warn("fault injection: gth forced to fail");
      finish_attempt(&span, "gth", 0, std::nan(""), false);
      return std::nullopt;
    }
    try {
      auto pi = gth_steady_state(densify(qt, diag));
      // GTH is direct: if accepted, any trajectory left over from a
      // rejected iterative attempt does not describe the answer.
      report.convergence.clear();
      return accept(std::move(pi), "gth", n, &span);
    } catch (const NumericalError& e) {
      gth_error = e.what();
      report.warn(std::string("gth: ") + e.what());
      finish_attempt(&span, "gth", 0, std::nan(""), false);
      return std::nullopt;
    }
  };

  const auto deadline_expired = [&] { return opts.budget.deadline.expired(); };
  const auto forward_budget = [&](Budget& dst) {
    if (opts.budget.max_iterations != 0 || !opts.budget.deadline.unlimited()) {
      dst = opts.budget;
    }
  };

  auto try_sor = [&](const SorOptions& sor_opts,
                     const std::string& label) -> std::optional<RobustResult> {
    obs::Span span("robust.attempt");
    begin_attempt(label, span);
    if (injector.should_fail("sor")) {
      report.warn("fault injection: " + label + " forced to fail");
      finish_attempt(&span, label, 0, std::nan(""), false);
      return std::nullopt;
    }
    try {
      SorResult r = sor_steady_state(qt, diag, sor_opts);
      // Keep the attempt's residual trajectory: if the candidate is
      // accepted it is the solve's trajectory; if rejected, a later
      // attempt overwrites it.
      report.convergence = r.report.convergence;
      return accept(std::move(r.pi), label, r.iterations, &span);
    } catch (const ConvergenceError& e) {
      report.iterations += e.report().iterations;
      report.convergence = e.report().convergence;
      report.warn(label + ": " + e.what());
      finish_attempt(&span, label, e.report().iterations,
                     e.report().residual, false);
      consider(e.partial_result());
      return std::nullopt;
    }
  };

  auto try_bicgstab =
      [&](Preconditioner precond,
          const std::string& label) -> std::optional<RobustResult> {
    obs::Span span("robust.attempt");
    begin_attempt(label, span);
    if (injector.should_fail("bicgstab")) {
      report.warn("fault injection: " + label + " forced to fail");
      finish_attempt(&span, label, 0, std::nan(""), false);
      return std::nullopt;
    }
    BicgstabOptions bi_opts = opts.bicgstab;
    bi_opts.precond = precond;
    if (bi_opts.jobs == 0) bi_opts.jobs = opts.jobs;
    forward_budget(bi_opts.budget);
    try {
      BicgstabResult r = bicgstab_steady_state(qt, diag, bi_opts);
      report.convergence = r.report.convergence;
      return accept(std::move(r.pi), label, r.iterations, &span);
    } catch (const ConvergenceError& e) {
      report.iterations += e.report().iterations;
      report.convergence = e.report().convergence;
      report.warn(label + ": " + e.what());
      finish_attempt(&span, label, e.report().iterations,
                     e.report().residual, false);
      consider(e.partial_result());
      return std::nullopt;
    }
  };

  auto try_ad = [&](const NcdPartition& part,
                    const std::string& label) -> std::optional<RobustResult> {
    obs::Span span("robust.attempt");
    begin_attempt(label, span);
    if (injector.should_fail("ad")) {
      report.warn("fault injection: " + label + " forced to fail");
      finish_attempt(&span, label, 0, std::nan(""), false);
      return std::nullopt;
    }
    AdOptions ad_opts = opts.ncd;
    if (ad_opts.jobs == 0) ad_opts.jobs = opts.jobs;
    forward_budget(ad_opts.budget);
    try {
      AdResult r = ad_steady_state(qt, diag, part, ad_opts);
      report.convergence = r.report.convergence;
      return accept(std::move(r.pi), label, r.sweeps, &span);
    } catch (const ConvergenceError& e) {
      report.iterations += e.report().iterations;
      report.convergence = e.report().convergence;
      report.warn(label + ": " + e.what());
      finish_attempt(&span, label, e.report().iterations,
                     e.report().residual, false);
      consider(e.partial_result());
      return std::nullopt;
    }
  };

  auto try_power = [&]() -> std::optional<RobustResult> {
    obs::Span span("robust.attempt");
    begin_attempt("power", span);
    if (injector.should_fail("power")) {
      report.warn("fault injection: power forced to fail");
      finish_attempt(&span, "power", 0, std::nan(""), false);
      return std::nullopt;
    }
    PowerOptions power_opts = opts.power;
    if (power_opts.jobs == 0) power_opts.jobs = opts.jobs;
    forward_budget(power_opts.budget);
    try {
      PowerResult r =
          power_steady_state(uniformized_dtmc(qt, diag), power_opts);
      report.convergence = r.report.convergence;
      return accept(std::move(r.pi), "power", r.iterations, &span);
    } catch (const ConvergenceError& e) {
      report.iterations += e.report().iterations;
      report.convergence = e.report().convergence;
      report.warn(std::string("power: ") + e.what());
      finish_attempt(&span, "power", e.report().iterations,
                     e.report().residual, false);
      consider(e.partial_result());
      return std::nullopt;
    }
  };

  SorOptions sor_opts = opts.sor;
  if (sor_opts.jobs == 0) sor_opts.jobs = opts.jobs;
  forward_budget(sor_opts.budget);

  // ---- forced single method ----------------------------------------------
  const SolverChoice choice = opts.solver != SolverChoice::kAuto
                                  ? opts.solver
                                  : ambient_solver();
  if (choice != SolverChoice::kAuto) {
    solve_span.set("forced", solver_choice_name(choice));
    if (has_zero_diag && choice != SolverChoice::kGth) {
      throw NumericalError(
          "robust_steady_state: chain has a state with no exit rate "
          "(absorbing => reducible); only --solver gth can diagnose it");
    }
    switch (choice) {
      case SolverChoice::kGth:
        if (auto r = try_gth()) return *r;
        break;
      case SolverChoice::kSor:
        if (auto r = try_sor(sor_opts, "sor")) return *r;
        break;
      case SolverChoice::kBicgstab:
        if (auto r = try_bicgstab(opts.bicgstab.precond, "bicgstab")) {
          return *r;
        }
        break;
      case SolverChoice::kPower:
        if (auto r = try_power()) return *r;
        break;
      case SolverChoice::kAd: {
        const NcdPartition part =
            detect_ncd_blocks(qt, diag, opts.ncd.coupling_threshold);
        if (part.blocks < 2) {
          report.warn("ad: NCD detector found a single block (coupling "
                      "threshold " +
                      std::to_string(opts.ncd.coupling_threshold) + ")");
        } else if (auto r = try_ad(part, "ad")) {
          return *r;
        }
        break;
      }
      case SolverChoice::kAuto:
        break;  // unreachable
    }
    throw total_failure(std::string("forced solver '") +
                        solver_choice_name(choice) + "' failed");
  }

  // ---- primary dense method for small chains ------------------------------
  if (n <= opts.dense_primary || has_zero_diag) {
    if (auto r = try_gth()) return *r;
    if (has_zero_diag) {
      // Iterative methods are structurally inapplicable; report the GTH
      // diagnosis (usually "chain is reducible") directly.
      throw total_failure(gth_error.empty()
                              ? "chain has an absorbing state (reducible)"
                              : gth_error);
    }
  }

  // ---- SOR ---------------------------------------------------------------
  if (auto r = try_sor(sor_opts, "sor")) return *r;
  if (deadline_expired()) throw total_failure("deadline expired during sor");

  // Retry once with over-relaxation disabled: stiff chains sometimes
  // tolerate no omega > 1 at all, and the adaptive probe can have burned
  // sweeps before settling.
  if (opts.sor.omega != 1.0 || opts.sor.adaptive_omega) {
    SorOptions reset = sor_opts;
    reset.omega = 1.0;
    reset.adaptive_omega = false;
    if (auto r = try_sor(reset, "sor(omega-reset)")) return *r;
    if (deadline_expired()) {
      throw total_failure("deadline expired during sor retry");
    }
  }

  // ---- NCD aggregation-disaggregation ------------------------------------
  // Only when the detector actually finds a decomposition: >= 2 blocks,
  // coupling small enough that A/D converges in a few sweeps, and every
  // block small enough for its dense censored solve.
  {
    const NcdPartition part =
        detect_ncd_blocks(qt, diag, opts.ncd.coupling_threshold);
    if (part.blocks >= 2 && part.coupling <= opts.ncd_auto_coupling &&
        part.max_block_size <= opts.dense_fallback) {
      if (auto r = try_ad(part, "ad")) return *r;
      if (deadline_expired()) {
        throw total_failure("deadline expired during ad");
      }
    }
  }

  // ---- preconditioned BiCGSTAB (the Krylov tier) --------------------------
  if (auto r = try_bicgstab(opts.bicgstab.precond, "bicgstab")) return *r;
  if (deadline_expired()) {
    throw total_failure("deadline expired during bicgstab");
  }
  if (opts.bicgstab.precond == Preconditioner::kIlu0) {
    // ILU0 can be a poor factor for chains with wildly unbalanced rates;
    // plain diagonal scaling sometimes still converges.
    if (auto r = try_bicgstab(Preconditioner::kJacobi, "bicgstab(jacobi)")) {
      return *r;
    }
    if (deadline_expired()) {
      throw total_failure("deadline expired during bicgstab retry");
    }
  }

  // ---- power iteration on the uniformized DTMC ---------------------------
  if (auto r = try_power()) return *r;
  if (deadline_expired()) throw total_failure("deadline expired during power");

  // ---- dense GTH as the last resort --------------------------------------
  if (!gth_tried && n <= opts.dense_fallback) {
    if (auto r = try_gth()) return *r;
  }

  throw total_failure("all methods failed");
}

}  // namespace relkit::robust
