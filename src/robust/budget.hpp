// Solve budgets: wall-clock deadlines and iteration caps.
//
// Every long-running RelKit solver (SOR, power iteration, fixed-point
// iteration, the Monte Carlo simulator) accepts a Budget so production
// callers can bound worst-case latency. When a budget is exhausted the
// solver throws robust::ConvergenceError carrying its best partial result
// and a SolveReport instead of discarding the work done so far.
//
// Header-only so the base `common` module can use it without a link
// dependency on the robust module.
#pragma once

#include <chrono>
#include <cstddef>
#include <limits>

namespace relkit::robust {

/// Wall-clock deadline. Default-constructed deadlines are unlimited.
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `seconds` from now (negative = already expired).
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(seconds));
    return d;
  }

  bool unlimited() const { return !armed_; }
  bool expired() const { return armed_ && Clock::now() >= end_; }

  /// Seconds left (+inf when unlimited, <= 0 when expired).
  double remaining_seconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(end_ - Clock::now()).count();
  }

  /// The tighter of two deadlines (an unlimited deadline never binds).
  static Deadline earliest(const Deadline& a, const Deadline& b) {
    if (!a.armed_) return b;
    if (!b.armed_) return a;
    return a.end_ <= b.end_ ? a : b;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool armed_ = false;
  Clock::time_point end_{};
};

namespace detail {
inline Deadline& ambient_deadline_slot() {
  thread_local Deadline ambient;
  return ambient;
}
}  // namespace detail

/// The calling thread's ambient deadline (unlimited unless a ScopedDeadline
/// is active). Solvers that accept a Budget merge this in with
/// Deadline::earliest, so a deadline installed at an entry point binds every
/// nested solve — including the hierarchical `event ... markov` submodels
/// the model parser solves on the spot, which never see caller options.
inline const Deadline& ambient_deadline() {
  return detail::ambient_deadline_slot();
}

/// RAII installer of the ambient deadline for the current thread. Entry
/// points use it to give one whole analysis a wall-clock bound:
/// relkit_cli --timeout-ms wraps the full model analysis, and every
/// relkit_serve worker wraps one request's solve. Nesting tightens — an
/// inner scope can only shorten the effective deadline, never extend it.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(const Deadline& d)
      : previous_(detail::ambient_deadline_slot()) {
    detail::ambient_deadline_slot() = Deadline::earliest(previous_, d);
  }
  ~ScopedDeadline() { detail::ambient_deadline_slot() = previous_; }
  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

  /// The deadline in effect inside this scope.
  const Deadline& effective() const {
    return detail::ambient_deadline_slot();
  }

 private:
  Deadline previous_;
};

/// Combined wall-clock / iteration budget threaded through solvers.
/// `max_iterations` counts whatever unit the solver iterates over (SOR
/// sweeps, power steps, fixed-point rounds, simulation replications);
/// 0 means "use the solver's own default".
struct Budget {
  Deadline deadline;
  std::size_t max_iterations = 0;

  bool unlimited() const {
    return deadline.unlimited() && max_iterations == 0;
  }

  /// The effective iteration limit given a solver's own default.
  std::size_t cap_iterations(std::size_t solver_default) const {
    if (max_iterations == 0) return solver_default;
    return max_iterations < solver_default ? max_iterations : solver_default;
  }
};

}  // namespace relkit::robust
