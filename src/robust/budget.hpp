// Solve budgets: wall-clock deadlines and iteration caps.
//
// Every long-running RelKit solver (SOR, power iteration, fixed-point
// iteration, the Monte Carlo simulator) accepts a Budget so production
// callers can bound worst-case latency. When a budget is exhausted the
// solver throws robust::ConvergenceError carrying its best partial result
// and a SolveReport instead of discarding the work done so far.
//
// Header-only so the base `common` module can use it without a link
// dependency on the robust module.
#pragma once

#include <chrono>
#include <cstddef>
#include <limits>

namespace relkit::robust {

/// Wall-clock deadline. Default-constructed deadlines are unlimited.
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `seconds` from now (negative = already expired).
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(seconds));
    return d;
  }

  bool unlimited() const { return !armed_; }
  bool expired() const { return armed_ && Clock::now() >= end_; }

  /// Seconds left (+inf when unlimited, <= 0 when expired).
  double remaining_seconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(end_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool armed_ = false;
  Clock::time_point end_{};
};

/// Combined wall-clock / iteration budget threaded through solvers.
/// `max_iterations` counts whatever unit the solver iterates over (SOR
/// sweeps, power steps, fixed-point rounds, simulation replications);
/// 0 means "use the solver's own default".
struct Budget {
  Deadline deadline;
  std::size_t max_iterations = 0;

  bool unlimited() const {
    return deadline.unlimited() && max_iterations == 0;
  }

  /// The effective iteration limit given a solver's own default.
  std::size_t cap_iterations(std::size_t solver_default) const {
    if (max_iterations == 0) return solver_default;
    return max_iterations < solver_default ? max_iterations : solver_default;
  }
};

}  // namespace relkit::robust
