#include "robust/ncd.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "common/error.hpp"
#include "common/linsolve.hpp"
#include "common/matrix.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"
#include "robust/robust.hpp"

namespace relkit::robust {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Union-find with path halving.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[b] = a;
  }
};

}  // namespace

NcdPartition detect_ncd_blocks(const SparseMatrix& qt,
                               const std::vector<double>& diag,
                               double coupling_threshold) {
  const std::size_t n = qt.rows();
  relkit::detail::require(qt.cols() == n, "detect_ncd_blocks: Q^T must be square");
  relkit::detail::require(diag.size() == n, "detect_ncd_blocks: diag size mismatch");

  NcdPartition part;
  part.block_of.assign(n, 0);
  if (n == 0) return part;

  // Strong edges: embedded-jump probability rate / |diag[source]| at or
  // above the threshold. qt(i, j) = Q(j, i), a transition j -> i.
  UnionFind uf(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
      const std::size_t j = qt.col(k);
      if (j == i) continue;
      const double out = std::abs(diag[j]);
      if (out <= 0.0) continue;
      if (qt.value(k) / out >= coupling_threshold) uf.unite(i, j);
    }
  }

  // Compact block labels and sizes.
  std::vector<std::size_t> label(n, std::numeric_limits<std::size_t>::max());
  std::vector<std::size_t> sizes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    if (label[root] == std::numeric_limits<std::size_t>::max()) {
      label[root] = sizes.size();
      sizes.push_back(0);
    }
    part.block_of[i] = label[root];
    ++sizes[label[root]];
  }
  part.blocks = sizes.size();
  part.max_block_size = *std::max_element(sizes.begin(), sizes.end());

  // Decomposability parameter: worst total embedded probability of leaving
  // the home block in one jump.
  std::vector<double> weak_out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
      const std::size_t j = qt.col(k);
      if (j == i || part.block_of[j] == part.block_of[i]) continue;
      const double out = std::abs(diag[j]);
      if (out > 0.0) weak_out[j] += qt.value(k) / out;
    }
  }
  part.coupling = *std::max_element(weak_out.begin(), weak_out.end());

  obs::gauge("markov.ncd.blocks").set(static_cast<double>(part.blocks));
  return part;
}

AdResult ad_steady_state(const SparseMatrix& qt,
                         const std::vector<double>& diag,
                         const NcdPartition& partition, const AdOptions& opts) {
  const std::size_t n = qt.rows();
  relkit::detail::require(qt.cols() == n, "ad_steady_state: Q^T must be square");
  relkit::detail::require(diag.size() == n, "ad_steady_state: diag size mismatch");
  relkit::detail::require(partition.block_of.size() == n,
                  "ad_steady_state: partition size mismatch");
  relkit::detail::require(partition.blocks >= 2,
                  "ad_steady_state: need at least 2 blocks (use a direct "
                  "solver for a single block)");
  for (std::size_t i = 0; i < n; ++i) {
    relkit::detail::require(diag[i] < 0.0,
                    "ad_steady_state: diagonal must be negative");
  }

  auto& injector = testing::FaultInjector::instance();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t max_sweeps =
      injector.cap("ad.max_sweeps", opts.budget.cap_iterations(opts.max_sweeps));
  const std::size_t b_count = partition.blocks;

  const parallel::PoolLease lease(opts.jobs);
  obs::Span span("solver.ad");
  span.set("n", n);
  span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));
  span.set("blocks", b_count);
  span.set("max_block", partition.max_block_size);
  span.set("coupling", partition.coupling);
  static obs::Counter& sweeps_counter = obs::counter("markov.ad.sweeps");

  SolveReport report;
  report.note_attempt("ad");

  // Block membership lists and within-block local indices.
  std::vector<std::vector<std::size_t>> members(b_count);
  std::vector<std::size_t> local(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    local[i] = members[partition.block_of[i]].size();
    members[partition.block_of[i]].push_back(i);
  }

  // Dense censored-block matrices M_I with M(li, lk) = Q(k, i) for states
  // i, k in block I — i.e. the transposed diagonal sub-generator. Built
  // once; lu_solve factors a copy each sweep.
  std::vector<Matrix> block_m(b_count);
  for (std::size_t bi = 0; bi < b_count; ++bi) {
    const auto& states = members[bi];
    Matrix m(states.size(), states.size(), 0.0);
    for (std::size_t li = 0; li < states.size(); ++li) {
      const std::size_t i = states[li];
      m(li, li) = diag[i];
      for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
        const std::size_t j = qt.col(k);
        if (j == i) {
          m(li, li) += qt.value(k);
        } else if (partition.block_of[j] == bi) {
          m(li, local[j]) += qt.value(k);
        }
      }
    }
    block_m[bi] = std::move(m);
  }

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> best;
  double best_res = std::numeric_limits<double>::infinity();

  auto give_up = [&](const std::string& why,
                     std::size_t sweep) -> ConvergenceError {
    report.iterations = sweep;
    report.residual = best_res;
    report.wall_seconds = seconds_since(start);
    report.note_attempt_result("ad", sweep, best_res, false);
    span.set("sweeps", sweep);
    span.set("residual", best_res);
    span.set("converged", false);
    record_last_report(report);
    std::vector<double> partial = best.empty() ? pi : best;
    return ConvergenceError(why, std::move(partial), report);
  };

  std::vector<double> xi(b_count, 0.0);
  for (std::size_t sweep = 1; sweep <= max_sweeps; ++sweep) {
    sweeps_counter.add();
    if (opts.budget.deadline.expired()) {
      report.warn("deadline expired after " + std::to_string(sweep - 1) +
                  " sweeps");
      throw give_up("ad_steady_state: deadline expired after " +
                        std::to_string(sweep - 1) + " sweeps (best residual " +
                        std::to_string(best_res) + ")",
                    sweep - 1);
    }

    // Aggregate: block masses and the B x B coupling generator, weighting
    // inter-block rates by the current conditional distribution.
    std::fill(xi.begin(), xi.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) xi[partition.block_of[i]] += pi[i];
    for (double& m : xi) {
      if (!(m > 0.0)) m = 1e-300;  // empty mass: keep weights finite
    }
    Matrix coupling(b_count, b_count, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bi = partition.block_of[i];
      for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
        const std::size_t j = qt.col(k);
        if (j == i) continue;
        const std::size_t bj = partition.block_of[j];
        if (bj == bi) continue;
        const double w = (pi[j] / xi[bj]) * qt.value(k);
        coupling(bj, bi) += w;
        coupling(bj, bj) -= w;
      }
    }
    std::vector<double> agg;
    try {
      agg = gth_steady_state(std::move(coupling));
    } catch (const NumericalError& e) {
      throw give_up(std::string("ad_steady_state: aggregate solve failed: ") +
                        e.what(),
                    sweep);
    }

    // Disaggregate, block Gauss-Seidel: each block's censored system uses
    // the freshest neighbor values, then is scaled to its aggregate mass.
    for (std::size_t bi = 0; bi < b_count; ++bi) {
      const auto& states = members[bi];
      std::vector<double> rhs(states.size(), 0.0);
      for (std::size_t li = 0; li < states.size(); ++li) {
        const std::size_t i = states[li];
        double inflow = 0.0;
        for (std::size_t k = qt.row_begin(i); k < qt.row_end(i); ++k) {
          const std::size_t j = qt.col(k);
          if (j == i || partition.block_of[j] == bi) continue;
          inflow += qt.value(k) * pi[j];
        }
        rhs[li] = -inflow;
      }
      std::vector<double> x;
      try {
        x = lu_solve(block_m[bi], rhs);
      } catch (const NumericalError& e) {
        throw give_up(std::string("ad_steady_state: block ") +
                          std::to_string(bi) + " solve failed: " + e.what(),
                      sweep);
      }
      double total = 0.0;
      for (double& v : x) {
        if (!std::isfinite(v)) {
          throw give_up("ad_steady_state: block iterate became non-finite",
                        sweep);
        }
        if (v < 0.0) v = 0.0;
        total += v;
      }
      const double target = agg[bi];
      if (total > 0.0) {
        const double scale = target / total;
        for (std::size_t li = 0; li < states.size(); ++li) {
          pi[states[li]] = x[li] * scale;
        }
      } else {
        const double each = target / static_cast<double>(states.size());
        for (const std::size_t s : states) pi[s] = each;
      }
    }
    double mass = 0.0;
    for (const double v : pi) mass += v;
    if (!(mass > 0.0) || !std::isfinite(mass)) {
      throw give_up("ad_steady_state: iterate lost probability mass", sweep);
    }
    for (double& v : pi) v /= mass;

    const double res = injector.tap(
        "ad.residual", steady_state_residual(qt, diag, pi, lease.get()));
    report.convergence.record(sweep, res);
    if (std::isfinite(res) && res < best_res) {
      best = pi;
      best_res = res;
    }
    if (res < opts.tol) {
      AdResult out;
      out.pi = pi;
      out.sweeps = sweep;
      out.residual = res;
      out.partition = partition;
      report.method = "ad";
      report.iterations = sweep;
      report.residual = res;
      report.converged = true;
      report.wall_seconds = seconds_since(start);
      report.note_attempt_result("ad", sweep, res, true);
      span.set("sweeps", sweep);
      span.set("residual", res);
      span.set("converged", true);
      out.report = report;
      record_last_report(out.report);
      return out;
    }
  }
  report.warn("sweep budget exhausted");
  throw give_up("ad_steady_state: no convergence after " +
                    std::to_string(max_sweeps) + " sweeps (best residual " +
                    std::to_string(best_res) + ")",
                max_sweeps);
}

}  // namespace relkit::robust
