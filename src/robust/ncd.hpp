// Courtois/Takahashi aggregation-disaggregation for NCD chains.
//
// Availability models are often *near-completely decomposable* (NCD): fast
// intra-subsystem dynamics (local failure/repair churn) coupled by rare
// inter-subsystem events. Courtois showed such chains split into blocks
// whose internal dynamics equilibrate almost independently, with a small
// aggregate chain moving probability between blocks; the error of treating
// them exactly so is O(epsilon), the maximum inter-block coupling
// probability. Takahashi's iterative aggregation-disaggregation (A/D)
// turns the approximation into an exact solver: alternate an aggregate
// B-state solve (B = number of blocks, dense GTH) with per-block censored
// solves (dense LU on each block), converging in a handful of sweeps when
// epsilon is small — regardless of the total state count.
//
// The detector partitions states by union-find over "strong" edges
// (embedded-jump probability >= threshold) and reports epsilon so the
// robust fallback chain can decide whether A/D is worth attempting.
#pragma once

#include <cstddef>
#include <vector>

#include "common/sparse.hpp"
#include "robust/budget.hpp"
#include "robust/report.hpp"

namespace relkit::robust {

/// Result of NCD block detection.
struct NcdPartition {
  std::vector<std::size_t> block_of;  ///< block index per state
  std::size_t blocks = 0;             ///< number of blocks
  std::size_t max_block_size = 0;     ///< largest block (dense solve size)
  /// Decomposability parameter: max over states of the total embedded-jump
  /// probability leaving the state's block. Small (<~0.1) means NCD and
  /// A/D converges in a few sweeps; near 1 means the partition is noise.
  double coupling = 0.0;
};

/// Options for NCD detection and the A/D solver.
struct AdOptions {
  /// Edges with embedded-jump probability rate/|diag| >= this are "strong"
  /// and keep their endpoints in one block.
  double coupling_threshold = 0.05;
  /// Convergence target: max_i |(pi Q)_i| of the normalized iterate.
  double tol = 1e-10;
  std::size_t max_sweeps = 200;
  Budget budget;      ///< deadline / sweep cap (default unlimited)
  unsigned jobs = 0;  ///< matvec parallelism; 0 = process default
};

/// Partition the chain into NCD blocks: union-find over edges whose
/// embedded-jump probability meets `coupling_threshold`. `qt` is the
/// transposed generator (row i = column i of Q, off-diagonal), `diag` the
/// diagonal of Q (all < 0). Also publishes the markov.ncd.blocks gauge.
NcdPartition detect_ncd_blocks(const SparseMatrix& qt,
                               const std::vector<double>& diag,
                               double coupling_threshold);

/// Result of the A/D stationary solve.
struct AdResult {
  std::vector<double> pi;
  std::size_t sweeps = 0;
  double residual = 0.0;  ///< verified max|pi Q| of the returned iterate
  NcdPartition partition;
  SolveReport report;
};

/// Stationary distribution by Takahashi iterative aggregation-
/// disaggregation using `partition` (from detect_ncd_blocks). Each sweep
/// solves the B-block coupling chain by dense GTH, then each block's
/// censored system by dense LU (block Gauss-Seidel order), so memory is
/// O(max_block_size^2 + B^2). Honors the budget and ConvergenceTrace
/// contracts; throws ConvergenceError with the best normalized iterate on
/// non-convergence. Requires partition.blocks >= 2.
AdResult ad_steady_state(const SparseMatrix& qt,
                         const std::vector<double>& diag,
                         const NcdPartition& partition,
                         const AdOptions& opts = {});

}  // namespace relkit::robust
