// Solve diagnostics: SolveReport and ConvergenceError.
//
// Every solver that can fail numerically produces a SolveReport recording
// which methods were attempted, which fallback edges were taken, iteration
// counts, the final residual, wall time, and any warnings (renormalization,
// non-finite values repaired, budget stops). The report of the most recent
// solve on the current thread is retrievable via last_report() — this is
// what the CLI's --diagnostics flag prints.
//
// ConvergenceError extends NumericalError with the best partial result the
// solver produced and the full report, so callers can degrade gracefully
// instead of losing all the work (tutorial practice: cross-check partial
// iterative results against a second method before trusting them).
//
// Header-only so the base `common` module can use it without a link
// dependency on the robust module.
//
// Since the obs layer landed, SolveReport is no longer a parallel
// diagnostics mechanism: the robust solvers emit one obs::Span per attempt
// (carrying the same iterations/residual via span attributes), fill the
// matching AttemptDetail here from the same instrumentation point, and
// record_last_report() simply retains the final structured summary for
// last_report() / ConvergenceError consumers.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/postmortem.hpp"
#include "robust/convergence_trace.hpp"

namespace relkit::robust {

/// Diagnostics of one (possibly multi-method) solve.
struct SolveReport {
  /// Per-attempt cost breakdown: one entry per method tried, in order —
  /// the same data the matching obs::Span carries as attributes.
  struct AttemptDetail {
    std::string method;
    std::size_t iterations = 0;
    /// Residual (or last delta) at the end of the attempt; NaN = unknown
    /// (e.g. the method threw before measuring one).
    double residual = std::nan("");
    bool accepted = false;  ///< true for the attempt whose answer was used
  };

  /// Method that produced the returned result ("gth", "sor", "power",
  /// "uniformization", "fixed-point", "monte-carlo"); empty on failure.
  std::string method;
  /// Methods attempted, in order.
  std::vector<std::string> attempts;
  /// Per-attempt iteration counts / final residuals, parallel to
  /// `attempts` when the solver records them (the robust chain does).
  std::vector<AttemptDetail> attempt_details;
  /// Fallback edges taken, e.g. "sor->power".
  std::vector<std::string> fallbacks;
  /// Non-fatal anomalies: renormalization drift, repaired values, budget
  /// stops, injected faults.
  std::vector<std::string> warnings;
  std::size_t iterations = 0;  ///< total across all attempts
  double residual = 0.0;       ///< verified post-solve residual
  double wall_seconds = 0.0;
  bool converged = false;
  /// True when the result was served from the markov::SolutionCache rather
  /// than recomputed; `method`/`attempts` then describe the original solve.
  bool cache_hit = false;
  /// Bounded residual/iteration trajectory of the accepted (or last)
  /// iterative attempt — at most ConvergenceTrace::kMaxSamples points via
  /// stride doubling. Empty for direct methods (GTH) and cache hits.
  ConvergenceTrace convergence;

  void note_attempt(std::string m) { attempts.push_back(std::move(m)); }
  void note_fallback(const std::string& from, const std::string& to) {
    fallbacks.push_back(from + "->" + to);
  }
  void warn(std::string message) { warnings.push_back(std::move(message)); }

  /// Records the outcome of one attempt (iterations spent, final residual,
  /// whether its answer was accepted). Call after note_attempt.
  void note_attempt_result(const std::string& m, std::size_t its,
                           double res, bool accepted) {
    attempt_details.push_back({m, its, res, accepted});
  }

  /// Multi-line human-readable rendering (CLI --diagnostics).
  std::string summary() const {
    std::string out;
    out += "method:     " + (method.empty() ? std::string("<none>") : method);
    if (cache_hit) out += " (cached)";
    out += converged ? " (converged)\n" : " (NOT converged)\n";
    out += "iterations: " + std::to_string(iterations) + "\n";
    out += "residual:   " + std::to_string(residual) + "\n";
    out += "wall time:  " + std::to_string(wall_seconds) + " s\n";
    if (!attempt_details.empty()) {
      out += "attempts:\n";
      for (const auto& a : attempt_details) {
        out += "  " + a.method + ": " + std::to_string(a.iterations) +
               " iterations, residual " +
               (std::isnan(a.residual) ? std::string("n/a")
                                       : std::to_string(a.residual)) +
               (a.accepted ? " (accepted)\n" : " (rejected)\n");
      }
    } else if (!attempts.empty()) {
      out += "attempts:  ";
      for (const auto& a : attempts) out += " " + a;
      out += "\n";
    }
    if (!fallbacks.empty()) {
      out += "fallbacks: ";
      for (const auto& f : fallbacks) out += " " + f;
      out += "\n";
    }
    if (!convergence.empty()) {
      const auto samples = convergence.samples();
      out += "convergence: " + std::to_string(convergence.recorded()) +
             " checks recorded, " + std::to_string(samples.size()) +
             " kept (stride " + std::to_string(convergence.stride()) + ")\n";
      // Compact trajectory: up to 8 evenly spaced points ending on the
      // final residual, so --diagnostics shows the shape of the decay.
      constexpr std::size_t kShow = 8;
      const std::size_t step =
          samples.size() <= kShow ? 1 : (samples.size() - 1) / (kShow - 1);
      out += "  it->residual:";
      auto show = [&](std::size_t i) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), " %llu:%.3g",
                      static_cast<unsigned long long>(samples[i].iteration),
                      samples[i].value);
        out += buf;
      };
      for (std::size_t i = 0; i < samples.size(); i += step) show(i);
      if ((samples.size() - 1) % step != 0) show(samples.size() - 1);
      out += "\n";
    }
    for (const auto& w : warnings) out += "warning: " + w + "\n";
    return out;
  }
};

namespace detail {
struct LastReportSlot {
  SolveReport report;
  bool valid = false;
};
inline LastReportSlot& last_report_slot() {
  thread_local LastReportSlot slot;
  return slot;
}
}  // namespace detail

/// Records `r` as the current thread's most recent solve report, and
/// mirrors a POD summary into the postmortem layer so a crash report can
/// say what the process was last solving.
inline void record_last_report(const SolveReport& r) {
  detail::last_report_slot() = {r, true};
  obs::postmortem::note_active_solve(
      r.method, static_cast<std::uint64_t>(r.iterations), r.residual,
      r.converged, r.wall_seconds,
      static_cast<std::uint32_t>(r.attempts.size()));
}

/// True once any solver on this thread has recorded a report.
inline bool has_last_report() { return detail::last_report_slot().valid; }

/// The most recent report (valid only if has_last_report()).
inline const SolveReport& last_report() {
  return detail::last_report_slot().report;
}

/// An iterative method ran out of budget or accuracy. Carries the best
/// partial result produced (may be empty when no iterate was ever finite)
/// and the full diagnostics report.
class ConvergenceError : public NumericalError {
 public:
  ConvergenceError(const std::string& what, std::vector<double> partial,
                   SolveReport report)
      : NumericalError(what),
        partial_(std::move(partial)),
        report_(std::move(report)) {}

  /// Best iterate at the time of failure (solver-specific interpretation;
  /// unnormalized quantities are normalized where meaningful).
  const std::vector<double>& partial_result() const { return partial_; }
  const SolveReport& report() const { return report_; }

 private:
  std::vector<double> partial_;
  SolveReport report_;
};

}  // namespace relkit::robust
