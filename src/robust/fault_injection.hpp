// Deterministic fault injection for robustness tests.
//
// Solvers are instrumented with named probe points; tests arm the global
// FaultInjector to corrupt values (NaN/Inf/override/scale), clamp iteration
// budgets, or force whole methods to fail, proving that every fallback edge
// of the resilience layer actually fires. When nothing is armed every hook
// is a single branch on a bool, so production code pays ~nothing.
//
// Probe points currently instrumented:
//   "ctmc.rate"          every transition rate read during generator assembly
//   "sor.max_iters"      SOR sweep budget (cap)
//   "sor.sweep-total"    normalization mass after each SOR sweep
//   "power.max_iters"    power-iteration budget (cap)
//   "power.delta"        per-step power-iteration delta
//   "uniformize.qt"      the Poisson mean q*t before weight computation
//   "uniformize.weight"  each Poisson weight consumed by transient()
//   "fixed_point.update" each raw fixed-point update value
//   "fixed_point.max_iters"  fixed-point iteration budget (cap)
//   "sim.replications"   simulator replication budget (cap)
//   "sim.rare.cycles"    rare-event regenerative-cycle budget (cap)
//   "serve.worker.delay_ms"  artificial per-request stall in relkit_serve
//                        workers (0 normally; inject a value to hold
//                        workers busy and saturate the admission queue)
// Failable methods: "gth", "sor", "power" (checked by the fallback chain),
// "serve.solve" (checked by the relkit_serve request path before the
// model is parsed, so the daemon's error handling can be driven without a
// failable model), and "sim.restart.split" (checked at every RESTART
// branch split, so the rare-event engine's ConvergenceError path can be
// driven deterministically).
//
// Header-only (Meyers singleton) so the base `common` module can call hooks
// without a link dependency on the robust module. Thread-safe: the serve
// chaos harness arms it while pool workers solve concurrently, so the maps
// are mutex-guarded and the fast path (nothing armed) is a single relaxed
// atomic load.
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace relkit::testing {

class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector injector;
    return injector;
  }

  /// Disarms everything and clears hit counters.
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    value_faults_.clear();
    caps_.clear();
    method_failures_.clear();
    hits_.clear();
    active_.store(false, std::memory_order_relaxed);
  }

  // ---- arming (called by tests) -------------------------------------------

  /// Replace the value at `point` with NaN on its `at_hit`-th visit (0-based).
  void inject_nan(const std::string& point, std::size_t at_hit = 0) {
    arm_value(point, std::numeric_limits<double>::quiet_NaN(), at_hit, false);
  }

  /// Replace the value at `point` with +Inf on its `at_hit`-th visit.
  void inject_inf(const std::string& point, std::size_t at_hit = 0) {
    arm_value(point, std::numeric_limits<double>::infinity(), at_hit, false);
  }

  /// Replace the value at `point` with `value` on its `at_hit`-th visit.
  void inject_value(const std::string& point, double value,
                    std::size_t at_hit = 0) {
    arm_value(point, value, at_hit, false);
  }

  /// Multiply every value passing `point` by `factor` (generator
  /// perturbation studies).
  void scale(const std::string& point, double factor) {
    arm_value(point, factor, 0, true);
  }

  /// Clamp any iteration budget passing `point` to at most `cap`.
  void clamp_iterations(const std::string& point, std::size_t cap) {
    std::lock_guard<std::mutex> lock(mu_);
    caps_[point] = cap;
    active_.store(true, std::memory_order_relaxed);
  }

  /// Force the named method to report failure `times` times (default:
  /// every time) when the fallback chain consults should_fail().
  void fail_method(const std::string& method,
                   std::size_t times = std::numeric_limits<std::size_t>::max()) {
    std::lock_guard<std::mutex> lock(mu_);
    method_failures_[method] = times;
    active_.store(true, std::memory_order_relaxed);
  }

  // ---- hooks (called by instrumented solvers) -----------------------------

  /// Passes `value` through `point`, applying any armed corruption.
  double tap(const char* point, double value) {
    if (!active_.load(std::memory_order_relaxed)) return value;
    std::lock_guard<std::mutex> lock(mu_);
    const std::string key(point);
    const std::size_t hit = hits_[key]++;
    const auto it = value_faults_.find(key);
    if (it == value_faults_.end()) return value;
    if (it->second.every_hit_scale) return value * it->second.value;
    if (hit != it->second.at_hit) return value;
    return it->second.value;
  }

  /// Passes an iteration budget through `point`, applying any armed clamp.
  std::size_t cap(const char* point, std::size_t iterations) {
    if (!active_.load(std::memory_order_relaxed)) return iterations;
    std::lock_guard<std::mutex> lock(mu_);
    const std::string key(point);
    ++hits_[key];
    const auto it = caps_.find(key);
    if (it == caps_.end()) return iterations;
    return iterations < it->second ? iterations : it->second;
  }

  /// True if the named method is armed to fail (consumes one charge).
  bool should_fail(const char* method) {
    if (!active_.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = method_failures_.find(method);
    if (it == method_failures_.end() || it->second == 0) return false;
    if (it->second != std::numeric_limits<std::size_t>::max()) --it->second;
    return true;
  }

  /// Times `point` has been visited while the injector was active.
  std::size_t hits(const std::string& point) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = hits_.find(point);
    return it == hits_.end() ? 0 : it->second;
  }

  bool active() const { return active_.load(std::memory_order_relaxed); }

 private:
  struct ValueFault {
    double value = 0.0;
    std::size_t at_hit = 0;
    bool every_hit_scale = false;
  };

  void arm_value(const std::string& point, double value, std::size_t at_hit,
                 bool every_hit_scale) {
    std::lock_guard<std::mutex> lock(mu_);
    value_faults_[point] = {value, at_hit, every_hit_scale};
    active_.store(true, std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::map<std::string, ValueFault> value_faults_;
  std::map<std::string, std::size_t> caps_;
  std::map<std::string, std::size_t> method_failures_;
  std::map<std::string, std::size_t> hits_;
  std::atomic<bool> active_{false};
};

/// RAII guard: resets the injector when a test scope ends.
struct FaultInjectionScope {
  FaultInjectionScope() { FaultInjector::instance().reset(); }
  ~FaultInjectionScope() { FaultInjector::instance().reset(); }
  FaultInjector& operator*() const { return FaultInjector::instance(); }
  FaultInjector* operator->() const { return &FaultInjector::instance(); }
};

}  // namespace relkit::testing
