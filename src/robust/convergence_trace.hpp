// Bounded residual/iteration time-series for iterative solvers.
//
// The tutorial's cost argument for state-space methods is ultimately about
// iterations to convergence; a SolveReport that only keeps the *final*
// residual hides whether a solve crawled linearly, plateaued, or diverged
// and recovered. ConvergenceTrace records the (iteration, residual) series
// a solver produces while staying strictly bounded in memory: it keeps at
// most kMaxSamples points by stride doubling — record every sample until
// the buffer fills, then drop every other retained point and double the
// stride, so a 10^5-iteration solve still yields <= 256 points spread
// evenly over the whole trajectory (plus the exact final point, which is
// always retained).
//
// Recording is unconditional (no obs::enabled() gate): the cost is a
// counter increment and a rare push_back, negligible next to the matvec or
// sweep each iteration performs, and the trace must be available to
// --diagnostics even when tracing is off.
//
// Header-only so `common` solvers can use it without a link dependency,
// like the rest of the robust diagnostics types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relkit::robust {

class ConvergenceTrace {
 public:
  static constexpr std::size_t kMaxSamples = 256;

  struct Sample {
    std::uint64_t iteration = 0;
    double value = 0.0;  ///< residual / delta / tail mass at that iteration
  };

  /// Records one point of the series. `iteration` is the solver's own
  /// iteration number (need not be contiguous — SOR checks every 8 sweeps).
  void record(std::uint64_t iteration, double value) {
    last_ = {iteration, value};
    have_last_ = true;
    if (seen_++ % stride_ == 0) {
      samples_.push_back(last_);
      if (samples_.size() >= kMaxSamples) {
        // Decimate: keep every other point, double the stride.
        std::size_t w = 0;
        for (std::size_t r = 0; r < samples_.size(); r += 2) {
          samples_[w++] = samples_[r];
        }
        samples_.resize(w);
        stride_ *= 2;
      }
    }
  }

  bool empty() const { return !have_last_; }
  /// Total points ever recorded (before decimation).
  std::uint64_t recorded() const { return seen_; }
  /// Current keep-1-in-stride decimation factor (1 until the first
  /// compaction).
  std::uint64_t stride() const { return stride_; }

  /// Retained points in iteration order; the final recorded point is always
  /// included even when the stride would have skipped it. Size is bounded
  /// by kMaxSamples regardless of how many points were recorded.
  std::vector<Sample> samples() const {
    std::vector<Sample> out = samples_;
    if (have_last_ &&
        (out.empty() || out.back().iteration != last_.iteration)) {
      out.push_back(last_);
    }
    return out;
  }

  void clear() {
    samples_.clear();
    seen_ = 0;
    stride_ = 1;
    have_last_ = false;
  }

 private:
  std::vector<Sample> samples_;
  Sample last_;
  std::uint64_t seen_ = 0;
  std::uint64_t stride_ = 1;
  bool have_last_ = false;
};

}  // namespace relkit::robust
