// Markov regenerative processes (MRGP).
//
// The abstract's fourth state-space class: between *regeneration points*
// the system evolves as a CTMC (the subordinated process), while ONE
// generally distributed timer runs globally — it is NOT reset by the
// exponential transitions. When the timer fires, a branching function of
// the current subordinated state chooses the next regeneration state; the
// subordinated CTMC may also hit an exit (absorbing) state first, which
// ends the cycle early. Software rejuvenation is the canonical instance:
// robust/fragile/failed dynamics subordinated under a deterministic
// rejuvenation clock.
//
// This class solves the steady state by the Markov-renewal argument:
// for each regeneration state r,
//   * alpha_r(u)          — subordinated transient distribution,
//   * E_r[time in j]      = int S_r(u) alpha_rj(u) du   (timer survival S_r)
//   * P(timer fires in j) = int alpha_rj(u) dF_r(u)
//   * P(early exit to a)  = int S_r(u) flow_a(u) du
// assemble an embedded DTMC over regeneration states and per-cycle expected
// sojourns; long-run state probabilities follow as ratio of expectations.
// Integrals are evaluated by adaptive quadrature over uniformization
// transients; a deterministic timer reduces each to a single evaluation.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/distributions.hpp"
#include "markov/ctmc.hpp"

namespace relkit::semimarkov {

/// What happens when the cycle of a regeneration state ends.
struct RegenerationRule {
  /// Timer distribution for this regeneration state (nullptr = no timer;
  /// the cycle can only end through a subordinated exit state).
  DistPtr timer;
  /// Next regeneration state when the timer fires while the subordinated
  /// chain is in state j: timer_branch[j]. Entries for exit states are
  /// ignored.
  std::vector<std::size_t> timer_branch;
};

/// A finite MRGP over a shared subordinated CTMC.
class Mrgp {
 public:
  /// `subordinated`: the CTMC the system follows between regenerations.
  /// Absorbing states of this chain are *exit* states: reaching one ends
  /// the cycle immediately.
  explicit Mrgp(markov::Ctmc subordinated);

  /// Declares a regeneration state: cycles start in subordinated state
  /// `entry` and follow `rule`. Returns the regeneration index.
  std::size_t add_regeneration(markov::StateId entry, RegenerationRule rule);

  /// Next regeneration when the subordinated chain exits early through
  /// absorbing state `exit_state` (must be declared for every exit state
  /// reachable in some cycle).
  void set_exit_branch(markov::StateId exit_state,
                       std::size_t regeneration_index);

  std::size_t regeneration_count() const { return regens_.size(); }

  /// Long-run probability of each *subordinated* state (time in exit
  /// states is zero by construction — exits are instantaneous).
  std::vector<double> steady_state() const;

  /// Long-run expected reward rate, rewards per subordinated state.
  double steady_state_reward(const std::vector<double>& rewards) const;

 private:
  struct CycleAnalysis {
    std::vector<double> time_in_state;  // per subordinated state
    double cycle_length = 0.0;
    std::vector<double> next_regen_prob;  // per regeneration index
  };
  CycleAnalysis analyze_cycle(std::size_t regen_index) const;

  markov::Ctmc chain_;
  struct Regen {
    markov::StateId entry;
    RegenerationRule rule;
  };
  std::vector<Regen> regens_;
  std::map<markov::StateId, std::size_t> exit_branch_;
};

}  // namespace relkit::semimarkov
