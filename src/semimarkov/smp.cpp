#include "semimarkov/smp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/quadrature.hpp"
#include "markov/dtmc.hpp"

namespace relkit::semimarkov {

StateId SemiMarkov::add_state(std::string name) {
  detail::require(!name.empty(), "SemiMarkov::add_state: empty name");
  detail::require(!index_.count(name),
                  "SemiMarkov::add_state: duplicate state '" + name + "'");
  const StateId id = names_.size();
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  out_.emplace_back();
  mode_.push_back(Mode::kUnset);
  return id;
}

void SemiMarkov::add_transition(StateId from, StateId to, double prob,
                                DistPtr sojourn) {
  detail::require(from < names_.size() && to < names_.size(),
                  "SemiMarkov::add_transition: state out of range");
  detail::require(prob > 0.0 && prob <= 1.0,
                  "SemiMarkov::add_transition: prob in (0,1]");
  detail::require(sojourn != nullptr,
                  "SemiMarkov::add_transition: null distribution");
  detail::require(mode_[from] != Mode::kRace,
                  "SemiMarkov::add_transition: state '" + names_[from] +
                      "' already uses race mode");
  mode_[from] = Mode::kKernel;
  out_[from].push_back({to, prob, std::move(sojourn)});
}

void SemiMarkov::add_race_transition(StateId from, StateId to, DistPtr clock) {
  detail::require(from < names_.size() && to < names_.size(),
                  "SemiMarkov::add_race_transition: state out of range");
  detail::require(clock != nullptr,
                  "SemiMarkov::add_race_transition: null distribution");
  detail::require(mode_[from] != Mode::kKernel,
                  "SemiMarkov::add_race_transition: state '" + names_[from] +
                      "' already uses kernel mode");
  mode_[from] = Mode::kRace;
  out_[from].push_back({to, std::numeric_limits<double>::quiet_NaN(),
                        std::move(clock)});
}

const std::string& SemiMarkov::state_name(StateId s) const {
  detail::require(s < names_.size(), "SemiMarkov::state_name: out of range");
  return names_[s];
}

StateId SemiMarkov::state_index(const std::string& name) const {
  const auto it = index_.find(name);
  detail::require(it != index_.end(),
                  "SemiMarkov::state_index: unknown state '" + name + "'");
  return it->second;
}

bool SemiMarkov::is_absorbing(StateId s) const {
  detail::require(s < names_.size(), "SemiMarkov::is_absorbing: out of range");
  return out_[s].empty();
}

void SemiMarkov::validate(StateId s) const {
  if (mode_[s] != Mode::kKernel) return;
  double total = 0.0;
  for (const auto& t : out_[s]) total += t.prob;
  detail::require_model(std::abs(total - 1.0) < 1e-9,
                        "SemiMarkov: branch probabilities out of state '" +
                            names_[s] + "' sum to " + std::to_string(total));
}

double SemiMarkov::kernel_density(StateId s, std::size_t branch,
                                  double u) const {
  const auto& ts = out_[s];
  if (mode_[s] == Mode::kKernel) {
    return ts[branch].prob * ts[branch].dist->pdf(u);
  }
  double density = ts[branch].dist->pdf(u);
  for (std::size_t k = 0; k < ts.size(); ++k) {
    if (k == branch) continue;
    density *= ts[k].dist->survival(u);
  }
  return density;
}

std::vector<std::pair<StateId, double>> SemiMarkov::branch_probabilities(
    StateId s) const {
  detail::require(s < names_.size(),
                  "SemiMarkov::branch_probabilities: out of range");
  validate(s);
  std::vector<std::pair<StateId, double>> out;
  const auto& ts = out_[s];
  if (ts.empty()) return out;
  if (mode_[s] == Mode::kKernel) {
    for (const auto& t : ts) out.emplace_back(t.to, t.prob);
    return out;
  }
  // Race mode: p_j = int_0^inf f_j(u) prod_{k != j} S_k(u) du. The
  // deterministic distribution has no density; handle an atom at d by
  // adding prod_{k != j} S_k(d) times the *remaining* survival mass jump.
  double accounted = 0.0;
  for (std::size_t b = 0; b < ts.size(); ++b) {
    double p;
    const auto* det = dynamic_cast<const Deterministic*>(ts[b].dist.get());
    if (det != nullptr) {
      double surv_others = 1.0;
      for (std::size_t k = 0; k < ts.size(); ++k) {
        if (k == b) continue;
        surv_others *= ts[k].dist->survival(det->value());
      }
      p = surv_others;  // clock b fires exactly at its atom if others later
    } else {
      p = integrate_to_inf(
          [this, s, b](double u) { return kernel_density(s, b, u); }, 1e-10);
    }
    out.emplace_back(ts[b].to, p);
    accounted += p;
  }
  detail::require_model(accounted > 1e-12,
                        "SemiMarkov: race probabilities vanish in state '" +
                            names_[s] + "'");
  // Normalize tiny numerical drift.
  for (auto& [to, p] : out) p /= accounted;
  return out;
}

double SemiMarkov::sojourn_survival(StateId s, double t) const {
  detail::require(s < names_.size(),
                  "SemiMarkov::sojourn_survival: out of range");
  if (out_[s].empty()) return 1.0;  // absorbing: never leaves
  if (t <= 0.0) return 1.0;
  if (mode_[s] == Mode::kKernel) {
    double surv = 0.0;
    for (const auto& tr : out_[s]) surv += tr.prob * tr.dist->survival(t);
    return surv;
  }
  double surv = 1.0;
  for (const auto& tr : out_[s]) surv *= tr.dist->survival(t);
  return surv;
}

double SemiMarkov::mean_sojourn(StateId s) const {
  detail::require(s < names_.size(), "SemiMarkov::mean_sojourn: out of range");
  validate(s);
  if (out_[s].empty()) {
    return std::numeric_limits<double>::infinity();
  }
  if (mode_[s] == Mode::kKernel) {
    double h = 0.0;
    for (const auto& tr : out_[s]) h += tr.prob * tr.dist->mean();
    return h;
  }
  return integrate_to_inf(
      [this, s](double u) { return sojourn_survival(s, u); }, 1e-10);
}

std::vector<double> SemiMarkov::steady_state() const {
  const std::size_t n = names_.size();
  detail::require_model(n >= 1, "SemiMarkov::steady_state: no states");
  markov::Dtmc embedded;
  for (StateId s = 0; s < n; ++s) {
    embedded.add_state(names_[s]);
  }
  for (StateId s = 0; s < n; ++s) {
    detail::require_model(!out_[s].empty(),
                          "SemiMarkov::steady_state: absorbing state '" +
                              names_[s] + "' in an irreducible analysis");
    // Merge parallel branches to the same successor.
    std::map<StateId, double> merged;
    for (const auto& [to, p] : branch_probabilities(s)) merged[to] += p;
    for (const auto& [to, p] : merged) {
      if (to == s) continue;  // self-jumps do not affect occupancy ratios
      embedded.add_transition(s, to, p);
    }
    // Renormalize implicitly: if self-loop mass existed, scale the rest.
    const double self_mass = merged.count(s) ? merged[s] : 0.0;
    detail::require_model(self_mass < 1.0 - 1e-12,
                          "SemiMarkov::steady_state: state '" + names_[s] +
                              "' only jumps to itself");
  }
  // Row sums may now be < 1 when self-loops were dropped; Dtmc requires
  // rows to sum to 1, so rebuild with normalization.
  markov::Dtmc normalized;
  for (StateId s = 0; s < n; ++s) normalized.add_state(names_[s]);
  for (StateId s = 0; s < n; ++s) {
    std::map<StateId, double> merged;
    for (const auto& [to, p] : branch_probabilities(s)) merged[to] += p;
    const double self_mass = merged.count(s) ? merged[s] : 0.0;
    for (const auto& [to, p] : merged) {
      if (to == s) continue;
      normalized.add_transition(s, to, p / (1.0 - self_mass));
    }
  }
  const std::vector<double> nu = normalized.steady_state();

  std::vector<double> pi(n, 0.0);
  double total = 0.0;
  for (StateId s = 0; s < n; ++s) {
    pi[s] = nu[s] * mean_sojourn(s);
    total += pi[s];
  }
  for (double& x : pi) x /= total;
  return pi;
}

std::vector<double> SemiMarkov::mean_first_passage(
    const std::vector<bool>& target) const {
  const std::size_t n = names_.size();
  detail::require(target.size() == n,
                  "mean_first_passage: target size mismatch");
  bool any = false;
  for (bool b : target) any = any || b;
  detail::require(any, "mean_first_passage: empty target set");

  // m_i = h_i + sum_{j not target} p_ij m_j for i not in target; m_i = 0
  // otherwise. Solve over non-target states.
  std::vector<std::size_t> rows;  // non-target states
  std::vector<std::size_t> ridx(n, SIZE_MAX);
  for (StateId s = 0; s < n; ++s) {
    if (!target[s]) {
      ridx[s] = rows.size();
      rows.push_back(s);
    }
  }
  const std::size_t m = rows.size();
  Matrix a(m, m);
  std::vector<double> b(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const StateId s = rows[r];
    detail::require_model(!out_[s].empty(),
                          "mean_first_passage: absorbing state '" +
                              names_[s] + "' outside the target set");
    a(r, r) = 1.0;
    b[r] = mean_sojourn(s);
    for (const auto& [to, p] : branch_probabilities(s)) {
      if (ridx[to] == SIZE_MAX) continue;
      a(r, ridx[to]) -= p;
    }
  }
  std::vector<double> sol;
  try {
    sol = lu_solve(a, b);
  } catch (const NumericalError&) {
    throw ModelError(
        "mean_first_passage: some state cannot reach the target set");
  }
  std::vector<double> out(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) out[rows[r]] = sol[r];
  return out;
}

std::vector<double> SemiMarkov::transient(StateId start, double t,
                                          std::size_t grid) const {
  const std::size_t n = names_.size();
  detail::require(start < n, "SemiMarkov::transient: start out of range");
  detail::require(t >= 0.0, "SemiMarkov::transient: t must be >= 0");
  detail::require(grid >= 2, "SemiMarkov::transient: grid too small");
  for (StateId s = 0; s < n; ++s) validate(s);

  if (t == 0.0) {
    std::vector<double> pi(n, 0.0);
    pi[start] = 1.0;
    return pi;
  }

  const double h = t / static_cast<double>(grid);

  // Kernel increments dk[s][branch][l] = K_ij(t_l) - K_ij(t_{l-1}) by the
  // trapezoid rule on the kernel density, plus explicit atoms for
  // deterministic race clocks.
  // V[m][i][j] = P(state j at time t_m | entered i at 0); we only need
  // j-distributions from every i, at every grid point (the convolution
  // needs all of them).
  std::vector<std::vector<std::vector<double>>> dk(n);
  for (StateId s = 0; s < n; ++s) {
    dk[s].assign(out_[s].size(), std::vector<double>(grid + 1, 0.0));
    for (std::size_t branch = 0; branch < out_[s].size(); ++branch) {
      const auto* det =
          dynamic_cast<const Deterministic*>(out_[s][branch].dist.get());
      if (det != nullptr) {
        // Atom at d: jump mass lands in the grid cell containing d. In race
        // mode the atom is weighted by the other clocks still running; in
        // kernel mode by the branch probability.
        const double d = det->value();
        if (d <= t + 1e-12) {
          double mass;
          if (mode_[s] == Mode::kRace) {
            mass = 1.0;
            for (std::size_t k = 0; k < out_[s].size(); ++k) {
              if (k == branch) continue;
              mass *= out_[s][k].dist->survival(d);
            }
          } else {
            mass = out_[s][branch].prob;
          }
          auto cell = static_cast<std::size_t>(std::ceil(d / h - 1e-12));
          cell = std::min(std::max<std::size_t>(cell, 1),
                          static_cast<std::size_t>(grid));
          dk[s][branch][cell] += mass;
        }
        continue;
      }
      double prev = kernel_density(s, branch, 0.0);
      if (!std::isfinite(prev)) prev = 0.0;
      for (std::size_t l = 1; l <= grid; ++l) {
        double cur = kernel_density(s, branch, static_cast<double>(l) * h);
        if (!std::isfinite(cur)) cur = 0.0;
        dk[s][branch][l] = 0.5 * (prev + cur) * h;
        prev = cur;
      }
    }
  }

  // March the renewal equation: V_i(t_m) = delta_i S_i(t_m) +
  // sum_branches sum_{l=1..m} dk[i][b][l] V_{to(b)}(t_{m-l}) (midpoint-in-
  // cell convolution, lag m-l refers to time remaining after the jump).
  // We store V for all start states because the convolution references them.
  std::vector<std::vector<std::vector<double>>> v(
      grid + 1,
      std::vector<std::vector<double>>(n, std::vector<double>(n, 0.0)));
  for (StateId i = 0; i < n; ++i) v[0][i][i] = 1.0;
  for (std::size_t m = 1; m <= grid; ++m) {
    const double tm = static_cast<double>(m) * h;
    for (StateId i = 0; i < n; ++i) {
      std::vector<double>& row = v[m][i];
      row.assign(n, 0.0);
      row[i] = sojourn_survival(i, tm);
      for (std::size_t branch = 0; branch < out_[i].size(); ++branch) {
        const StateId to = out_[i][branch].to;
        const auto& inc = dk[i][branch];
        for (std::size_t l = 1; l <= m; ++l) {
          const double w = inc[l];
          if (w == 0.0) continue;
          const std::vector<double>& tail = v[m - l][to];
          for (StateId j = 0; j < n; ++j) row[j] += w * tail[j];
        }
      }
    }
  }
  std::vector<double> result = v[grid][start];
  // Normalize the O(h^2) discretization drift.
  double total = 0.0;
  for (double x : result) total += x;
  if (total > 0.0) {
    for (double& x : result) x /= total;
  }
  return result;
}

}  // namespace relkit::semimarkov
