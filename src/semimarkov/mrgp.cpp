#include "semimarkov/mrgp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "markov/dtmc.hpp"

namespace relkit::semimarkov {

Mrgp::Mrgp(markov::Ctmc subordinated) : chain_(std::move(subordinated)) {
  detail::require_model(chain_.state_count() >= 1, "Mrgp: empty chain");
}

std::size_t Mrgp::add_regeneration(markov::StateId entry,
                                   RegenerationRule rule) {
  detail::require(entry < chain_.state_count(),
                  "Mrgp::add_regeneration: entry out of range");
  detail::require_model(!chain_.is_absorbing(entry),
                        "Mrgp::add_regeneration: entry must be a transient "
                        "state of the subordinated chain");
  if (rule.timer != nullptr) {
    detail::require(rule.timer_branch.size() == chain_.state_count(),
                    "Mrgp::add_regeneration: timer_branch must cover every "
                    "subordinated state");
  }
  regens_.push_back({entry, std::move(rule)});
  return regens_.size() - 1;
}

void Mrgp::set_exit_branch(markov::StateId exit_state,
                           std::size_t regeneration_index) {
  detail::require(exit_state < chain_.state_count(),
                  "Mrgp::set_exit_branch: state out of range");
  detail::require_model(chain_.is_absorbing(exit_state),
                        "Mrgp::set_exit_branch: '" +
                            chain_.state_name(exit_state) +
                            "' is not an exit (absorbing) state");
  exit_branch_[exit_state] = regeneration_index;
}

Mrgp::CycleAnalysis Mrgp::analyze_cycle(std::size_t regen_index) const {
  const Regen& regen = regens_[regen_index];
  const std::size_t n = chain_.state_count();
  const auto pi0 = chain_.point_mass(regen.entry);

  CycleAnalysis out;
  out.time_in_state.assign(n, 0.0);
  out.next_regen_prob.assign(regens_.size(), 0.0);

  std::vector<double> exit_mass(n, 0.0);  // probability of early exit via a

  if (regen.rule.timer == nullptr) {
    // No timer: the cycle ends through an exit state; the classic
    // absorbing analysis gives both sojourns and exit probabilities.
    const auto res = chain_.absorbing_analysis(pi0);
    for (std::size_t j = 0; j < n; ++j) {
      if (!chain_.is_absorbing(j)) {
        out.time_in_state[j] = res.expected_sojourn[j];
        out.cycle_length += res.expected_sojourn[j];
      } else {
        exit_mass[j] = res.absorption_probability[j];
      }
    }
  } else {
    // Quadrature nodes over the timer distribution: exact single node for
    // a deterministic timer, midpoint quantiles otherwise.
    std::vector<std::pair<double, double>> nodes;  // (t, weight)
    if (const auto* det =
            dynamic_cast<const Deterministic*>(regen.rule.timer.get())) {
      nodes.emplace_back(det->value(), 1.0);
    } else {
      constexpr std::size_t kNodes = 192;
      for (std::size_t k = 0; k < kNodes; ++k) {
        const double p = (static_cast<double>(k) + 0.5) / kNodes;
        nodes.emplace_back(regen.rule.timer->quantile(p), 1.0 / kNodes);
      }
    }

    const SparseMatrix q = chain_.sparse_generator();
    for (const auto& [t, w] : nodes) {
      const auto cum = chain_.cumulative_time(pi0, t);
      const auto pit = chain_.transient(pi0, t);
      for (std::size_t j = 0; j < n; ++j) {
        if (chain_.is_absorbing(j)) continue;
        out.time_in_state[j] += w * cum[j];
        // Timer fires while in transient state j.
        const std::size_t target = regen.rule.timer_branch[j];
        detail::require(target < regens_.size(),
                        "Mrgp: timer_branch index out of range");
        out.next_regen_prob[target] += w * pit[j];
        // Early-exit flows accumulated from expected time * exit rate.
        for (std::size_t kk = q.row_begin(j); kk < q.row_end(j); ++kk) {
          const std::size_t to = q.col(kk);
          if (to != j && chain_.is_absorbing(to)) {
            exit_mass[to] += w * cum[j] * q.value(kk);
          }
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      out.cycle_length += out.time_in_state[j];
    }
  }

  // Route early exits through their declared regeneration branches.
  for (std::size_t a = 0; a < n; ++a) {
    if (exit_mass[a] <= 1e-14) continue;
    const auto it = exit_branch_.find(a);
    detail::require_model(it != exit_branch_.end(),
                          "Mrgp: subordinated exit state '" +
                              chain_.state_name(a) +
                              "' reachable but has no exit branch");
    detail::require(it->second < regens_.size(),
                    "Mrgp: exit branch index out of range");
    out.next_regen_prob[it->second] += exit_mass[a];
  }

  // Sanity: branch mass must be a probability distribution.
  double total = 0.0;
  for (double p : out.next_regen_prob) total += p;
  detail::require_model(std::abs(total - 1.0) < 1e-6,
                        "Mrgp: cycle branch probabilities sum to " +
                            std::to_string(total) +
                            " (numerical quadrature too coarse or model "
                            "inconsistent)");
  for (double& p : out.next_regen_prob) p /= total;
  return out;
}

std::vector<double> Mrgp::steady_state() const {
  detail::require_model(!regens_.empty(),
                        "Mrgp::steady_state: no regeneration states");
  const std::size_t m = regens_.size();

  std::vector<CycleAnalysis> cycles;
  cycles.reserve(m);
  for (std::size_t r = 0; r < m; ++r) cycles.push_back(analyze_cycle(r));

  // Embedded DTMC over regeneration states.
  std::vector<double> nu;
  if (m == 1) {
    nu = {1.0};
  } else {
    markov::Dtmc embedded;
    for (std::size_t r = 0; r < m; ++r) {
      embedded.add_state("r" + std::to_string(r));
    }
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t r2 = 0; r2 < m; ++r2) {
        if (cycles[r].next_regen_prob[r2] > 0.0 && r2 != r) {
          embedded.add_transition(r, r2, cycles[r].next_regen_prob[r2]);
        }
      }
      // Self-loop mass handled implicitly: Dtmc rows must sum to 1, so add
      // the self transition when present.
      if (cycles[r].next_regen_prob[r] > 0.0) {
        embedded.add_transition(r, r, cycles[r].next_regen_prob[r]);
      }
    }
    nu = embedded.steady_state();
  }

  const std::size_t n = chain_.state_count();
  std::vector<double> pi(n, 0.0);
  double denom = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      pi[j] += nu[r] * cycles[r].time_in_state[j];
    }
    denom += nu[r] * cycles[r].cycle_length;
  }
  detail::require_model(denom > 0.0, "Mrgp::steady_state: zero cycle length");
  for (double& x : pi) x /= denom;
  return pi;
}

double Mrgp::steady_state_reward(const std::vector<double>& rewards) const {
  detail::require(rewards.size() == chain_.state_count(),
                  "Mrgp::steady_state_reward: reward size mismatch");
  const auto pi = steady_state();
  double acc = 0.0;
  for (std::size_t j = 0; j < pi.size(); ++j) acc += pi[j] * rewards[j];
  return acc;
}

}  // namespace relkit::semimarkov
