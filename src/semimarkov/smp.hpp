// Semi-Markov processes (SMP).
//
// The tutorial's answer to non-exponential sojourn times when phase-type
// expansion is not wanted: keep the embedded jump structure of a Markov
// chain but allow arbitrary sojourn distributions. Two specification styles
// are supported, matching how models are written in practice:
//
//   * kernel mode  — add_transition(i, j, p_ij, H_ij): branch probability
//     plus conditional sojourn distribution (Trivedi's K_ij(t) = p_ij
//     H_ij(t));
//   * race mode    — add_race_transition(i, j, D_ij): competing clocks; the
//     first to expire wins. Branch probabilities and kernel densities are
//     derived numerically: p_ij = int f_j(u) prod_{k != j} S_k(u) du. This
//     covers the classic Markov-regenerative pattern of an exponential
//     failure racing a *deterministic* rejuvenation/maintenance timer.
//
// A state must use one style or the other. Solvers:
//   * steady state      — embedded-DTMC stationary vector weighted by mean
//     sojourn times: pi_i = nu_i h_i / sum_k nu_k h_k;
//   * mean first passage — linear system m_i = h_i + sum_{j notin A} p_ij m_j;
//   * transient         — Markov renewal equation discretized on a uniform
//     grid (trapezoidal kernel increments), V(t) accurate to O(h^2).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/distributions.hpp"

namespace relkit::semimarkov {

using StateId = std::size_t;

/// A finite semi-Markov process with named states.
class SemiMarkov {
 public:
  StateId add_state(std::string name);

  /// Kernel-mode transition: with probability `prob`, after a sojourn drawn
  /// from `sojourn`, jump to `to`. Probabilities out of a state must sum to
  /// 1 (validated at solve time); a state with no transitions is absorbing.
  void add_transition(StateId from, StateId to, double prob, DistPtr sojourn);

  /// Race-mode transition: a clock with distribution `clock` competes with
  /// the state's other race transitions; the earliest expiry determines the
  /// successor.
  void add_race_transition(StateId from, StateId to, DistPtr clock);

  std::size_t state_count() const { return names_.size(); }
  const std::string& state_name(StateId s) const;
  StateId state_index(const std::string& name) const;
  bool is_absorbing(StateId s) const;

  /// Embedded-chain branch probabilities out of `s` (race probabilities are
  /// computed by numerical integration), in (to, prob) pairs.
  std::vector<std::pair<StateId, double>> branch_probabilities(
      StateId s) const;

  /// Unconditional sojourn survival in `s` at time t.
  double sojourn_survival(StateId s, double t) const;

  /// Mean sojourn time in `s`.
  double mean_sojourn(StateId s) const;

  /// Long-run fraction of time in each state (irreducible SMP):
  /// pi_i = nu_i h_i / sum_k nu_k h_k.
  std::vector<double> steady_state() const;

  /// Mean first-passage time into the `target` set from each state
  /// (0 for target states). Throws ModelError if a state cannot reach the
  /// target set.
  std::vector<double> mean_first_passage(
      const std::vector<bool>& target) const;

  /// State occupancy probabilities at time t starting from `start`,
  /// by discretizing the Markov renewal equation on `grid` time steps.
  std::vector<double> transient(StateId start, double t,
                                std::size_t grid = 800) const;

 private:
  struct Transition {
    StateId to;
    double prob;     // kernel mode; NaN in race mode until computed
    DistPtr dist;    // sojourn (kernel) or clock (race)
  };
  enum class Mode { kUnset, kKernel, kRace };

  /// Density of the kernel K_ij at u: race -> f_j(u) prod_{k!=j} S_k(u);
  /// kernel -> p_ij f_ij(u).
  double kernel_density(StateId s, std::size_t branch, double u) const;
  void validate(StateId s) const;

  std::vector<std::string> names_;
  std::map<std::string, StateId> index_;
  std::vector<std::vector<Transition>> out_;
  std::vector<Mode> mode_;
};

}  // namespace relkit::semimarkov
