// Canonical availability CTMC builders.
//
// The same small chains appear in every availability study the tutorial
// walks through; these builders construct them with validated parameters so
// examples, tests, and user models share one audited implementation.
// All rates are per unit time; states are named for readable output.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.hpp"

namespace relkit::markov {

/// Two-state up/down model. States: "up", "down".
Ctmc two_state_availability(double failure_rate, double repair_rate);

/// n identical units, k needed, r repair crews (repair rate each `mu`,
/// failure rate each `lambda`). States "up<i>" = i units up, i = n..0.
/// The classic machine-repairman availability chain.
struct KofNChain {
  Ctmc chain;
  /// Steady-state probability that at least k units are up.
  double availability() const;
  std::size_t n = 0;
  std::size_t k = 0;
};
KofNChain k_of_n_shared_repair(std::size_t n, std::size_t k, double lambda,
                               double mu, std::size_t repair_crews = 1);

/// Active/standby duplex with imperfect coverage: a covered failure of the
/// active unit switches to the standby at rate `switchover_rate`; an
/// uncovered one (prob 1 - coverage) requires manual recovery. States:
/// "both", "switching", "solo", "uncovered", "dual".
struct DuplexCoverage {
  Ctmc chain;
  /// Up states are "both" and "solo".
  double availability() const;
  double downtime_minutes_per_year() const;
};
DuplexCoverage duplex_with_coverage(double failure_rate, double repair_rate,
                                    double coverage, double switchover_rate,
                                    double manual_recovery_rate);

/// Software rejuvenation chain (exponential approximation): "robust"
/// degrades to "fragile" (rate `aging_rate`), fragile fails (rate
/// `failure_rate`); rejuvenation fires from either live state at
/// `rejuvenation_rate`, taking `rejuvenation_duration_rate` to complete;
/// repair of a full failure at `repair_rate`. States: "robust", "fragile",
/// "rejuvenating", "failed".
struct RejuvenationChain {
  Ctmc chain;
  double availability() const;  ///< robust + fragile
};
RejuvenationChain software_rejuvenation(double aging_rate,
                                        double failure_rate,
                                        double repair_rate,
                                        double rejuvenation_rate,
                                        double rejuvenation_duration_rate);

}  // namespace relkit::markov
