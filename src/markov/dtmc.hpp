// Discrete-time Markov chains (DTMC).
//
// Used directly for per-demand / per-cycle models, and internally as the
// embedded chain of semi-Markov processes. Provides stationary analysis
// (GTH below a size threshold, damped power iteration above), n-step
// transient distributions, and absorbing-chain analysis via the fundamental
// matrix N = (I - Q_TT)^{-1}.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/sparse.hpp"

namespace relkit::markov {

/// Result of analyzing a DTMC with absorbing states.
struct DtmcAbsorbingAnalysis {
  /// Expected number of visits to each transient state before absorption.
  std::vector<double> expected_visits;
  /// Expected number of steps until absorption.
  double mean_steps_to_absorption = 0.0;
  /// Probability of absorption into each absorbing state.
  std::vector<double> absorption_probability;
};

/// A finite DTMC with named states.
class Dtmc {
 public:
  /// Adds a state; names must be unique and non-empty.
  std::size_t add_state(std::string name);

  /// Accumulates transition probability from -> to. Row sums must reach
  /// exactly 1 (within 1e-9) by solve time; rows with no transitions are
  /// treated as absorbing (implicit self-loop).
  void add_transition(std::size_t from, std::size_t to, double prob);

  std::size_t state_count() const { return names_.size(); }
  const std::string& state_name(std::size_t s) const;
  std::size_t state_index(const std::string& name) const;

  /// Row sum of explicit outgoing probabilities.
  double row_sum(std::size_t s) const;
  /// True if the state has no explicit outgoing transitions.
  bool is_absorbing(std::size_t s) const;

  /// Stationary distribution of an irreducible aperiodic chain. `jobs`
  /// parallelizes the power-iteration matvec above the dense threshold
  /// (0 = parallel::default_jobs(), 1 = sequential).
  std::vector<double> steady_state(std::size_t dense_threshold = 512,
                                   unsigned jobs = 0) const;

  /// Distribution after n steps from pi0. `jobs` as in steady_state().
  std::vector<double> transient(const std::vector<double>& pi0,
                                std::size_t steps, unsigned jobs = 0) const;

  /// Absorbing-chain analysis from pi0 (mass on transient states only).
  DtmcAbsorbingAnalysis absorbing_analysis(
      const std::vector<double>& pi0) const;

  /// Dense transition probability matrix, with implicit self-loops filled
  /// in on absorbing states.
  Matrix dense_matrix() const;

  /// Sparse transition matrix with implicit self-loops on absorbing states.
  SparseMatrix sparse_matrix() const;

  /// Initial distribution concentrated on one state.
  std::vector<double> point_mass(std::size_t s) const;

 private:
  struct Transition {
    std::size_t from, to;
    double prob;
  };
  void validate_rows() const;

  std::vector<std::string> names_;
  std::map<std::string, std::size_t> index_;
  std::vector<Transition> transitions_;
  std::vector<double> row_sums_;
};

}  // namespace relkit::markov
