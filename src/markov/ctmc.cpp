#include "markov/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/poisson_weights.hpp"
#include "markov/solution_cache.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"

namespace relkit::markov {

namespace {

/// Uniformization refuses Poisson means beyond this: the number of vector-
/// matrix products grows linearly with q*t, so anything larger is hours of
/// compute and a sign the caller wants steady_state() instead. Stiff
/// shipped workloads legitimately reach ~1e8 (e.g. the rejuvenation study's
/// PH-expanded timer chain), so the guard only rejects clearly infeasible
/// means.
constexpr double kMaxPoissonMean = 1e9;

}  // namespace

StateId Ctmc::add_state(std::string name) {
  detail::require(!name.empty(), "Ctmc::add_state: empty name");
  detail::require(!index_.count(name),
                  "Ctmc::add_state: duplicate state '" + name + "'");
  const StateId id = names_.size();
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  exit_rates_.push_back(0.0);
  return id;
}

StateId Ctmc::add_states(std::size_t count) {
  detail::require(count >= 1, "Ctmc::add_states: count must be >= 1");
  const StateId first = names_.size();
  for (std::size_t i = 0; i < count; ++i) {
    add_state("s" + std::to_string(first + i));
  }
  return first;
}

void Ctmc::add_transition(StateId from, StateId to, double rate) {
  detail::require(from < names_.size() && to < names_.size(),
                  "Ctmc::add_transition: state out of range");
  detail::require(from != to, "Ctmc::add_transition: self-loop");
  detail::require(rate > 0.0, "Ctmc::add_transition: rate must be > 0");
  transitions_.push_back({from, to, rate});
  exit_rates_[from] += rate;
}

const std::string& Ctmc::state_name(StateId s) const {
  detail::require(s < names_.size(), "Ctmc::state_name: out of range");
  return names_[s];
}

StateId Ctmc::state_index(const std::string& name) const {
  const auto it = index_.find(name);
  detail::require(it != index_.end(),
                  "Ctmc::state_index: unknown state '" + name + "'");
  return it->second;
}

double Ctmc::exit_rate(StateId s) const {
  detail::require(s < names_.size(), "Ctmc::exit_rate: out of range");
  return exit_rates_[s];
}

bool Ctmc::is_absorbing(StateId s) const { return exit_rate(s) == 0.0; }

Matrix Ctmc::dense_generator() const {
  const std::size_t n = state_count();
  auto& injector = testing::FaultInjector::instance();
  Matrix q(n, n);
  for (const auto& t : transitions_) {
    const double rate = injector.tap("ctmc.rate", t.rate);
    q(t.from, t.to) += rate;
    q(t.from, t.from) -= rate;
  }
  return q;
}

SparseMatrix Ctmc::sparse_generator() const {
  const std::size_t n = state_count();
  auto& injector = testing::FaultInjector::instance();
  SparseBuilder b(n, n);
  for (const auto& t : transitions_) {
    const double rate = injector.tap("ctmc.rate", t.rate);
    b.add(t.from, t.to, rate);
    b.add(t.from, t.from, -rate);
  }
  return b.build();
}

std::vector<double> Ctmc::point_mass(StateId s) const {
  detail::require(s < state_count(), "Ctmc::point_mass: out of range");
  std::vector<double> pi0(state_count(), 0.0);
  pi0[s] = 1.0;
  return pi0;
}

void Ctmc::check_distribution(const std::vector<double>& pi0) const {
  detail::require(pi0.size() == state_count(),
                  "Ctmc: distribution size mismatch");
  double s = 0.0;
  for (double x : pi0) {
    detail::require(x >= 0.0, "Ctmc: negative probability in distribution");
    s += x;
  }
  detail::require(std::abs(s - 1.0) < 1e-9,
                  "Ctmc: distribution does not sum to 1");
}

namespace {

/// Serializes the solver options that can change a steady-state answer.
/// Budgets and `jobs` are deliberately excluded (see solution_cache.hpp).
void key_steady_options(CacheKey& key, const SteadyStateOptions& opts) {
  key.add(opts.dense_threshold);
  key.add(opts.enable_fallbacks);
  key.add(opts.gth_fallback_threshold);
  key.add(opts.sor.omega);
  key.add(opts.sor.tol);
  key.add(opts.sor.max_iters);
  key.add(opts.sor.adaptive_omega);
  key.add(opts.bicgstab.tol);
  key.add(opts.bicgstab.max_iters);
  key.add(static_cast<std::size_t>(opts.bicgstab.precond));
  key.add(opts.bicgstab.use_rcm);
  key.add(opts.ncd.coupling_threshold);
  key.add(opts.ncd.tol);
  key.add(opts.ncd.max_sweeps);
  // The *effective* solver choice: a forced method must not collide with
  // an auto-chain entry for the same model (different method, possibly
  // different answer within tolerance).
  const robust::SolverChoice effective =
      opts.solver != robust::SolverChoice::kAuto ? opts.solver
                                                 : robust::ambient_solver();
  key.add(static_cast<std::size_t>(effective));
}

}  // namespace

std::vector<double> Ctmc::steady_state(const SteadyStateOptions& opts,
                                       robust::SolveReport* report) const {
  const std::size_t n = state_count();
  detail::require_model(n >= 1, "Ctmc::steady_state: no states");

  obs::Span span("markov.steady_state");
  span.set("states", n);
  span.set("transitions", static_cast<std::uint64_t>(transitions_.size()));

  // Memoization: exact-keyed on (generator structure, rates, options).
  // Bypassed while fault injection is armed — injected failures act inside
  // the solver, where the key cannot see them (and with the injector idle,
  // tapped rates equal the raw rates the key uses).
  auto& injector = testing::FaultInjector::instance();
  auto& cache = SolutionCache::instance();
  const bool use_cache =
      opts.use_cache && cache.enabled() && !injector.active();
  CacheKey key;
  if (use_cache) {
    key.add(SolutionCache::kSteadyTag);
    key.add(n);
    for (const auto& t : transitions_) {
      key.add(t.from);
      key.add(t.to);
      key.add(t.rate);
    }
    key_steady_options(key, opts);
    if (auto hit = cache.lookup(key)) {
      hit->report.cache_hit = true;
      span.set("cache", "hit");
      robust::record_last_report(hit->report);
      if (report) *report = std::move(hit->report);
      return std::move(hit->result);
    }
    span.set("cache", "miss");
  }

  // Transposed off-diagonal generator + diagonal, the form every method in
  // the fallback chain consumes.
  SparseBuilder bt(n, n);
  std::vector<double> diag(n, 0.0);
  for (const auto& t : transitions_) {
    const double rate = injector.tap("ctmc.rate", t.rate);
    bt.add(t.to, t.from, rate);
    diag[t.from] -= rate;
  }

  robust::RobustSteadyOptions robust_opts;
  robust_opts.dense_primary = opts.dense_threshold;
  robust_opts.dense_fallback =
      opts.enable_fallbacks
          ? std::max(opts.dense_threshold, opts.gth_fallback_threshold)
          : opts.dense_threshold;
  robust_opts.sor = opts.sor;
  robust_opts.bicgstab = opts.bicgstab;
  robust_opts.ncd = opts.ncd;
  robust_opts.solver = opts.solver;
  robust_opts.budget = opts.budget;
  // The thread's ambient deadline (CLI --timeout-ms, relkit_serve request
  // deadlines) binds every solve, including ones reached through paths that
  // carry no options — the earliest deadline wins. Never part of the cache
  // key: a hit trivially satisfies any deadline.
  robust_opts.budget.deadline = robust::Deadline::earliest(
      robust_opts.budget.deadline, robust::ambient_deadline());
  robust_opts.jobs = opts.jobs;
  if (!opts.enable_fallbacks) {
    // Raw single-method behavior: GTH below the threshold, plain SOR above.
    if (n <= opts.dense_threshold) {
      auto pi = gth_steady_state(dense_generator());
      if (use_cache) cache.insert(std::move(key), {pi, {}});
      if (report) *report = robust::SolveReport{};
      return pi;
    }
    SorOptions sor_opts = opts.sor;
    if (sor_opts.jobs == 0) sor_opts.jobs = opts.jobs;
    sor_opts.budget.deadline = robust::Deadline::earliest(
        sor_opts.budget.deadline, robust::ambient_deadline());
    SorResult r = sor_steady_state(bt.build(), diag, sor_opts);
    if (use_cache) cache.insert(std::move(key), {r.pi, r.report});
    if (report) *report = r.report;
    return std::move(r.pi);
  }
  robust::RobustResult r =
      robust::robust_steady_state(bt.build(), diag, robust_opts);
  if (use_cache) cache.insert(std::move(key), {r.pi, r.report});
  if (report) *report = r.report;
  return std::move(r.pi);
}

namespace {

// Shared uniformization machinery: returns the DTMC matrix P = I + Q/q and
// the uniformization rate q (slightly above the max exit rate so that P has
// strictly positive diagonal, improving convergence for stiff chains).
struct Uniformized {
  SparseMatrix p;
  double q;
};

Uniformized uniformize(const SparseMatrix& generator,
                       const std::vector<double>& exit_rates) {
  double qmax = 0.0;
  for (double r : exit_rates) qmax = std::max(qmax, r);
  const double q = qmax > 0.0 ? qmax * 1.02 : 1.0;
  const std::size_t n = exit_rates.size();
  SparseBuilder b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double diag = 1.0;
    for (std::size_t k = generator.row_begin(r); k < generator.row_end(r);
         ++k) {
      const std::size_t c = generator.col(k);
      const double v = generator.value(k);
      if (c == r) {
        diag += v / q;
      } else {
        b.add(r, c, v / q);
      }
    }
    b.add(r, r, diag);
  }
  return {b.build(), q};
}

}  // namespace

namespace {

/// Overflow guard shared by the uniformization solvers: rejects Poisson
/// means that are non-finite or large enough to make the step loop
/// effectively unbounded. Throws ConvergenceError carrying `partial`.
double guarded_poisson_mean(double q, double t, const char* context,
                            const std::vector<double>& partial) {
  double mean = testing::FaultInjector::instance().tap("uniformize.qt",
                                                       q * t);
  if (!std::isfinite(mean) || mean < 0.0 || mean > kMaxPoissonMean) {
    robust::SolveReport report;
    report.method = "uniformization";
    report.attempts = {"uniformization"};
    report.warn("q*t = " + std::to_string(mean) +
                " exceeds the uniformization guard (max " +
                std::to_string(kMaxPoissonMean) + ")");
    robust::record_last_report(report);
    throw robust::ConvergenceError(
        std::string(context) + ": uniformization infeasible, q*t = " +
            std::to_string(mean) +
            " (stiff chain x long horizon); use steady_state() or split "
            "the interval",
        partial, report);
  }
  return mean;
}

}  // namespace

std::vector<double> Ctmc::transient(const std::vector<double>& pi0, double t,
                                    double eps, unsigned jobs) const {
  check_distribution(pi0);
  detail::require(t >= 0.0, "Ctmc::transient: t must be >= 0");
  if (t == 0.0) return pi0;

  obs::Span span("markov.transient");
  span.set("states", state_count());
  span.set("t", t);
  static obs::Counter& steps_counter =
      obs::counter("markov.uniformization_steps");

  auto& injector = testing::FaultInjector::instance();
  auto& cache = SolutionCache::instance();
  const bool use_cache = cache.enabled() && !injector.active();
  CacheKey key;
  if (use_cache) {
    key.add(SolutionCache::kTransientTag);
    key.add(state_count());
    for (const auto& tr : transitions_) {
      key.add(tr.from);
      key.add(tr.to);
      key.add(tr.rate);
    }
    key.add(t);
    key.add(eps);
    for (const double x : pi0) key.add(x);
    if (auto hit = cache.lookup(key)) {
      hit->report.cache_hit = true;
      span.set("cache", "hit");
      robust::record_last_report(hit->report);
      return std::move(hit->result);
    }
    span.set("cache", "miss");
  }

  const parallel::PoolLease lease(jobs);
  span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));
  const auto [p, q] = uniformize(sparse_generator(), exit_rates_);
  const double mean = guarded_poisson_mean(q, t, "Ctmc::transient", pi0);
  const PoissonWeights pw = poisson_weights(mean, eps);

  // The convergence series of a uniformized solve is the unprocessed
  // Poisson tail mass, which decays from 1 toward eps as the window closes.
  robust::ConvergenceTrace trace;
  std::vector<double> v = pi0;  // pi0 P^n
  std::vector<double> out(state_count(), 0.0);
  const std::size_t steps = pw.left + pw.weights.size();
  steps_counter.add(steps);
  span.set("steps", steps);
  span.set("q", q);
  const robust::Deadline deadline = robust::ambient_deadline();
  double window_mass = 0.0;
  for (std::size_t n = 0; n < steps; ++n) {
    if (n >= pw.left) {
      const double w =
          injector.tap("uniformize.weight", pw.weights[n - pw.left]);
      window_mass += w;
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += w * v[i];
    }
    trace.record(n + 1, std::max(0.0, 1.0 - window_mass));
    if (n + 1 == steps) break;
    if ((n & 15u) == 0 && deadline.expired()) {
      // Ambient deadline (CLI --timeout-ms / serve request budget): stop
      // and hand back the best partial — the window accumulated so far,
      // renormalized when it carries any mass, else the initial state.
      robust::SolveReport report;
      report.method = "uniformization";
      report.attempts = {"uniformization"};
      report.iterations = n + 1;
      report.convergence = std::move(trace);
      report.warn("deadline expired after " + std::to_string(n + 1) + " of " +
                  std::to_string(steps) + " uniformization steps");
      std::vector<double> partial = window_mass > 0.0 ? out : pi0;
      if (window_mass > 0.0) {
        for (double& x : partial) x /= window_mass;
      }
      robust::record_last_report(report);
      throw robust::ConvergenceError(
          "Ctmc::transient: deadline expired after " + std::to_string(n + 1) +
              " of " + std::to_string(steps) + " uniformization steps",
          std::move(partial), report);
    }
    v = p.multiply_left(v, lease.get());
  }

  // Post-solve verification: the result must be a finite probability
  // vector; small drift is renormalized, NaN/Inf is never returned.
  robust::SolveReport report;
  report.convergence = std::move(trace);
  report.method = "uniformization";
  report.attempts = {"uniformization"};
  report.iterations = steps;
  const double mass = [&] {
    double s = 0.0;
    for (const double x : out) s += x;
    return s;
  }();
  report.residual = std::abs(mass - 1.0);
  robust::repair_distribution(out, report, "Ctmc::transient");
  report.converged = true;
  robust::record_last_report(report);
  if (use_cache) cache.insert(std::move(key), {out, report});
  return out;
}

std::vector<double> Ctmc::cumulative_time(const std::vector<double>& pi0,
                                          double t, double eps,
                                          unsigned jobs) const {
  check_distribution(pi0);
  detail::require(t >= 0.0, "Ctmc::cumulative_time: t must be >= 0");
  std::vector<double> acc(state_count(), 0.0);
  if (t == 0.0) return acc;

  obs::Span span("markov.cumulative");
  span.set("states", state_count());
  span.set("t", t);
  static obs::Counter& steps_counter =
      obs::counter("markov.uniformization_steps");

  const parallel::PoolLease lease(jobs);
  span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));
  const auto [p, q] = uniformize(sparse_generator(), exit_rates_);
  const double mean = guarded_poisson_mean(q, t, "Ctmc::cumulative_time",
                                           acc);
  const PoissonWeights pw = poisson_weights(mean, eps);

  // L(t) = (1/q) sum_{n>=0} (1 - CDF_Poisson(n)) pi0 P^n.
  // With the normalized window, CDF(n) = sum of weights up to n; beyond the
  // window's right end the factor is 0, so iterate to the window end.
  auto& injector = testing::FaultInjector::instance();
  robust::ConvergenceTrace trace;
  std::vector<double> v = pi0;
  double cdf = 0.0;
  const std::size_t steps = pw.left + pw.weights.size();
  steps_counter.add(steps);
  span.set("steps", steps);
  span.set("q", q);
  for (std::size_t n = 0; n < steps; ++n) {
    if (n >= pw.left) {
      cdf += injector.tap("uniformize.weight", pw.weights[n - pw.left]);
    }
    trace.record(n + 1, std::max(0.0, 1.0 - cdf));
    const double factor = (1.0 - cdf) / q;
    if (factor > 0.0) {
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += factor * v[i];
    }
    if (n + 1 == steps) break;
    v = p.multiply_left(v, lease.get());
  }

  // Verification: total sojourn time over [0, t] must equal t; repair small
  // drift by rescaling, never return NaN/Inf.
  robust::SolveReport report;
  report.convergence = std::move(trace);
  report.method = "uniformization";
  report.attempts = {"uniformization"};
  report.iterations = steps;
  if (!robust::all_finite(acc)) {
    report.warn("cumulative_time: non-finite entries in result");
    robust::record_last_report(report);
    throw robust::ConvergenceError(
        "Ctmc::cumulative_time: result contains NaN/Inf — refusing to "
        "return it silently",
        acc, report);
  }
  double total = 0.0;
  for (double& x : acc) {
    if (x < 0.0) x = 0.0;
    total += x;
  }
  report.residual = std::abs(total - t) / t;
  if (total > 0.0 && report.residual > 1e-9) {
    report.warn("cumulative_time: rescaled (sum of sojourns drifted to " +
                std::to_string(total) + " over horizon " +
                std::to_string(t) + ")");
    for (double& x : acc) x *= t / total;
  }
  report.converged = true;
  robust::record_last_report(report);
  return acc;
}

AbsorbingAnalysis Ctmc::absorbing_analysis(
    const std::vector<double>& pi0) const {
  check_distribution(pi0);
  const std::size_t n = state_count();

  std::vector<StateId> transient_states;
  std::vector<StateId> absorbing_states;
  std::vector<std::size_t> tindex(n, SIZE_MAX);
  for (StateId s = 0; s < n; ++s) {
    if (is_absorbing(s)) {
      absorbing_states.push_back(s);
    } else {
      tindex[s] = transient_states.size();
      transient_states.push_back(s);
    }
  }
  detail::require_model(!absorbing_states.empty(),
                        "absorbing_analysis: chain has no absorbing state");
  for (StateId s : absorbing_states) {
    detail::require_model(pi0[s] == 0.0,
                          "absorbing_analysis: initial mass on absorbing "
                          "state '" + names_[s] + "'");
  }

  // Solve tau^T Q_TT = -pi0_T  (expected sojourn times).
  const std::size_t m = transient_states.size();
  Matrix qtt(m, m);
  for (const auto& tr : transitions_) {
    if (tindex[tr.from] == SIZE_MAX) continue;
    qtt(tindex[tr.from], tindex[tr.from]) -= tr.rate;
    if (tindex[tr.to] != SIZE_MAX) {
      qtt(tindex[tr.from], tindex[tr.to]) += tr.rate;
    }
  }
  std::vector<double> rhs(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) rhs[i] = -pi0[transient_states[i]];
  std::vector<double> tau;
  try {
    tau = lu_solve_transposed(qtt, rhs);
  } catch (const NumericalError&) {
    throw ModelError(
        "absorbing_analysis: some transient state cannot reach an absorbing "
        "state (Q_TT singular)");
  }

  AbsorbingAnalysis out;
  out.expected_sojourn.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    detail::require_model(tau[i] > -1e-9,
                          "absorbing_analysis: negative sojourn time "
                          "(reducibility or numerical issue)");
    out.expected_sojourn[transient_states[i]] = std::max(0.0, tau[i]);
    out.mean_time_to_absorption += std::max(0.0, tau[i]);
  }

  // Absorption probabilities: p_a = pi0_a + sum_i tau_i q_{i,a}.
  out.absorption_probability.assign(n, 0.0);
  for (const auto& tr : transitions_) {
    if (tindex[tr.from] == SIZE_MAX || tindex[tr.to] != SIZE_MAX) continue;
    out.absorption_probability[tr.to] +=
        out.expected_sojourn[tr.from] * tr.rate;
  }
  return out;
}

double Ctmc::survival(const std::vector<double>& pi0, double t,
                      double eps) const {
  const std::vector<double> pi = transient(pi0, t, eps);
  double absorbed = 0.0;
  for (StateId s = 0; s < state_count(); ++s) {
    if (is_absorbing(s)) absorbed += pi[s];
  }
  return std::clamp(1.0 - absorbed, 0.0, 1.0);
}

double reward_rate_at(const Ctmc& chain, const std::vector<double>& rewards,
                      const std::vector<double>& pi0, double t) {
  detail::require(rewards.size() == chain.state_count(),
                  "reward_rate_at: reward vector size mismatch");
  const std::vector<double> pi = chain.transient(pi0, t);
  return dot(pi, rewards);
}

double reward_rate_steady(const Ctmc& chain,
                          const std::vector<double>& rewards,
                          const SteadyStateOptions& opts) {
  detail::require(rewards.size() == chain.state_count(),
                  "reward_rate_steady: reward vector size mismatch");
  return dot(chain.steady_state(opts), rewards);
}

double accumulated_reward(const Ctmc& chain,
                          const std::vector<double>& rewards,
                          const std::vector<double>& pi0, double t) {
  detail::require(rewards.size() == chain.state_count(),
                  "accumulated_reward: reward vector size mismatch");
  return dot(chain.cumulative_time(pi0, t), rewards);
}

double interval_availability(const Ctmc& chain,
                             const std::vector<double>& up_indicator,
                             const std::vector<double>& pi0, double t) {
  detail::require(t > 0.0, "interval_availability: t must be > 0");
  return accumulated_reward(chain, up_indicator, pi0, t) / t;
}

std::vector<double> steady_state_sensitivity(const Ctmc& chain,
                                             const Matrix& dq) {
  const std::size_t n = chain.state_count();
  detail::require(dq.rows() == n && dq.cols() == n,
                  "steady_state_sensitivity: dQ shape mismatch");
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < n; ++c) s += dq(r, c);
    detail::require(std::abs(s) < 1e-9,
                    "steady_state_sensitivity: dQ rows must sum to 0");
  }
  const std::vector<double> pi = chain.steady_state();

  // Solve s Q = -pi dQ subject to sum(s) = 0. Write as Q^T s^T = -(pi dQ)^T
  // and replace the last equation by the normalization sum(s) = 0 (Q is rank
  // n-1 for an irreducible chain).
  Matrix qt = chain.dense_generator().transposed();
  std::vector<double> rhs(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) acc += pi[r] * dq(r, c);
    rhs[c] = -acc;
  }
  for (std::size_t c = 0; c < n; ++c) qt(n - 1, c) = 1.0;
  rhs[n - 1] = 0.0;
  return lu_solve(std::move(qt), std::move(rhs));
}

double mtta_sensitivity(const Ctmc& chain, const Matrix& dq,
                        const std::vector<double>& pi0) {
  const std::size_t n = chain.state_count();
  detail::require(dq.rows() == n && dq.cols() == n,
                  "mtta_sensitivity: dQ shape mismatch");
  detail::require(pi0.size() == n, "mtta_sensitivity: pi0 size mismatch");

  std::vector<std::size_t> tstates, tindex(n, SIZE_MAX);
  for (StateId s = 0; s < n; ++s) {
    if (!chain.is_absorbing(s)) {
      tindex[s] = tstates.size();
      tstates.push_back(s);
    }
  }
  detail::require_model(tstates.size() < n,
                        "mtta_sensitivity: chain has no absorbing state");
  const std::size_t m = tstates.size();

  const Matrix q = chain.dense_generator();
  Matrix qtt(m, m);
  Matrix dqtt(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      qtt(i, j) = q(tstates[i], tstates[j]);
      dqtt(i, j) = dq(tstates[i], tstates[j]);
    }
  }
  std::vector<double> rhs(m);
  for (std::size_t i = 0; i < m; ++i) rhs[i] = -pi0[tstates[i]];
  std::vector<double> tau;
  try {
    tau = lu_solve_transposed(qtt, rhs);
  } catch (const NumericalError&) {
    throw ModelError(
        "mtta_sensitivity: some transient state cannot reach absorption");
  }
  // d tau Q_TT = -tau dQ_TT  =>  Q_TT^T (d tau)^T = -(tau dQ_TT)^T.
  std::vector<double> rhs2(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += tau[i] * dqtt(i, j);
    rhs2[j] = -acc;
  }
  const std::vector<double> dtau = lu_solve_transposed(qtt, rhs2);
  return sum(dtau);
}

std::vector<double> transient_sensitivity(const Ctmc& chain, const Matrix& dq,
                                          const std::vector<double>& pi0,
                                          double t) {
  const std::size_t n = chain.state_count();
  detail::require(dq.rows() == n && dq.cols() == n,
                  "transient_sensitivity: dQ shape mismatch");
  detail::require(pi0.size() == n, "transient_sensitivity: pi0 size mismatch");
  detail::require(t >= 0.0, "transient_sensitivity: t must be >= 0");
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < n; ++c) s += dq(r, c);
    detail::require(std::abs(s) < 1e-9,
                    "transient_sensitivity: dQ rows must sum to 0");
  }
  if (t == 0.0) return std::vector<double>(n, 0.0);

  const SparseMatrix q = chain.sparse_generator();
  // Step size from the uniformization rate: h ~ 0.1 / q_max keeps RK4 well
  // inside its stability region for this linear system.
  double qmax = 1.0;
  for (StateId s = 0; s < n; ++s) qmax = std::max(qmax, chain.exit_rate(s));
  const auto steps = static_cast<std::size_t>(
      std::ceil(t * qmax / 0.1));
  const std::size_t nsteps = std::min<std::size_t>(
      std::max<std::size_t>(steps, 16), 4000000);
  const double h = t / static_cast<double>(nsteps);

  std::vector<double> pi = pi0;
  std::vector<double> sens(n, 0.0);

  // d/dt [pi, s] = [pi Q, s Q + pi dQ]; RK4 on the coupled pair.
  const auto deriv = [&](const std::vector<double>& p,
                         const std::vector<double>& s,
                         std::vector<double>& dp, std::vector<double>& ds) {
    dp = q.multiply_left(p);
    ds = q.multiply_left(s);
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) acc += p[r] * dq(r, c);
      ds[c] += acc;
    }
  };

  std::vector<double> k1p(n), k1s(n), k2p(n), k2s(n), k3p(n), k3s(n),
      k4p(n), k4s(n), tp(n), ts(n);
  for (std::size_t step = 0; step < nsteps; ++step) {
    deriv(pi, sens, k1p, k1s);
    for (std::size_t i = 0; i < n; ++i) {
      tp[i] = pi[i] + 0.5 * h * k1p[i];
      ts[i] = sens[i] + 0.5 * h * k1s[i];
    }
    deriv(tp, ts, k2p, k2s);
    for (std::size_t i = 0; i < n; ++i) {
      tp[i] = pi[i] + 0.5 * h * k2p[i];
      ts[i] = sens[i] + 0.5 * h * k2s[i];
    }
    deriv(tp, ts, k3p, k3s);
    for (std::size_t i = 0; i < n; ++i) {
      tp[i] = pi[i] + h * k3p[i];
      ts[i] = sens[i] + h * k3s[i];
    }
    deriv(tp, ts, k4p, k4s);
    for (std::size_t i = 0; i < n; ++i) {
      pi[i] += h / 6.0 * (k1p[i] + 2 * k2p[i] + 2 * k3p[i] + k4p[i]);
      sens[i] += h / 6.0 * (k1s[i] + 2 * k2s[i] + 2 * k3s[i] + k4s[i]);
    }
  }
  return sens;
}

std::vector<double> birth_death_steady_state(const std::vector<double>& birth,
                                             const std::vector<double>& death) {
  detail::require(birth.size() == death.size(),
                  "birth_death_steady_state: size mismatch");
  const std::size_t k = birth.size();
  std::vector<double> pi(k + 1, 0.0);
  pi[0] = 1.0;
  double total = 1.0;
  double prod = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    detail::require(birth[i] > 0.0 && death[i] > 0.0,
                    "birth_death_steady_state: rates must be > 0");
    prod *= birth[i] / death[i];
    pi[i + 1] = prod;
    total += prod;
  }
  for (double& x : pi) x /= total;
  return pi;
}

}  // namespace relkit::markov
