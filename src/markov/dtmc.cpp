#include "markov/dtmc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/linsolve.hpp"
#include "parallel/pool.hpp"

namespace relkit::markov {

std::size_t Dtmc::add_state(std::string name) {
  detail::require(!name.empty(), "Dtmc::add_state: empty name");
  detail::require(!index_.count(name),
                  "Dtmc::add_state: duplicate state '" + name + "'");
  const std::size_t id = names_.size();
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  row_sums_.push_back(0.0);
  return id;
}

void Dtmc::add_transition(std::size_t from, std::size_t to, double prob) {
  detail::require(from < names_.size() && to < names_.size(),
                  "Dtmc::add_transition: state out of range");
  detail::require(prob > 0.0 && prob <= 1.0,
                  "Dtmc::add_transition: probability in (0,1]");
  detail::require(row_sums_[from] + prob <= 1.0 + 1e-9,
                  "Dtmc::add_transition: row sum exceeds 1 for state '" +
                      names_[from] + "'");
  transitions_.push_back({from, to, prob});
  row_sums_[from] += prob;
}

const std::string& Dtmc::state_name(std::size_t s) const {
  detail::require(s < names_.size(), "Dtmc::state_name: out of range");
  return names_[s];
}

std::size_t Dtmc::state_index(const std::string& name) const {
  const auto it = index_.find(name);
  detail::require(it != index_.end(),
                  "Dtmc::state_index: unknown state '" + name + "'");
  return it->second;
}

double Dtmc::row_sum(std::size_t s) const {
  detail::require(s < names_.size(), "Dtmc::row_sum: out of range");
  return row_sums_[s];
}

bool Dtmc::is_absorbing(std::size_t s) const { return row_sum(s) == 0.0; }

void Dtmc::validate_rows() const {
  for (std::size_t s = 0; s < names_.size(); ++s) {
    detail::require_model(
        row_sums_[s] == 0.0 || std::abs(row_sums_[s] - 1.0) < 1e-9,
        "Dtmc: row for state '" + names_[s] +
            "' sums to neither 0 (absorbing) nor 1");
  }
}

Matrix Dtmc::dense_matrix() const {
  validate_rows();
  const std::size_t n = names_.size();
  Matrix p(n, n);
  for (const auto& t : transitions_) p(t.from, t.to) += t.prob;
  for (std::size_t s = 0; s < n; ++s) {
    if (row_sums_[s] == 0.0) p(s, s) = 1.0;
  }
  return p;
}

SparseMatrix Dtmc::sparse_matrix() const {
  validate_rows();
  const std::size_t n = names_.size();
  SparseBuilder b(n, n);
  for (const auto& t : transitions_) b.add(t.from, t.to, t.prob);
  for (std::size_t s = 0; s < n; ++s) {
    if (row_sums_[s] == 0.0) b.add(s, s, 1.0);
  }
  return b.build();
}

std::vector<double> Dtmc::point_mass(std::size_t s) const {
  detail::require(s < names_.size(), "Dtmc::point_mass: out of range");
  std::vector<double> pi0(names_.size(), 0.0);
  pi0[s] = 1.0;
  return pi0;
}

std::vector<double> Dtmc::steady_state(std::size_t dense_threshold,
                                       unsigned jobs) const {
  validate_rows();
  if (names_.size() <= dense_threshold) {
    return gth_steady_state_dtmc(dense_matrix());
  }
  PowerOptions opts;
  opts.jobs = jobs;
  return power_steady_state(sparse_matrix(), opts).pi;
}

std::vector<double> Dtmc::transient(const std::vector<double>& pi0,
                                    std::size_t steps, unsigned jobs) const {
  detail::require(pi0.size() == names_.size(),
                  "Dtmc::transient: distribution size mismatch");
  const SparseMatrix p = sparse_matrix();
  const parallel::PoolLease lease(jobs);
  std::vector<double> v = pi0;
  for (std::size_t i = 0; i < steps; ++i) v = p.multiply_left(v, lease.get());
  return v;
}

DtmcAbsorbingAnalysis Dtmc::absorbing_analysis(
    const std::vector<double>& pi0) const {
  validate_rows();
  detail::require(pi0.size() == names_.size(),
                  "Dtmc::absorbing_analysis: distribution size mismatch");
  const std::size_t n = names_.size();

  std::vector<std::size_t> transient_states, tindex(n, SIZE_MAX);
  std::vector<std::size_t> absorbing_states;
  for (std::size_t s = 0; s < n; ++s) {
    if (is_absorbing(s)) {
      absorbing_states.push_back(s);
    } else {
      tindex[s] = transient_states.size();
      transient_states.push_back(s);
    }
  }
  detail::require_model(!absorbing_states.empty(),
                        "Dtmc::absorbing_analysis: no absorbing state");
  for (std::size_t s : absorbing_states) {
    detail::require_model(pi0[s] == 0.0,
                          "Dtmc::absorbing_analysis: initial mass on "
                          "absorbing state '" + names_[s] + "'");
  }

  // v = pi0_T (I - Q_TT)^{-1}: expected visits per transient state.
  const std::size_t m = transient_states.size();
  Matrix a(m, m);  // I - Q_TT
  for (std::size_t i = 0; i < m; ++i) a(i, i) = 1.0;
  for (const auto& t : transitions_) {
    if (tindex[t.from] == SIZE_MAX || tindex[t.to] == SIZE_MAX) continue;
    a(tindex[t.from], tindex[t.to]) -= t.prob;
  }
  std::vector<double> rhs(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) rhs[i] = pi0[transient_states[i]];
  std::vector<double> visits;
  try {
    visits = lu_solve_transposed(a, rhs);
  } catch (const NumericalError&) {
    throw ModelError(
        "Dtmc::absorbing_analysis: some transient state cannot reach "
        "absorption");
  }

  DtmcAbsorbingAnalysis out;
  out.expected_visits.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    out.expected_visits[transient_states[i]] = std::max(0.0, visits[i]);
    out.mean_steps_to_absorption += std::max(0.0, visits[i]);
  }
  out.absorption_probability.assign(n, 0.0);
  for (const auto& t : transitions_) {
    if (tindex[t.from] == SIZE_MAX || tindex[t.to] != SIZE_MAX) continue;
    out.absorption_probability[t.to] +=
        out.expected_visits[t.from] * t.prob;
  }
  return out;
}

}  // namespace relkit::markov
