#include "markov/builders.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace relkit::markov {

Ctmc two_state_availability(double failure_rate, double repair_rate) {
  detail::require(failure_rate > 0.0 && repair_rate > 0.0,
                  "two_state_availability: rates must be > 0");
  Ctmc c;
  const StateId up = c.add_state("up");
  const StateId down = c.add_state("down");
  c.add_transition(up, down, failure_rate);
  c.add_transition(down, up, repair_rate);
  return c;
}

double KofNChain::availability() const {
  const auto pi = chain.steady_state();
  double a = 0.0;
  // States are ordered up<n>, up<n-1>, ..., up<0>.
  for (std::size_t i = 0; i <= n; ++i) {
    const std::size_t ups = n - i;
    if (ups >= k) a += pi[i];
  }
  return a;
}

KofNChain k_of_n_shared_repair(std::size_t n, std::size_t k, double lambda,
                               double mu, std::size_t repair_crews) {
  detail::require(n >= 1 && k >= 1 && k <= n,
                  "k_of_n_shared_repair: require 1 <= k <= n");
  detail::require(lambda > 0.0 && mu > 0.0,
                  "k_of_n_shared_repair: rates must be > 0");
  detail::require(repair_crews >= 1,
                  "k_of_n_shared_repair: need at least one crew");
  KofNChain out;
  out.n = n;
  out.k = k;
  for (std::size_t i = 0; i <= n; ++i) {
    out.chain.add_state("up" + std::to_string(n - i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ups = n - i;
    const std::size_t downs = i;
    out.chain.add_transition(i, i + 1,
                             static_cast<double>(ups) * lambda);
    // Repairs from state i+1 (downs + 1 failed units).
    const std::size_t busy = std::min(repair_crews, downs + 1);
    out.chain.add_transition(i + 1, i, static_cast<double>(busy) * mu);
  }
  return out;
}

double DuplexCoverage::availability() const {
  const auto pi = chain.steady_state();
  return pi[chain.state_index("both")] + pi[chain.state_index("solo")];
}

double DuplexCoverage::downtime_minutes_per_year() const {
  return (1.0 - availability()) * 365.25 * 24.0 * 60.0;
}

DuplexCoverage duplex_with_coverage(double failure_rate, double repair_rate,
                                    double coverage, double switchover_rate,
                                    double manual_recovery_rate) {
  detail::require(failure_rate > 0.0 && repair_rate > 0.0 &&
                      switchover_rate > 0.0 && manual_recovery_rate > 0.0,
                  "duplex_with_coverage: rates must be > 0");
  detail::require(coverage > 0.0 && coverage <= 1.0,
                  "duplex_with_coverage: coverage in (0,1]");
  DuplexCoverage out;
  Ctmc& c = out.chain;
  const StateId both = c.add_state("both");
  const StateId switching = c.add_state("switching");
  const StateId solo = c.add_state("solo");
  const StateId uncovered = c.add_state("uncovered");
  const StateId dual = c.add_state("dual");
  c.add_transition(both, switching, 2 * failure_rate * coverage);
  if (coverage < 1.0) {
    c.add_transition(both, uncovered, 2 * failure_rate * (1.0 - coverage));
  }
  // With perfect coverage "uncovered" is unreachable (pi = 0); it keeps an
  // exit edge so the elimination solver still processes it cleanly.
  c.add_transition(uncovered, solo, manual_recovery_rate);
  c.add_transition(switching, solo, switchover_rate);
  c.add_transition(solo, both, repair_rate);
  c.add_transition(solo, dual, failure_rate);
  c.add_transition(dual, solo, repair_rate);
  return out;
}

double RejuvenationChain::availability() const {
  const auto pi = chain.steady_state();
  return pi[chain.state_index("robust")] + pi[chain.state_index("fragile")];
}

RejuvenationChain software_rejuvenation(double aging_rate,
                                        double failure_rate,
                                        double repair_rate,
                                        double rejuvenation_rate,
                                        double rejuvenation_duration_rate) {
  detail::require(aging_rate > 0.0 && failure_rate > 0.0 &&
                      repair_rate > 0.0 && rejuvenation_rate > 0.0 &&
                      rejuvenation_duration_rate > 0.0,
                  "software_rejuvenation: rates must be > 0");
  RejuvenationChain out;
  Ctmc& c = out.chain;
  const StateId robust = c.add_state("robust");
  const StateId fragile = c.add_state("fragile");
  const StateId rejuvenating = c.add_state("rejuvenating");
  const StateId failed = c.add_state("failed");
  c.add_transition(robust, fragile, aging_rate);
  c.add_transition(fragile, failed, failure_rate);
  c.add_transition(robust, rejuvenating, rejuvenation_rate);
  c.add_transition(fragile, rejuvenating, rejuvenation_rate);
  c.add_transition(rejuvenating, robust, rejuvenation_duration_rate);
  c.add_transition(failed, robust, repair_rate);
  return out;
}

}  // namespace relkit::markov
