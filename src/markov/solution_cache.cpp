#include "markov/solution_cache.hpp"

#include "obs/obs.hpp"

namespace relkit::markov {

SolutionCache& SolutionCache::instance() {
  static SolutionCache cache;
  return cache;
}

std::optional<SolutionCache::Entry> SolutionCache::lookup(
    const CacheKey& key) {
  if (!enabled()) return std::nullopt;
  static obs::Counter& hit_counter = obs::counter("markov.cache.hits");
  static obs::Counter& miss_counter = obs::counter("markov.cache.misses");

  std::lock_guard<std::mutex> lock(mu_);
  const auto [first, last] = index_.equal_range(key.hash());
  for (auto it = first; it != last; ++it) {
    if (it->second->key == key.words()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.add();
      return it->second->entry;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.add();
  return std::nullopt;
}

void SolutionCache::insert(CacheKey key, Entry entry) {
  if (!enabled()) return;
  const std::size_t words = key.words().size() + entry.result.size();
  if (words > kMaxTotalWords) return;  // pathological; never cacheable

  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t hash = key.hash();
  const auto [first, last] = index_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    if (it->second->key == key.words()) return;  // already cached
  }

  while (!lru_.empty() &&
         (lru_.size() >= kMaxEntries ||
          total_words_ + words > kMaxTotalWords)) {
    const Node& victim = lru_.back();
    const auto [vfirst, vlast] = index_.equal_range(victim.hash);
    for (auto it = vfirst; it != vlast; ++it) {
      if (&*it->second == &victim) {
        index_.erase(it);
        break;
      }
    }
    total_words_ -= victim.words;
    lru_.pop_back();
  }

  lru_.push_front(Node{hash, key.take_words(), std::move(entry), words});
  index_.emplace(hash, lru_.begin());
  total_words_ += words;
}

std::size_t SolutionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void SolutionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  total_words_ = 0;
}

}  // namespace relkit::markov
