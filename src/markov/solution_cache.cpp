#include "markov/solution_cache.hpp"

#include "obs/obs.hpp"

namespace relkit::markov {

SolutionCache& SolutionCache::instance() {
  static SolutionCache cache;
  return cache;
}

namespace {

/// Key + result + payload footprint in 64-bit words (payload bytes round
/// up), the unit of the cache's byte budget.
std::size_t entry_words(const CacheKey& key,
                        const SolutionCache::Entry& entry) {
  return key.words().size() + entry.result.size() +
         (entry.payload.size() + 7) / 8;
}

}  // namespace

std::optional<SolutionCache::Entry> SolutionCache::lookup(
    const CacheKey& key) {
  if (!enabled()) return std::nullopt;
  static obs::Counter& hit_counter = obs::counter("markov.cache.hits");
  static obs::Counter& miss_counter = obs::counter("markov.cache.misses");
  static obs::Gauge& rate_gauge = obs::gauge("markov.cache.hit_rate");
  const auto update_rate = [&] {
    const double h = static_cast<double>(hits());
    const double m = static_cast<double>(misses());
    if (h + m > 0.0) rate_gauge.set(h / (h + m));
  };

  std::lock_guard<std::mutex> lock(mu_);
  const auto [first, last] = index_.equal_range(key.hash());
  for (auto it = first; it != last; ++it) {
    if (it->second->key == key.words()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.add();
      update_rate();
      return it->second->entry;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.add();
  update_rate();
  return std::nullopt;
}

void SolutionCache::insert(CacheKey key, Entry entry) {
  if (!enabled()) return;
  const std::size_t words = entry_words(key, entry);
  if (words > kMaxTotalWords) return;  // pathological; never cacheable

  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t hash = key.hash();
  const auto [first, last] = index_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    if (it->second->key == key.words()) return;  // already cached
  }

  while (!lru_.empty() &&
         (lru_.size() >= kMaxEntries ||
          total_words_ + words > kMaxTotalWords)) {
    const Node& victim = lru_.back();
    const auto [vfirst, vlast] = index_.equal_range(victim.hash);
    for (auto it = vfirst; it != vlast; ++it) {
      if (&*it->second == &victim) {
        index_.erase(it);
        break;
      }
    }
    total_words_ -= victim.words;
    lru_.pop_back();
  }

  lru_.push_front(Node{hash, key.take_words(), std::move(entry), words});
  index_.emplace(hash, lru_.begin());
  total_words_ += words;
}

std::size_t SolutionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void SolutionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  total_words_ = 0;
}

}  // namespace relkit::markov
