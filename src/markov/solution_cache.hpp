// Process-wide memoization of CTMC solves.
//
// The tutorial's hierarchical models re-solve the same subchain many times:
// every fixed-point iteration in core/hierarchy re-evaluates submodel
// availabilities, and a --batch CLI run solves the same `event ... markov`
// pool once per model that declares it. Those solves are pure functions of
// (generator, solver options), so RelKit caches them.
//
// Correctness before speed:
//   * keys are EXACT — the full key material (a word-serialized description
//     of the computation: kind tag, state count, every transition triple,
//     every option that can change the answer, and for transient solves the
//     horizon, truncation mass, and initial distribution) is stored and
//     compared on lookup, so a 64-bit hash collision can never alias two
//     different chains;
//   * budgets and `jobs` are deliberately NOT part of the key: the
//     determinism contract (docs/parallelism.md) makes results independent
//     of the worker count, and a cache hit trivially satisfies any budget;
//   * solves made while testing::FaultInjector is armed bypass the cache in
//     both directions (no lookup, no insert), because injected faults act
//     inside the solver where the key cannot see them.
//
// Hits/misses are visible as `markov.cache.{hits,misses}` obs counters
// (plus a derived `markov.cache.hit_rate` gauge, updated on every lookup
// so the serve /metrics endpoint exposes it without a scrape-time pass)
// and as always-on internal stats (for benches and span attributes); a
// served hit sets SolveReport::cache_hit so --diagnostics shows "(cached)".
// Eviction is LRU, bounded both by entry count and by total key+result
// words, so pathological workloads cannot grow the cache without bound.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "robust/report.hpp"

namespace relkit::markov {

/// Incremental builder of a cache key: an exact word sequence plus an
/// FNV-1a hash over it for bucketing. Doubles are keyed by bit pattern, so
/// -0.0 vs 0.0 or different NaNs never alias.
class CacheKey {
 public:
  void add(std::uint64_t w) {
    words_.push_back(w);
    hash_ = (hash_ ^ w) * 0x100000001b3ULL;
  }
  void add(bool b) { add(static_cast<std::uint64_t>(b)); }
  void add(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    add(bits);
  }
  /// Keys a byte string exactly: length word first, then the bytes packed
  /// 8 per word (zero-padded), so "ab"+"c" can never alias "a"+"bc".
  void add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));
    std::uint64_t w = 0;
    std::size_t filled = 0;
    for (const char c : s) {
      w |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
           << (8 * filled);
      if (++filled == 8) {
        add(w);
        w = 0;
        filled = 0;
      }
    }
    if (filled != 0) add(w);
  }

  std::uint64_t hash() const { return hash_; }
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t> take_words() { return std::move(words_); }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::vector<std::uint64_t> words_;
};

/// Thread-safe LRU cache of solved distributions keyed by exact CacheKey
/// material. One process-wide instance; see file comment for semantics.
class SolutionCache {
 public:
  /// Computation kind tags, the first word of every key so steady-state and
  /// transient solves of the same generator can never alias. kResponseTag
  /// keys relkit_serve idempotency records (client request ids mapped to
  /// the full response payload) in the same LRU/byte budget.
  static constexpr std::uint64_t kSteadyTag = 0x5354454144590001ULL;
  static constexpr std::uint64_t kTransientTag = 0x5452414e53490001ULL;
  static constexpr std::uint64_t kResponseTag = 0x524553504f4e0001ULL;

  /// A cached solve: the distribution plus the diagnostics of the original
  /// computation (served back with cache_hit = true). Response entries
  /// (kResponseTag) instead carry the serialized payload; `result` is empty.
  struct Entry {
    std::vector<double> result;
    robust::SolveReport report;
    std::string payload;
  };

  static SolutionCache& instance();

  /// Runtime switch (CLI --no-solver-cache). Disabled lookups miss without
  /// recording stats and inserts are dropped.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Exact lookup; a hit refreshes LRU order and returns a copy.
  std::optional<Entry> lookup(const CacheKey& key);

  /// Inserts (no-op if the key is already present or the entry alone
  /// exceeds the byte budget), evicting LRU entries to stay within bounds.
  void insert(CacheKey key, Entry entry);

  /// Always-on stats (relaxed atomics), independent of obs being enabled.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

  /// Drops every entry (tests; model-file hot reload).
  void clear();

  /// Bounds: at most kMaxEntries cached solves and kMaxTotalWords 64-bit
  /// words across all keys + results (~64 MB).
  static constexpr std::size_t kMaxEntries = 512;
  static constexpr std::size_t kMaxTotalWords = std::size_t{1} << 23;

 private:
  struct Node {
    std::uint64_t hash;
    std::vector<std::uint64_t> key;
    Entry entry;
    std::size_t words;  // key + result footprint
  };

  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_multimap<std::uint64_t, std::list<Node>::iterator> index_;
  std::size_t total_words_ = 0;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace relkit::markov
