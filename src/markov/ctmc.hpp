// Continuous-time Markov chains (CTMC) and Markov reward models.
//
// The tutorial's state-space workhorse: dependencies that combinatorial
// models cannot express (shared repair, imperfect coverage, failover,
// rejuvenation) are modeled as a CTMC. Solvers:
//
//   * steady-state     — GTH elimination (dense, exact) below a size
//                        threshold, SOR sweeps on the sparse generator above
//   * transient        — uniformization with stable Poisson weights
//   * cumulative       — expected total time per state in [0, t]
//                        (uniformization integral form)
//   * absorbing chains — mean time to absorption (MTTF), per-state expected
//                        sojourns, absorption probabilities, reliability(t)
//   * reward models    — expected reward rate (instantaneous, steady-state),
//                        expected accumulated reward, interval availability
//   * sensitivity      — d(pi)/d(theta) for a parameterized generator
//
// States are created by name; transitions accumulate rates. The generator is
// assembled lazily on first solve.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/linsolve.hpp"
#include "common/matrix.hpp"
#include "common/sparse.hpp"
#include "robust/budget.hpp"
#include "robust/report.hpp"
#include "robust/robust.hpp"

namespace relkit::markov {

using StateId = std::size_t;

/// Options controlling the stationary solver.
struct SteadyStateOptions {
  /// Use dense GTH when state count <= this, SOR otherwise.
  std::size_t dense_threshold = 512;
  SorOptions sor;
  /// Krylov tier knobs (tolerance, preconditioner, RCM) for the fallback
  /// chain's BiCGSTAB attempts and for `solver = kBicgstab`.
  BicgstabOptions bicgstab;
  /// NCD detection threshold + aggregation-disaggregation knobs.
  robust::AdOptions ncd;
  /// Force a single solver (verified) instead of the fallback chain.
  /// kAuto consults the thread/process ambient choice (CLI --solver,
  /// relkit_serve per-request "solver"). The *effective* choice is part of
  /// the solution-cache key.
  robust::SolverChoice solver = robust::SolverChoice::kAuto;
  /// Route non-converging iterative solves through the fallback chain
  /// (SOR -> omega reset -> power iteration -> dense GTH when the chain is
  /// small enough). Disable to get the raw single-method behavior.
  bool enable_fallbacks = true;
  /// Dense GTH is allowed as a *last resort* up to this size even when the
  /// chain is above dense_threshold (O(n^3) beats no answer).
  std::size_t gth_fallback_threshold = 2048;
  /// Wall-clock / sweep budget for the whole solve (default unlimited).
  robust::Budget budget;
  /// Parallelism degree for the state-space kernels (SOR residual
  /// evaluation, power-iteration matvec, verification residual).
  /// 0 = parallel::default_jobs(); 1 = force the bit-identical sequential
  /// path. Never part of the solution-cache key (results are
  /// jobs-independent by the determinism contract).
  unsigned jobs = 0;
  /// Consult/populate the process-wide markov::SolutionCache. The cache can
  /// also be disabled globally (CLI --no-solver-cache).
  bool use_cache = true;
};

/// Result of analyzing a CTMC with absorbing states.
struct AbsorbingAnalysis {
  /// Expected total time spent in each transient state before absorption
  /// (0 for absorbing states).
  std::vector<double> expected_sojourn;
  /// Mean time to absorption from the given initial distribution.
  double mean_time_to_absorption = 0.0;
  /// Probability of eventually being absorbed into each absorbing state
  /// (0 for transient states).
  std::vector<double> absorption_probability;
};

/// A finite CTMC with named states.
class Ctmc {
 public:
  /// Adds a state; names must be unique and non-empty.
  StateId add_state(std::string name);
  /// Adds `count` anonymous states named "s<k>".
  StateId add_states(std::size_t count);

  /// Accumulates a transition rate from -> to (rate > 0, from != to).
  void add_transition(StateId from, StateId to, double rate);

  std::size_t state_count() const { return names_.size(); }
  const std::string& state_name(StateId s) const;
  /// Index of a state by name; throws InvalidArgument if unknown.
  StateId state_index(const std::string& name) const;

  /// Total exit rate of a state.
  double exit_rate(StateId s) const;
  /// True if the state has no outgoing transitions.
  bool is_absorbing(StateId s) const;

  /// Stationary distribution (requires an irreducible chain). Solves via
  /// the verified fallback chain (see src/robust/); diagnostics of the
  /// solve are written to `report` when non-null and always recorded as
  /// robust::last_report().
  std::vector<double> steady_state(const SteadyStateOptions& opts = {},
                                   robust::SolveReport* report = nullptr)
      const;

  /// State distribution at time t from initial distribution pi0
  /// (uniformization; eps is the Poisson truncation mass). `jobs`
  /// parallelizes the per-step vector-matrix product (0 = default_jobs(),
  /// 1 = sequential); results are memoized in the SolutionCache.
  std::vector<double> transient(const std::vector<double>& pi0, double t,
                                double eps = 1e-12, unsigned jobs = 0) const;

  /// Expected total time spent in each state during [0, t]. `jobs` as in
  /// transient().
  std::vector<double> cumulative_time(const std::vector<double>& pi0,
                                      double t, double eps = 1e-12,
                                      unsigned jobs = 0) const;

  /// Absorbing-chain analysis from initial distribution pi0. Throws
  /// ModelError if the chain has no absorbing state reachable or if a
  /// transient state cannot reach absorption.
  AbsorbingAnalysis absorbing_analysis(const std::vector<double>& pi0) const;

  /// P(not yet absorbed at time t): the reliability function when absorbing
  /// states model system failure.
  double survival(const std::vector<double>& pi0, double t,
                  double eps = 1e-12) const;

  /// Dense generator matrix (diagnostics, tests, small direct methods).
  Matrix dense_generator() const;

  /// Sparse generator (CSR) and its transpose; built on demand.
  SparseMatrix sparse_generator() const;

  /// Initial distribution concentrated on one state.
  std::vector<double> point_mass(StateId s) const;

 private:
  struct Transition {
    StateId from, to;
    double rate;
  };

  void check_distribution(const std::vector<double>& pi0) const;

  std::vector<std::string> names_;
  std::map<std::string, StateId> index_;
  std::vector<Transition> transitions_;
  std::vector<double> exit_rates_;
};

/// Expected instantaneous reward rate at time t: sum_s pi_s(t) r_s.
double reward_rate_at(const Ctmc& chain, const std::vector<double>& rewards,
                      const std::vector<double>& pi0, double t);

/// Steady-state expected reward rate: sum_s pi_s r_s.
double reward_rate_steady(const Ctmc& chain,
                          const std::vector<double>& rewards,
                          const SteadyStateOptions& opts = {});

/// Expected reward accumulated over [0, t]: sum_s L_s(t) r_s.
double accumulated_reward(const Ctmc& chain,
                          const std::vector<double>& rewards,
                          const std::vector<double>& pi0, double t);

/// Interval availability over [0, t] when rewards are the up-state
/// indicator: accumulated_reward / t.
double interval_availability(const Ctmc& chain,
                             const std::vector<double>& up_indicator,
                             const std::vector<double>& pi0, double t);

/// Derivative of the stationary distribution with respect to a scalar
/// parameter theta, given dQ/dtheta as a dense matrix (rows must sum to 0).
/// Solves (d pi) Q = -pi (dQ/dtheta) with sum(d pi) = 0. Dense; intended for
/// chains of up to a few thousand states.
std::vector<double> steady_state_sensitivity(const Ctmc& chain,
                                             const Matrix& dq);

/// Derivative of the mean time to absorption with respect to a scalar
/// parameter theta, given dQ/dtheta dense (rows over transient states must
/// sum to <= 0 consistently with Q's structure; absorbing rows ignored).
/// From tau Q_TT = -pi0_T: d(MTTA) = sum(d tau), d tau Q_TT = -tau dQ_TT.
double mtta_sensitivity(const Ctmc& chain, const Matrix& dq,
                        const std::vector<double>& pi0);

/// Derivative of the transient distribution pi(t) with respect to a scalar
/// parameter theta, given dQ/dtheta dense (rows summing to 0). Integrates
/// the forward sensitivity ODE s' = s Q + pi dQ jointly with pi' = pi Q by
/// a fixed-step RK4 scheme (steps chosen from the uniformization rate).
/// Intended for the moderate-size chains used in design studies.
std::vector<double> transient_sensitivity(const Ctmc& chain,
                                          const Matrix& dq,
                                          const std::vector<double>& pi0,
                                          double t);

/// Closed-form stationary distribution of a birth-death chain with birth
/// rates lambda[i] (i -> i+1) and death rates mu[i] (i+1 -> i). Used as an
/// oracle in tests and for M/M/1/K-style availability models.
std::vector<double> birth_death_steady_state(const std::vector<double>& birth,
                                             const std::vector<double>& death);

}  // namespace relkit::markov
