#include "ftree/fault_tree.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace relkit::ftree {

NodePtr Node::basic(std::string name) {
  detail::require(!name.empty(), "Node::basic: empty name");
  return NodePtr(new Node(Kind::kBasic, std::move(name), {}, 0));
}

NodePtr Node::and_gate(std::vector<NodePtr> children) {
  detail::require_model(!children.empty(), "AND gate needs inputs");
  return NodePtr(new Node(Kind::kAnd, {}, std::move(children), 0));
}

NodePtr Node::or_gate(std::vector<NodePtr> children) {
  detail::require_model(!children.empty(), "OR gate needs inputs");
  return NodePtr(new Node(Kind::kOr, {}, std::move(children), 0));
}

NodePtr Node::k_of_n_gate(std::uint32_t k, std::vector<NodePtr> children) {
  detail::require_model(!children.empty(), "k-of-n gate needs inputs");
  detail::require_model(k >= 1 && k <= children.size(),
                        "k-of-n gate: require 1 <= k <= n");
  return NodePtr(new Node(Kind::kKofN, {}, std::move(children), k));
}

NodePtr Node::not_gate(NodePtr child) {
  detail::require_model(child != nullptr, "NOT gate needs an input");
  return NodePtr(new Node(Kind::kNot, {}, {std::move(child)}, 0));
}

bool Node::coherent() const {
  if (kind_ == Kind::kNot) return false;
  for (const auto& c : children_) {
    if (!c->coherent()) return false;
  }
  return true;
}

FaultTree::FaultTree(NodePtr top, std::map<std::string, EventModel> events)
    : root_(std::move(top)) {
  detail::require_model(root_ != nullptr, "FaultTree: null top node");
  coherent_ = root_->coherent();

  std::function<void(const Node&)> collect = [&](const Node& n) {
    if (n.kind() == Node::Kind::kBasic) {
      const auto it = events.find(n.event_name());
      detail::require_model(it != events.end(),
                            "FaultTree: unknown basic event '" +
                                n.event_name() + "'");
      if (!index_.count(n.event_name())) {
        index_.emplace(n.event_name(),
                       static_cast<std::uint32_t>(names_.size()));
        names_.push_back(n.event_name());
        models_.push_back(it->second);
      }
      return;
    }
    for (const auto& c : n.children()) collect(*c);
  };
  collect(*root_);

  obs::Span span("ftree.build");
  span.set("events", static_cast<std::uint64_t>(names_.size()));

  std::function<bdd::NodeRef(const Node&)> build = [&](const Node& n) {
    switch (n.kind()) {
      case Node::Kind::kBasic:
        return mgr_.var(index_.at(n.event_name()));
      case Node::Kind::kAnd: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(n.children().size());
        for (const auto& c : n.children()) refs.push_back(build(*c));
        return mgr_.and_all(refs);
      }
      case Node::Kind::kOr: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(n.children().size());
        for (const auto& c : n.children()) refs.push_back(build(*c));
        return mgr_.or_all(refs);
      }
      case Node::Kind::kKofN: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(n.children().size());
        for (const auto& c : n.children()) refs.push_back(build(*c));
        return mgr_.at_least(n.k(), refs);
      }
      case Node::Kind::kNot:
        return mgr_.apply_not(build(*n.children()[0]));
    }
    return bdd::Manager::zero();
  };
  top_ref_ = build(*root_);
  span.set("bdd_nodes", mgr_.node_count(top_ref_));
}

std::vector<double> FaultTree::event_probs(double t) const {
  std::vector<double> q(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    q[i] = 1.0 - (t < 0.0 ? models_[i].prob_up_limit()
                          : models_[i].prob_up_at(t));
  }
  return q;
}

double FaultTree::top_probability(double t) const {
  detail::require(t >= 0.0, "FaultTree::top_probability: t must be >= 0");
  return mgr_.prob(top_ref_, event_probs(t));
}

double FaultTree::top_probability_limit() const {
  return mgr_.prob(top_ref_, event_probs(-1.0));
}

double FaultTree::top_probability(
    const std::map<std::string, double>& q) const {
  std::vector<double> p(models_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const auto it = q.find(names_[i]);
    detail::require(it != q.end(),
                    "FaultTree::top_probability: missing probability for '" +
                        names_[i] + "'");
    detail::require(it->second >= 0.0 && it->second <= 1.0,
                    "FaultTree::top_probability: probability out of [0,1]");
    p[i] = it->second;
  }
  return mgr_.prob(top_ref_, p);
}

std::vector<std::vector<std::string>> FaultTree::minimal_cut_sets(
    std::size_t limit) const {
  detail::require_model(coherent_,
                        "minimal_cut_sets: tree contains NOT gates");
  const auto raw = mgr_.minimal_solutions(top_ref_, limit);
  std::vector<std::vector<std::string>> out;
  out.reserve(raw.size());
  for (const auto& cut : raw) {
    std::vector<std::string> named;
    named.reserve(cut.size());
    for (const auto v : cut) named.push_back(names_[v]);
    out.push_back(std::move(named));
  }
  return out;
}

std::vector<std::vector<std::string>> FaultTree::minimal_cut_sets_mocus(
    std::size_t limit) const {
  detail::require_model(coherent_,
                        "minimal_cut_sets_mocus: tree contains NOT gates");

  // MOCUS works on rows of (gate | event) references; expand gates until
  // only basic events remain. Rows are sets of Node pointers for gates and
  // event indices for leaves; we encode both as const Node*.
  using Row = std::set<const Node*>;
  std::vector<Row> rows{{root_.get()}};
  bool expanded = true;
  while (expanded) {
    expanded = false;
    std::vector<Row> next;
    for (const Row& row : rows) {
      // Find first gate in the row.
      const Node* gate = nullptr;
      for (const Node* n : row) {
        if (n->kind() != Node::Kind::kBasic) {
          gate = n;
          break;
        }
      }
      if (gate == nullptr) {
        next.push_back(row);
        continue;
      }
      expanded = true;
      Row base = row;
      base.erase(gate);
      switch (gate->kind()) {
        case Node::Kind::kAnd: {
          Row r = base;
          for (const auto& c : gate->children()) r.insert(c.get());
          next.push_back(std::move(r));
          break;
        }
        case Node::Kind::kOr: {
          for (const auto& c : gate->children()) {
            Row r = base;
            r.insert(c.get());
            next.push_back(std::move(r));
          }
          break;
        }
        case Node::Kind::kKofN: {
          // Expand into all k-subsets (classic MOCUS treatment of voting
          // gates); fine for the gate fan-ins used in practice.
          const auto& ch = gate->children();
          const std::uint32_t n = static_cast<std::uint32_t>(ch.size());
          const std::uint32_t k = gate->k();
          std::vector<std::uint32_t> pick(k);
          for (std::uint32_t i = 0; i < k; ++i) pick[i] = i;
          for (;;) {
            Row r = base;
            for (const auto i : pick) r.insert(ch[i].get());
            next.push_back(r);
            // next combination
            std::int64_t pos = static_cast<std::int64_t>(k) - 1;
            while (pos >= 0 &&
                   pick[static_cast<std::size_t>(pos)] ==
                       n - k + static_cast<std::uint32_t>(pos)) {
              --pos;
            }
            if (pos < 0) break;
            ++pick[static_cast<std::size_t>(pos)];
            for (auto j = static_cast<std::size_t>(pos) + 1; j < k; ++j) {
              pick[j] = pick[j - 1] + 1;
            }
          }
          break;
        }
        case Node::Kind::kBasic:
        case Node::Kind::kNot:
          throw ModelError("minimal_cut_sets_mocus: unexpected node kind");
      }
      if (next.size() > 4 * limit) {
        throw NumericalError("minimal_cut_sets_mocus: row explosion beyond " +
                             std::to_string(4 * limit));
      }
    }
    rows.swap(next);
  }

  // Convert rows to sorted index sets (distinct leaves may share an event
  // name), then remove non-minimal rows.
  std::vector<std::vector<std::uint32_t>> cuts;
  cuts.reserve(rows.size());
  for (const Row& row : rows) {
    std::set<std::uint32_t> idx;
    for (const Node* n : row) idx.insert(index_.at(n->event_name()));
    cuts.emplace_back(idx.begin(), idx.end());
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<std::vector<std::uint32_t>> minimal;
  for (const auto& c : cuts) {
    bool dominated = false;
    for (const auto& m : minimal) {
      if (std::includes(c.begin(), c.end(), m.begin(), m.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      minimal.push_back(c);
      if (minimal.size() > limit) {
        throw NumericalError("minimal_cut_sets_mocus: more than " +
                             std::to_string(limit) + " cut sets");
      }
    }
  }

  std::vector<std::vector<std::string>> out;
  out.reserve(minimal.size());
  for (const auto& cut : minimal) {
    std::vector<std::string> named;
    named.reserve(cut.size());
    for (const auto v : cut) named.push_back(names_[v]);
    out.push_back(std::move(named));
  }
  return out;
}

std::vector<ImportanceRow> FaultTree::importance(double t) const {
  const std::vector<double> q = event_probs(t);
  const double q_top = mgr_.prob(top_ref_, q);

  std::vector<ImportanceRow> rows;
  rows.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const auto var = static_cast<std::uint32_t>(i);
    ImportanceRow row;
    row.event = names_[i];
    const bdd::NodeRef f1 = mgr_.restrict_var(top_ref_, var, true);
    const bdd::NodeRef f0 = mgr_.restrict_var(top_ref_, var, false);
    const double q1 = mgr_.prob(f1, q);
    const double q0 = mgr_.prob(f0, q);
    row.birnbaum = q1 - q0;
    row.criticality = q_top > 0.0 ? row.birnbaum * q[i] / q_top : 0.0;
    // Exact Fussell-Vesely for coherent trees: P(top and event i critical
    // path) ~ standard approximation uses mincut sums; the exact version
    // P(top occurs due to a cut containing i) equals
    // P(top) - P(top with q_i = 0) for coherent structures.
    row.fussell_vesely = q_top > 0.0 ? (q_top - q0) / q_top : 0.0;
    row.raw = q_top > 0.0 ? q1 / q_top : 0.0;
    row.rrw = q0 > 0.0 ? q_top / q0
                       : std::numeric_limits<double>::infinity();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::size_t FaultTree::bdd_node_count() const {
  return mgr_.node_count(top_ref_);
}

std::uint32_t FaultTree::event_index(const std::string& name) const {
  const auto it = index_.find(name);
  detail::require(it != index_.end(),
                  "FaultTree::event_index: unknown event '" + name + "'");
  return it->second;
}

GeneratedTree generate_wide_tree(std::uint32_t clusters, std::uint32_t k,
                                 std::uint32_t n, double q) {
  detail::require(clusters >= 1 && n >= 1 && k >= 1 && k <= n,
                  "generate_wide_tree: bad shape parameters");
  detail::require(q > 0.0 && q < 1.0, "generate_wide_tree: q in (0,1)");
  GeneratedTree out;
  std::vector<NodePtr> cluster_gates;
  cluster_gates.reserve(clusters);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    std::vector<NodePtr> leaves;
    leaves.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string name =
          "C" + std::to_string(c) + "_E" + std::to_string(i);
      leaves.push_back(Node::basic(name));
      out.events.emplace(std::move(name), EventModel::fixed(1.0 - q));
    }
    cluster_gates.push_back(Node::k_of_n_gate(k, std::move(leaves)));
  }
  out.top = Node::or_gate(std::move(cluster_gates));
  return out;
}

}  // namespace relkit::ftree
