// Bounding algorithms for large combinatorial models.
//
// The tutorial's Boeing 787 case: the exact top-event probability of a very
// large fault tree is infeasible, so certified bounds are computed from
// (possibly truncated) minimal cut / path sets instead. Three families:
//
//  * union/max bounds        — max_C P(C)  <=  Q  <=  sum_C P(C)
//  * Bonferroni (truncated inclusion-exclusion) — partial sums S_1 - S_2 +
//    S_3 ... alternate above/below Q; depth d gives an interval whose width
//    shrinks with d at combinatorial cost C(m, d)
//  * Esary-Proschan          — products over cut sets (upper) and path sets
//    (lower), linear cost, valid for coherent systems of independent
//    components
//
// Cut sets are lists of event indices into a probability vector q (failure
// probabilities). All bounds assume independence and coherence.
#pragma once

#include <cstdint>
#include <vector>

#include "common/interval.hpp"

namespace relkit::ftree {

using CutSet = std::vector<std::uint32_t>;

/// P(all events of `cut` occur) under independence.
double cut_probability(const CutSet& cut, const std::vector<double>& q);

/// max-cut lower bound and union (rare-event) upper bound.
Interval union_bound(const std::vector<CutSet>& cuts,
                     const std::vector<double>& q);

/// Bonferroni bounds from truncated inclusion-exclusion up to `depth` terms
/// (depth >= 1). Uses exact joint probabilities of cut unions. Cost grows as
/// C(#cuts, depth); intended for depth <= 4 on at most a few hundred cuts.
Interval bonferroni_bound(const std::vector<CutSet>& cuts,
                          const std::vector<double>& q, std::uint32_t depth);

/// Esary-Proschan bounds. `paths` are minimal path sets (indices into the
/// same event space); pass an empty list to get a 0 lower bound.
Interval esary_proschan_bound(const std::vector<CutSet>& cuts,
                              const std::vector<CutSet>& paths,
                              const std::vector<double>& q);

/// Exact top-event probability by sum of disjoint products over the minimal
/// cut sets (inclusion-exclusion evaluated completely). Exponential in the
/// number of cuts; reference implementation for validating bounds on small
/// models. Throws if #cuts > 25.
double exact_from_cuts(const std::vector<CutSet>& cuts,
                       const std::vector<double>& q);

}  // namespace relkit::ftree
