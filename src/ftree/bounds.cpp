#include "ftree/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace relkit::ftree {

double cut_probability(const CutSet& cut, const std::vector<double>& q) {
  static obs::Counter& evals = obs::counter("bounds.cut_prob_evals");
  evals.add();
  double p = 1.0;
  for (const auto i : cut) {
    detail::require(i < q.size(), "cut_probability: index out of range");
    p *= q[i];
  }
  return p;
}

Interval union_bound(const std::vector<CutSet>& cuts,
                     const std::vector<double>& q) {
  double lo = 0.0;
  double hi = 0.0;
  for (const auto& c : cuts) {
    const double p = cut_probability(c, q);
    lo = std::max(lo, p);
    hi += p;
  }
  return Interval(lo, std::min(1.0, hi)).clamp01();
}

namespace {

// P(union of the events of the given cuts all occur simultaneously):
// product of q over the union of indices.
double joint_probability(const std::vector<CutSet>& cuts,
                         const std::vector<std::size_t>& pick,
                         const std::vector<double>& q) {
  // Merge indices of the selected cuts (each cut is sorted).
  std::vector<std::uint32_t> merged;
  for (const auto ci : pick) {
    std::vector<std::uint32_t> next;
    next.reserve(merged.size() + cuts[ci].size());
    std::set_union(merged.begin(), merged.end(), cuts[ci].begin(),
                   cuts[ci].end(), std::back_inserter(next));
    merged.swap(next);
  }
  double p = 1.0;
  for (const auto i : merged) p *= q[i];
  return p;
}

// Sum over all `depth`-subsets of cuts of the joint probability.
double bonferroni_term(const std::vector<CutSet>& cuts,
                       const std::vector<double>& q, std::uint32_t depth) {
  const std::size_t m = cuts.size();
  if (depth > m) return 0.0;
  std::vector<std::size_t> pick(depth);
  for (std::size_t i = 0; i < depth; ++i) pick[i] = i;
  double s = 0.0;
  for (;;) {
    s += joint_probability(cuts, pick, q);
    // Next combination.
    std::size_t pos = depth;
    while (pos > 0 && pick[pos - 1] == m - depth + pos - 1) --pos;
    if (pos == 0) break;
    ++pick[pos - 1];
    for (std::size_t j = pos; j < depth; ++j) pick[j] = pick[j - 1] + 1;
  }
  return s;
}

}  // namespace

Interval bonferroni_bound(const std::vector<CutSet>& cuts,
                          const std::vector<double>& q, std::uint32_t depth) {
  detail::require(depth >= 1, "bonferroni_bound: depth must be >= 1");
  if (cuts.empty()) return Interval(0.0, 0.0);

  obs::Span span("bounds.bonferroni");
  span.set("cuts", static_cast<std::uint64_t>(cuts.size()));
  span.set("depth", static_cast<std::uint64_t>(depth));

  // Guard against combinatorial blowup: C(m, depth) terms.
  double work = 1.0;
  for (std::uint32_t d = 0; d < depth; ++d) {
    work *= static_cast<double>(cuts.size() - d) / static_cast<double>(d + 1);
  }
  detail::require(work <= 5e7,
                  "bonferroni_bound: too many inclusion-exclusion terms; "
                  "reduce depth or truncate the cut list");

  double partial = 0.0;
  double upper = 1.0;
  double lower = 0.0;
  for (std::uint32_t d = 1; d <= depth; ++d) {
    const double term = bonferroni_term(cuts, q, d);
    partial += (d % 2 == 1) ? term : -term;
    if (d % 2 == 1) {
      upper = std::min(upper, partial);
    } else {
      lower = std::max(lower, partial);
    }
    if (d == cuts.size()) {
      // Complete inclusion-exclusion: the value is exact.
      upper = partial;
      lower = partial;
      break;
    }
  }
  return Interval(std::max(0.0, std::min(lower, upper)),
                  std::max(lower, upper))
      .clamp01();
}

Interval esary_proschan_bound(const std::vector<CutSet>& cuts,
                              const std::vector<CutSet>& paths,
                              const std::vector<double>& q) {
  // Upper: 1 - prod over cuts of (1 - P(cut fails)).
  double log_prod_up = 0.0;
  for (const auto& c : cuts) {
    const double pc = cut_probability(c, q);
    if (pc >= 1.0) return Interval(1.0, 1.0);
    log_prod_up += std::log1p(-pc);
  }
  const double upper = -std::expm1(log_prod_up);

  // Lower: prod over paths of P(path broken) = prod (1 - prod_i (1 - q_i)).
  double lower = 0.0;
  if (!paths.empty()) {
    double log_prod_lo = 0.0;
    bool zero = false;
    for (const auto& p : paths) {
      double path_up = 1.0;
      for (const auto i : p) {
        detail::require(i < q.size(),
                        "esary_proschan_bound: index out of range");
        path_up *= (1.0 - q[i]);
      }
      const double broken = 1.0 - path_up;
      if (broken <= 0.0) {
        zero = true;
        break;
      }
      log_prod_lo += std::log(broken);
    }
    lower = zero ? 0.0 : std::exp(log_prod_lo);
  }
  // The two EP bounds can cross only through numerical noise.
  return Interval(std::min(lower, upper), upper).clamp01();
}

double exact_from_cuts(const std::vector<CutSet>& cuts,
                       const std::vector<double>& q) {
  detail::require(cuts.size() <= 25,
                  "exact_from_cuts: inclusion-exclusion over > 25 cuts");
  const std::size_t m = cuts.size();
  double total = 0.0;
  for (std::uint64_t mask = 1; mask < (1ull << m); ++mask) {
    std::vector<std::size_t> pick;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1ull << i)) pick.push_back(i);
    }
    const double p = joint_probability(cuts, pick, q);
    total += (pick.size() % 2 == 1) ? p : -p;
  }
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace relkit::ftree
