// Fault trees.
//
// The tutorial's second non-state-space model type: the top event is system
// failure, internal gates are AND / OR / k-of-n (k inputs failing fires the
// gate) / NOT, and leaves are basic events. Repeated basic events are
// handled exactly via BDD compilation. Two independent minimal-cut-set
// algorithms are provided (BDD minimal solutions, and the classical MOCUS
// top-down expansion) so each can validate the other, and MOCUS works even
// when the BDD would blow up.
//
// Importance measures follow the standard definitions on the top-event
// probability Q(q_1..q_n): Birnbaum dQ/dq_i, criticality, Fussell-Vesely,
// risk achievement worth (RAW) and risk reduction worth (RRW).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "common/component.hpp"

namespace relkit::ftree {

class Node;
using NodePtr = std::shared_ptr<const Node>;

/// Gate / basic-event AST node.
class Node {
 public:
  enum class Kind { kBasic, kAnd, kOr, kKofN, kNot };

  Kind kind() const { return kind_; }
  const std::string& event_name() const { return name_; }
  const std::vector<NodePtr>& children() const { return children_; }
  std::uint32_t k() const { return k_; }

  /// Leaf basic event `name` (may be referenced by multiple leaves).
  static NodePtr basic(std::string name);
  /// Fires when all inputs fire.
  static NodePtr and_gate(std::vector<NodePtr> children);
  /// Fires when any input fires.
  static NodePtr or_gate(std::vector<NodePtr> children);
  /// Fires when at least k inputs fire (a.k.a. voting gate).
  static NodePtr k_of_n_gate(std::uint32_t k, std::vector<NodePtr> children);
  /// Negation — makes the tree non-coherent; cut-set and bound methods then
  /// throw ModelError.
  static NodePtr not_gate(NodePtr child);

  /// True if no NOT gate appears in the subtree.
  bool coherent() const;

 private:
  Node(Kind kind, std::string name, std::vector<NodePtr> children,
       std::uint32_t k)
      : kind_(kind), name_(std::move(name)), children_(std::move(children)),
        k_(k) {}

  Kind kind_;
  std::string name_;
  std::vector<NodePtr> children_;
  std::uint32_t k_ = 0;
};

/// Basic-event behaviour: the same three component models as RBDs; the
/// event "occurs" when the component is down, so its probability at time t
/// is 1 - prob_up_at(t).
using EventModel = relkit::ComponentModel;

/// Importance measures of one basic event.
struct ImportanceRow {
  std::string event;
  double birnbaum = 0.0;        ///< dQ/dq_i
  double criticality = 0.0;     ///< birnbaum * q_i / Q
  double fussell_vesely = 0.0;  ///< sum of cut products containing i / Q
  double raw = 0.0;             ///< Q(q_i = 1) / Q
  double rrw = 0.0;             ///< Q / Q(q_i = 0)
};

/// A compiled fault tree.
class FaultTree {
 public:
  /// Compiles `top` over the basic-event behaviour models.
  FaultTree(NodePtr top, std::map<std::string, EventModel> events);

  std::size_t event_count() const { return names_.size(); }
  const std::vector<std::string>& event_names() const { return names_; }
  /// Basic-event behaviour models, aligned with event_names() (used by
  /// the CLI to build a SystemSimulator for --rare-event cross-checks).
  const std::vector<EventModel>& event_models() const { return models_; }
  bool coherent() const { return coherent_; }

  /// Top-event probability at time t (unreliability / unavailability).
  double top_probability(double t) const;
  /// Limiting top-event probability (steady-state unavailability).
  double top_probability_limit() const;
  /// Top-event probability under explicit per-event failure probabilities.
  double top_probability(const std::map<std::string, double>& q) const;

  /// Minimal cut sets via BDD minimal solutions (coherent trees only).
  std::vector<std::vector<std::string>> minimal_cut_sets(
      std::size_t limit = 1u << 20) const;

  /// Minimal cut sets via the classical MOCUS top-down expansion; does not
  /// require the BDD and is used to cross-validate it (coherent trees only).
  std::vector<std::vector<std::string>> minimal_cut_sets_mocus(
      std::size_t limit = 1u << 20) const;

  /// Importance measures at time t (steady state when t < 0).
  std::vector<ImportanceRow> importance(double t) const;

  /// Per-event failure probabilities at time t (steady state when t < 0),
  /// in event_names() order.
  std::vector<double> event_probs(double t) const;

  /// Size of the top-event BDD in nodes.
  std::size_t bdd_node_count() const;

  /// Access to the BDD for advanced use (bounds, custom measures).
  const bdd::Manager& manager() const { return mgr_; }
  bdd::NodeRef top_ref() const { return top_ref_; }

  /// Event index by name (throws if unknown).
  std::uint32_t event_index(const std::string& name) const;

 private:
  mutable bdd::Manager mgr_;
  bdd::NodeRef top_ref_ = bdd::Manager::zero();
  NodePtr root_;
  bool coherent_ = true;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> index_;
  std::vector<EventModel> models_;
};

/// Scalable synthetic fault tree with the shape of the tutorial's Boeing 787
/// example: a wide OR of `clusters` independent k-of-n voting clusters, each
/// over `n` basic events with failure probability `q`. Used by the bounding
/// benchmarks (exact solution becomes expensive as clusters * n grows).
struct GeneratedTree {
  NodePtr top;
  std::map<std::string, EventModel> events;
};
GeneratedTree generate_wide_tree(std::uint32_t clusters, std::uint32_t k,
                                 std::uint32_t n, double q);

}  // namespace relkit::ftree
