// Parametric (epistemic) uncertainty propagation.
//
// The tutorial's closing challenge: model inputs (failure rates, repair
// rates, coverage probabilities) are estimated from finite data, so the
// model output is itself a random variable. This module provides
//
//   * conjugate Bayesian posteriors from observed life data — Gamma for
//     exponential rates, Beta for probabilities — so that "r failures in
//     total time T" directly yields the rate distribution;
//   * Monte-Carlo and Latin-hypercube propagation of any set of parameter
//     distributions through an arbitrary scalar model function;
//   * summaries: mean, standard deviation, percentile confidence intervals.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/distributions.hpp"
#include "common/rng.hpp"

namespace relkit::uncertainty {

/// A named uncertain parameter.
struct ParamSpec {
  std::string name;
  DistPtr dist;
};

/// The model under study: maps a concrete parameter assignment to a scalar
/// output (availability, MTTF, top-event probability, ...).
using ModelFn = std::function<double(const std::map<std::string, double>&)>;

/// Sampling strategy.
enum class Sampling {
  kMonteCarlo,      ///< independent draws
  kLatinHypercube,  ///< stratified: each parameter's quantile space is
                    ///< partitioned into n strata sampled exactly once
};

/// Result of a propagation run.
struct UncertaintyResult {
  std::vector<double> samples;  ///< model outputs, unsorted
  double mean = 0.0;
  double stddev = 0.0;
  /// p-th percentile of the output distribution (p in [0,1]).
  double percentile(double p) const;
  /// Equal-tailed interval at the given level, e.g. 0.90 -> [5%, 95%].
  std::pair<double, double> interval(double level) const;
};

/// Propagates parameter uncertainty through `model` with `n` samples.
///
/// `jobs` controls fan-out across the process-wide thread pool
/// (parallel::global_pool): 0 = use parallel::default_jobs() (library
/// default 1 = sequential), 1 = the historical sequential path bit for
/// bit, > 1 = samples are evaluated in parallel chunks. In parallel mode
/// every sample draws from its own RNG sub-stream split from `rng` in
/// sample order, so the result is deterministic for a given seed and
/// identical for ANY worker count >= 2 — but it is a different (equally
/// valid) random sequence than the sequential path's, which draws all
/// parameters from `rng` directly. The model function is called
/// concurrently and must be thread-safe when jobs > 1 (every RelKit
/// solver is; capture-by-reference state in a caller's lambda may not be).
/// See docs/parallelism.md.
UncertaintyResult propagate(const std::vector<ParamSpec>& params,
                            const ModelFn& model, std::size_t n, Rng& rng,
                            Sampling sampling = Sampling::kLatinHypercube,
                            std::size_t jobs = 0);

// ---- conjugate posteriors from life data -----------------------------------

/// Posterior of an exponential failure rate after observing `failures`
/// events in cumulative exposure `total_time`, with a Gamma(shape0, rate0)
/// prior (Jeffreys-ish default: shape0 = 0.5, rate0 ~ 0). Returns
/// Gamma(shape0 + failures, rate0 + total_time).
DistPtr rate_posterior(double failures, double total_time,
                       double prior_shape = 0.5, double prior_rate = 1e-9);

/// Posterior of a probability (e.g. coverage) after `successes` out of
/// `trials`, with a Beta(a0, b0) prior (uniform default). Returns
/// Beta(a0 + successes, b0 + trials - successes).
DistPtr probability_posterior(double successes, double trials,
                              double prior_a = 1.0, double prior_b = 1.0);

}  // namespace relkit::uncertainty
