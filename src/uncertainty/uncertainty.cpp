#include "uncertainty/uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"

namespace relkit::uncertainty {

double UncertaintyResult::percentile(double p) const {
  return relkit::percentile(samples, p);
}

std::pair<double, double> UncertaintyResult::interval(double level) const {
  detail::require(level > 0.0 && level < 1.0,
                  "UncertaintyResult::interval: level in (0,1)");
  const double tail = 0.5 * (1.0 - level);
  return {percentile(tail), percentile(1.0 - tail)};
}

UncertaintyResult propagate(const std::vector<ParamSpec>& params,
                            const ModelFn& model, std::size_t n, Rng& rng,
                            Sampling sampling, std::size_t jobs) {
  detail::require(!params.empty(), "propagate: no parameters");
  detail::require(model != nullptr, "propagate: null model");
  detail::require(n >= 2, "propagate: need at least 2 samples");
  for (const auto& p : params) {
    detail::require(p.dist != nullptr,
                    "propagate: null distribution for '" + p.name + "'");
    detail::require(!p.name.empty(), "propagate: empty parameter name");
  }
  if (jobs == 0) jobs = parallel::default_jobs();

  const std::size_t k = params.size();

  // For LHS: per-parameter random permutation of strata.
  std::vector<std::vector<std::size_t>> strata;
  if (sampling == Sampling::kLatinHypercube) {
    strata.assign(k, {});
    for (std::size_t j = 0; j < k; ++j) {
      strata[j].resize(n);
      for (std::size_t i = 0; i < n; ++i) strata[j][i] = i;
      // Fisher-Yates.
      for (std::size_t i = n; i-- > 1;) {
        std::swap(strata[j][i], strata[j][rng.below(i + 1)]);
      }
    }
  }

  UncertaintyResult out;
  OnlineStats stats;
  if (jobs <= 1) {
    out.samples.reserve(n);
    std::map<std::string, double> assignment;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        double draw;
        if (sampling == Sampling::kLatinHypercube) {
          // Uniform within the assigned stratum, inverse-cdf transform.
          const double u =
              (static_cast<double>(strata[j][i]) + rng.uniform()) /
              static_cast<double>(n);
          const double clamped = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
          draw = params[j].dist->quantile(clamped);
        } else {
          draw = params[j].dist->sample(rng);
        }
        assignment[params[j].name] = draw;
      }
      const double y = model(assignment);
      detail::require(std::isfinite(y),
                      "propagate: model returned a non-finite value");
      out.samples.push_back(y);
      stats.add(y);
    }
  } else {
    // Parallel path: each sample draws from its own sub-stream split from
    // `rng` in sample order, so sample i's parameter values depend only on
    // the seed and i — never on the worker count. Sample outputs land at
    // their index, and per-chunk moment accumulators merge in chunk order
    // (see docs/parallelism.md for the determinism contract).
    obs::Span span("uncertainty.propagate");
    span.set("samples", n);
    span.set("jobs", static_cast<std::uint64_t>(jobs));
    std::vector<Rng> streams;
    streams.reserve(n);
    for (std::size_t i = 0; i < n; ++i) streams.push_back(rng.split());
    out.samples.assign(n, 0.0);
    // Reuse the process-wide pool when it matches; a caller asking for a
    // different explicit degree gets a pool of its own for this call.
    std::unique_ptr<parallel::ThreadPool> local_pool;
    if (jobs != parallel::default_jobs()) {
      local_pool = std::make_unique<parallel::ThreadPool>(
          static_cast<unsigned>(jobs));
    }
    parallel::ThreadPool& pool =
        local_pool ? *local_pool : parallel::global_pool();
    stats = parallel::reduce_chunks<OnlineStats>(
        pool, n, parallel::default_chunk(n), OnlineStats{},
        [&](std::size_t begin, std::size_t end) {
          OnlineStats local;
          std::map<std::string, double> assignment;
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < k; ++j) {
              double draw;
              if (sampling == Sampling::kLatinHypercube) {
                const double u =
                    (static_cast<double>(strata[j][i]) +
                     streams[i].uniform()) /
                    static_cast<double>(n);
                const double clamped =
                    std::min(std::max(u, 1e-12), 1.0 - 1e-12);
                draw = params[j].dist->quantile(clamped);
              } else {
                draw = params[j].dist->sample(streams[i]);
              }
              assignment[params[j].name] = draw;
            }
            const double y = model(assignment);
            detail::require(std::isfinite(y),
                            "propagate: model returned a non-finite value");
            out.samples[i] = y;
            local.add(y);
          }
          return local;
        },
        [](OnlineStats& acc, const OnlineStats& chunk) { acc.merge(chunk); });
  }
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  return out;
}

DistPtr rate_posterior(double failures, double total_time, double prior_shape,
                       double prior_rate) {
  detail::require(failures >= 0.0, "rate_posterior: failures must be >= 0");
  detail::require(total_time > 0.0, "rate_posterior: total_time must be > 0");
  detail::require(prior_shape > 0.0 && prior_rate >= 0.0,
                  "rate_posterior: bad prior");
  return gamma_dist(prior_shape + failures, prior_rate + total_time);
}

DistPtr probability_posterior(double successes, double trials, double prior_a,
                              double prior_b) {
  detail::require(successes >= 0.0 && trials >= successes,
                  "probability_posterior: need 0 <= successes <= trials");
  detail::require(prior_a > 0.0 && prior_b > 0.0,
                  "probability_posterior: bad prior");
  return beta_dist(prior_a + successes, prior_b + trials - successes);
}

}  // namespace relkit::uncertainty
