#include "uncertainty/uncertainty.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace relkit::uncertainty {

double UncertaintyResult::percentile(double p) const {
  return relkit::percentile(samples, p);
}

std::pair<double, double> UncertaintyResult::interval(double level) const {
  detail::require(level > 0.0 && level < 1.0,
                  "UncertaintyResult::interval: level in (0,1)");
  const double tail = 0.5 * (1.0 - level);
  return {percentile(tail), percentile(1.0 - tail)};
}

UncertaintyResult propagate(const std::vector<ParamSpec>& params,
                            const ModelFn& model, std::size_t n, Rng& rng,
                            Sampling sampling) {
  detail::require(!params.empty(), "propagate: no parameters");
  detail::require(model != nullptr, "propagate: null model");
  detail::require(n >= 2, "propagate: need at least 2 samples");
  for (const auto& p : params) {
    detail::require(p.dist != nullptr,
                    "propagate: null distribution for '" + p.name + "'");
    detail::require(!p.name.empty(), "propagate: empty parameter name");
  }

  const std::size_t k = params.size();

  // For LHS: per-parameter random permutation of strata.
  std::vector<std::vector<std::size_t>> strata;
  if (sampling == Sampling::kLatinHypercube) {
    strata.assign(k, {});
    for (std::size_t j = 0; j < k; ++j) {
      strata[j].resize(n);
      for (std::size_t i = 0; i < n; ++i) strata[j][i] = i;
      // Fisher-Yates.
      for (std::size_t i = n; i-- > 1;) {
        std::swap(strata[j][i], strata[j][rng.below(i + 1)]);
      }
    }
  }

  UncertaintyResult out;
  out.samples.reserve(n);
  OnlineStats stats;
  std::map<std::string, double> assignment;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double draw;
      if (sampling == Sampling::kLatinHypercube) {
        // Uniform within the assigned stratum, inverse-cdf transform.
        const double u =
            (static_cast<double>(strata[j][i]) + rng.uniform()) /
            static_cast<double>(n);
        const double clamped = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
        draw = params[j].dist->quantile(clamped);
      } else {
        draw = params[j].dist->sample(rng);
      }
      assignment[params[j].name] = draw;
    }
    const double y = model(assignment);
    detail::require(std::isfinite(y),
                    "propagate: model returned a non-finite value");
    out.samples.push_back(y);
    stats.add(y);
  }
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  return out;
}

DistPtr rate_posterior(double failures, double total_time, double prior_shape,
                       double prior_rate) {
  detail::require(failures >= 0.0, "rate_posterior: failures must be >= 0");
  detail::require(total_time > 0.0, "rate_posterior: total_time must be > 0");
  detail::require(prior_shape > 0.0 && prior_rate >= 0.0,
                  "rate_posterior: bad prior");
  return gamma_dist(prior_shape + failures, prior_rate + total_time);
}

DistPtr probability_posterior(double successes, double trials, double prior_a,
                              double prior_b) {
  detail::require(successes >= 0.0 && trials >= successes,
                  "probability_posterior: need 0 <= successes <= trials");
  detail::require(prior_a > 0.0 && prior_b > 0.0,
                  "probability_posterior: bad prior");
  return beta_dist(prior_a + successes, prior_b + trials - successes);
}

}  // namespace relkit::uncertainty
