// Parameter estimation from life data — where model inputs come from in
// practice.
//
// The tutorial's models need failure/repair rates and distribution
// parameters; these come from field data that is usually *right-censored*
// (units still alive when the observation window closes). This module
// provides maximum-likelihood estimators for the lifetime families used in
// availability studies, a Kaplan-Meier-free sufficient-statistics design
// (each observation is a time plus a censoring flag), asymptotic confidence
// intervals, and a Kolmogorov-Smirnov fit diagnostic.
#pragma once

#include <cstddef>
#include <vector>

#include "common/distributions.hpp"

namespace relkit::uncertainty {

/// One life-data observation: `time` until failure (censored = false) or
/// until observation ended with the unit alive (censored = true).
struct Observation {
  double time;
  bool censored = false;
};

/// Convenience: complete (uncensored) sample.
std::vector<Observation> complete_sample(const std::vector<double>& times);

/// Result of a maximum-likelihood fit.
struct ExponentialFit {
  double rate;        ///< MLE: failures / total exposure
  double rate_lo;     ///< 95% CI (chi-square exact for exponential)
  double rate_hi;
  std::size_t failures;
  double exposure;
};

/// Exponential MLE with right censoring: rate = r / sum(times).
/// Requires at least one failure.
ExponentialFit fit_exponential(const std::vector<Observation>& data);

struct WeibullFit {
  double shape;
  double scale;
  std::size_t iterations;  ///< Newton iterations used
};

/// Weibull MLE with right censoring, solved by safeguarded Newton iteration
/// on the shape's profile-likelihood equation. Requires >= 2 distinct
/// failure times.
WeibullFit fit_weibull(const std::vector<Observation>& data);

struct LognormalFit {
  double mu;
  double sigma;
};

/// Lognormal MLE (complete samples only — censored lognormal needs EM,
/// out of scope). Requires >= 2 observations, all uncensored.
LognormalFit fit_lognormal(const std::vector<Observation>& data);

/// Kolmogorov-Smirnov statistic sup_x |F_n(x) - F(x)| of the *uncensored*
/// observations against a hypothesized distribution. A rough acceptance
/// guide: D < 1.36 / sqrt(n) at the 5% level for moderate n.
double ks_statistic(const std::vector<Observation>& data,
                    const Distribution& hypothesis);

}  // namespace relkit::uncertainty
