#include "uncertainty/estimation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace relkit::uncertainty {

std::vector<Observation> complete_sample(const std::vector<double>& times) {
  std::vector<Observation> out;
  out.reserve(times.size());
  for (double t : times) out.push_back({t, false});
  return out;
}

namespace {

void validate(const std::vector<Observation>& data) {
  detail::require(!data.empty(), "estimation: empty data");
  for (const auto& o : data) {
    detail::require(o.time > 0.0, "estimation: observation times must be > 0");
  }
}

std::size_t failure_count(const std::vector<Observation>& data) {
  std::size_t r = 0;
  for (const auto& o : data) r += o.censored ? 0 : 1;
  return r;
}

}  // namespace

ExponentialFit fit_exponential(const std::vector<Observation>& data) {
  validate(data);
  const std::size_t r = failure_count(data);
  detail::require(r >= 1, "fit_exponential: need at least one failure");
  double exposure = 0.0;
  for (const auto& o : data) exposure += o.time;

  ExponentialFit fit;
  fit.failures = r;
  fit.exposure = exposure;
  fit.rate = static_cast<double>(r) / exposure;
  // Exact (Poisson-process) 95% interval via Gamma quantiles:
  // lower from Gamma(r, T), upper from Gamma(r + 1, T).
  const Gamma lower_dist(static_cast<double>(r), exposure);
  const Gamma upper_dist(static_cast<double>(r) + 1.0, exposure);
  fit.rate_lo = lower_dist.quantile(0.025);
  fit.rate_hi = upper_dist.quantile(0.975);
  return fit;
}

WeibullFit fit_weibull(const std::vector<Observation>& data) {
  validate(data);
  const std::size_t r = failure_count(data);
  detail::require(r >= 2, "fit_weibull: need at least two failures");
  {
    // Distinct failure times required, or the profile equation degenerates.
    std::vector<double> ft;
    for (const auto& o : data) {
      if (!o.censored) ft.push_back(o.time);
    }
    std::sort(ft.begin(), ft.end());
    detail::require(std::adjacent_find(ft.begin(), ft.end()) == ft.end() ||
                        ft.front() != ft.back(),
                    "fit_weibull: all failure times identical");
  }

  // Profile equation in the shape k:
  //   g(k) = S1(k)/S0(k) - 1/k - mean(ln t over failures) = 0,
  // where S0 = sum_all t^k, S1 = sum_all t^k ln t. g is increasing in k.
  double mean_log_fail = 0.0;
  for (const auto& o : data) {
    if (!o.censored) mean_log_fail += std::log(o.time);
  }
  mean_log_fail /= static_cast<double>(r);

  const auto g = [&](double k) {
    double s0 = 0.0, s1 = 0.0;
    for (const auto& o : data) {
      const double tk = std::pow(o.time, k);
      s0 += tk;
      s1 += tk * std::log(o.time);
    }
    return s1 / s0 - 1.0 / k - mean_log_fail;
  };

  // Bracket then bisect with a Newton-flavoured midpoint (secant) step.
  double lo = 1e-3, hi = 1.0;
  int guard = 0;
  while (g(hi) < 0.0) {
    lo = hi;
    hi *= 2.0;
    detail::require(++guard < 60,
                    "fit_weibull: shape estimate exceeds bracketing limit");
  }
  std::size_t iters = 0;
  while (hi - lo > 1e-12 * (1.0 + hi) && iters < 300) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    ++iters;
  }
  const double shape = 0.5 * (lo + hi);

  double s0 = 0.0;
  for (const auto& o : data) s0 += std::pow(o.time, shape);
  const double scale = std::pow(s0 / static_cast<double>(r), 1.0 / shape);

  WeibullFit fit;
  fit.shape = shape;
  fit.scale = scale;
  fit.iterations = iters;
  return fit;
}

LognormalFit fit_lognormal(const std::vector<Observation>& data) {
  validate(data);
  detail::require(data.size() >= 2, "fit_lognormal: need >= 2 observations");
  for (const auto& o : data) {
    detail::require(!o.censored,
                    "fit_lognormal: censored data not supported");
  }
  double mu = 0.0;
  for (const auto& o : data) mu += std::log(o.time);
  mu /= static_cast<double>(data.size());
  double var = 0.0;
  for (const auto& o : data) {
    const double d = std::log(o.time) - mu;
    var += d * d;
  }
  var /= static_cast<double>(data.size());  // MLE (biased) variance
  LognormalFit fit;
  fit.mu = mu;
  fit.sigma = std::sqrt(var);
  detail::require(fit.sigma > 0.0,
                  "fit_lognormal: zero variance (identical observations)");
  return fit;
}

double ks_statistic(const std::vector<Observation>& data,
                    const Distribution& hypothesis) {
  validate(data);
  std::vector<double> failures;
  for (const auto& o : data) {
    if (!o.censored) failures.push_back(o.time);
  }
  detail::require(!failures.empty(), "ks_statistic: no uncensored data");
  std::sort(failures.begin(), failures.end());
  const double n = static_cast<double>(failures.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const double f = hypothesis.cdf(failures[i]);
    const double hi = (static_cast<double>(i) + 1.0) / n - f;
    const double lo = f - static_cast<double>(i) / n;
    worst = std::max({worst, hi, lo});
  }
  return worst;
}

}  // namespace relkit::uncertainty
