// relkit::parallel — a small, work-stealing-free thread pool for the
// embarrassingly parallel fan-outs in RelKit: Monte Carlo replications
// (sim::SystemSimulator / sim::SrnSimulator), parametric-uncertainty
// sample propagation (uncertainty::propagate), and batch model solves
// (relkit_cli --batch).
//
// Design:
//
//   * Fixed worker threads (jobs - 1 background threads; the calling thread
//     always participates, so jobs == 1 means "no threads at all" and the
//     caller runs every chunk inline).
//   * Chunked dynamic scheduling: for_chunks(n, chunk, body) carves [0, n)
//     into fixed-size chunks that workers claim with one atomic fetch_add —
//     no per-task queues, no stealing, nothing to get wrong under TSan.
//   * Deterministic decomposition: chunk boundaries depend only on
//     (n, chunk), never on the worker count or on timing. reduce_chunks
//     merges per-chunk accumulators in chunk-index order, so a reduction's
//     result is a pure function of (inputs, n, chunk) — the worker count
//     can change only the wall-clock time, not the answer. Stochastic
//     fan-outs (simulator replications, rare-event cycles and their
//     RESTART split branches) extend the same idea to randomness: streams
//     are pre-split from the master seed in item order (and branch streams
//     from the parent stream in spawn order) before any chunk runs. See
//     docs/parallelism.md for the full determinism contract.
//   * Cooperative cancellation: an optional cancel() predicate (typically
//     robust::Budget deadline checks) is polled between chunks; once it
//     returns true no further chunks start, in-flight chunks finish, and
//     for_chunks reports how many chunks ran.
//   * Observability: every fan-out opens a `parallel.region` span
//     (items/chunk/jobs/chunks-run attrs), bumps the `pool.tasks` counter
//     per chunk, and accumulates `pool.steal_idle_ns` — nanoseconds workers
//     spent idle after work was posted before claiming their first chunk.
//
// Exceptions thrown by a chunk body cancel the region and are rethrown on
// the calling thread (first one wins).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace relkit::parallel {

class ThreadPool {
 public:
  /// A pool running work on `jobs` threads total: the caller plus
  /// jobs - 1 background workers. jobs == 0 means hardware concurrency.
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute chunks (callers included), >= 1.
  unsigned jobs() const { return jobs_; }

  using Body = std::function<void(std::size_t begin, std::size_t end)>;
  using CancelFn = std::function<bool()>;

  /// Runs body(begin, end) over [0, n) in chunks of `chunk` (the final
  /// chunk may be short). Blocks until every started chunk finished.
  /// Returns the number of chunks that ran (== ceil(n/chunk) unless
  /// cancelled or a body threw). The cancel predicate, when given, is
  /// polled before each chunk from whichever thread claims it.
  std::size_t for_chunks(std::size_t n, std::size_t chunk, const Body& body,
                         const CancelFn& cancel = nullptr);

 private:
  struct Job;
  void worker_loop();
  static void run_chunks(Job& job);

  unsigned jobs_ = 1;
  struct Impl;
  Impl* impl_ = nullptr;  // threads + queue state; null when jobs_ == 1
};

/// Chunk size heuristic for n items. Depends on n ONLY (never on the
/// worker count) so that chunked reductions stay deterministic when the
/// pool size changes: enough chunks (~64) for load balance on any sane
/// core count, large enough to amortize the claim fetch_add.
inline std::size_t default_chunk(std::size_t n) {
  const std::size_t chunk = n / 64;
  return chunk < 1 ? 1 : (chunk > 8192 ? 8192 : chunk);
}

/// Deterministic chunked reduction. chunk_fn(begin, end) produces one
/// accumulator per chunk; merge(acc, chunk_acc) folds them together IN
/// CHUNK-INDEX ORDER, so the result is independent of the worker count.
/// Chunks skipped by cancellation are simply absent from the fold.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc reduce_chunks(ThreadPool& pool, std::size_t n, std::size_t chunk,
                  Acc init, const ChunkFn& chunk_fn, const MergeFn& merge,
                  const ThreadPool::CancelFn& cancel = nullptr) {
  if (n == 0) return init;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  std::vector<std::optional<Acc>> partial(chunks);
  pool.for_chunks(
      n, chunk,
      [&](std::size_t begin, std::size_t end) {
        partial[begin / chunk] = chunk_fn(begin, end);
      },
      cancel);
  Acc acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (partial[c].has_value()) merge(acc, *partial[c]);
  }
  return acc;
}

// ---- process-wide default pool ---------------------------------------------

/// The process-wide parallelism degree used by sim::*, uncertainty::* and
/// the CLI when no explicit pool is given. The LIBRARY default is 1
/// (fully sequential, bit-identical to historical behavior); opting into
/// parallelism is an entry-point decision (relkit_cli --jobs, bench --jobs,
/// or an explicit set_default_jobs call).
unsigned default_jobs();

/// Sets the process-wide degree; 0 means hardware concurrency. Must not be
/// called while a parallel region is running (entry points call it once at
/// startup).
void set_default_jobs(unsigned jobs);

/// The lazily created process-wide pool, sized to default_jobs(). Resized
/// (recreated) on the next call after set_default_jobs changes the degree;
/// the same "no concurrent regions" caveat applies.
ThreadPool& global_pool();

/// Resolves a `jobs` request (the convention every solver option struct
/// uses: 0 = default_jobs(), 1 = force sequential, N = N threads) to a pool
/// for the duration of one solve. When the requested degree matches the
/// process-wide default the shared global_pool() is used; otherwise a
/// private pool is spun up and torn down with the lease, so an explicit
/// per-solve `jobs` never perturbs the global pool other callers may be
/// using concurrently.
class PoolLease {
 public:
  explicit PoolLease(unsigned jobs) {
    jobs_ = jobs != 0 ? jobs : default_jobs();
    if (jobs_ <= 1) return;
    if (jobs_ == default_jobs()) {
      pool_ = &global_pool();
    } else {
      owned_ = std::make_unique<ThreadPool>(jobs_);
      pool_ = owned_.get();
    }
  }

  /// The pool to run on, or nullptr when the solve should stay on the
  /// caller's thread (the bit-identical historical sequential path).
  ThreadPool* get() const { return pool_; }
  /// Effective parallelism degree (>= 1).
  unsigned jobs() const { return jobs_; }

 private:
  unsigned jobs_ = 1;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_;
};

}  // namespace relkit::parallel
