#include "parallel/pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/obs.hpp"

namespace relkit::parallel {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

/// One fan-out in flight. Chunks are claimed by fetch_add on `next`;
/// `inflight` is incremented BEFORE the claim and decremented after the
/// body, so `next >= n && inflight == 0` (checked under the pool mutex
/// after a cv_done notification) proves the region has drained.
struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const Body* body = nullptr;
  const CancelFn* cancel = nullptr;
  Clock::time_point posted{};
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> executed{0};
  std::atomic<int> inflight{0};
  std::atomic<bool> stop{false};
  std::exception_ptr error;  // guarded by the pool mutex
  std::mutex* pool_mu = nullptr;
  std::condition_variable* cv_done = nullptr;
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::shared_ptr<Job> job;        // non-null while a region is active
  std::uint64_t generation = 0;    // bumped per posted job
  bool shutdown = false;
  std::vector<std::thread> threads;
};

ThreadPool::ThreadPool(unsigned jobs) {
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  jobs_ = jobs;
  if (jobs_ > 1) {
    impl_ = new Impl;
    impl_->threads.reserve(jobs_ - 1);
    for (unsigned i = 0; i + 1 < jobs_; ++i) {
      impl_->threads.emplace_back([this] { worker_loop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->shutdown = true;
    }
    impl_->cv_work.notify_all();
    for (auto& t : impl_->threads) t.join();
    delete impl_;
  }
}

void ThreadPool::run_chunks(Job& job) {
  static obs::Counter& task_counter = obs::counter("pool.tasks");
  for (;;) {
    job.inflight.fetch_add(1, std::memory_order_acq_rel);
    const std::size_t begin =
        job.stop.load(std::memory_order_relaxed)
            ? job.n
            : job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) {
      job.inflight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    if (job.cancel != nullptr && *job.cancel && (*job.cancel)()) {
      job.stop.store(true, std::memory_order_relaxed);
      job.inflight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    const std::size_t end =
        begin + job.chunk < job.n ? begin + job.chunk : job.n;
    try {
      (*job.body)(begin, end);
      task_counter.add();
      job.executed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(*job.pool_mu);
        if (!job.error) job.error = std::current_exception();
      }
      job.stop.store(true, std::memory_order_relaxed);
    }
    job.inflight.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  static obs::Counter& idle_counter = obs::counter("pool.steal_idle_ns");
  std::unique_lock<std::mutex> lock(impl_->mu);
  std::uint64_t seen = 0;
  for (;;) {
    impl_->cv_work.wait(lock, [&] {
      return impl_->shutdown ||
             (impl_->job != nullptr && impl_->generation != seen);
    });
    if (impl_->shutdown) return;
    const std::shared_ptr<Job> job = impl_->job;
    seen = impl_->generation;
    lock.unlock();
    // Idle latency: how long this worker sat between the fan-out being
    // posted and it joining in (scheduler wake-up + contention).
    idle_counter.add(ns_since(job->posted));
    run_chunks(*job);
    lock.lock();
    impl_->cv_done.notify_all();
  }
}

std::size_t ThreadPool::for_chunks(std::size_t n, std::size_t chunk,
                                   const Body& body, const CancelFn& cancel) {
  if (n == 0) return 0;
  if (chunk == 0) chunk = 1;

  obs::Span span("parallel.region");
  span.set("items", n);
  span.set("chunk", chunk);
  span.set("jobs", static_cast<std::uint64_t>(jobs_));

  static obs::Counter& task_counter = obs::counter("pool.tasks");
  if (impl_ == nullptr) {
    // Sequential pool: run the chunks inline, same cancellation contract.
    std::size_t executed = 0;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      if (cancel && cancel()) break;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      body(begin, end);
      task_counter.add();
      ++executed;
    }
    span.set("chunks_run", executed);
    return executed;
  }

  const auto job = std::make_shared<Job>();
  job->n = n;
  job->chunk = chunk;
  job->body = &body;
  job->cancel = cancel ? &cancel : nullptr;
  job->posted = Clock::now();
  job->pool_mu = &impl_->mu;
  job->cv_done = &impl_->cv_done;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->cv_work.notify_all();

  run_chunks(*job);  // the caller is worker number jobs_ - 1

  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->cv_done.wait(lock, [&] {
      return (job->next.load(std::memory_order_relaxed) >= n ||
              job->stop.load(std::memory_order_relaxed)) &&
             job->inflight.load(std::memory_order_acquire) == 0;
    });
    impl_->job.reset();
  }

  span.set("chunks_run", job->executed.load(std::memory_order_relaxed));
  span.set("cancelled", job->stop.load(std::memory_order_relaxed));
  if (job->error) std::rethrow_exception(job->error);
  return job->executed.load(std::memory_order_relaxed);
}

// ---- process-wide default pool ---------------------------------------------

namespace {

std::atomic<unsigned> g_default_jobs{1};

std::mutex& global_pool_mutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

unsigned default_jobs() {
  return g_default_jobs.load(std::memory_order_relaxed);
}

void set_default_jobs(unsigned jobs) {
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  g_default_jobs.store(jobs, std::memory_order_relaxed);
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  const unsigned want = default_jobs();
  if (slot == nullptr || slot->jobs() != want) {
    slot.reset();  // join old workers before spawning replacements
    slot = std::make_unique<ThreadPool>(want);
  }
  return *slot;
}

}  // namespace relkit::parallel
