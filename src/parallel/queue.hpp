// relkit::parallel::BoundedQueue — a small MPMC queue with a hard capacity,
// the admission-control primitive in front of the thread pool.
//
// relkit_serve pushes accepted solve requests here from its event loop and
// a dispatcher drains batches onto ThreadPool::for_chunks. The bound is the
// point: when producers outrun the pool, try_push fails *immediately* so
// the caller can shed load (answer 503) instead of queueing unbounded
// memory. Blocking pops support batch draining, and close() releases every
// waiter so shutdown can never hang on an empty queue.
//
// Header-only; depends only on the standard library.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace relkit::parallel {

template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` items (>= 1 enforced).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  /// Non-blocking push: false when the queue is full or closed — the
  /// caller sheds the item. Never waits.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (depth_gauge_ != nullptr) {
        depth_gauge_->set(static_cast<double>(items_.size()));
      }
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available (or the queue is closed),
  /// then returns up to `max` items in FIFO order. An empty vector means
  /// "closed and fully drained" — the consumer's exit signal.
  std::vector<T> pop_batch(std::size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::vector<T> batch;
    while (!items_.empty() && batch.size() < max) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(items_.size()));
    }
    return batch;
  }

  /// Mirrors the current depth into `gauge` on every push/pop, *inside* the
  /// queue's own critical section so the gauge can never lag the queue
  /// (relkit_serve binds serve.queue.depth here). Pass nullptr to unbind.
  /// The gauge must outlive the queue.
  void bind_depth_gauge(obs::Gauge* gauge) {
    std::lock_guard<std::mutex> lock(mu_);
    depth_gauge_ = gauge;
    if (gauge != nullptr) gauge->set(static_cast<double>(items_.size()));
  }

  /// Rejects future pushes and wakes every blocked pop_batch. Items already
  /// queued remain poppable (drain semantics); idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  obs::Gauge* depth_gauge_ = nullptr;
};

}  // namespace relkit::parallel
