#include "core/hierarchy.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "markov/solution_cache.hpp"
#include "obs/obs.hpp"
#include "robust/fault_injection.hpp"

namespace relkit::core {

void Hierarchy::set_parameter(const std::string& name, double value) {
  detail::require(!name.empty(), "Hierarchy::set_parameter: empty name");
  parameters_[name] = value;
  invalidate();
}

void Hierarchy::define(const std::string& name, DefinitionFn fn) {
  detail::require(!name.empty(), "Hierarchy::define: empty name");
  detail::require(fn != nullptr, "Hierarchy::define: null function");
  definitions_[name] = std::move(fn);
  invalidate();
}

bool Hierarchy::has(const std::string& name) const {
  return parameters_.count(name) || definitions_.count(name);
}

double Hierarchy::value(const std::string& name) const {
  // Parameters win: they act as fixed-point overrides of definitions.
  if (const auto p = parameters_.find(name); p != parameters_.end()) {
    return p->second;
  }
  if (const auto m = memo_.find(name); m != memo_.end()) {
    return m->second;
  }
  const auto d = definitions_.find(name);
  detail::require(d != definitions_.end(),
                  "Hierarchy::value: unknown quantity '" + name + "'");
  detail::require_model(!in_progress_.count(name),
                        "Hierarchy::value: cyclic dependency through '" +
                            name +
                            "' — use solve_fixed_point for cyclic systems");
  in_progress_.insert(name);
  double v;
  try {
    v = d->second(*this);
  } catch (...) {
    in_progress_.erase(name);
    throw;
  }
  in_progress_.erase(name);
  memo_[name] = v;
  return v;
}

void Hierarchy::invalidate() const { memo_.clear(); }

FixedPointResult Hierarchy::solve_fixed_point(
    const std::vector<std::pair<std::string, DefinitionFn>>& updates,
    const FixedPointOptions& opts) {
  detail::require(!updates.empty(), "solve_fixed_point: no variables");
  detail::require(opts.damping >= 0.0 && opts.damping < 1.0,
                  "solve_fixed_point: damping in [0,1)");
  for (const auto& [name, fn] : updates) {
    detail::require(parameters_.count(name),
                    "solve_fixed_point: variable '" + name +
                        "' must be initialized with set_parameter");
    detail::require(fn != nullptr, "solve_fixed_point: null update for '" +
                                       name + "'");
  }

  detail::require(opts.max_damping >= opts.damping &&
                      opts.max_damping < 1.0,
                  "solve_fixed_point: max_damping in [damping, 1)");

  auto& injector = relkit::testing::FaultInjector::instance();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t max_iterations = injector.cap(
      "fixed_point.max_iters",
      opts.budget.cap_iterations(opts.max_iterations));

  obs::Span span("hierarchy.fixed_point");
  span.set("variables", static_cast<std::uint64_t>(updates.size()));
  // Submodel solves repeat across iterations; the SolutionCache deltas show
  // how much of the fixed point was served from memoized results.
  auto& solution_cache = markov::SolutionCache::instance();
  const std::uint64_t cache_hits_before = solution_cache.hits();
  const std::uint64_t cache_misses_before = solution_cache.misses();
  static obs::Counter& iter_counter = obs::counter("hierarchy.fp_iterations");
  static obs::Counter& esc_counter = obs::counter("hierarchy.fp_escalations");

  robust::SolveReport report;
  report.note_attempt("fixed-point");

  auto snapshot = [&] {
    std::vector<double> values;
    values.reserve(updates.size());
    for (const auto& [name, fn] : updates) {
      values.push_back(parameters_.at(name));
    }
    return values;
  };
  auto restore = [&](const std::vector<double>& values) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      parameters_[updates[i].first] = values[i];
    }
    invalidate();
  };

  double damping = opts.damping;
  // Stall/divergence detector: if the residual has not improved on its best
  // by at least 1% for this many consecutive iterations, the iteration is
  // oscillating or diverging and damping is escalated.
  constexpr std::size_t kStallWindow = 8;
  std::size_t stalled = 0;
  double best_residual = std::numeric_limits<double>::infinity();
  std::vector<double> best_values = snapshot();

  FixedPointResult result;
  result.final_damping = damping;

  auto finish_report = [&](bool converged) {
    report.iterations = result.iterations;
    report.residual = result.residual;
    report.converged = converged;
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    report.note_attempt_result("fixed-point", result.iterations,
                               result.residual, converged);
    span.set("iterations", result.iterations);
    span.set("residual", result.residual);
    span.set("damping", result.final_damping);
    span.set("converged", converged);
    span.set("cache_hits", solution_cache.hits() - cache_hits_before);
    span.set("cache_misses",
             solution_cache.misses() - cache_misses_before);
    robust::record_last_report(report);
  };
  auto fail = [&](const std::string& why) -> robust::ConvergenceError {
    finish_report(false);
    // Hand back the best-seen values both in the exception and in the
    // hierarchy itself, so callers can inspect a consistent state.
    restore(best_values);
    return robust::ConvergenceError("solve_fixed_point: " + why, best_values,
                                    report);
  };
  auto escalate = [&](const char* reason) -> bool {
    if (!opts.adaptive_damping || damping >= opts.max_damping) return false;
    damping = damping == 0.0
                  ? 0.5
                  : std::min(opts.max_damping, 0.5 * (1.0 + damping));
    ++result.damping_escalations;
    esc_counter.add();
    result.final_damping = damping;
    report.note_fallback("fixed-point",
                         "damping=" + std::to_string(damping));
    report.warn(std::string(reason) + " — damping escalated to " +
                std::to_string(damping));
    stalled = 0;
    best_residual = std::numeric_limits<double>::infinity();
    return true;
  };

  for (std::size_t it = 1; it <= max_iterations; ++it) {
    iter_counter.add();
    if (opts.budget.deadline.expired()) {
      report.warn("deadline expired after " + std::to_string(it - 1) +
                  " iterations");
      throw fail("deadline expired (residual " +
                 std::to_string(result.residual) + ")");
    }
    double residual = 0.0;
    bool finite = true;
    // Gauss-Seidel style: each update sees the newest values of the others.
    for (const auto& [name, fn] : updates) {
      const double old_value = parameters_.at(name);
      invalidate();
      const double raw = injector.tap("fixed_point.update", fn(*this));
      const double next = damping * old_value + (1.0 - damping) * raw;
      finite &= std::isfinite(next);
      parameters_[name] = next;
      residual = std::max(residual, std::abs(next - old_value));
    }
    result.iterations = it;
    result.residual = residual;
    report.convergence.record(it, residual);

    if (!finite || !std::isfinite(residual)) {
      // A non-finite iterate poisons every later evaluation: rewind to the
      // best-known point and retry more conservatively.
      restore(best_values);
      if (!escalate("iterate became non-finite")) {
        throw fail("iterate became non-finite at iteration " +
                   std::to_string(it));
      }
      continue;
    }
    if (residual < opts.tol) {
      result.converged = true;
      invalidate();
      finish_report(true);
      result.report = report;
      return result;
    }
    if (residual < 0.99 * best_residual) {
      best_residual = residual;
      best_values = snapshot();
      stalled = 0;
    } else if (++stalled >= kStallWindow) {
      escalate("residual stalled (oscillation or divergence)");
    }
  }
  throw fail("no convergence after " + std::to_string(max_iterations) +
             " iterations (residual " + std::to_string(result.residual) +
             ")");
}

double availability_from_mttf_mttr(double mttf, double mttr) {
  detail::require(mttf > 0.0 && mttr >= 0.0,
                  "availability_from_mttf_mttr: bad arguments");
  return mttf / (mttf + mttr);
}

double downtime_minutes_per_year(double availability) {
  detail::require(availability >= 0.0 && availability <= 1.0,
                  "downtime_minutes_per_year: availability in [0,1]");
  return (1.0 - availability) * 365.25 * 24.0 * 60.0;
}

double nines(double availability) {
  detail::require(availability >= 0.0 && availability < 1.0,
                  "nines: availability in [0,1)");
  return -std::log10(1.0 - availability);
}

}  // namespace relkit::core
