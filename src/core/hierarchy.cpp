#include "core/hierarchy.hpp"

#include <cmath>

#include "common/error.hpp"

namespace relkit::core {

void Hierarchy::set_parameter(const std::string& name, double value) {
  detail::require(!name.empty(), "Hierarchy::set_parameter: empty name");
  parameters_[name] = value;
  invalidate();
}

void Hierarchy::define(const std::string& name, DefinitionFn fn) {
  detail::require(!name.empty(), "Hierarchy::define: empty name");
  detail::require(fn != nullptr, "Hierarchy::define: null function");
  definitions_[name] = std::move(fn);
  invalidate();
}

bool Hierarchy::has(const std::string& name) const {
  return parameters_.count(name) || definitions_.count(name);
}

double Hierarchy::value(const std::string& name) const {
  // Parameters win: they act as fixed-point overrides of definitions.
  if (const auto p = parameters_.find(name); p != parameters_.end()) {
    return p->second;
  }
  if (const auto m = memo_.find(name); m != memo_.end()) {
    return m->second;
  }
  const auto d = definitions_.find(name);
  detail::require(d != definitions_.end(),
                  "Hierarchy::value: unknown quantity '" + name + "'");
  detail::require_model(!in_progress_.count(name),
                        "Hierarchy::value: cyclic dependency through '" +
                            name +
                            "' — use solve_fixed_point for cyclic systems");
  in_progress_.insert(name);
  double v;
  try {
    v = d->second(*this);
  } catch (...) {
    in_progress_.erase(name);
    throw;
  }
  in_progress_.erase(name);
  memo_[name] = v;
  return v;
}

void Hierarchy::invalidate() const { memo_.clear(); }

FixedPointResult Hierarchy::solve_fixed_point(
    const std::vector<std::pair<std::string, DefinitionFn>>& updates,
    const FixedPointOptions& opts) {
  detail::require(!updates.empty(), "solve_fixed_point: no variables");
  detail::require(opts.damping >= 0.0 && opts.damping < 1.0,
                  "solve_fixed_point: damping in [0,1)");
  for (const auto& [name, fn] : updates) {
    detail::require(parameters_.count(name),
                    "solve_fixed_point: variable '" + name +
                        "' must be initialized with set_parameter");
    detail::require(fn != nullptr, "solve_fixed_point: null update for '" +
                                       name + "'");
  }

  FixedPointResult result;
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    double residual = 0.0;
    // Gauss-Seidel style: each update sees the newest values of the others.
    for (const auto& [name, fn] : updates) {
      const double old_value = parameters_.at(name);
      invalidate();
      const double raw = fn(*this);
      const double next =
          opts.damping * old_value + (1.0 - opts.damping) * raw;
      parameters_[name] = next;
      residual = std::max(residual, std::abs(next - old_value));
    }
    result.iterations = it;
    result.residual = residual;
    if (residual < opts.tol) {
      result.converged = true;
      invalidate();
      return result;
    }
  }
  throw NumericalError(
      "solve_fixed_point: no convergence after " +
      std::to_string(opts.max_iterations) +
      " iterations (residual " + std::to_string(result.residual) + ")");
}

double availability_from_mttf_mttr(double mttf, double mttr) {
  detail::require(mttf > 0.0 && mttr >= 0.0,
                  "availability_from_mttf_mttr: bad arguments");
  return mttf / (mttf + mttr);
}

double downtime_minutes_per_year(double availability) {
  detail::require(availability >= 0.0 && availability <= 1.0,
                  "downtime_minutes_per_year: availability in [0,1]");
  return (1.0 - availability) * 365.25 * 24.0 * 60.0;
}

double nines(double availability) {
  detail::require(availability >= 0.0 && availability < 1.0,
                  "nines: availability in [0,1)");
  return -std::log10(1.0 - availability);
}

}  // namespace relkit::core
