// Hierarchical model composition and fixed-point iteration — the tutorial's
// "largeness avoidance" layer.
//
// Real systems are modeled as a hierarchy: small state-space models capture
// local dependencies (shared repair, coverage), and their outputs
// (availability, MTTF, failure rates) become parameters of a combinatorial
// model on top — avoiding one monolithic CTMC. When submodels depend on each
// other cyclically (e.g. a software model needs the hardware repair queue
// length, which depends on software load), the import graph is solved by
// fixed-point iteration (successive substitution with optional damping),
// the technique the abstract calls "a scalable alternative that combines
// the strengths of state space and non-state-space methods".
//
// The Hierarchy holds named quantities:
//   * parameters  — plain numbers set by the user;
//   * definitions — computed values; each is an arbitrary function of the
//     hierarchy (typically closing over a RelKit model and reading other
//     quantities via value()).
// value() evaluates the definition DAG with memoization and detects cycles;
// cyclic systems are solved with solve_fixed_point().
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "robust/budget.hpp"
#include "robust/report.hpp"

namespace relkit::core {

class Hierarchy;

/// A computed quantity: reads other quantities through the hierarchy.
using DefinitionFn = std::function<double(const Hierarchy&)>;

/// Convergence report of solve_fixed_point().
struct FixedPointResult {
  std::size_t iterations = 0;
  double residual = 0.0;  ///< max |x_new - x_old| over iterated variables
  bool converged = false;
  /// Damping actually in effect at the end (adaptive escalation may have
  /// raised it above FixedPointOptions::damping).
  double final_damping = 0.0;
  std::size_t damping_escalations = 0;
  robust::SolveReport report;
};

/// Options for solve_fixed_point().
struct FixedPointOptions {
  double tol = 1e-10;
  std::size_t max_iterations = 1000;
  /// x <- (1-damping) x_new + damping x_old; 0 = plain substitution.
  double damping = 0.0;
  /// When the iteration stalls, oscillates, or produces non-finite values,
  /// escalate damping automatically (0 -> 0.5 -> 0.75 -> ... -> max_damping)
  /// instead of grinding to max_iterations.
  bool adaptive_damping = true;
  double max_damping = 0.9375;
  /// Wall-clock / iteration budget (default unlimited). On exhaustion a
  /// robust::ConvergenceError carries the current variable values.
  robust::Budget budget;
};

class Hierarchy {
 public:
  /// Sets (or overwrites) a plain numeric parameter.
  void set_parameter(const std::string& name, double value);

  /// Registers a computed quantity. Re-registering replaces the definition.
  void define(const std::string& name, DefinitionFn fn);

  /// True if `name` is a parameter or definition.
  bool has(const std::string& name) const;

  /// Evaluates `name`: parameters return their value; definitions are
  /// evaluated with memoization. Throws ModelError on a cyclic dependency
  /// (use solve_fixed_point for cyclic systems) and InvalidArgument on an
  /// unknown name.
  double value(const std::string& name) const;

  /// Invalidates the memo cache (done automatically by set_parameter).
  void invalidate() const;

  /// Solves the cyclic system over `variables`: each variable must be both
  /// a parameter (its current value is the starting guess) and have a
  /// definition registered under "<name>.update" or be listed in `updates`.
  ///
  /// Divergence and oscillation are detected (no residual improvement over
  /// a window) and answered by escalating damping when
  /// opts.adaptive_damping is set. On failure throws
  /// robust::ConvergenceError whose partial_result() holds the best-seen
  /// variable values in `updates` order.
  ///
  /// Simpler overload: give explicit update functions per variable.
  FixedPointResult solve_fixed_point(
      const std::vector<std::pair<std::string, DefinitionFn>>& updates,
      const FixedPointOptions& opts = {});

 private:
  std::map<std::string, double> parameters_;
  std::map<std::string, DefinitionFn> definitions_;
  mutable std::map<std::string, double> memo_;
  mutable std::set<std::string> in_progress_;
};

// ---- small conversion helpers used throughout availability studies --------

/// Steady-state availability from mean time to failure and repair.
double availability_from_mttf_mttr(double mttf, double mttr);

/// Yearly downtime in minutes implied by an availability.
double downtime_minutes_per_year(double availability);

/// "Number of nines": -log10(1 - availability).
double nines(double availability);

}  // namespace relkit::core
