// Umbrella header: pulls in the whole RelKit public API.
//
//   #include "core/relkit.hpp"
//
// Module map (see DESIGN.md for the full inventory):
//   common/      distributions, linear algebra, RNG, statistics, intervals
//   bdd/         ROBDD engine behind all combinatorial solvers
//   rbd/         reliability block diagrams
//   ftree/       fault trees + bounding algorithms
//   relgraph/    s-t reliability graphs
//   markov/      CTMC / DTMC solvers and reward models
//   phase/       phase-type distributions and fitting
//   spn/         stochastic reward nets -> CTMC
//   semimarkov/  semi-Markov processes
//   core/        hierarchical composition + fixed-point iteration
//   robust/      solver resilience: diagnostics, fallbacks, budgets,
//                fault injection
//   uncertainty/ parametric uncertainty propagation
//   sim/         discrete-event simulation cross-validator
#pragma once

#include "bdd/bdd.hpp"
#include "common/component.hpp"
#include "common/distributions.hpp"
#include "common/error.hpp"
#include "common/interval.hpp"
#include "common/linsolve.hpp"
#include "common/matrix.hpp"
#include "common/poisson_weights.hpp"
#include "common/quadrature.hpp"
#include "common/rng.hpp"
#include "common/sparse.hpp"
#include "common/special.hpp"
#include "common/statistics.hpp"
#include "core/hierarchy.hpp"
#include "dft/dft.hpp"
#include "ftree/bounds.hpp"
#include "ftree/fault_tree.hpp"
#include "io/graphviz.hpp"
#include "io/model_parser.hpp"
#include "markov/builders.hpp"
#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"
#include "markov/solution_cache.hpp"
#include "phase/phase_type.hpp"
#include "rbd/rbd.hpp"
#include "relgraph/relgraph.hpp"
#include "robust/budget.hpp"
#include "robust/fault_injection.hpp"
#include "robust/report.hpp"
#include "robust/robust.hpp"
#include "semimarkov/mrgp.hpp"
#include "semimarkov/smp.hpp"
#include "sim/simulator.hpp"
#include "spn/srn.hpp"
#include "uncertainty/estimation.hpp"
#include "uncertainty/uncertainty.hpp"
