#include "io/model_parser.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace relkit::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw ModelError("model parse error at line " + std::to_string(line) +
                   ": " + msg);
}

struct GateSpec {
  std::string kind;  // and / or / kofn / not
  std::uint32_t k = 0;
  std::vector<std::string> children;
  std::size_t line = 0;
};

double parse_number(const std::string& tok, std::size_t line,
                    const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) fail(line, std::string("bad ") + what);
    return v;
  } catch (const std::exception&) {
    fail(line, std::string("bad ") + what + " '" + tok + "'");
  }
}

}  // namespace

ParsedModel parse_model(std::istream& input) {
  std::string model_kind;
  std::string model_name;
  std::map<std::string, ComponentModel> events;
  std::map<std::string, GateSpec> gates;
  std::string top_name;
  std::size_t top_line = 0;

  // relgraph directives.
  struct EdgeSpec {
    std::string component;
    std::size_t u, v;
    bool undirected;
    std::size_t line;
  };
  std::size_t vertex_count = 0;
  bool have_terminals = false;
  std::size_t source = 0, sink = 0;
  std::vector<EdgeSpec> edges;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(input, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank line

    if (keyword == "model") {
      if (!model_kind.empty()) fail(line_no, "duplicate 'model' directive");
      std::string kind;
      if (!(line >> kind >> model_name)) {
        fail(line_no, "expected: model (ftree|rbd) <name>");
      }
      if (kind != "ftree" && kind != "rbd" && kind != "relgraph") {
        fail(line_no, "model kind must be 'ftree', 'rbd', or 'relgraph'");
      }
      model_kind = kind;
    } else if (keyword == "event") {
      std::string name, spec;
      if (!(line >> name >> spec)) {
        fail(line_no, "expected: event <name> <spec ...>");
      }
      if (events.count(name) || gates.count(name)) {
        fail(line_no, "duplicate name '" + name + "'");
      }
      std::string a, b, c;
      if (spec == "prob") {
        if (!(line >> a)) fail(line_no, "expected: prob <p>");
        const double p = parse_number(a, line_no, "probability");
        if (p < 0.0 || p > 1.0) fail(line_no, "probability out of [0,1]");
        // Convention: the number is always the component's probability of
        // being UP; fault trees derive the event (failure) probability.
        events.emplace(name, ComponentModel::fixed(p));
      } else if (spec == "rate") {
        if (!(line >> a)) fail(line_no, "expected: rate <lambda>");
        const double lambda = parse_number(a, line_no, "rate");
        if (line >> b) {
          if (b != "repair") fail(line_no, "expected 'repair' after rate");
          if (!(line >> c)) fail(line_no, "expected repair rate");
          const double mu = parse_number(c, line_no, "repair rate");
          if (lambda <= 0.0 || mu <= 0.0) fail(line_no, "rates must be > 0");
          events.emplace(name, ComponentModel::repairable(lambda, mu));
        } else {
          if (lambda <= 0.0) fail(line_no, "rate must be > 0");
          events.emplace(name,
                         ComponentModel::with_lifetime(exponential(lambda)));
        }
      } else if (spec == "weibull") {
        if (!(line >> a >> b)) fail(line_no, "expected: weibull <shape> <scale>");
        events.emplace(name, ComponentModel::with_lifetime(weibull(
                                 parse_number(a, line_no, "shape"),
                                 parse_number(b, line_no, "scale"))));
      } else if (spec == "lognormal") {
        if (!(line >> a >> b)) {
          fail(line_no, "expected: lognormal <mu> <sigma>");
        }
        events.emplace(name, ComponentModel::with_lifetime(lognormal(
                                 parse_number(a, line_no, "mu"),
                                 parse_number(b, line_no, "sigma"))));
      } else {
        fail(line_no, "unknown event spec '" + spec + "'");
      }
      std::string extra;
      if (line >> extra) fail(line_no, "trailing tokens after event");
    } else if (keyword == "gate") {
      GateSpec g;
      std::string name;
      if (!(line >> name >> g.kind)) {
        fail(line_no, "expected: gate <name> <kind> ...");
      }
      if (events.count(name) || gates.count(name)) {
        fail(line_no, "duplicate name '" + name + "'");
      }
      g.line = line_no;
      if (g.kind == "kofn") {
        std::string ktok;
        if (!(line >> ktok)) fail(line_no, "expected k after 'kofn'");
        const double kv = parse_number(ktok, line_no, "k");
        if (kv < 1.0 || kv != static_cast<double>(static_cast<std::uint32_t>(kv))) {
          fail(line_no, "k must be a positive integer");
        }
        g.k = static_cast<std::uint32_t>(kv);
      } else if (g.kind != "and" && g.kind != "or" && g.kind != "not") {
        fail(line_no, "unknown gate kind '" + g.kind + "'");
      }
      std::string child;
      while (line >> child) g.children.push_back(child);
      if (g.children.empty()) fail(line_no, "gate has no children");
      if (g.kind == "not" && g.children.size() != 1) {
        fail(line_no, "'not' gate takes exactly one child");
      }
      gates.emplace(name, std::move(g));
    } else if (keyword == "vertices") {
      std::string n;
      if (!(line >> n)) fail(line_no, "expected: vertices <n>");
      const double v = parse_number(n, line_no, "vertex count");
      if (v < 2.0 || v != std::floor(v)) {
        fail(line_no, "vertex count must be an integer >= 2");
      }
      vertex_count = static_cast<std::size_t>(v);
    } else if (keyword == "terminals") {
      std::string a, b;
      if (!(line >> a >> b)) fail(line_no, "expected: terminals <s> <t>");
      source = static_cast<std::size_t>(parse_number(a, line_no, "source"));
      sink = static_cast<std::size_t>(parse_number(b, line_no, "sink"));
      have_terminals = true;
    } else if (keyword == "edge") {
      EdgeSpec e;
      std::string u, v;
      if (!(line >> e.component >> u >> v)) {
        fail(line_no, "expected: edge <component> <u> <v> [undirected]");
      }
      e.u = static_cast<std::size_t>(parse_number(u, line_no, "vertex"));
      e.v = static_cast<std::size_t>(parse_number(v, line_no, "vertex"));
      e.undirected = false;
      e.line = line_no;
      std::string flag;
      if (line >> flag) {
        if (flag != "undirected") fail(line_no, "unknown edge flag");
        e.undirected = true;
      }
      edges.push_back(std::move(e));
    } else if (keyword == "top") {
      if (!top_name.empty()) fail(line_no, "duplicate 'top' directive");
      if (!(line >> top_name)) fail(line_no, "expected: top <name>");
      top_line = line_no;
    } else {
      fail(line_no, "unknown directive '" + keyword + "'");
    }
  }

  if (model_kind.empty()) fail(1, "missing 'model' directive");

  ParsedModel out;
  out.name = model_name;

  if (model_kind == "relgraph") {
    const std::size_t end = line_no ? line_no : 1;
    if (!gates.empty() || !top_name.empty()) {
      fail(end, "relgraph models take edges, not gates/top");
    }
    if (vertex_count == 0) fail(end, "missing 'vertices' directive");
    if (!have_terminals) fail(end, "missing 'terminals' directive");
    if (edges.empty()) fail(end, "relgraph model has no edges");
    if (source >= vertex_count || sink >= vertex_count || source == sink) {
      fail(end, "bad terminals");
    }
    auto graph = std::make_unique<relgraph::ReliabilityGraph>(vertex_count,
                                                              source, sink);
    for (const auto& e : edges) {
      const auto it = events.find(e.component);
      if (it == events.end()) {
        fail(e.line, "edge references unknown component '" + e.component +
                         "'");
      }
      if (e.u >= vertex_count || e.v >= vertex_count) {
        fail(e.line, "edge vertex out of range");
      }
      if (e.undirected) {
        graph->add_undirected_edge(e.component, e.u, e.v, it->second);
      } else {
        graph->add_edge(e.component, e.u, e.v, it->second);
      }
    }
    out.graph = std::move(graph);
    return out;
  }

  if (top_name.empty()) fail(line_no ? line_no : 1, "missing 'top' directive");

  if (model_kind == "ftree") {
    // Build the ftree AST with cycle detection.
    std::map<std::string, ftree::EventModel> event_models;
    for (const auto& [name, model] : events) {
      event_models.emplace(name, model);
    }
    std::map<std::string, int> visiting;  // 0 none, 1 in progress
    std::function<ftree::NodePtr(const std::string&, std::size_t)> build =
        [&](const std::string& name, std::size_t from_line) -> ftree::NodePtr {
      if (events.count(name)) return ftree::Node::basic(name);
      const auto it = gates.find(name);
      if (it == gates.end()) {
        fail(from_line, "unknown reference '" + name + "'");
      }
      if (visiting[name] == 1) {
        fail(it->second.line, "cyclic gate definition through '" + name + "'");
      }
      visiting[name] = 1;
      const GateSpec& g = it->second;
      std::vector<ftree::NodePtr> children;
      for (const auto& child : g.children) {
        children.push_back(build(child, g.line));
      }
      visiting[name] = 0;
      if (g.kind == "and") return ftree::Node::and_gate(std::move(children));
      if (g.kind == "or") return ftree::Node::or_gate(std::move(children));
      if (g.kind == "not") return ftree::Node::not_gate(children[0]);
      return ftree::Node::k_of_n_gate(g.k, std::move(children));
    };
    const ftree::NodePtr top = build(top_name, top_line);
    out.fault_tree = std::make_unique<ftree::FaultTree>(
        top, std::move(event_models));
  } else {
    std::map<std::string, int> visiting;
    std::function<rbd::BlockPtr(const std::string&, std::size_t)> build =
        [&](const std::string& name, std::size_t from_line) -> rbd::BlockPtr {
      if (events.count(name)) return rbd::Block::component(name);
      const auto it = gates.find(name);
      if (it == gates.end()) {
        fail(from_line, "unknown reference '" + name + "'");
      }
      if (visiting[name] == 1) {
        fail(it->second.line, "cyclic gate definition through '" + name + "'");
      }
      visiting[name] = 1;
      const GateSpec& g = it->second;
      if (g.kind == "not") {
        fail(g.line, "'not' gates are not allowed in RBD models");
      }
      std::vector<rbd::BlockPtr> children;
      for (const auto& child : g.children) {
        children.push_back(build(child, g.line));
      }
      visiting[name] = 0;
      if (g.kind == "and") return rbd::Block::series(std::move(children));
      if (g.kind == "or") return rbd::Block::parallel(std::move(children));
      return rbd::Block::k_of_n(g.k, std::move(children));
    };
    const rbd::BlockPtr top = build(top_name, top_line);
    out.rbd = std::make_unique<rbd::Rbd>(top, events);
  }
  return out;
}

ParsedModel parse_model_string(const std::string& text) {
  std::istringstream is(text);
  return parse_model(is);
}

ParsedModel parse_model_file(const std::string& path) {
  std::ifstream file(path);
  detail::require(file.good(), "parse_model_file: cannot open '" + path + "'");
  return parse_model(file);
}

}  // namespace relkit::io
