#include "io/model_parser.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "obs/obs.hpp"

namespace relkit::io {

namespace {

/// One diagnosed problem, positioned at a 1-based line and column.
struct Diagnostic {
  std::size_t line;
  std::size_t col;
  std::string msg;
};

/// Thrown internally to abort the current line (or the build phase); always
/// caught and funnelled into the ErrorCollector, never escapes the parser.
struct LineError {
  Diagnostic diag;
};

[[noreturn]] void fail(std::size_t line, std::size_t col,
                       const std::string& msg) {
  throw LineError{{line, col, msg}};
}

/// Accumulates every diagnostic in the file so the user can fix them in one
/// round trip instead of one error per run.
class ErrorCollector {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  bool empty() const { return diags_.empty(); }

  /// Throws a ModelError describing every collected diagnostic. The first
  /// keeps the classic "model parse error at line L, col C: msg" headline;
  /// any further ones are appended one per line.
  [[noreturn]] void throw_all() const {
    const Diagnostic& first = diags_.front();
    std::string msg = "model parse error at line " +
                      std::to_string(first.line) + ", col " +
                      std::to_string(first.col) + ": " + first.msg;
    if (diags_.size() > 1) {
      msg += " (and " + std::to_string(diags_.size() - 1) + " more)";
      for (std::size_t i = 1; i < diags_.size(); ++i) {
        msg += "\n  line " + std::to_string(diags_[i].line) + ", col " +
               std::to_string(diags_[i].col) + ": " + diags_[i].msg;
      }
    }
    throw ModelError(msg);
  }

  void throw_if_any() const {
    if (!empty()) throw_all();
  }

 private:
  std::vector<Diagnostic> diags_;
};

/// Whitespace tokenizer that remembers the 1-based column of each token, so
/// diagnostics can point at the offending word and not just the line.
class LineScanner {
 public:
  LineScanner(std::string text, std::size_t line)
      : text_(std::move(text)), line_(line) {}

  bool next(std::string& tok) {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    tok_col_ = pos_ + 1;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    tok = text_.substr(start, pos_ - start);
    return true;
  }

  /// Next token, or a positioned error naming what was expected.
  std::string expect(const std::string& what) {
    std::string tok;
    if (!next(tok)) fail(line_, end_col(), "expected: " + what);
    return tok;
  }

  /// Column of the most recently returned token (1-based).
  std::size_t col() const { return tok_col_; }
  /// Column one past the consumed input — where a missing token would be.
  std::size_t end_col() const { return pos_ + 1; }
  std::size_t line() const { return line_; }

  void expect_end(const std::string& context) {
    std::string extra;
    if (next(extra)) {
      fail(line_, tok_col_, "trailing tokens after " + context);
    }
  }

 private:
  std::string text_;
  std::size_t line_;
  std::size_t pos_ = 0;
  std::size_t tok_col_ = 1;
};

struct GateSpec {
  std::string kind;  // and / or / kofn / not
  std::uint32_t k = 0;
  std::vector<std::string> children;
  std::size_t line = 0;
  std::size_t col = 1;
};

double parse_number(const std::string& tok, std::size_t line, std::size_t col,
                    const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) {
      fail(line, col, std::string("bad ") + what + " '" + tok + "'");
    }
    return v;
  } catch (const std::exception&) {
    // stod's invalid_argument / out_of_range; LineError is not a
    // std::exception and passes through.
    fail(line, col, std::string("bad ") + what + " '" + tok + "'");
  }
}

/// Availability of an n-unit pool with per-unit failure rate lambda, one
/// shared repairer of rate mu, up while >= k units are up: the steady state
/// of the (n+1)-state birth-death CTMC over "number of failed units".
double markov_pool_availability(const std::string& event_name, std::size_t n,
                                std::size_t k, double lambda, double mu) {
  obs::Span span("hier.submodel");
  span.set("event", event_name);
  span.set("n", n);
  span.set("k", k);

  markov::Ctmc chain;
  chain.add_states(n + 1);  // state i = i units failed
  for (std::size_t i = 0; i < n; ++i) {
    chain.add_transition(i, i + 1, static_cast<double>(n - i) * lambda);
    chain.add_transition(i + 1, i, mu);  // single repairer: rate mu, always
  }
  const std::vector<double> pi = chain.steady_state();
  double avail = 0.0;
  for (std::size_t i = 0; i + k <= n; ++i) avail += pi[i];
  span.set("availability", avail);
  return avail;
}

}  // namespace

ParsedModel parse_model(std::istream& input) {
  obs::Span parse_span("io.parse");
  std::string model_kind;
  std::string model_name;
  std::map<std::string, ComponentModel> events;
  std::map<std::string, GateSpec> gates;
  std::string top_name;
  std::size_t top_line = 0;
  std::size_t top_col = 1;

  // relgraph directives.
  struct EdgeSpec {
    std::string component;
    std::size_t u, v;
    bool undirected;
    std::size_t line;
    std::size_t col;
  };
  std::size_t vertex_count = 0;
  bool have_terminals = false;
  std::size_t source = 0, sink = 0;
  std::vector<EdgeSpec> edges;

  ErrorCollector errors;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(input, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    LineScanner line(raw, line_no);
    std::string keyword;
    if (!line.next(keyword)) continue;  // blank line
    const std::size_t keyword_col = line.col();

    try {
      if (keyword == "model") {
        if (!model_kind.empty()) {
          fail(line_no, keyword_col, "duplicate 'model' directive");
        }
        const std::string kind =
            line.expect("model (ftree|rbd|relgraph) <name>");
        if (kind != "ftree" && kind != "rbd" && kind != "relgraph") {
          fail(line_no, line.col(),
               "model kind must be 'ftree', 'rbd', or 'relgraph'");
        }
        model_name = line.expect("model (ftree|rbd|relgraph) <name>");
        model_kind = kind;
      } else if (keyword == "event") {
        const std::string name = line.expect("event <name> <spec ...>");
        const std::size_t name_col = line.col();
        const std::string spec = line.expect("event <name> <spec ...>");
        if (events.count(name) || gates.count(name)) {
          fail(line_no, name_col, "duplicate name '" + name + "'");
        }
        if (spec == "prob") {
          const std::string a = line.expect("prob <p>");
          const double p = parse_number(a, line_no, line.col(), "probability");
          if (p < 0.0 || p > 1.0) {
            fail(line_no, line.col(), "probability out of [0,1]");
          }
          // Convention: the number is always the component's probability of
          // being UP; fault trees derive the event (failure) probability.
          events.emplace(name, ComponentModel::fixed(p));
        } else if (spec == "rate") {
          const std::string a = line.expect("rate <lambda>");
          const std::size_t rate_col = line.col();
          const double lambda = parse_number(a, line_no, rate_col, "rate");
          std::string b;
          if (line.next(b)) {
            if (b != "repair") {
              fail(line_no, line.col(), "expected 'repair' after rate");
            }
            const std::string c = line.expect("repair rate");
            const double mu =
                parse_number(c, line_no, line.col(), "repair rate");
            if (lambda <= 0.0 || mu <= 0.0) {
              fail(line_no, rate_col, "rates must be > 0");
            }
            events.emplace(name, ComponentModel::repairable(lambda, mu));
          } else {
            if (lambda <= 0.0) fail(line_no, rate_col, "rate must be > 0");
            events.emplace(
                name, ComponentModel::with_lifetime(exponential(lambda)));
          }
        } else if (spec == "weibull") {
          const std::string a = line.expect("weibull <shape> <scale>");
          const double shape = parse_number(a, line_no, line.col(), "shape");
          const std::string b = line.expect("weibull <shape> <scale>");
          const double scale = parse_number(b, line_no, line.col(), "scale");
          events.emplace(name,
                         ComponentModel::with_lifetime(weibull(shape, scale)));
        } else if (spec == "lognormal") {
          const std::string a = line.expect("lognormal <mu> <sigma>");
          const double mu = parse_number(a, line_no, line.col(), "mu");
          const std::string b = line.expect("lognormal <mu> <sigma>");
          const double sigma = parse_number(b, line_no, line.col(), "sigma");
          events.emplace(
              name, ComponentModel::with_lifetime(lognormal(mu, sigma)));
        } else if (spec == "markov") {
          const std::string a = line.expect("markov <n> <k> <lambda> <mu>");
          const std::size_t n_col = line.col();
          const double nv = parse_number(a, line_no, n_col, "n");
          const std::string b = line.expect("markov <n> <k> <lambda> <mu>");
          const std::size_t k_col = line.col();
          const double kv = parse_number(b, line_no, k_col, "k");
          const std::string c = line.expect("markov <n> <k> <lambda> <mu>");
          const std::size_t rate_col = line.col();
          const double lambda = parse_number(c, line_no, rate_col, "rate");
          const std::string d = line.expect("markov <n> <k> <lambda> <mu>");
          const double mu =
              parse_number(d, line_no, line.col(), "repair rate");
          if (nv < 1.0 || nv != std::floor(nv) || nv > 100000.0) {
            fail(line_no, n_col, "n must be an integer in [1, 100000]");
          }
          if (kv < 1.0 || kv != std::floor(kv) || kv > nv) {
            fail(line_no, k_col, "k must be an integer in [1, n]");
          }
          if (lambda <= 0.0 || mu <= 0.0) {
            fail(line_no, rate_col, "rates must be > 0");
          }
          events.emplace(
              name, ComponentModel::fixed(markov_pool_availability(
                        name, static_cast<std::size_t>(nv),
                        static_cast<std::size_t>(kv), lambda, mu)));
        } else {
          fail(line_no, line.col(), "unknown event spec '" + spec + "'");
        }
        line.expect_end("event");
      } else if (keyword == "gate") {
        GateSpec g;
        const std::string name = line.expect("gate <name> <kind> ...");
        const std::size_t name_col = line.col();
        g.kind = line.expect("gate <name> <kind> ...");
        const std::size_t kind_col = line.col();
        if (events.count(name) || gates.count(name)) {
          fail(line_no, name_col, "duplicate name '" + name + "'");
        }
        g.line = line_no;
        g.col = name_col;
        if (g.kind == "kofn") {
          const std::string ktok = line.expect("k after 'kofn'");
          const double kv = parse_number(ktok, line_no, line.col(), "k");
          if (kv < 1.0 ||
              kv != static_cast<double>(static_cast<std::uint32_t>(kv))) {
            fail(line_no, line.col(), "k must be a positive integer");
          }
          g.k = static_cast<std::uint32_t>(kv);
        } else if (g.kind != "and" && g.kind != "or" && g.kind != "not") {
          fail(line_no, kind_col, "unknown gate kind '" + g.kind + "'");
        }
        std::string child;
        while (line.next(child)) g.children.push_back(child);
        if (g.children.empty()) {
          fail(line_no, line.end_col(), "gate has no children");
        }
        if (g.kind == "not" && g.children.size() != 1) {
          fail(line_no, name_col, "'not' gate takes exactly one child");
        }
        if (g.kind == "kofn" && g.k > g.children.size()) {
          fail(line_no, name_col,
               "k-of-n gate has k = " + std::to_string(g.k) + " but only " +
                   std::to_string(g.children.size()) + " children");
        }
        gates.emplace(name, std::move(g));
      } else if (keyword == "vertices") {
        const std::string n = line.expect("vertices <n>");
        const double v = parse_number(n, line_no, line.col(), "vertex count");
        if (v < 2.0 || v != std::floor(v)) {
          fail(line_no, line.col(), "vertex count must be an integer >= 2");
        }
        vertex_count = static_cast<std::size_t>(v);
      } else if (keyword == "terminals") {
        const std::string a = line.expect("terminals <s> <t>");
        source = static_cast<std::size_t>(
            parse_number(a, line_no, line.col(), "source"));
        const std::string b = line.expect("terminals <s> <t>");
        sink = static_cast<std::size_t>(
            parse_number(b, line_no, line.col(), "sink"));
        have_terminals = true;
      } else if (keyword == "edge") {
        EdgeSpec e;
        e.component = line.expect("edge <component> <u> <v> [undirected]");
        e.col = line.col();
        const std::string u =
            line.expect("edge <component> <u> <v> [undirected]");
        e.u = static_cast<std::size_t>(
            parse_number(u, line_no, line.col(), "vertex"));
        const std::string v =
            line.expect("edge <component> <u> <v> [undirected]");
        e.v = static_cast<std::size_t>(
            parse_number(v, line_no, line.col(), "vertex"));
        e.undirected = false;
        e.line = line_no;
        std::string flag;
        if (line.next(flag)) {
          if (flag != "undirected") {
            fail(line_no, line.col(), "unknown edge flag");
          }
          e.undirected = true;
        }
        edges.push_back(std::move(e));
      } else if (keyword == "top") {
        if (!top_name.empty()) {
          fail(line_no, keyword_col, "duplicate 'top' directive");
        }
        top_name = line.expect("top <name>");
        top_line = line_no;
        top_col = line.col();
      } else {
        fail(line_no, keyword_col, "unknown directive '" + keyword + "'");
      }
    } catch (const LineError& e) {
      // Record the problem and keep scanning: later lines get their own
      // diagnostics instead of being hidden behind the first one.
      errors.add(e.diag);
    }
  }

  if (model_kind.empty()) errors.add({1, 1, "missing 'model' directive"});
  errors.throw_if_any();

  ParsedModel out;
  out.name = model_name;
  parse_span.set("model", model_name);
  parse_span.set("kind", model_kind);

  if (model_kind == "relgraph") {
    const std::size_t end = line_no ? line_no : 1;
    if (!gates.empty() || !top_name.empty()) {
      errors.add({end, 1, "relgraph models take edges, not gates/top"});
    }
    if (vertex_count == 0) {
      errors.add({end, 1, "missing 'vertices' directive"});
    }
    if (!have_terminals) {
      errors.add({end, 1, "missing 'terminals' directive"});
    }
    if (edges.empty()) errors.add({end, 1, "relgraph model has no edges"});
    if (have_terminals && vertex_count > 0 &&
        (source >= vertex_count || sink >= vertex_count || source == sink)) {
      errors.add({end, 1, "bad terminals"});
    }
    // Validate every edge before building so one bad edge does not mask
    // the others.
    for (const auto& e : edges) {
      if (events.find(e.component) == events.end()) {
        errors.add({e.line, e.col,
                    "edge references unknown component '" + e.component +
                        "'"});
      } else if (vertex_count > 0 &&
                 (e.u >= vertex_count || e.v >= vertex_count)) {
        errors.add({e.line, e.col, "edge vertex out of range"});
      }
    }
    errors.throw_if_any();
    auto graph = std::make_unique<relgraph::ReliabilityGraph>(vertex_count,
                                                              source, sink);
    for (const auto& e : edges) {
      const auto it = events.find(e.component);
      if (e.undirected) {
        graph->add_undirected_edge(e.component, e.u, e.v, it->second);
      } else {
        graph->add_edge(e.component, e.u, e.v, it->second);
      }
    }
    out.graph = std::move(graph);
    return out;
  }

  try {
    if (top_name.empty()) {
      fail(line_no ? line_no : 1, 1, "missing 'top' directive");
    }

    if (model_kind == "ftree") {
      // Build the ftree AST with cycle detection.
      std::map<std::string, ftree::EventModel> event_models;
      for (const auto& [name, model] : events) {
        event_models.emplace(name, model);
      }
      std::map<std::string, int> visiting;  // 0 none, 1 in progress
      std::function<ftree::NodePtr(const std::string&, std::size_t,
                                   std::size_t)>
          build = [&](const std::string& name, std::size_t from_line,
                      std::size_t from_col) -> ftree::NodePtr {
        if (events.count(name)) return ftree::Node::basic(name);
        const auto it = gates.find(name);
        if (it == gates.end()) {
          fail(from_line, from_col, "unknown reference '" + name + "'");
        }
        if (visiting[name] == 1) {
          fail(it->second.line, it->second.col,
               "cyclic gate definition through '" + name + "'");
        }
        visiting[name] = 1;
        const GateSpec& g = it->second;
        std::vector<ftree::NodePtr> children;
        for (const auto& child : g.children) {
          children.push_back(build(child, g.line, g.col));
        }
        visiting[name] = 0;
        if (g.kind == "and") return ftree::Node::and_gate(std::move(children));
        if (g.kind == "or") return ftree::Node::or_gate(std::move(children));
        if (g.kind == "not") return ftree::Node::not_gate(children[0]);
        return ftree::Node::k_of_n_gate(g.k, std::move(children));
      };
      const ftree::NodePtr top = build(top_name, top_line, top_col);
      out.fault_tree = std::make_unique<ftree::FaultTree>(
          top, std::move(event_models));
    } else {
      std::map<std::string, int> visiting;
      std::function<rbd::BlockPtr(const std::string&, std::size_t,
                                  std::size_t)>
          build = [&](const std::string& name, std::size_t from_line,
                      std::size_t from_col) -> rbd::BlockPtr {
        if (events.count(name)) return rbd::Block::component(name);
        const auto it = gates.find(name);
        if (it == gates.end()) {
          fail(from_line, from_col, "unknown reference '" + name + "'");
        }
        if (visiting[name] == 1) {
          fail(it->second.line, it->second.col,
               "cyclic gate definition through '" + name + "'");
        }
        visiting[name] = 1;
        const GateSpec& g = it->second;
        if (g.kind == "not") {
          fail(g.line, g.col, "'not' gates are not allowed in RBD models");
        }
        std::vector<rbd::BlockPtr> children;
        for (const auto& child : g.children) {
          children.push_back(build(child, g.line, g.col));
        }
        visiting[name] = 0;
        if (g.kind == "and") return rbd::Block::series(std::move(children));
        if (g.kind == "or") return rbd::Block::parallel(std::move(children));
        return rbd::Block::k_of_n(g.k, std::move(children));
      };
      const rbd::BlockPtr top = build(top_name, top_line, top_col);
      out.rbd = std::make_unique<rbd::Rbd>(top, events);
    }
  } catch (const LineError& e) {
    errors.add(e.diag);
    errors.throw_all();
  }
  return out;
}

ParsedModel parse_model_string(const std::string& text) {
  std::istringstream is(text);
  return parse_model(is);
}

ParsedModel parse_model_file(const std::string& path) {
  std::ifstream file(path);
  detail::require(file.good(), "parse_model_file: cannot open '" + path + "'");
  return parse_model(file);
}

}  // namespace relkit::io
