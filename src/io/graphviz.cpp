#include "io/graphviz.hpp"

#include <sstream>

namespace relkit::io {

std::string to_graphviz(const markov::Ctmc& chain) {
  std::ostringstream os;
  os << "digraph ctmc {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  for (markov::StateId s = 0; s < chain.state_count(); ++s) {
    os << "  s" << s << " [label=\"" << chain.state_name(s) << "\"";
    if (chain.is_absorbing(s)) os << ", peripheries=2";
    os << "];\n";
  }
  const SparseMatrix q = chain.sparse_generator();
  for (std::size_t r = 0; r < chain.state_count(); ++r) {
    for (std::size_t k = q.row_begin(r); k < q.row_end(r); ++k) {
      if (q.col(k) == r) continue;  // diagonal
      os << "  s" << r << " -> s" << q.col(k) << " [label=\"" << q.value(k)
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_graphviz(const spn::Srn& net) {
  const spn::GeneratedChain g = net.generate();
  std::ostringstream os;
  os << "digraph srn_reachability {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < g.markings.size(); ++i) {
    os << "  m" << i << " [label=\"";
    bool first = true;
    for (spn::PlaceId p = 0; p < net.place_count(); ++p) {
      if (g.markings[i][p] == 0) continue;
      if (!first) os << " ";
      os << net.place_name(p) << "=" << g.markings[i][p];
      first = false;
    }
    if (first) os << "(empty)";
    os << "\"";
    if (g.initial[i] > 0.0) os << ", style=bold";
    os << "];\n";
  }
  const SparseMatrix q = g.ctmc.sparse_generator();
  for (std::size_t r = 0; r < g.markings.size(); ++r) {
    for (std::size_t k = q.row_begin(r); k < q.row_end(r); ++k) {
      if (q.col(k) == r) continue;
      os << "  m" << r << " -> m" << q.col(k) << " [label=\"" << q.value(k)
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace relkit::io
