// Graphviz (dot) export of state-space models — the standard way to
// eyeball a generated chain before trusting it.
#pragma once

#include <string>

#include "markov/ctmc.hpp"
#include "spn/srn.hpp"

namespace relkit::io {

/// Renders a CTMC as a dot digraph: one node per state (labelled with its
/// name), one edge per transition (labelled with the rate, `%g` format).
std::string to_graphviz(const markov::Ctmc& chain);

/// Renders the *tangible reachability graph* of an SRN: nodes are tangible
/// markings (labelled "p1=2 p3=1", zero-token places omitted), edges carry
/// the effective rates after vanishing-marking elimination.
std::string to_graphviz(const spn::Srn& net);

}  // namespace relkit::io
