// Text-format model import — a small SHARPE-flavoured input language so
// models can be written in files and analyzed by the CLI (tools/relkit_cli)
// or loaded programmatically.
//
// Grammar (line oriented; '#' starts a comment):
//
//   model (ftree|rbd|relgraph) <name>
//   event <name> prob <p>                        # fixed P(component up)
//   event <name> rate <lambda>                   # exponential lifetime
//   event <name> rate <lambda> repair <mu>       # repairable
//   event <name> weibull <shape> <scale>         # Weibull lifetime
//   event <name> lognormal <mu> <sigma>          # lognormal lifetime
//   event <name> markov <n> <k> <lambda> <mu>    # hierarchical submodel
//
// `markov` declares a k-of-n unit pool with a single shared repairer
// (exponential failure rate lambda per unit, repair rate mu). It is solved
// on the spot as an (n+1)-state birth-death CTMC through the robust
// steady-state chain, and only the resulting availability enters the
// combinatorial model — the tutorial's hierarchical composition, in one
// directive. With tracing enabled the solve shows up as a `hier.submodel`
// span containing the full solver-attempt subtree.
//   gate <name> and <child> <child> ...          # children: events/gates
//   gate <name> or  <child> ...
//   gate <name> kofn <k> <child> ...
//   gate <name> not <child>                      # fault trees only
//   top <gate-or-event>                          # required, once
//
// For `model rbd`, gate semantics are block semantics: `and` = series,
// `or` = parallel, `kofn` = k-of-n working; `not` is rejected.
//
// For `model relgraph`, the directives are instead:
//
//   vertices <n>                                 # vertex ids 0..n-1
//   terminals <source> <sink>
//   event <name> ...                             # as above (components)
//   edge <component> <u> <v> [undirected]        # arc carried by component
//
// and no gates/top are allowed.
//
// Parse errors throw relkit::ModelError positioned at a 1-based line and
// column. The parser keeps scanning after a bad line and reports every
// diagnostic in the file at once (one per line after the headline), so a
// model can be fixed in a single round trip.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ftree/fault_tree.hpp"
#include "rbd/rbd.hpp"
#include "relgraph/relgraph.hpp"

namespace relkit::io {

/// A parsed model: exactly one of the pointers is set.
struct ParsedModel {
  std::string name;
  std::unique_ptr<ftree::FaultTree> fault_tree;
  std::unique_ptr<rbd::Rbd> rbd;
  std::unique_ptr<relgraph::ReliabilityGraph> graph;
};

/// Parses a model from a stream. Throws ModelError on syntax or semantic
/// errors; the message includes the 1-based line and column of every
/// problem found in the input, not just the first.
ParsedModel parse_model(std::istream& input);

/// Parses a model from a string (convenience for tests).
ParsedModel parse_model_string(const std::string& text);

/// Parses a model from a file path.
ParsedModel parse_model_file(const std::string& path);

}  // namespace relkit::io
