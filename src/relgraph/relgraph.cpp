#include "relgraph/relgraph.hpp"

#include <algorithm>
#include <deque>
#include <functional>

#include "common/error.hpp"

namespace relkit::relgraph {

ReliabilityGraph::ReliabilityGraph(std::size_t num_vertices,
                                   std::size_t source, std::size_t sink)
    : source_(source), sink_(sink), adj_(num_vertices) {
  detail::require(num_vertices >= 2,
                  "ReliabilityGraph: need at least 2 vertices");
  detail::require(source < num_vertices && sink < num_vertices,
                  "ReliabilityGraph: source/sink out of range");
  detail::require(source != sink, "ReliabilityGraph: source == sink");
}

void ReliabilityGraph::add_edge(const std::string& name, std::size_t u,
                                std::size_t v, ComponentModel model) {
  detail::require(u < adj_.size() && v < adj_.size(),
                  "add_edge: vertex out of range");
  detail::require(u != v, "add_edge: self-loops are not allowed");
  detail::require(!compiled_, "add_edge: graph already compiled");
  std::uint32_t comp;
  const auto it = index_.find(name);
  if (it == index_.end()) {
    comp = static_cast<std::uint32_t>(names_.size());
    index_.emplace(name, comp);
    names_.push_back(name);
    models_.push_back(std::move(model));
  } else {
    comp = it->second;
  }
  adj_[u].push_back({v, comp});
  arcs_.push_back({u, v, comp});
}

void ReliabilityGraph::add_undirected_edge(const std::string& name,
                                           std::size_t u, std::size_t v,
                                           ComponentModel model) {
  add_edge(name, u, v, model);
  add_edge(name, v, u, models_[index_.at(name)]);
}

std::vector<std::vector<std::uint32_t>> ReliabilityGraph::enumerate_paths()
    const {
  // DFS enumeration of simple s-t paths; record the component set of each.
  std::vector<std::vector<std::uint32_t>> paths;
  std::vector<bool> visited(adj_.size(), false);
  std::vector<std::uint32_t> comps;

  std::function<void(std::size_t)> dfs = [&](std::size_t v) {
    if (v == sink_) {
      std::vector<std::uint32_t> sorted = comps;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      paths.push_back(std::move(sorted));
      return;
    }
    visited[v] = true;
    for (const Arc& a : adj_[v]) {
      if (visited[a.to]) continue;
      comps.push_back(a.comp);
      dfs(a.to);
      comps.pop_back();
    }
    visited[v] = false;
    detail::require(paths.size() < (1u << 22),
                    "enumerate_paths: path explosion");
  };
  dfs(source_);
  return paths;
}

void ReliabilityGraph::ensure_compiled() const {
  if (compiled_) return;
  const auto paths = enumerate_paths();
  std::vector<bdd::NodeRef> terms;
  terms.reserve(paths.size());
  for (const auto& path : paths) {
    std::vector<bdd::NodeRef> vars;
    vars.reserve(path.size());
    for (const auto c : path) vars.push_back(mgr_.var(c));
    terms.push_back(mgr_.and_all(vars));
  }
  up_ = mgr_.or_all(terms);
  compiled_ = true;
}

std::vector<double> ReliabilityGraph::probs_at(double t) const {
  std::vector<double> p(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    p[i] = t < 0.0 ? models_[i].prob_up_limit() : models_[i].prob_up_at(t);
  }
  return p;
}

double ReliabilityGraph::reliability(double t) const {
  ensure_compiled();
  return mgr_.prob(up_, probs_at(t));
}

double ReliabilityGraph::reliability_factoring(double t) const {
  const std::vector<double> p = probs_at(t);

  // state: 0 = unconditioned, 1 = perfect, 2 = failed (per component).
  std::vector<std::uint8_t> state(models_.size(), 0);

  // Reachability of sink from source using arcs whose component state
  // passes `ok`; optionally records the first unconditioned component on
  // a discovered path.
  auto reachable = [&](bool perfect_only, std::uint32_t* pick) {
    std::vector<bool> seen(adj_.size(), false);
    std::deque<std::size_t> queue{source_};
    seen[source_] = true;
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop_front();
      if (v == sink_) return true;
      for (const Arc& a : adj_[v]) {
        if (seen[a.to]) continue;
        const std::uint8_t s = state[a.comp];
        if (s == 2) continue;
        if (perfect_only && s != 1) continue;
        if (!perfect_only && s == 0 && pick != nullptr) *pick = a.comp;
        seen[a.to] = true;
        queue.push_back(a.to);
      }
    }
    return false;
  };

  std::function<double()> factor = [&]() -> double {
    if (reachable(true, nullptr)) return 1.0;  // connected via perfect arcs
    std::uint32_t pick = 0xffffffffu;
    if (!reachable(false, &pick)) return 0.0;  // disconnected even if all work
    detail::require(pick != 0xffffffffu,
                    "factoring: internal error, no component to condition on");
    const double pc = p[pick];
    state[pick] = 1;
    const double r_works = factor();
    state[pick] = 2;
    const double r_fails = factor();
    state[pick] = 0;
    return pc * r_works + (1.0 - pc) * r_fails;
  };
  return factor();
}

std::vector<std::vector<std::string>> ReliabilityGraph::minimal_path_sets(
    std::size_t limit) const {
  ensure_compiled();
  const auto raw = mgr_.minimal_solutions(up_, limit);
  std::vector<std::vector<std::string>> out;
  out.reserve(raw.size());
  for (const auto& path : raw) {
    std::vector<std::string> named;
    named.reserve(path.size());
    for (const auto v : path) named.push_back(names_[v]);
    out.push_back(std::move(named));
  }
  return out;
}

std::vector<std::vector<std::string>> ReliabilityGraph::minimal_cut_sets(
    std::size_t limit) const {
  ensure_compiled();
  const auto raw = mgr_.minimal_solutions(mgr_.dual(up_), limit);
  std::vector<std::vector<std::string>> out;
  out.reserve(raw.size());
  for (const auto& cut : raw) {
    std::vector<std::string> named;
    named.reserve(cut.size());
    for (const auto v : cut) named.push_back(names_[v]);
    out.push_back(std::move(named));
  }
  return out;
}

std::size_t ReliabilityGraph::bdd_node_count() const {
  ensure_compiled();
  return mgr_.node_count(up_);
}

ReliabilityGraph make_bridge(double p_up) {
  // Vertices: 0 = s, 1 = x, 2 = y, 3 = t.
  ReliabilityGraph g(4, 0, 3);
  const auto m = ComponentModel::fixed(p_up);
  g.add_edge("A", 0, 1, m);
  g.add_edge("C", 0, 2, m);
  g.add_edge("B", 1, 3, m);
  g.add_edge("D", 2, 3, m);
  g.add_undirected_edge("E", 1, 2, m);
  return g;
}

}  // namespace relkit::relgraph
