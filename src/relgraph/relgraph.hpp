// Reliability graphs (s-t connectivity networks).
//
// The third non-state-space model type of the tutorial: vertices are perfect,
// edges are independent components, and the system is up while at least one
// source->sink path of working edges exists. Two exact solution methods are
// implemented and cross-validated:
//
//  * BDD compilation of the path structure function (minimal paths are
//    enumerated by DFS, the BDD handles their shared edges exactly), and
//  * the factoring (conditioning) algorithm of Moskowitz with parallel-edge
//    reduction, R(G) = p_e R(G * e) + (1 - p_e) R(G - e),
//
// plus minimal path / cut set extraction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "common/component.hpp"

namespace relkit::relgraph {

/// An s-t reliability graph under construction.
class ReliabilityGraph {
 public:
  /// Creates a graph with `num_vertices` vertices, all perfect.
  /// `source` and `sink` index into [0, num_vertices).
  ReliabilityGraph(std::size_t num_vertices, std::size_t source,
                   std::size_t sink);

  /// Adds a directed edge u -> v carried by component `name`. The same name
  /// may carry several edges (shared-failure wiring); edge direction only
  /// affects path enumeration.
  void add_edge(const std::string& name, std::size_t u, std::size_t v,
                ComponentModel model);

  /// Adds an undirected edge (two arcs sharing one component variable).
  void add_undirected_edge(const std::string& name, std::size_t u,
                           std::size_t v, ComponentModel model);

  std::size_t vertex_count() const { return adj_.size(); }
  std::size_t component_count() const { return names_.size(); }

  /// P(source connected to sink) at time t (steady state when t < 0),
  /// via BDD over the enumerated minimal paths.
  double reliability(double t) const;

  /// Same measure via the factoring algorithm — independent implementation
  /// used for cross-validation. Exponential worst case; intended for graphs
  /// with up to a few dozen edges.
  double reliability_factoring(double t) const;

  /// Minimal path sets (component names per path).
  std::vector<std::vector<std::string>> minimal_path_sets(
      std::size_t limit = 1u << 20) const;

  /// Minimal cut sets (components whose failure disconnects s from t).
  std::vector<std::vector<std::string>> minimal_cut_sets(
      std::size_t limit = 1u << 20) const;

  /// BDD size after compilation (diagnostics for the scaling benches).
  std::size_t bdd_node_count() const;

 private:
  struct Arc {
    std::size_t to;
    std::uint32_t comp;  // component variable index
  };

  void ensure_compiled() const;
  std::vector<double> probs_at(double t) const;
  std::vector<std::vector<std::uint32_t>> enumerate_paths() const;

  std::size_t source_, sink_;
  std::vector<std::vector<Arc>> adj_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> index_;
  std::vector<ComponentModel> models_;
  // For factoring: flat arc list (u, v, comp).
  struct FlatArc {
    std::size_t u, v;
    std::uint32_t comp;
  };
  std::vector<FlatArc> arcs_;

  mutable bdd::Manager mgr_;
  mutable bdd::NodeRef up_ = bdd::Manager::zero();
  mutable bool compiled_ = false;
};

/// Builds the classic 5-component bridge network (the tutorial's standard
/// reliability-graph example): s-A-x, s-C-y, x-B-t, y-D-t, x-E-y undirected.
ReliabilityGraph make_bridge(double p_up);

}  // namespace relkit::relgraph
