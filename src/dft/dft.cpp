#include "dft/dft.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/quadrature.hpp"

namespace relkit::dft {

NodePtr Node::basic(std::string name) {
  detail::require(!name.empty(), "dft::Node::basic: empty name");
  return NodePtr(new Node(Kind::kBasic, std::move(name), {}, 0, 1.0));
}

NodePtr Node::and_gate(std::vector<NodePtr> children) {
  detail::require_model(!children.empty(), "dft AND gate needs inputs");
  return NodePtr(new Node(Kind::kAnd, {}, std::move(children), 0, 1.0));
}

NodePtr Node::or_gate(std::vector<NodePtr> children) {
  detail::require_model(!children.empty(), "dft OR gate needs inputs");
  return NodePtr(new Node(Kind::kOr, {}, std::move(children), 0, 1.0));
}

NodePtr Node::k_of_n_gate(std::uint32_t k, std::vector<NodePtr> children) {
  detail::require_model(!children.empty() && k >= 1 && k <= children.size(),
                        "dft k-of-n gate: bad shape");
  return NodePtr(new Node(Kind::kKofN, {}, std::move(children), k, 1.0));
}

NodePtr Node::pand_gate(std::string gate_name, std::vector<NodePtr> children) {
  detail::require(!gate_name.empty(), "dft PAND gate: empty name");
  detail::require_model(children.size() >= 2,
                        "dft PAND gate needs >= 2 inputs");
  for (const auto& c : children) {
    detail::require_model(c->kind() == Kind::kBasic,
                          "dft PAND gate inputs must be basic events");
  }
  return NodePtr(
      new Node(Kind::kPand, std::move(gate_name), std::move(children), 0, 1.0));
}

NodePtr Node::spare_gate(std::string gate_name, std::vector<NodePtr> children,
                         double dormancy) {
  detail::require(!gate_name.empty(), "dft SPARE gate: empty name");
  detail::require_model(children.size() >= 2,
                        "dft SPARE gate needs a primary and >= 1 spare");
  detail::require(dormancy >= 0.0 && dormancy <= 1.0,
                  "dft SPARE gate: dormancy in [0,1]");
  for (const auto& c : children) {
    detail::require_model(c->kind() == Kind::kBasic,
                          "dft SPARE gate inputs must be basic events");
  }
  return NodePtr(new Node(Kind::kSpare, std::move(gate_name),
                          std::move(children), 0, dormancy));
}

// ----------------------------------------------------------- CtmcLifetime

CtmcLifetime::CtmcLifetime(markov::Ctmc chain, std::vector<double> initial,
                           std::vector<bool> fired)
    : chain_(std::move(chain)), initial_(std::move(initial)),
      fired_(std::move(fired)) {
  detail::require(initial_.size() == chain_.state_count() &&
                      fired_.size() == chain_.state_count(),
                  "CtmcLifetime: size mismatch");
  bool any = false;
  for (std::size_t s = 0; s < fired_.size(); ++s) {
    if (fired_[s]) {
      detail::require_model(chain_.is_absorbing(s),
                            "CtmcLifetime: firing states must be absorbing");
      any = true;
    }
  }
  detail::require_model(any, "CtmcLifetime: no firing state");

  // Firing probability via absorbing analysis.
  const auto res = chain_.absorbing_analysis(initial_);
  fire_prob_ = 0.0;
  for (std::size_t s = 0; s < fired_.size(); ++s) {
    if (fired_[s]) fire_prob_ += res.absorption_probability[s];
  }
  detail::require_model(fire_prob_ > 1e-15,
                        "CtmcLifetime: event can never fire");

  // Exact first two moments of the time to absorption (into ANY absorbing
  // state): the absorption time is phase-type over the transient block
  // Q_TT, so E[T] = tau 1 and E[T^2] = 2 b 1 where tau Q_TT = -pi0_T and
  // b Q_TT = -tau. Used both for the reported moments and for a tail-guard
  // horizon beyond which cdf(t) == fire_prob_ to double precision — so a
  // probe at t = 1e9 does not trigger an O(q t) uniformization.
  {
    std::vector<std::size_t> tstates, tindex(chain_.state_count(), SIZE_MAX);
    for (std::size_t s = 0; s < chain_.state_count(); ++s) {
      if (!chain_.is_absorbing(s)) {
        tindex[s] = tstates.size();
        tstates.push_back(s);
      }
    }
    const std::size_t m = tstates.size();
    const Matrix q = chain_.dense_generator();
    Matrix qtt(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        qtt(i, j) = q(tstates[i], tstates[j]);
      }
    }
    std::vector<double> rhs(m);
    for (std::size_t i = 0; i < m; ++i) rhs[i] = -initial_[tstates[i]];
    const std::vector<double> tau = lu_solve_transposed(qtt, rhs);
    for (std::size_t i = 0; i < m; ++i) rhs[i] = -tau[i];
    const std::vector<double> b = lu_solve_transposed(qtt, rhs);
    const double m1_abs = sum(tau);
    const double m2_abs = 2.0 * sum(b);
    const double sd_abs = std::sqrt(std::max(0.0, m2_abs - m1_abs * m1_abs));
    horizon_ = m1_abs + 60.0 * sd_abs + 1e-300;

    if (fire_prob_ > 1.0 - 1e-12) {
      mean_ = m1_abs;
      second_ = m2_abs;
    } else {
      mean_ = std::numeric_limits<double>::infinity();
      second_ = std::numeric_limits<double>::infinity();
    }
  }
}

double CtmcLifetime::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  if (t > horizon_) return fire_prob_;
  const auto pi = chain_.transient(initial_, t);
  double p = 0.0;
  for (std::size_t s = 0; s < fired_.size(); ++s) {
    if (fired_[s]) p += pi[s];
  }
  return std::clamp(p, 0.0, 1.0);
}

double CtmcLifetime::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t > horizon_) return 0.0;
  // Flow rate into firing states: sum over transient states of
  // pi_s(t) * rate(s -> fired).
  const auto pi = chain_.transient(initial_, t);
  const SparseMatrix q = chain_.sparse_generator();
  double flow = 0.0;
  for (std::size_t s = 0; s < fired_.size(); ++s) {
    if (fired_[s] || pi[s] == 0.0) continue;
    for (std::size_t k = q.row_begin(s); k < q.row_end(s); ++k) {
      if (q.col(k) != s && fired_[q.col(k)]) flow += pi[s] * q.value(k);
    }
  }
  return flow;
}

double CtmcLifetime::mean() const { return mean_; }

double CtmcLifetime::variance() const {
  if (!std::isfinite(mean_)) return std::numeric_limits<double>::infinity();
  return std::max(0.0, second_ - mean_ * mean_);
}

double CtmcLifetime::sample(Rng& rng) const {
  // Token game until absorption; defective paths return +infinity.
  const SparseMatrix q = chain_.sparse_generator();
  // Choose start state.
  double u = rng.uniform();
  std::size_t state = 0;
  for (std::size_t s = 0; s < initial_.size(); ++s) {
    if (u < initial_[s]) {
      state = s;
      break;
    }
    u -= initial_[s];
  }
  double now = 0.0;
  for (int guard = 0; guard < 1000000; ++guard) {
    if (chain_.is_absorbing(state)) {
      return fired_[state] ? now : std::numeric_limits<double>::infinity();
    }
    const double exit = chain_.exit_rate(state);
    now += -std::log(rng.uniform_pos()) / exit;
    double pick = rng.uniform() * exit;
    std::size_t next = state;
    for (std::size_t k = q.row_begin(state); k < q.row_end(state); ++k) {
      if (q.col(k) == state) continue;
      if (pick < q.value(k)) {
        next = q.col(k);
        break;
      }
      pick -= q.value(k);
    }
    state = next;
  }
  throw NumericalError("CtmcLifetime::sample: chain did not absorb");
}

std::string CtmcLifetime::describe() const {
  std::ostringstream os;
  os << "ctmc_lifetime(states=" << chain_.state_count()
     << ", p_fire=" << fire_prob_ << ")";
  return os.str();
}

// ------------------------------------------------------------------- Dft

namespace {

// Builds the PAND module chain: inputs must fail in order 0,1,...,n-1.
// State: how many leading inputs have failed in order, with all later
// inputs still racing; any out-of-order failure moves to a dead state.
DistPtr pand_lifetime(const std::vector<double>& rates) {
  const std::size_t n = rates.size();
  markov::Ctmc c;
  // States 0..n-1: "first s inputs failed in order, rest alive".
  for (std::size_t s = 0; s < n; ++s) {
    c.add_state("ord" + std::to_string(s));
  }
  const auto fired = c.add_state("fired");
  const auto dead = c.add_state("dead");  // out-of-order: never fires
  for (std::size_t s = 0; s < n; ++s) {
    // Next-in-order failure advances.
    c.add_transition(s, s + 1 == n ? fired : s + 1, rates[s]);
    // Any later input failing first kills the order condition.
    double later = 0.0;
    for (std::size_t j = s + 1; j < n; ++j) later += rates[j];
    if (later > 0.0) c.add_transition(s, dead, later);
  }
  std::vector<double> init(c.state_count(), 0.0);
  init[0] = 1.0;
  std::vector<bool> fire(c.state_count(), false);
  fire[fired] = true;
  return std::make_shared<CtmcLifetime>(std::move(c), std::move(init),
                                        std::move(fire));
}

// Builds the SPARE module chain. children rates: [primary, spare1, ...].
// State: (active unit index a in 0..n-1 or none, set of dormant spares
// alive). With ordered activation and identical treatment, track:
//   a  = index of the currently active unit (0 = primary),
//   d  = bitmask of spares still alive and dormant (indices 1..n-1 > a).
// Encoded explicitly through a small map.
DistPtr spare_lifetime(const std::vector<double>& rates, double dormancy) {
  const std::size_t n = rates.size();
  detail::require(n <= 16, "spare gate: too many units");

  struct State {
    std::size_t active;      // n = none (all failed)
    std::uint32_t dormant;   // bitmask over 1..n-1
    bool operator<(const State& o) const {
      return active != o.active ? active < o.active : dormant < o.dormant;
    }
  };
  markov::Ctmc c;
  std::map<State, markov::StateId> ids;
  std::vector<State> todo;
  const auto intern = [&](const State& s) {
    const auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    const auto id = c.add_state("s" + std::to_string(ids.size()));
    ids.emplace(s, id);
    todo.push_back(s);
    return id;
  };

  std::uint32_t all_spares = 0;
  for (std::size_t i = 1; i < n; ++i) all_spares |= (1u << i);
  const State start{0, all_spares};
  const auto start_id = intern(start);
  (void)start_id;

  while (!todo.empty()) {
    const State s = todo.back();
    todo.pop_back();
    const auto sid = ids.at(s);
    if (s.active == n) continue;  // fired (absorbing)

    // Active unit fails -> promote the lowest-index dormant spare.
    {
      State next = s;
      std::size_t promote = n;
      for (std::size_t i = 1; i < n; ++i) {
        if (next.dormant & (1u << i)) {
          promote = i;
          break;
        }
      }
      if (promote < n) {
        next.active = promote;
        next.dormant &= ~(1u << promote);
      } else {
        next.active = n;  // no spare left: gate fires
      }
      c.add_transition(sid, intern(next), rates[s.active]);
    }
    // Each dormant spare can fail in dormancy.
    if (dormancy > 0.0) {
      for (std::size_t i = 1; i < n; ++i) {
        if (!(s.dormant & (1u << i))) continue;
        State next = s;
        next.dormant &= ~(1u << i);
        c.add_transition(sid, intern(next), dormancy * rates[i]);
      }
    }
  }

  std::vector<double> init(c.state_count(), 0.0);
  init[ids.at(start)] = 1.0;
  std::vector<bool> fire(c.state_count(), false);
  for (const auto& [st, id] : ids) {
    if (st.active == n) fire[id] = true;
  }
  return std::make_shared<CtmcLifetime>(std::move(c), std::move(init),
                                        std::move(fire));
}

}  // namespace

Dft::Dft(NodePtr top, std::map<std::string, double> rates) {
  detail::require_model(top != nullptr, "Dft: null top node");

  // Pass 1: collect usage counts of basic events and validate rates exist.
  std::map<std::string, int> uses;
  std::set<const Node*> dynamic_gates;
  std::function<void(const Node&)> scan = [&](const Node& node) {
    switch (node.kind()) {
      case Node::Kind::kBasic: {
        detail::require_model(rates.count(node.name()),
                              "Dft: no rate for basic event '" + node.name() +
                                  "'");
        detail::require(rates.at(node.name()) > 0.0,
                        "Dft: rate must be > 0 for '" + node.name() + "'");
        ++uses[node.name()];
        return;
      }
      case Node::Kind::kPand:
      case Node::Kind::kSpare:
        dynamic_gates.insert(&node);
        [[fallthrough]];
      default:
        for (const auto& ch : node.children()) scan(*ch);
    }
  };
  scan(*top);

  // Module independence: dynamic-gate inputs used exactly once.
  for (const Node* g : dynamic_gates) {
    for (const auto& ch : g->children()) {
      detail::require_model(uses.at(ch->name()) == 1,
                            "Dft: basic event '" + ch->name() +
                                "' feeds a dynamic gate but is shared — "
                                "module independence violated");
    }
  }

  // Pass 2: translate into a static fault tree. Dynamic gates become
  // pseudo-events carrying a CtmcLifetime.
  std::map<std::string, ftree::EventModel> events;
  std::function<ftree::NodePtr(const Node&)> build =
      [&](const Node& node) -> ftree::NodePtr {
    switch (node.kind()) {
      case Node::Kind::kBasic: {
        if (!events.count(node.name())) {
          events.emplace(node.name(),
                         ftree::EventModel::with_lifetime(
                             exponential(rates.at(node.name()))));
        }
        return ftree::Node::basic(node.name());
      }
      case Node::Kind::kAnd: {
        std::vector<ftree::NodePtr> ch;
        for (const auto& c : node.children()) ch.push_back(build(*c));
        return ftree::Node::and_gate(std::move(ch));
      }
      case Node::Kind::kOr: {
        std::vector<ftree::NodePtr> ch;
        for (const auto& c : node.children()) ch.push_back(build(*c));
        return ftree::Node::or_gate(std::move(ch));
      }
      case Node::Kind::kKofN: {
        std::vector<ftree::NodePtr> ch;
        for (const auto& c : node.children()) ch.push_back(build(*c));
        return ftree::Node::k_of_n_gate(node.k(), std::move(ch));
      }
      case Node::Kind::kPand: {
        std::vector<double> in_rates;
        for (const auto& c : node.children()) {
          in_rates.push_back(rates.at(c->name()));
        }
        detail::require_model(!events.count(node.name()),
                              "Dft: duplicate gate name '" + node.name() +
                                  "'");
        events.emplace(node.name(), ftree::EventModel::with_lifetime(
                                        pand_lifetime(in_rates)));
        ++modules_;
        return ftree::Node::basic(node.name());
      }
      case Node::Kind::kSpare: {
        std::vector<double> in_rates;
        for (const auto& c : node.children()) {
          in_rates.push_back(rates.at(c->name()));
        }
        detail::require_model(!events.count(node.name()),
                              "Dft: duplicate gate name '" + node.name() +
                                  "'");
        events.emplace(node.name(),
                       ftree::EventModel::with_lifetime(
                           spare_lifetime(in_rates, node.dormancy())));
        ++modules_;
        return ftree::Node::basic(node.name());
      }
    }
    throw ModelError("Dft: unknown node kind");
  };

  const ftree::NodePtr static_top = build(*top);
  tree_ = std::make_unique<ftree::FaultTree>(static_top, std::move(events));

  // Defect of the top event: probe the limit.
  top_fire_prob_ = tree_->top_probability(1e9);
}

double Dft::unreliability(double t) const {
  detail::require(t >= 0.0, "Dft::unreliability: t must be >= 0");
  return tree_->top_probability(t);
}

double Dft::reliability(double t) const { return 1.0 - unreliability(t); }

double Dft::mttf() const {
  detail::require_model(top_fire_prob_ > 1.0 - 1e-9,
                        "Dft::mttf: top event is defective (occurs with "
                        "probability " + std::to_string(top_fire_prob_) +
                        " < 1); MTTF is infinite");
  return integrate_to_inf([this](double t) { return reliability(t); }, 1e-9);
}

}  // namespace relkit::dft
