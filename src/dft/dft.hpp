// Dynamic fault trees (DFT) — sequence-dependent failure logic.
//
// Static fault trees cannot express spares, functional sequencing, or
// order-dependent failures; Trivedi's HARP pioneered the hybrid solution
// this module implements (the modular approach later formalized by Dugan):
//
//   * dynamic gates (warm/cold/hot SPARE, priority-AND) whose inputs are
//     dedicated basic events form independent *modules*; each module is
//     translated into a small absorbing CTMC whose time-to-absorption is
//     the module's failure-time distribution;
//   * the static part of the tree then treats each module as a pseudo
//     basic event carrying that (possibly defective) lifetime and is solved
//     combinatorially via the BDD engine.
//
// Basic events are exponential (rate per event); spare dormancy scales the
// rate while a spare is not powered (0 = cold, 1 = hot).
//
// Restrictions (validated): inputs of a dynamic gate must be basic events
// that appear nowhere else in the tree (module independence), the standard
// assumption of the modular method. FDEP/SEQ gates are out of scope.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/distributions.hpp"
#include "ftree/fault_tree.hpp"
#include "markov/ctmc.hpp"

namespace relkit::dft {

class Node;
using NodePtr = std::shared_ptr<const Node>;

/// DFT AST node.
class Node {
 public:
  enum class Kind { kBasic, kAnd, kOr, kKofN, kPand, kSpare };

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const std::vector<NodePtr>& children() const { return children_; }
  std::uint32_t k() const { return k_; }
  double dormancy() const { return dormancy_; }

  /// Basic event (exponential failure; rate given to Dft).
  static NodePtr basic(std::string name);
  /// Static gates (combinatorial part).
  static NodePtr and_gate(std::vector<NodePtr> children);
  static NodePtr or_gate(std::vector<NodePtr> children);
  static NodePtr k_of_n_gate(std::uint32_t k, std::vector<NodePtr> children);
  /// Priority-AND over basic events: fires iff ALL inputs fail *in the
  /// given left-to-right order*.
  static NodePtr pand_gate(std::string gate_name,
                           std::vector<NodePtr> children);
  /// Spare gate over basic events: children[0] is the primary, the rest are
  /// spares used in order. A dormant spare fails at dormancy * rate
  /// (0 = cold, 1 = hot). Fires when primary and all spares have failed.
  static NodePtr spare_gate(std::string gate_name,
                            std::vector<NodePtr> children, double dormancy);

 private:
  Node(Kind kind, std::string name, std::vector<NodePtr> children,
       std::uint32_t k, double dormancy)
      : kind_(kind), name_(std::move(name)), children_(std::move(children)),
        k_(k), dormancy_(dormancy) {}

  Kind kind_;
  std::string name_;
  std::vector<NodePtr> children_;
  std::uint32_t k_ = 0;
  double dormancy_ = 1.0;
};

/// Time-to-absorption distribution of an absorbing CTMC (the "fired" state
/// set). May be *defective*: with positive probability the chain settles in
/// a non-firing absorbing state and the event never occurs; cdf then
/// saturates below 1 and mean() returns +infinity.
class CtmcLifetime final : public Distribution {
 public:
  /// `fired[s]` marks the firing absorbing states. The chain must make all
  /// firing states absorbing.
  CtmcLifetime(markov::Ctmc chain, std::vector<double> initial,
               std::vector<bool> fired);

  double cdf(double t) const override;
  double pdf(double t) const override;
  double mean() const override;
  double variance() const override;
  double sample(Rng& rng) const override;
  std::string describe() const override;

  /// P(the event ever fires).
  double firing_probability() const { return fire_prob_; }

 private:
  markov::Ctmc chain_;
  std::vector<double> initial_;
  std::vector<bool> fired_;
  double fire_prob_ = 1.0;
  double mean_ = 0.0;      // +inf when defective
  double second_ = 0.0;    // second raw moment; +inf when defective
  double horizon_ = 0.0;   // beyond this, cdf == fire_prob_ (PH tail guard)
};

/// A compiled dynamic fault tree.
class Dft {
 public:
  /// `rates` maps every basic-event name to its exponential failure rate.
  Dft(NodePtr top, std::map<std::string, double> rates);

  /// P(top event by time t).
  double unreliability(double t) const;
  /// R(t) = 1 - unreliability(t).
  double reliability(double t) const;
  /// Mean time to top-event occurrence. Throws ModelError when the top
  /// event is defective (occurs with probability < 1).
  double mttf() const;

  /// Number of dynamic modules converted to CTMCs.
  std::size_t module_count() const { return modules_; }
  /// The static fault tree the DFT was reduced to.
  const ftree::FaultTree& static_tree() const { return *tree_; }

 private:
  std::unique_ptr<ftree::FaultTree> tree_;
  std::size_t modules_ = 0;
  double top_fire_prob_ = 1.0;
};

}  // namespace relkit::dft
