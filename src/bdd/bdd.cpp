#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace relkit::bdd {

Manager::Manager() {
  // Terminals: index 0 = FALSE, index 1 = TRUE.
  nodes_.push_back({kTerminalLevel, 0, 0});
  nodes_.push_back({kTerminalLevel, 1, 1});
}

NodeRef Manager::make_node(std::uint32_t level, NodeRef low, NodeRef high) {
  if (low == high) return low;  // redundant test elimination
  const NodeKey key{level, low, high};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const auto ref = static_cast<NodeRef>(nodes_.size());
  detail::require(nodes_.size() < 0xfffffff0u, "BDD node table overflow");
  nodes_.push_back({level, low, high});
  unique_.emplace(key, ref);
  static obs::Counter& allocated = obs::counter("bdd.nodes_allocated");
  allocated.add();
  return ref;
}

NodeRef Manager::var(std::uint32_t level) {
  detail::require(level != kTerminalLevel, "var: reserved level");
  return make_node(level, zero(), one());
}

NodeRef Manager::nvar(std::uint32_t level) {
  detail::require(level != kTerminalLevel, "nvar: reserved level");
  return make_node(level, one(), zero());
}

NodeRef Manager::ite(NodeRef f, NodeRef g, NodeRef h) {
  static obs::Counter& calls = obs::counter("bdd.ite_calls");
  static obs::Counter& hits = obs::counter("bdd.ite_cache_hits");
  calls.add();

  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const IteKey key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    hits.add();
    return it->second;
  }

  // Split on the topmost variable among f, g, h.
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t lh = level(h);
  const std::uint32_t top = std::min({lf, lg, lh});

  const NodeRef f0 = (lf == top) ? low(f) : f;
  const NodeRef f1 = (lf == top) ? high(f) : f;
  const NodeRef g0 = (lg == top) ? low(g) : g;
  const NodeRef g1 = (lg == top) ? high(g) : g;
  const NodeRef h0 = (lh == top) ? low(h) : h;
  const NodeRef h1 = (lh == top) ? high(h) : h;

  const NodeRef lo = ite(f0, g0, h0);
  const NodeRef hi = ite(f1, g1, h1);
  const NodeRef result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

NodeRef Manager::reduce_list(std::span<const NodeRef> fs, bool is_and) {
  if (fs.empty()) return is_and ? one() : zero();
  std::vector<NodeRef> work(fs.begin(), fs.end());
  // Balanced pairwise reduction: keeps intermediate results small compared
  // to a left fold when operands share no variables.
  while (work.size() > 1) {
    std::vector<NodeRef> next;
    next.reserve((work.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < work.size(); i += 2) {
      next.push_back(is_and ? apply_and(work[i], work[i + 1])
                            : apply_or(work[i], work[i + 1]));
    }
    if (work.size() % 2 == 1) next.push_back(work.back());
    work.swap(next);
  }
  return work[0];
}

NodeRef Manager::and_all(std::span<const NodeRef> fs) {
  return reduce_list(fs, true);
}

NodeRef Manager::or_all(std::span<const NodeRef> fs) {
  return reduce_list(fs, false);
}

NodeRef Manager::at_least(std::uint32_t k, std::span<const NodeRef> fs) {
  const std::size_t n = fs.size();
  if (k == 0) return one();
  if (k > n) return zero();
  // dp[j] = "at least j of fs[i..n)"; process i from n-1 down to 0.
  // dp over j in [0, k]; dp[0] = 1.
  std::vector<NodeRef> dp(k + 1, zero());
  dp[0] = one();
  for (std::size_t idx = n; idx-- > 0;) {
    // Update in place from high j to low j: new dp[j] = f ? dp[j-1] : dp[j].
    for (std::uint32_t j = std::min<std::uint32_t>(
             k, static_cast<std::uint32_t>(n - idx));
         j >= 1; --j) {
      dp[j] = ite(fs[idx], dp[j - 1], dp[j]);
    }
  }
  return dp[k];
}

NodeRef Manager::restrict_var(NodeRef f, std::uint32_t target, bool value) {
  // Iterative memoized recursion on this single restriction.
  std::unordered_map<NodeRef, NodeRef> memo;
  struct Frame {
    NodeRef f;
    bool expanded;
  };
  std::vector<Frame> stack{{f, false}};
  while (!stack.empty()) {
    Frame& top_frame = stack.back();
    const NodeRef cur = top_frame.f;
    if (is_terminal(cur) || level(cur) > target) {
      memo[cur] = cur;
      stack.pop_back();
      continue;
    }
    if (level(cur) == target) {
      memo[cur] = value ? high(cur) : low(cur);
      stack.pop_back();
      continue;
    }
    if (!top_frame.expanded) {
      top_frame.expanded = true;
      if (!memo.count(low(cur))) stack.push_back({low(cur), false});
      if (!memo.count(high(cur))) stack.push_back({high(cur), false});
      continue;
    }
    memo[cur] = make_node(level(cur), memo.at(low(cur)), memo.at(high(cur)));
    stack.pop_back();
  }
  return memo.at(f);
}

NodeRef Manager::dual(NodeRef f) {
  // Swap terminals and swap each node's children: nodes are rebuilt bottom-up
  // so hash-consing invariants hold.
  std::unordered_map<NodeRef, NodeRef> memo;
  memo[zero()] = one();
  memo[one()] = zero();
  struct Frame {
    NodeRef f;
    bool expanded;
  };
  std::vector<Frame> stack{{f, false}};
  while (!stack.empty()) {
    Frame& top_frame = stack.back();
    const NodeRef cur = top_frame.f;
    if (memo.count(cur)) {
      stack.pop_back();
      continue;
    }
    if (!top_frame.expanded) {
      top_frame.expanded = true;
      if (!memo.count(low(cur))) stack.push_back({low(cur), false});
      if (!memo.count(high(cur))) stack.push_back({high(cur), false});
      continue;
    }
    memo[cur] = make_node(level(cur), memo.at(high(cur)), memo.at(low(cur)));
    stack.pop_back();
  }
  return memo.at(f);
}

double Manager::prob(NodeRef f, std::span<const double> p) const {
  static obs::Counter& evals = obs::counter("bdd.prob_evals");
  evals.add();
  // Bottom-up over reachable nodes; iterative to avoid deep recursion.
  std::unordered_map<NodeRef, double> memo;
  memo[zero()] = 0.0;
  memo[one()] = 1.0;
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    const NodeRef cur = stack.back();
    if (memo.count(cur)) {
      stack.pop_back();
      continue;
    }
    const NodeRef lo = low(cur);
    const NodeRef hi = high(cur);
    const bool lo_done = memo.count(lo) != 0;
    const bool hi_done = memo.count(hi) != 0;
    if (lo_done && hi_done) {
      const std::uint32_t lv = level(cur);
      detail::require(lv < p.size(),
                      "prob: probability vector does not cover variable level " +
                          std::to_string(lv));
      const double px = p[lv];
      memo[cur] = px * memo.at(hi) + (1.0 - px) * memo.at(lo);
      stack.pop_back();
    } else {
      if (!lo_done) stack.push_back(lo);
      if (!hi_done) stack.push_back(hi);
    }
  }
  return memo.at(f);
}

double Manager::birnbaum(NodeRef f, std::span<const double> p,
                         std::uint32_t target) {
  const NodeRef f1 = restrict_var(f, target, true);
  const NodeRef f0 = restrict_var(f, target, false);
  return prob(f1, p) - prob(f0, p);
}

std::size_t Manager::node_count(NodeRef f) const {
  if (is_terminal(f)) return 0;
  std::vector<NodeRef> stack{f};
  std::unordered_map<NodeRef, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeRef cur = stack.back();
    stack.pop_back();
    if (is_terminal(cur) || seen.count(cur)) continue;
    seen.emplace(cur, true);
    ++count;
    stack.push_back(low(cur));
    stack.push_back(high(cur));
  }
  return count;
}

double Manager::sat_count(NodeRef f, std::uint32_t nvars) const {
  // count(node) = number of assignments of variables below node's level.
  // Weight by 2^(gap) when jumping levels.
  std::unordered_map<NodeRef, double> memo;
  memo[zero()] = 0.0;
  memo[one()] = 1.0;

  auto level_of = [&](NodeRef n) {
    return is_terminal(n) ? nvars : level(n);
  };

  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    const NodeRef cur = stack.back();
    if (memo.count(cur)) {
      stack.pop_back();
      continue;
    }
    const NodeRef lo = low(cur);
    const NodeRef hi = high(cur);
    if (memo.count(lo) && memo.count(hi)) {
      const double cl =
          memo.at(lo) *
          std::pow(2.0, static_cast<double>(level_of(lo) - level(cur) - 1));
      const double ch =
          memo.at(hi) *
          std::pow(2.0, static_cast<double>(level_of(hi) - level(cur) - 1));
      memo[cur] = cl + ch;
      stack.pop_back();
    } else {
      if (!memo.count(lo)) stack.push_back(lo);
      if (!memo.count(hi)) stack.push_back(hi);
    }
  }
  return memo.at(f) * std::pow(2.0, static_cast<double>(level_of(f)));
}

std::vector<std::vector<std::uint32_t>> Manager::minimal_solutions(
    NodeRef f, std::size_t limit) const {
  using CutSet = std::vector<std::uint32_t>;
  using CutList = std::vector<CutSet>;

  std::unordered_map<NodeRef, CutList> memo;
  memo[zero()] = {};
  memo[one()] = {CutSet{}};

  auto subset_of = [](const CutSet& a, const CutSet& b) {
    // a, b sorted; true iff a is a subset of b.
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };

  // Post-order traversal.
  std::vector<NodeRef> order;
  {
    std::vector<std::pair<NodeRef, bool>> stack{{f, false}};
    std::unordered_map<NodeRef, bool> seen;
    while (!stack.empty()) {
      auto [cur, expanded] = stack.back();
      stack.pop_back();
      if (is_terminal(cur)) continue;
      if (expanded) {
        order.push_back(cur);
        continue;
      }
      if (seen.count(cur)) continue;
      seen.emplace(cur, true);
      stack.push_back({cur, true});
      stack.push_back({low(cur), false});
      stack.push_back({high(cur), false});
    }
  }

  for (const NodeRef cur : order) {
    const CutList& lo_cuts = memo.at(low(cur));
    const CutList& hi_cuts = memo.at(high(cur));
    CutList result = lo_cuts;  // solutions not involving this variable
    const std::uint32_t v = level(cur);
    for (const CutSet& c : hi_cuts) {
      CutSet with_v;
      with_v.reserve(c.size() + 1);
      // insert v keeping sorted order (v is the top level, hence smallest).
      with_v.push_back(v);
      with_v.insert(with_v.end(), c.begin(), c.end());
      // Minimality: drop if some low-branch solution is a subset.
      bool dominated = false;
      for (const CutSet& c0 : lo_cuts) {
        if (subset_of(c0, with_v)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) result.push_back(std::move(with_v));
    }
    if (result.size() > limit) {
      throw NumericalError("minimal_solutions: more than " +
                           std::to_string(limit) + " cut sets");
    }
    memo.emplace(cur, std::move(result));
  }

  CutList out = memo.at(f);
  std::sort(out.begin(), out.end(), [](const CutSet& a, const CutSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return out;
}

}  // namespace relkit::bdd
