// Reduced Ordered Binary Decision Diagrams (ROBDD).
//
// The tutorial's non-state-space methods (reliability block diagrams, fault
// trees, reliability graphs) all reduce to evaluating a monotone Boolean
// structure function of independent component states. RelKit compiles each
// such model into a shared ROBDD and then
//   * evaluates exact failure/success probability in one bottom-up pass
//     (linear in BDD size),
//   * computes Birnbaum importance via cofactors,
//   * extracts minimal cut sets (Rauzy-style minimal-solutions recursion).
//
// Implementation: hash-consed node table (unique table) with an ITE-based
// apply and a memoization cache. Nodes are referenced by 32-bit indices;
// index 0 is the FALSE terminal and index 1 the TRUE terminal. Variables are
// identified by their level (lower level = nearer the root); callers choose
// the ordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace relkit::bdd {

/// Handle to a BDD node owned by a Manager.
using NodeRef = std::uint32_t;

/// Hash-consing BDD manager. Not thread-safe; use one per model/thread.
class Manager {
 public:
  Manager();

  /// FALSE terminal.
  static constexpr NodeRef zero() { return 0; }
  /// TRUE terminal.
  static constexpr NodeRef one() { return 1; }
  static constexpr bool is_terminal(NodeRef f) { return f <= 1; }

  /// Single-variable function x_level.
  NodeRef var(std::uint32_t level);
  /// Negated single variable !x_level.
  NodeRef nvar(std::uint32_t level);

  /// If-then-else: f ? g : h — the universal connective.
  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  NodeRef apply_and(NodeRef a, NodeRef b) { return ite(a, b, zero()); }
  NodeRef apply_or(NodeRef a, NodeRef b) { return ite(a, one(), b); }
  NodeRef apply_not(NodeRef a) { return ite(a, zero(), one()); }
  NodeRef apply_xor(NodeRef a, NodeRef b) { return ite(a, apply_not(b), b); }

  /// AND / OR over a list (balanced reduction keeps intermediate BDDs small).
  NodeRef and_all(std::span<const NodeRef> fs);
  NodeRef or_all(std::span<const NodeRef> fs);

  /// "At least k of these variables/functions are true."
  /// Built by the standard dynamic program over (index, still-needed).
  NodeRef at_least(std::uint32_t k, std::span<const NodeRef> fs);

  /// Cofactor: f with x_level fixed to `value`.
  NodeRef restrict_var(NodeRef f, std::uint32_t level, bool value);

  /// Boolean dual g(x) = !f(!x). For a coherent success function over
  /// "up" variables, the dual read over "down" variables is the failure
  /// function, so minimal_solutions(dual(f)) yields the minimal cut sets.
  NodeRef dual(NodeRef f);

  /// P[f = 1] given independent P[x_level = 1] = p[level].
  /// p.size() must cover every level appearing in f.
  double prob(NodeRef f, std::span<const double> p) const;

  /// Birnbaum importance dP[f]/dp_level = P(f|x=1) - P(f|x=0).
  double birnbaum(NodeRef f, std::span<const double> p, std::uint32_t level);

  /// Number of distinct nodes reachable from f (terminals excluded).
  std::size_t node_count(NodeRef f) const;

  /// Number of satisfying assignments over `nvars` variables
  /// (levels 0..nvars-1), as a double to allow > 2^64.
  double sat_count(NodeRef f, std::uint32_t nvars) const;

  /// Minimal solutions (minimal cut sets when f is the system-failure
  /// function of a coherent model). Each inner vector is a sorted list of
  /// variable levels. Throws NumericalError if the count exceeds `limit`.
  std::vector<std::vector<std::uint32_t>> minimal_solutions(
      NodeRef f, std::size_t limit = 1u << 20) const;

  /// Total nodes ever allocated in this manager (terminals included).
  std::size_t size() const { return nodes_.size(); }

  /// Variable level of a node (kTerminalLevel for terminals).
  std::uint32_t level(NodeRef f) const { return nodes_[f].level; }
  NodeRef low(NodeRef f) const { return nodes_[f].low; }
  NodeRef high(NodeRef f) const { return nodes_[f].high; }

  static constexpr std::uint32_t kTerminalLevel = 0xffffffffu;

 private:
  struct Node {
    std::uint32_t level;
    NodeRef low;
    NodeRef high;
  };
  struct NodeKey {
    std::uint32_t level;
    NodeRef low, high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = k.level;
      h = h * 0x9e3779b97f4a7c15ULL + k.low;
      h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ULL + k.high;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct IteKey {
    NodeRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ULL + k.g;
      h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ULL + k.h;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  NodeRef make_node(std::uint32_t level, NodeRef low, NodeRef high);
  NodeRef reduce_list(std::span<const NodeRef> fs, bool is_and);

  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, NodeRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, NodeRef, IteKeyHash> ite_cache_;
};

}  // namespace relkit::bdd
