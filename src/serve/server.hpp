// relkit_serve's embedded HTTP server: a poll()-based event loop feeding a
// bounded admission queue that a dispatcher drains onto the process-wide
// parallel::ThreadPool.
//
// The shape is chosen for resilience, not throughput:
//
//   * Admission control: POST /solve is accepted only if the bounded queue
//     has room; otherwise the daemon sheds load with an immediate 503
//     ("overload") instead of buffering unbounded work. While draining it
//     answers 503 ("draining").
//   * Deadlines: each request's wall-clock budget is armed at ADMISSION, so
//     time spent queued counts against it; workers install it as the
//     thread's ambient deadline, and a solve that runs out returns a
//     flagged degraded response (partial result + SolveReport) rather than
//     a timeout with nothing to show.
//   * Slow-client defense: per-connection read deadlines are enforced by
//     the event loop (evicted connections are counted), writes go through
//     a poll()-bounded sender, and one request per connection keeps state
//     machines trivial.
//   * Idempotent retry: a request carrying an "id" is deduplicated against
//     the process-wide markov::SolutionCache (kResponseTag entries), so a
//     client retrying after a lost response gets the cached payload back
//     without recomputation.
//   * Clean drain: stop() stops admissions, lets queued work finish (or
//     rejects it, on a hard stop), joins every thread, and returns the
//     same per-error-class summary JSON that `relkit_cli --batch` prints.
//
// The server is also the daemon's metrics surface: /metrics serves
// Registry::to_openmetrics() (with rolling SLO gauges refreshed at scrape
// time), /healthz liveness, /readyz readiness, /statusz an in-flight
// request table plus the rolling latency numbers.
//
// Per-request observability (the tentpole of this layer): every request
// carries a 128-bit trace id — adopted from an incoming W3C `traceparent`
// header when valid, generated otherwise — echoed in `X-Relkit-Trace-Id`
// and a response `traceparent`, embedded in every /solve JSON body, and
// stamped on the structured JSONL access log line each request emits
// (including shed, evicted, and disconnected ones). Sampled requests
// additionally record a span tree serve.request -> serve.parse /
// serve.queue_wait / serve.solve / serve.write via a per-request
// obs::ThreadFilterSink (each request runs entirely on one worker thread),
// forwarded into a Chrome trace file written on shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/queue.hpp"
#include "robust/budget.hpp"
#include "serve/summary.hpp"

namespace relkit::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port via Server::port()
  /// Admission queue capacity; beyond this POST /solve sheds (503).
  std::size_t queue_capacity = 64;
  /// Max requests one dispatcher batch hands to the pool at once.
  std::size_t max_batch = 16;
  /// A connection must deliver its full request within this window or the
  /// idle sweep evicts it. <= 0 disables eviction.
  int read_timeout_ms = 5000;
  /// Bound on blocking in the response sender; a client that cannot drain
  /// its response within the window loses the connection.
  int write_timeout_ms = 5000;
  std::size_t max_header_bytes = 16u << 10;
  std::size_t max_body_bytes = 1u << 20;
  /// Default per-request wall-clock budget; requests may tighten (never
  /// extend) it via "timeout_ms". <= 0 means unlimited.
  int default_timeout_ms = 0;
  /// Whether requests may name model FILES ({"path":...}); off by default
  /// because a network peer choosing local paths is a footgun.
  bool allow_path_requests = false;
  /// Evaluation times used when a request has no "times".
  std::vector<double> default_times;
  /// Chrome trace-event file: when non-empty, sampled requests' span trees
  /// are buffered and written here on shutdown ("" = tracing off).
  std::string trace_path;
  /// Probability a request is traced when trace_path is set, clamped to
  /// [0, 1] at use.
  double trace_sample = 1.0;
  /// Structured JSONL access log path ("" = disabled).
  std::string access_log_path;
  /// Access-log size-based rotation threshold; when a line would push the
  /// file past this, it is renamed to `<path>.1` and restarted. 0 = never.
  std::size_t access_log_max_bytes = 64u << 20;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event-loop + dispatcher threads.
  /// False (with *error set) when the socket setup fails.
  bool start(std::string* error);

  /// The bound TCP port (valid after start()).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops the daemon and returns the drain summary JSON. With
  /// drain == true queued requests are still solved and answered before
  /// shutdown completes; with false they are answered 503 ("draining").
  /// Idempotent; later calls return the same summary.
  std::string stop(bool drain = true);

  /// Per-error-class accounting across the server's lifetime.
  const ErrorClassCounts& counts() const { return counts_; }

 private:
  struct Conn;
  struct PendingRequest;

  /// Everything one request accumulates for its access-log line, trace
  /// correlation, and SLO accounting.
  struct RequestLog {
    std::uint64_t seq = 0;  ///< per-process request number (1-based)
    obs::TraceId trace;
    std::string trace_hex;  ///< 32 lowercase hex chars
    bool trace_from_client = false;
    bool sampled = false;   ///< span tree recorded into the Chrome trace
    std::string method;
    std::string target;
    std::string id;         ///< request "id" field when present
    std::size_t bytes_in = 0;
    std::chrono::steady_clock::time_point started_at;
    double queue_wait_s = 0.0;
    double solve_s = 0.0;
    bool degraded = false;
    bool cache_hit = false;
    std::string error_class;  ///< "" = ok
  };

  /// One row of the /statusz in-flight table.
  struct InFlight {
    std::string trace_hex;
    std::chrono::steady_clock::time_point admitted_at;
    const char* phase = "queued";  ///< queued | parse | solve | write
    robust::Deadline deadline;
  };

  void event_loop();
  void dispatcher_loop();
  void handle_request(PendingRequest& request);
  void route(Conn& conn);
  /// The one exit path for answered requests: sends the response with the
  /// trace-id headers, records latency into the SLO windows, writes the
  /// access-log line, and retires the in-flight entry.
  void finish_response(int fd, int status, const std::string& body,
                       RequestLog& log, const char* content_type = nullptr);
  /// Access-log (and SLO) accounting for connections that never get a
  /// response: slow-client evictions and mid-request disconnects.
  void log_unanswered(Conn& conn, const char* error_class);
  void write_access_log(const RequestLog& log, int status,
                        std::size_t bytes_out, double total_s);
  void record_slo(const std::string& endpoint, const std::string& error_class,
                  double total_s);
  /// Pushes rolling p50/p95/p99/count per endpoint and per error class into
  /// `serve.slo.` gauges — called at scrape time (/metrics, /statusz).
  void refresh_slo_gauges();
  std::string statusz_body();
  void inflight_insert(const RequestLog& log, const robust::Deadline& dl);
  void inflight_phase(std::uint64_t seq, const char* phase);
  void inflight_deadline(std::uint64_t seq, const robust::Deadline& dl);
  void inflight_erase(std::uint64_t seq);
  std::string solve_response_body(const std::string& request_body,
                                  const robust::Deadline& deadline,
                                  double queued_seconds, RequestLog& log,
                                  int* status_out);

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  /// Hard-stop flag: dispatcher answers queued requests 503 instead of
  /// solving them.
  std::atomic<bool> reject_queued_{false};
  std::atomic<bool> stopped_{false};
  std::thread event_thread_;
  std::thread dispatch_thread_;
  std::unique_ptr<parallel::BoundedQueue<PendingRequest>> queue_;
  ErrorClassCounts counts_;
  std::string drain_summary_;

  std::atomic<std::uint64_t> next_seq_{1};
  /// Chrome trace destination for sampled requests (never registered with
  /// the global Tracer — per-request ThreadFilterSinks forward into it, so
  /// unsampled work costs nothing here).
  std::unique_ptr<obs::ChromeTraceSink> trace_sink_;
  std::unique_ptr<obs::RotatingFileWriter> access_log_;
  std::mutex inflight_mu_;
  std::map<std::uint64_t, InFlight> inflight_;
  std::mutex slo_mu_;
  /// Rolling latency windows keyed by endpoint (solve/metrics/other) and by
  /// error class ("ok" for successes).
  std::map<std::string, std::unique_ptr<obs::SlidingWindowHistogram>>
      slo_endpoints_;
  std::map<std::string, std::unique_ptr<obs::SlidingWindowHistogram>>
      slo_errors_;
};

}  // namespace relkit::serve
