// relkit_serve's embedded HTTP server: a poll()-based event loop feeding a
// bounded admission queue that a dispatcher drains onto the process-wide
// parallel::ThreadPool.
//
// The shape is chosen for resilience, not throughput:
//
//   * Admission control: POST /solve is accepted only if the bounded queue
//     has room; otherwise the daemon sheds load with an immediate 503
//     ("overload") instead of buffering unbounded work. While draining it
//     answers 503 ("draining").
//   * Deadlines: each request's wall-clock budget is armed at ADMISSION, so
//     time spent queued counts against it; workers install it as the
//     thread's ambient deadline, and a solve that runs out returns a
//     flagged degraded response (partial result + SolveReport) rather than
//     a timeout with nothing to show.
//   * Slow-client defense: per-connection read deadlines are enforced by
//     the event loop (evicted connections are counted), writes go through
//     a poll()-bounded sender, and one request per connection keeps state
//     machines trivial.
//   * Idempotent retry: a request carrying an "id" is deduplicated against
//     the process-wide markov::SolutionCache (kResponseTag entries), so a
//     client retrying after a lost response gets the cached payload back
//     without recomputation.
//   * Clean drain: stop() stops admissions, lets queued work finish (or
//     rejects it, on a hard stop), joins every thread, and returns the
//     same per-error-class summary JSON that `relkit_cli --batch` prints.
//
// The server is also the daemon's metrics surface: /metrics serves
// Registry::to_openmetrics(), /healthz liveness, /readyz readiness.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "parallel/queue.hpp"
#include "robust/budget.hpp"
#include "serve/summary.hpp"

namespace relkit::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port via Server::port()
  /// Admission queue capacity; beyond this POST /solve sheds (503).
  std::size_t queue_capacity = 64;
  /// Max requests one dispatcher batch hands to the pool at once.
  std::size_t max_batch = 16;
  /// A connection must deliver its full request within this window or the
  /// idle sweep evicts it. <= 0 disables eviction.
  int read_timeout_ms = 5000;
  /// Bound on blocking in the response sender; a client that cannot drain
  /// its response within the window loses the connection.
  int write_timeout_ms = 5000;
  std::size_t max_header_bytes = 16u << 10;
  std::size_t max_body_bytes = 1u << 20;
  /// Default per-request wall-clock budget; requests may tighten (never
  /// extend) it via "timeout_ms". <= 0 means unlimited.
  int default_timeout_ms = 0;
  /// Whether requests may name model FILES ({"path":...}); off by default
  /// because a network peer choosing local paths is a footgun.
  bool allow_path_requests = false;
  /// Evaluation times used when a request has no "times".
  std::vector<double> default_times;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event-loop + dispatcher threads.
  /// False (with *error set) when the socket setup fails.
  bool start(std::string* error);

  /// The bound TCP port (valid after start()).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops the daemon and returns the drain summary JSON. With
  /// drain == true queued requests are still solved and answered before
  /// shutdown completes; with false they are answered 503 ("draining").
  /// Idempotent; later calls return the same summary.
  std::string stop(bool drain = true);

  /// Per-error-class accounting across the server's lifetime.
  const ErrorClassCounts& counts() const { return counts_; }

 private:
  struct Conn;
  struct PendingRequest;

  void event_loop();
  void dispatcher_loop();
  void handle_request(PendingRequest& request);
  void route(Conn& conn);
  void respond_and_close(int fd, int status, const std::string& body,
                         const char* content_type = nullptr);
  std::string solve_response_body(const std::string& request_body,
                                  const robust::Deadline& deadline,
                                  double queued_seconds, int* status_out);

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  /// Hard-stop flag: dispatcher answers queued requests 503 instead of
  /// solving them.
  std::atomic<bool> reject_queued_{false};
  std::atomic<bool> stopped_{false};
  std::thread event_thread_;
  std::thread dispatch_thread_;
  std::unique_ptr<parallel::BoundedQueue<PendingRequest>> queue_;
  ErrorClassCounts counts_;
  std::string drain_summary_;
};

}  // namespace relkit::serve
