// Incremental HTTP/1.1 parsing and response serialization for relkit_serve.
//
// The daemon speaks just enough HTTP for a solve API and a metrics scrape:
// one request per connection, `Connection: close` on every response, no
// chunked transfer coding, bounded header and body sizes. The parser is
// incremental — feed() accepts bytes as they arrive from a non-blocking
// socket and reports kNeedMore until a full request (or a protocol error)
// is present — so a slow or hostile client can never block the event loop
// or force unbounded buffering.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace relkit::serve {

/// One parsed request: method + target + selected headers + body.
struct HttpRequest {
  std::string method;
  std::string target;
  std::size_t content_length = 0;
  /// Raw W3C `traceparent` header value when the client sent one (empty
  /// otherwise); relkit_serve adopts its trace id for the request.
  std::string traceparent;
  std::string body;
};

/// Incremental request parser with hard size limits.
class HttpRequestParser {
 public:
  enum class Status {
    kNeedMore,        // incomplete; feed more bytes
    kComplete,        // request() is valid
    kBadRequest,      // malformed request line / headers / framing (400)
    kHeadersTooLarge, // header section exceeded the limit (431)
    kBodyTooLarge,    // declared or received body exceeded the limit (413)
    kUnsupported,     // Transfer-Encoding or HTTP version we refuse (501)
  };

  HttpRequestParser(std::size_t max_header_bytes, std::size_t max_body_bytes)
      : max_header_bytes_(max_header_bytes), max_body_bytes_(max_body_bytes) {}

  /// Consumes a chunk of bytes off the wire. Returns the parse status;
  /// once a terminal status (anything but kNeedMore) is returned the
  /// parser ignores further input.
  Status feed(std::string_view chunk);

  Status status() const { return status_; }
  const HttpRequest& request() const { return request_; }

 private:
  Status parse_headers();

  std::size_t max_header_bytes_;
  std::size_t max_body_bytes_;
  Status status_ = Status::kNeedMore;
  bool headers_done_ = false;
  std::string buffer_;
  HttpRequest request_;
};

/// Serializes a one-shot response. Every response closes the connection;
/// `content_type` defaults to JSON since that is what the API speaks.
/// `extra_headers`, when non-empty, is inserted verbatim into the header
/// block and must be complete CRLF-terminated header lines (relkit_serve
/// uses it for `X-Relkit-Trace-Id` / `traceparent` echoes).
std::string http_response(int status_code, std::string_view body,
                          std::string_view content_type =
                              "application/json; charset=utf-8",
                          std::string_view extra_headers = {});

/// Reason phrase for the handful of status codes the daemon emits.
std::string_view http_reason(int status_code);

}  // namespace relkit::serve
