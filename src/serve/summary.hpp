// Per-error-class request accounting, shared by `relkit_cli --batch`
// (final summary line) and the relkit_serve drain summary, so both report
// the same taxonomy in the same JSON shape.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace relkit::serve {

/// Thread-safe tally of request outcomes by error class. Workers call
/// add() concurrently; to_json() is a snapshot (the daemon only reads it
/// after drain, the CLI after the batch barrier).
class ErrorClassCounts {
 public:
  /// Records an outcome by CLI exit class: 0 ok, 2 model, 3 numerical,
  /// 4 invalid argument, 5 deadline-exceeded-with-partial-result;
  /// anything else lands in the catch-all "error" bucket.
  void add(int exit_class) {
    switch (exit_class) {
      case 0: ok_.fetch_add(1, std::memory_order_relaxed); break;
      case 2: model_.fetch_add(1, std::memory_order_relaxed); break;
      case 3: numerical_.fetch_add(1, std::memory_order_relaxed); break;
      case 4: invalid_.fetch_add(1, std::memory_order_relaxed); break;
      case 5: deadline_.fetch_add(1, std::memory_order_relaxed); break;
      default: error_.fetch_add(1, std::memory_order_relaxed); break;
    }
  }

  /// Records a server-side outcome that has no CLI exit class.
  void add_named(std::string_view error_class) {
    if (error_class == "bad_request") {
      bad_request_.fetch_add(1, std::memory_order_relaxed);
    } else if (error_class == "overload") {
      overload_.fetch_add(1, std::memory_order_relaxed);
    } else if (error_class == "draining") {
      draining_.fetch_add(1, std::memory_order_relaxed);
    } else {
      error_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::uint64_t total() const {
    return ok_.load() + model_.load() + numerical_.load() + invalid_.load() +
           deadline_.load() + bad_request_.load() + overload_.load() +
           draining_.load() + error_.load();
  }

  std::uint64_t ok() const { return ok_.load(); }
  std::uint64_t overload() const { return overload_.load(); }
  std::uint64_t deadline() const { return deadline_.load(); }

  /// One JSON object, e.g. the final `--batch` line:
  /// {"summary":true,"models":7,"ok":5,"errors":{"model":1,...}}
  std::string to_json() const {
    std::string out = "{\"summary\":true,\"models\":";
    out += std::to_string(total());
    out += ",\"ok\":";
    out += std::to_string(ok_.load());
    out += ",\"errors\":{";
    const auto field = [&out](const char* name, std::uint64_t n,
                              bool first = false) {
      if (!first) out += ',';
      out += '"';
      out += name;
      out += "\":";
      out += std::to_string(n);
    };
    field("model", model_.load(), true);
    field("numerical", numerical_.load());
    field("invalid", invalid_.load());
    field("deadline", deadline_.load());
    field("bad_request", bad_request_.load());
    field("overload", overload_.load());
    field("draining", draining_.load());
    field("error", error_.load());
    out += "}}";
    return out;
  }

 private:
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> model_{0};
  std::atomic<std::uint64_t> numerical_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> deadline_{0};
  std::atomic<std::uint64_t> bad_request_{0};
  std::atomic<std::uint64_t> overload_{0};
  std::atomic<std::uint64_t> draining_{0};
  std::atomic<std::uint64_t> error_{0};
};

}  // namespace relkit::serve
