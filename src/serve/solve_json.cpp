#include "serve/solve_json.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "io/model_parser.hpp"
#include "obs/obs.hpp"
#include "robust/report.hpp"

namespace relkit::serve {

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

namespace {

std::string json_string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += (i ? ",\"" : "\"") + obs::json_escape(items[i]) + "\"";
  }
  out += "]";
  return out;
}

/// Compact SolveReport rendering for degraded responses: enough to tell
/// what was attempted and why it stopped, without the full trajectory.
std::string report_json(const robust::SolveReport& report) {
  std::string out = "{\"method\":\"" + obs::json_escape(report.method) +
                    "\",\"converged\":" +
                    (report.converged ? "true" : "false") +
                    ",\"iterations\":" + std::to_string(report.iterations) +
                    ",\"residual\":" + json_number(report.residual) +
                    ",\"attempts\":" + json_string_array(report.attempts) +
                    ",\"fallbacks\":" + json_string_array(report.fallbacks) +
                    ",\"warnings\":" + json_string_array(report.warnings) +
                    "}";
  return out;
}

std::string error_fields(const std::string& error_class,
                         const std::string& message) {
  return "\"ok\":false,\"error_class\":\"" + error_class + "\",\"error\":\"" +
         obs::json_escape(message) + "\"";
}

}  // namespace

SolveOutcome solve_model(const SolveSpec& spec) {
  SolveOutcome out;
  // The ambient deadline binds every nested solve below this frame,
  // including hierarchical `event ... markov` submodels solved inside the
  // parser — the only way a per-request deadline can reach them.
  robust::ScopedDeadline scoped(spec.deadline);
  const robust::ScopedSolverChoice scoped_solver(spec.solver);
  // Clear the thread-local last-report slot so the "solver" field below
  // can only describe THIS solve, never a stale one from a previous
  // request on the same worker thread.
  robust::record_last_report(robust::SolveReport{});
  try {
    const io::ParsedModel model =
        !spec.inline_text.empty() ? io::parse_model_string(spec.inline_text)
                                  : io::parse_model_file(spec.path);
    std::string kind;
    double steady = 0.0;
    std::string at = "[";
    if (model.fault_tree) {
      kind = "ftree";
      steady = model.fault_tree->top_probability_limit();
      for (std::size_t i = 0; i < spec.times.size(); ++i) {
        at += (i ? "," : "") + std::string("{\"t\":") +
              json_number(spec.times[i]) + ",\"value\":" +
              json_number(model.fault_tree->top_probability(spec.times[i])) +
              "}";
      }
    } else if (model.graph) {
      kind = "relgraph";
      steady = model.graph->reliability(-1.0);
      for (std::size_t i = 0; i < spec.times.size(); ++i) {
        at += (i ? "," : "") + std::string("{\"t\":") +
              json_number(spec.times[i]) + ",\"value\":" +
              json_number(model.graph->reliability(spec.times[i])) + "}";
      }
    } else {
      kind = "rbd";
      steady = model.rbd->availability();
      for (std::size_t i = 0; i < spec.times.size(); ++i) {
        at += (i ? "," : "") + std::string("{\"t\":") +
              json_number(spec.times[i]) + ",\"value\":" +
              json_number(model.rbd->reliability(spec.times[i])) + "}";
      }
    }
    at += "]";
    out.fields = "\"ok\":true,\"name\":\"" + obs::json_escape(model.name) +
                 "\",\"kind\":\"" + kind + "\",\"steady\":" +
                 json_number(steady) + ",\"at\":" + at;
    // Which stationary method produced the answer, when a CTMC solve ran
    // (combinatorial-only models leave the slot empty).
    if (robust::has_last_report() && !robust::last_report().method.empty()) {
      out.fields += ",\"solver\":\"" +
                    obs::json_escape(robust::last_report().method) + "\"";
    }
  } catch (const robust::ConvergenceError& e) {
    if (!scoped.effective().unlimited() && scoped.effective().expired() &&
        !e.partial_result().empty()) {
      // Degraded mode: the deadline fired mid-solve but the solver saved
      // its best iterate. Flag it clearly — a consumer must opt in to
      // trusting a partial result.
      out.exit_class = 5;
      out.error_class = "deadline";
      out.degraded = true;
      std::string partial = "[";
      const auto& p = e.partial_result();
      for (std::size_t i = 0; i < p.size(); ++i) {
        partial += (i ? "," : "") + json_number(p[i]);
      }
      partial += "]";
      out.fields = error_fields("deadline", e.what()) +
                   ",\"degraded\":true,\"partial\":" + partial +
                   ",\"report\":" + report_json(e.report());
    } else {
      out.exit_class = 3;
      out.error_class = "numerical";
      out.fields = error_fields("numerical", e.what());
    }
  } catch (const ModelError& e) {
    out.exit_class = 2;
    out.error_class = "model";
    out.fields = error_fields("model", e.what());
  } catch (const NumericalError& e) {
    out.exit_class = 3;
    out.error_class = "numerical";
    out.fields = error_fields("numerical", e.what());
  } catch (const InvalidArgument& e) {
    out.exit_class = 4;
    out.error_class = "invalid";
    out.fields = error_fields("invalid", e.what());
  } catch (const std::exception& e) {
    out.exit_class = 2;
    out.error_class = "error";
    out.fields = error_fields("error", e.what());
  }
  return out;
}

}  // namespace relkit::serve
