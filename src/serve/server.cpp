#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "markov/solution_cache.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/solve_json.hpp"

namespace relkit::serve {

namespace {

using Clock = std::chrono::steady_clock;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Sends the whole buffer, waiting (via poll) up to `timeout_ms` total for
/// socket-buffer space. False when the peer is gone or too slow — callers
/// just close the connection; there is nobody left to tell.
bool send_all(int fd, std::string_view data, int timeout_ms) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms
                                                              : 5000);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          give_up - Clock::now());
      if (left.count() <= 0) return false;
      struct pollfd pfd {fd, POLLOUT, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer reset / closed
  }
  return true;
}

std::string error_body(const std::string& error_class,
                       const std::string& message,
                       const std::string& trace_hex = {}) {
  std::string out = "{\"ok\":false,";
  if (!trace_hex.empty()) out += "\"trace_id\":\"" + trace_hex + "\",";
  out += "\"error_class\":\"" + error_class + "\",\"error\":\"" +
         obs::json_escape(message) + "\"}";
  return out;
}

std::string format_seconds6(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", s);
  return buf;
}

int status_for_exit_class(int exit_class) {
  switch (exit_class) {
    case 0: return 200;
    case 5: return 200;  // degraded response, flagged in the body
    case 2: return 400;
    case 4: return 400;
    default: return 500;
  }
}

}  // namespace

struct Server::Conn {
  int fd = -1;
  HttpRequestParser parser;
  Clock::time_point read_deadline;
  Clock::time_point accepted_at;
  std::size_t bytes_in = 0;
};

struct Server::PendingRequest {
  int fd = -1;
  std::string body;
  Clock::time_point admitted_at;
  RequestLog log;
};

Server::Server(ServerOptions options) : options_(std::move(options)) {
  queue_ = std::make_unique<parallel::BoundedQueue<PendingRequest>>(
      options_.queue_capacity);
}

Server::~Server() { stop(true); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (const int fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
    }
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (!set_nonblocking(listen_fd_)) return fail("fcntl");
  if (::pipe(wake_pipe_) != 0) return fail("pipe");
  set_nonblocking(wake_pipe_[0]);

  if (!options_.trace_path.empty()) {
    trace_sink_ = obs::ChromeTraceSink::open(options_.trace_path);
    if (trace_sink_ == nullptr) {
      return fail("trace file '" + options_.trace_path + "'");
    }
  }
  if (!options_.access_log_path.empty()) {
    access_log_ = obs::RotatingFileWriter::open(options_.access_log_path,
                                                options_.access_log_max_bytes);
    if (access_log_ == nullptr) {
      return fail("access log '" + options_.access_log_path + "'");
    }
  }

  // The daemon's whole point is its metrics surface; turn the obs layer on
  // unconditionally (the CLI only does so when asked to report).
  obs::set_enabled(true);
  obs::register_build_info();
  static obs::Gauge& ready_gauge = obs::gauge("serve.ready");
  ready_gauge.set(1.0);
  // The queue mirrors its depth into the gauge inside its own lock, so the
  // scrape can never observe a stale depth.
  queue_->bind_depth_gauge(&obs::gauge("serve.queue.depth"));

  running_.store(true, std::memory_order_release);
  event_thread_ = std::thread([this] { event_loop(); });
  dispatch_thread_ = std::thread([this] { dispatcher_loop(); });
  return true;
}

std::string Server::stop(bool drain) {
  if (stopped_.exchange(true)) return drain_summary_;
  draining_.store(true, std::memory_order_release);
  static obs::Gauge& ready_gauge = obs::gauge("serve.ready");
  ready_gauge.set(0.0);
  if (!drain) reject_queued_.store(true, std::memory_order_release);
  // Closing the queue stops admissions at the queue level and lets the
  // dispatcher drain what was already accepted; the event loop keeps
  // answering (503 draining) until the drain completes.
  queue_->close();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (event_thread_.joinable()) event_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  running_.store(false, std::memory_order_release);
  // Threads are joined: every sampled span tree has been forwarded and
  // every access-log line written — finalize both files.
  if (trace_sink_ != nullptr) trace_sink_->flush();
  if (access_log_ != nullptr) access_log_->flush();
  drain_summary_ = counts_.to_json();
  return drain_summary_;
}

void Server::finish_response(int fd, int status, const std::string& body,
                             RequestLog& log, const char* content_type) {
  const std::string extra =
      "X-Relkit-Trace-Id: " + log.trace_hex +
      "\r\ntraceparent: " + obs::make_traceparent(log.trace, log.seq) +
      "\r\n";
  const std::string response = http_response(
      status, body,
      content_type != nullptr
          ? std::string_view(content_type)
          : std::string_view("application/json; charset=utf-8"),
      extra);
  {
    obs::Span write_span("serve.write");
    write_span.set("bytes", static_cast<std::uint64_t>(response.size()));
    send_all(fd, response, options_.write_timeout_ms);
  }
  ::close(fd);
  const double total_s =
      std::chrono::duration<double>(Clock::now() - log.started_at).count();
  static obs::Histogram& latency_hist = obs::histogram("serve.latency");
  latency_hist.observe(total_s);
  const std::string endpoint = log.target == "/solve"     ? "solve"
                               : log.target == "/metrics" ? "metrics"
                                                          : "other";
  record_slo(endpoint, log.error_class.empty() ? "ok" : log.error_class,
             total_s);
  write_access_log(log, status, body.size(), total_s);
  inflight_erase(log.seq);
}

void Server::log_unanswered(Conn& conn, const char* error_class) {
  RequestLog log;
  log.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  log.started_at = conn.accepted_at;
  const HttpRequest& request = conn.parser.request();
  log.method = request.method;
  log.target = request.target;
  log.bytes_in = conn.bytes_in;
  if (!request.traceparent.empty()) {
    log.trace = obs::parse_traceparent(request.traceparent);
    log.trace_from_client = log.trace.valid();
  }
  if (!log.trace.valid()) log.trace = obs::generate_trace_id();
  log.trace_hex = obs::trace_id_hex(log.trace);
  log.error_class = error_class;
  const double total_s =
      std::chrono::duration<double>(Clock::now() - log.started_at).count();
  record_slo("other", log.error_class, total_s);
  write_access_log(log, 0, 0, total_s);
}

void Server::write_access_log(const RequestLog& log, int status,
                              std::size_t bytes_out, double total_s) {
  if (access_log_ == nullptr) return;
  std::string line =
      "{\"ts\":" +
      format_seconds6(std::chrono::duration<double>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count()) +
      ",\"trace\":\"" + log.trace_hex + "\",\"req\":" +
      std::to_string(log.seq) + ",\"id\":\"" + obs::json_escape(log.id) +
      "\",\"method\":\"" + obs::json_escape(log.method) + "\",\"path\":\"" +
      obs::json_escape(log.target) + "\",\"status\":" +
      std::to_string(status) + ",\"error_class\":\"" +
      (log.error_class.empty() ? "ok" : log.error_class) + "\",\"bytes_in\":" +
      std::to_string(log.bytes_in) + ",\"bytes_out\":" +
      std::to_string(bytes_out) + ",\"queue_wait_s\":" +
      format_seconds6(log.queue_wait_s) + ",\"solve_s\":" +
      format_seconds6(log.solve_s) + ",\"total_s\":" +
      format_seconds6(total_s) + ",\"degraded\":" +
      (log.degraded ? "true" : "false") + ",\"cache_hit\":" +
      (log.cache_hit ? "true" : "false") + "}";
  access_log_->write_line(line);
}

void Server::record_slo(const std::string& endpoint,
                        const std::string& error_class, double total_s) {
  std::lock_guard lock(slo_mu_);
  auto& ep = slo_endpoints_[endpoint];
  if (ep == nullptr) ep = std::make_unique<obs::SlidingWindowHistogram>();
  ep->observe(total_s);
  auto& ec = slo_errors_[error_class];
  if (ec == nullptr) ec = std::make_unique<obs::SlidingWindowHistogram>();
  ec->observe(total_s);
}

void Server::refresh_slo_gauges() {
  std::lock_guard lock(slo_mu_);
  const auto publish = [](const std::string& prefix,
                          const obs::SlidingWindowHistogram& window) {
    const obs::SlidingWindowHistogram::Snapshot snap = window.snapshot();
    obs::gauge(prefix + ".count").set(static_cast<double>(snap.count));
    obs::gauge(prefix + ".p50").set(snap.p50);
    obs::gauge(prefix + ".p95").set(snap.p95);
    obs::gauge(prefix + ".p99").set(snap.p99);
  };
  for (const auto& [endpoint, window] : slo_endpoints_) {
    publish("serve.slo." + endpoint, *window);
  }
  for (const auto& [error_class, window] : slo_errors_) {
    publish("serve.slo.err." + error_class, *window);
  }
}

std::string Server::statusz_body() {
  std::string out = "relkit_serve statusz\n\n";
  const Clock::time_point now = Clock::now();
  {
    std::lock_guard lock(inflight_mu_);
    out += "in-flight requests: " + std::to_string(inflight_.size()) + "\n";
    if (!inflight_.empty()) {
      out +=
          "trace                             age_s     phase   deadline_s\n";
    }
    for (const auto& [seq, entry] : inflight_) {
      const double age =
          std::chrono::duration<double>(now - entry.admitted_at).count();
      const std::string deadline =
          entry.deadline.unlimited()
              ? std::string("inf")
              : format_seconds6(entry.deadline.remaining_seconds());
      out += entry.trace_hex + "  " + format_seconds6(age) + "  " +
             entry.phase + "  " + deadline + "\n";
    }
  }
  out += "\nrolling latency SLO (window ";
  {
    std::lock_guard lock(slo_mu_);
    double window_s = 60.0;
    if (!slo_endpoints_.empty()) {
      window_s = slo_endpoints_.begin()->second->window_seconds();
    }
    out += format_seconds6(window_s) + "s)\n";
    const auto row = [&](const std::string& label,
                         const obs::SlidingWindowHistogram& window) {
      const obs::SlidingWindowHistogram::Snapshot snap = window.snapshot();
      out += label + ": count=" + std::to_string(snap.count) +
             " p50=" + format_seconds6(snap.p50) +
             " p95=" + format_seconds6(snap.p95) +
             " p99=" + format_seconds6(snap.p99) + "\n";
    };
    for (const auto& [endpoint, window] : slo_endpoints_) {
      row("endpoint " + endpoint, *window);
    }
    for (const auto& [error_class, window] : slo_errors_) {
      row("class " + error_class, *window);
    }
  }
  // Stall-watchdog state (--watchdog-ms): operators checking a wedged
  // daemon see at a glance whether the watchdog already fired and on what.
  {
    const obs::postmortem::WatchdogStatus wd =
        obs::postmortem::watchdog_status();
    out += "\nstall watchdog: ";
    if (!wd.running) {
      out += "off (start with --watchdog-ms)\n";
    } else {
      out += "on deadline_ms=" + std::to_string(wd.deadline_ms) +
             " stalls=" + std::to_string(wd.stalls) +
             " progress_age_s=" + format_seconds6(wd.progress_age_s) +
             " open_span_threads=" + std::to_string(wd.open_span_threads) +
             "\n";
      if (wd.last_stall_span[0] != '\0') {
        out += "last stall span: " + std::string(wd.last_stall_span) + "\n";
      }
    }
  }
  return out;
}

void Server::inflight_insert(const RequestLog& log,
                             const robust::Deadline& dl) {
  std::lock_guard lock(inflight_mu_);
  inflight_[log.seq] = InFlight{log.trace_hex, Clock::now(), "queued", dl};
}

void Server::inflight_phase(std::uint64_t seq, const char* phase) {
  std::lock_guard lock(inflight_mu_);
  const auto it = inflight_.find(seq);
  if (it != inflight_.end()) it->second.phase = phase;
}

void Server::inflight_deadline(std::uint64_t seq,
                               const robust::Deadline& dl) {
  std::lock_guard lock(inflight_mu_);
  const auto it = inflight_.find(seq);
  if (it != inflight_.end()) it->second.deadline = dl;
}

void Server::inflight_erase(std::uint64_t seq) {
  std::lock_guard lock(inflight_mu_);
  inflight_.erase(seq);
}

void Server::event_loop() {
  std::vector<Conn> conns;
  std::vector<struct pollfd> pfds;
  static obs::Counter& evicted_counter = obs::counter("serve.evicted");

  for (;;) {
    pfds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& conn : conns) pfds.push_back({conn.fd, POLLIN, 0});

    ::poll(pfds.data(), pfds.size(), 50);

    if (pfds[0].revents & POLLIN) {
      char buf[16];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
      if (stopped_.load(std::memory_order_acquire)) break;
    }

    // Existing connections first: pfds[2 + i] mirrors conns[i] only until
    // new accepts are appended.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < conns.size();) {
      Conn& conn = conns[i];
      bool done = false;  // fd handed off or closed; drop the entry
      const auto& pfd = pfds[2 + i];
      if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
          if (n > 0) {
            conn.bytes_in += static_cast<std::size_t>(n);
            conn.parser.feed(std::string_view(buf,
                                              static_cast<std::size_t>(n)));
            if (conn.parser.status() != HttpRequestParser::Status::kNeedMore) {
              break;
            }
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          // Peer closed (or reset) mid-request: nothing to answer, but the
          // abandoned request still gets its access-log line.
          if (conn.bytes_in > 0) log_unanswered(conn, "disconnected");
          ::close(conn.fd);
          done = true;
          break;
        }
        if (!done &&
            conn.parser.status() != HttpRequestParser::Status::kNeedMore) {
          route(conn);
          done = true;  // route() always hands off or closes the fd
        }
      }
      if (!done && now >= conn.read_deadline) {
        // Slow-client eviction: it had read_timeout_ms to deliver a full
        // request and did not. No response is owed, but the access log
        // still records the eviction with its own trace id.
        evicted_counter.add();
        log_unanswered(conn, "evicted");
        ::close(conn.fd);
        done = true;
      }
      if (done) {
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(2 + i));
      } else {
        ++i;
      }
    }

    if (pfds[1].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        conns.push_back(Conn{
            fd,
            HttpRequestParser(options_.max_header_bytes,
                              options_.max_body_bytes),
            Clock::now() + std::chrono::milliseconds(
                               options_.read_timeout_ms > 0
                                   ? options_.read_timeout_ms
                                   : 1 << 30),
            Clock::now(), 0});
      }
    }
  }

  for (const Conn& conn : conns) ::close(conn.fd);
}

void Server::route(Conn& conn) {
  static obs::Counter& bad_counter = obs::counter("serve.bad_requests");
  static obs::Counter& request_counter = obs::counter("serve.requests");
  static obs::Counter& shed_counter = obs::counter("serve.shed");

  const HttpRequest& request = conn.parser.request();

  // Every routed request — protocol errors included — gets a trace id:
  // adopted from a valid incoming traceparent, minted otherwise.
  RequestLog log;
  log.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  log.started_at = Clock::now();
  log.method = request.method;
  log.target = request.target;
  log.bytes_in = conn.bytes_in;
  if (!request.traceparent.empty()) {
    log.trace = obs::parse_traceparent(request.traceparent);
    log.trace_from_client = log.trace.valid();
  }
  if (!log.trace.valid()) log.trace = obs::generate_trace_id();
  log.trace_hex = obs::trace_id_hex(log.trace);
  log.sampled =
      trace_sink_ != nullptr && obs::sample_trace(options_.trace_sample);

  const auto protocol_error = [&](int status, const std::string& message) {
    bad_counter.add();
    counts_.add_named("bad_request");
    log.error_class = "bad_request";
    finish_response(conn.fd, status,
                    error_body("bad_request", message, log.trace_hex), log);
  };

  using Status = HttpRequestParser::Status;
  switch (conn.parser.status()) {
    case Status::kBadRequest:
      protocol_error(400, "malformed HTTP request");
      return;
    case Status::kHeadersTooLarge:
      protocol_error(431, "headers too large");
      return;
    case Status::kBodyTooLarge:
      protocol_error(413, "body too large");
      return;
    case Status::kUnsupported:
      protocol_error(501, "unsupported HTTP version or transfer coding");
      return;
    case Status::kNeedMore:
    case Status::kComplete:
      break;
  }

  if (request.method == "GET" && request.target == "/healthz") {
    finish_response(conn.fd, 200, "{\"ok\":true}", log);
    return;
  }
  if (request.method == "GET" && request.target == "/readyz") {
    if (draining_.load(std::memory_order_acquire)) {
      log.error_class = "draining";
      finish_response(conn.fd, 503,
                      "{\"ready\":false,\"error_class\":\"draining\"}", log);
    } else {
      finish_response(conn.fd, 200, "{\"ready\":true}", log);
    }
    return;
  }
  if (request.method == "GET" && request.target == "/metrics") {
    refresh_slo_gauges();
    obs::refresh_process_gauges();
    finish_response(conn.fd, 200, obs::Registry::instance().to_openmetrics(),
                    log, obs::kOpenMetricsContentType);
    return;
  }
  if (request.method == "GET" && request.target == "/statusz") {
    refresh_slo_gauges();
    finish_response(conn.fd, 200, statusz_body(), log,
                    "text/plain; charset=utf-8");
    return;
  }
  if (request.target == "/solve") {
    if (request.method != "POST") {
      protocol_error(405, "/solve expects POST");
      return;
    }
    request_counter.add();
    if (draining_.load(std::memory_order_acquire)) {
      counts_.add_named("draining");
      log.error_class = "draining";
      finish_response(conn.fd, 503,
                      error_body("draining", "server is draining",
                                 log.trace_hex),
                      log);
      return;
    }
    robust::Deadline admission_deadline;
    if (options_.default_timeout_ms > 0) {
      admission_deadline = robust::Deadline::after_seconds(
          options_.default_timeout_ms / 1000.0);
    }
    inflight_insert(log, admission_deadline);
    PendingRequest pending{conn.fd, request.body, Clock::now(), log};
    if (!queue_->try_push(std::move(pending))) {
      // Admission control: the queue is the only buffer, and it is full.
      // Shed immediately — a client deserves a fast 503 over an unbounded
      // wait.
      shed_counter.add();
      counts_.add_named("overload");
      log.error_class = "overload";
      finish_response(conn.fd, 503,
                      error_body("overload", "solve queue is full",
                                 log.trace_hex),
                      log);
      return;
    }
    return;  // fd ownership moved into the queue
  }

  protocol_error(404, "unknown endpoint '" + request.target + "'");
}

void Server::dispatcher_loop() {
  for (;;) {
    std::vector<PendingRequest> batch = queue_->pop_batch(options_.max_batch);
    if (batch.empty()) break;  // closed and fully drained
    if (reject_queued_.load(std::memory_order_acquire)) {
      for (PendingRequest& request : batch) {
        counts_.add_named("draining");
        request.log.error_class = "draining";
        finish_response(request.fd, 503,
                        error_body("draining",
                                   "server stopped before this request ran",
                                   request.log.trace_hex),
                        request.log);
      }
      continue;
    }
    parallel::global_pool().for_chunks(
        batch.size(), 1,
        [&](std::size_t begin, std::size_t) { handle_request(batch[begin]); });
  }
}

void Server::handle_request(PendingRequest& request) {
  static obs::Counter& error_counter = obs::counter("serve.internal_errors");
  RequestLog& log = request.log;
  auto& injector = testing::FaultInjector::instance();
  // Chaos hook: an injected positive delay stalls this worker, letting
  // tests saturate the admission queue deterministically. The stall counts
  // as queue wait (it is time the request spent not being solved).
  const double delay_ms = injector.tap("serve.worker.delay_ms", 0.0);
  if (delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(delay_ms)));
  }

  // Each request runs entirely on this worker thread, so a per-request
  // thread filter sink collects exactly its span tree (solver-internal
  // spans included) for the Chrome trace.
  obs::Tracer& tracer = obs::Tracer::instance();
  std::shared_ptr<obs::ThreadFilterSink> collector;
  if (log.sampled && trace_sink_ != nullptr) {
    collector =
        std::make_shared<obs::ThreadFilterSink>(tracer.thread_index());
    tracer.add_sink(collector);
  }

  const double queued =
      std::chrono::duration<double>(Clock::now() - request.admitted_at)
          .count();
  log.queue_wait_s = queued;

  int status = 500;
  std::string body;
  {
    obs::Span request_span("serve.request");
    request_span.set("trace_id", log.trace_hex);
    request_span.set("target", log.target);
    if (request_span.active()) {
      // The queue wait happened before this thread ever saw the request;
      // emit it as a synthetic child span backdated to admission.
      obs::SpanRecord queue_wait;
      queue_wait.id = tracer.next_id();
      queue_wait.parent = request_span.id();
      queue_wait.depth = 1;
      queue_wait.thread = tracer.thread_index();
      queue_wait.name = "serve.queue_wait";
      queue_wait.start_s = tracer.now_s() - queued;
      queue_wait.wall_s = queued;
      tracer.emit(queue_wait);
    }
    try {
      // Deadlines are measured from ADMISSION, so queue wait counts
      // against the request's budget.
      robust::Deadline deadline;
      if (options_.default_timeout_ms > 0) {
        deadline = robust::Deadline::after_seconds(
            options_.default_timeout_ms / 1000.0 - queued);
      }
      body = solve_response_body(request.body, deadline, queued, log,
                                 &status);
    } catch (const std::exception& e) {
      // The solve core classifies everything it expects; reaching this
      // handler means a bug, but the daemon still answers and survives.
      error_counter.add();
      counts_.add_named("error");
      status = 500;
      log.error_class = "error";
      body = error_body("error", e.what(), log.trace_hex);
    } catch (...) {
      error_counter.add();
      counts_.add_named("error");
      status = 500;
      log.error_class = "error";
      body = error_body("error", "unknown internal error", log.trace_hex);
    }
    inflight_phase(log.seq, "write");
    // Inside the request span so serve.write nests under serve.request.
    finish_response(request.fd, status, body, log);
  }

  if (collector != nullptr) {
    tracer.remove_sink(collector);
    for (const obs::SpanRecord& record : collector->take()) {
      trace_sink_->on_span(record);
    }
  }
}

std::string Server::solve_response_body(const std::string& request_body,
                                        const robust::Deadline& deadline,
                                        double queued_seconds,
                                        RequestLog& log, int* status_out) {
  static obs::Counter& bad_counter = obs::counter("serve.bad_requests");
  static obs::Counter& dedup_counter = obs::counter("serve.deduped");
  static obs::Counter& degraded_counter = obs::counter("serve.degraded");
  auto& injector = testing::FaultInjector::instance();
  auto& cache = markov::SolutionCache::instance();

  inflight_phase(log.seq, "parse");
  // Scoped span over JSON parsing + request validation; .reset() closes it
  // before the solve, and early error returns close it on unwind.
  std::optional<obs::Span> parse_span;
  parse_span.emplace("serve.parse");

  const std::string trace_field =
      "\"trace_id\":\"" + log.trace_hex + "\",";

  const auto bad_request = [&](const std::string& message) {
    bad_counter.add();
    counts_.add_named("bad_request");
    log.error_class = "bad_request";
    *status_out = 400;
    return error_body("bad_request", message, log.trace_hex);
  };

  const JsonParseResult parsed = parse_json(request_body);
  if (!parsed.ok) {
    return bad_request("invalid JSON at byte " +
                       std::to_string(parsed.error_offset) + ": " +
                       parsed.error);
  }
  if (!parsed.value.is_object()) {
    return bad_request("request must be a JSON object");
  }

  std::string id;
  if (const JsonValue* v = parsed.value.get("id")) {
    if (!v->is_string()) return bad_request("\"id\" must be a string");
    id = v->as_string();
    log.id = id;
  }
  SolveSpec spec;
  if (const JsonValue* v = parsed.value.get("model")) {
    if (!v->is_string()) return bad_request("\"model\" must be a string");
    spec.inline_text = v->as_string();
  }
  if (const JsonValue* v = parsed.value.get("path")) {
    if (!v->is_string()) return bad_request("\"path\" must be a string");
    if (!options_.allow_path_requests) {
      return bad_request("path requests are disabled (--allow-paths)");
    }
    spec.path = v->as_string();
  }
  if (spec.inline_text.empty() && spec.path.empty()) {
    return bad_request("request needs \"model\" (inline source) or \"path\"");
  }
  spec.times = options_.default_times;
  if (const JsonValue* v = parsed.value.get("times")) {
    if (!v->is_array()) return bad_request("\"times\" must be an array");
    spec.times.clear();
    for (const JsonValue& t : v->as_array()) {
      if (!t.is_number()) return bad_request("\"times\" entries must be numbers");
      spec.times.push_back(t.as_number());
    }
  }
  if (const JsonValue* v = parsed.value.get("solver")) {
    if (!v->is_string() ||
        !robust::parse_solver_choice(v->as_string(), spec.solver)) {
      return bad_request(
          "\"solver\" must be one of auto, gth, sor, bicgstab, power, ad");
    }
  }
  spec.deadline = deadline;
  if (const JsonValue* v = parsed.value.get("timeout_ms")) {
    if (!v->is_number() || v->as_number() <= 0) {
      return bad_request("\"timeout_ms\" must be a positive number");
    }
    // Also admission-relative: time already spent queued counts.
    spec.deadline = robust::Deadline::earliest(
        spec.deadline,
        robust::Deadline::after_seconds(v->as_number() / 1000.0 -
                                        queued_seconds));
  }
  parse_span.reset();
  inflight_deadline(log.seq, spec.deadline);
  inflight_phase(log.seq, "solve");

  // Chaos hook: a whole-request injected failure, independent of the model.
  if (injector.should_fail("serve.solve")) {
    counts_.add(3);
    log.error_class = "numerical";
    *status_out = 500;
    return error_body("numerical", "injected failure: serve.solve",
                      log.trace_hex);
  }

  const auto id_fields = [&](bool cached) {
    if (id.empty()) return std::string();
    return "\"id\":\"" + obs::json_escape(id) + "\",\"cached\":" +
           (cached ? "true," : "false,");
  };

  // Idempotent retry: a request id maps to its full successful response.
  // Like every cache interaction, this is bypassed while the fault
  // injector is armed — injected faults are invisible to the key.
  const bool dedup = !id.empty() && cache.enabled() && !injector.active();
  if (dedup) {
    markov::CacheKey key;
    key.add(markov::SolutionCache::kResponseTag);
    key.add(std::string_view(id));
    if (const auto hit = cache.lookup(key)) {
      dedup_counter.add();
      counts_.add(0);
      log.cache_hit = true;
      *status_out = 200;
      return "{" + trace_field + id_fields(true) + hit->payload + "}";
    }
  }

  const auto solve_started = Clock::now();
  SolveOutcome outcome;
  {
    obs::Span solve_span("serve.solve");
    outcome = solve_model(spec);
    solve_span.set("exit_class", outcome.exit_class);
    solve_span.set("degraded", outcome.degraded);
  }
  log.solve_s =
      std::chrono::duration<double>(Clock::now() - solve_started).count();
  log.error_class = outcome.error_class;
  log.degraded = outcome.degraded;
  counts_.add(outcome.exit_class);
  if (outcome.degraded) degraded_counter.add();
  *status_out = status_for_exit_class(outcome.exit_class);

  // Only complete successes become idempotency records: a degraded or
  // failed solve must re-run on retry, never be replayed from cache.
  if (dedup && outcome.exit_class == 0 && !injector.active()) {
    markov::CacheKey key;
    key.add(markov::SolutionCache::kResponseTag);
    key.add(std::string_view(id));
    cache.insert(std::move(key),
                 markov::SolutionCache::Entry{{}, {}, outcome.fields});
  }
  return "{" + trace_field + id_fields(false) + outcome.fields + "}";
}

}  // namespace relkit::serve
