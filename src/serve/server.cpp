#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "markov/solution_cache.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/solve_json.hpp"

namespace relkit::serve {

namespace {

using Clock = std::chrono::steady_clock;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Sends the whole buffer, waiting (via poll) up to `timeout_ms` total for
/// socket-buffer space. False when the peer is gone or too slow — callers
/// just close the connection; there is nobody left to tell.
bool send_all(int fd, std::string_view data, int timeout_ms) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms
                                                              : 5000);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          give_up - Clock::now());
      if (left.count() <= 0) return false;
      struct pollfd pfd {fd, POLLOUT, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer reset / closed
  }
  return true;
}

std::string error_body(const std::string& error_class,
                       const std::string& message) {
  return "{\"ok\":false,\"error_class\":\"" + error_class + "\",\"error\":\"" +
         obs::json_escape(message) + "\"}";
}

int status_for_exit_class(int exit_class) {
  switch (exit_class) {
    case 0: return 200;
    case 5: return 200;  // degraded response, flagged in the body
    case 2: return 400;
    case 4: return 400;
    default: return 500;
  }
}

}  // namespace

struct Server::Conn {
  int fd = -1;
  HttpRequestParser parser;
  Clock::time_point read_deadline;
};

struct Server::PendingRequest {
  int fd = -1;
  std::string body;
  Clock::time_point admitted_at;
};

Server::Server(ServerOptions options) : options_(std::move(options)) {
  queue_ = std::make_unique<parallel::BoundedQueue<PendingRequest>>(
      options_.queue_capacity);
}

Server::~Server() { stop(true); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (const int fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
    }
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (!set_nonblocking(listen_fd_)) return fail("fcntl");
  if (::pipe(wake_pipe_) != 0) return fail("pipe");
  set_nonblocking(wake_pipe_[0]);

  // The daemon's whole point is its metrics surface; turn the obs layer on
  // unconditionally (the CLI only does so when asked to report).
  obs::set_enabled(true);
  static obs::Gauge& ready_gauge = obs::gauge("serve.ready");
  ready_gauge.set(1.0);

  running_.store(true, std::memory_order_release);
  event_thread_ = std::thread([this] { event_loop(); });
  dispatch_thread_ = std::thread([this] { dispatcher_loop(); });
  return true;
}

std::string Server::stop(bool drain) {
  if (stopped_.exchange(true)) return drain_summary_;
  draining_.store(true, std::memory_order_release);
  static obs::Gauge& ready_gauge = obs::gauge("serve.ready");
  ready_gauge.set(0.0);
  if (!drain) reject_queued_.store(true, std::memory_order_release);
  // Closing the queue stops admissions at the queue level and lets the
  // dispatcher drain what was already accepted; the event loop keeps
  // answering (503 draining) until the drain completes.
  queue_->close();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (event_thread_.joinable()) event_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  running_.store(false, std::memory_order_release);
  drain_summary_ = counts_.to_json();
  return drain_summary_;
}

void Server::respond_and_close(int fd, int status, const std::string& body,
                               const char* content_type) {
  const std::string response =
      content_type != nullptr
          ? http_response(status, body, content_type)
          : http_response(status, body);
  send_all(fd, response, options_.write_timeout_ms);
  ::close(fd);
}

void Server::event_loop() {
  std::vector<Conn> conns;
  std::vector<struct pollfd> pfds;
  static obs::Counter& evicted_counter = obs::counter("serve.evicted");

  for (;;) {
    pfds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& conn : conns) pfds.push_back({conn.fd, POLLIN, 0});

    ::poll(pfds.data(), pfds.size(), 50);

    if (pfds[0].revents & POLLIN) {
      char buf[16];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
      if (stopped_.load(std::memory_order_acquire)) break;
    }

    // Existing connections first: pfds[2 + i] mirrors conns[i] only until
    // new accepts are appended.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < conns.size();) {
      Conn& conn = conns[i];
      bool done = false;  // fd handed off or closed; drop the entry
      const auto& pfd = pfds[2 + i];
      if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
          if (n > 0) {
            conn.parser.feed(std::string_view(buf,
                                              static_cast<std::size_t>(n)));
            if (conn.parser.status() != HttpRequestParser::Status::kNeedMore) {
              break;
            }
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          // Peer closed (or reset) mid-request: nothing to answer.
          ::close(conn.fd);
          done = true;
          break;
        }
        if (!done &&
            conn.parser.status() != HttpRequestParser::Status::kNeedMore) {
          route(conn);
          done = true;  // route() always hands off or closes the fd
        }
      }
      if (!done && now >= conn.read_deadline) {
        // Slow-client eviction: it had read_timeout_ms to deliver a full
        // request and did not.
        evicted_counter.add();
        ::close(conn.fd);
        done = true;
      }
      if (done) {
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(2 + i));
      } else {
        ++i;
      }
    }

    if (pfds[1].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        conns.push_back(Conn{
            fd,
            HttpRequestParser(options_.max_header_bytes,
                              options_.max_body_bytes),
            Clock::now() + std::chrono::milliseconds(
                               options_.read_timeout_ms > 0
                                   ? options_.read_timeout_ms
                                   : 1 << 30)});
      }
    }
  }

  for (const Conn& conn : conns) ::close(conn.fd);
}

void Server::route(Conn& conn) {
  static obs::Counter& bad_counter = obs::counter("serve.bad_requests");
  static obs::Counter& request_counter = obs::counter("serve.requests");
  static obs::Counter& shed_counter = obs::counter("serve.shed");
  static obs::Gauge& depth_gauge = obs::gauge("serve.queue.depth");

  using Status = HttpRequestParser::Status;
  switch (conn.parser.status()) {
    case Status::kBadRequest:
      bad_counter.add();
      counts_.add_named("bad_request");
      respond_and_close(conn.fd, 400,
                        error_body("bad_request", "malformed HTTP request"));
      return;
    case Status::kHeadersTooLarge:
      bad_counter.add();
      counts_.add_named("bad_request");
      respond_and_close(conn.fd, 431,
                        error_body("bad_request", "headers too large"));
      return;
    case Status::kBodyTooLarge:
      bad_counter.add();
      counts_.add_named("bad_request");
      respond_and_close(conn.fd, 413,
                        error_body("bad_request", "body too large"));
      return;
    case Status::kUnsupported:
      bad_counter.add();
      counts_.add_named("bad_request");
      respond_and_close(
          conn.fd, 501,
          error_body("bad_request",
                     "unsupported HTTP version or transfer coding"));
      return;
    case Status::kNeedMore:
    case Status::kComplete:
      break;
  }

  const HttpRequest& request = conn.parser.request();
  if (request.method == "GET" && request.target == "/healthz") {
    respond_and_close(conn.fd, 200, "{\"ok\":true}");
    return;
  }
  if (request.method == "GET" && request.target == "/readyz") {
    if (draining_.load(std::memory_order_acquire)) {
      respond_and_close(conn.fd, 503,
                        "{\"ready\":false,\"error_class\":\"draining\"}");
    } else {
      respond_and_close(conn.fd, 200, "{\"ready\":true}");
    }
    return;
  }
  if (request.method == "GET" && request.target == "/metrics") {
    respond_and_close(conn.fd, 200,
                      obs::Registry::instance().to_openmetrics(),
                      obs::kOpenMetricsContentType);
    return;
  }
  if (request.target == "/solve") {
    if (request.method != "POST") {
      bad_counter.add();
      counts_.add_named("bad_request");
      respond_and_close(conn.fd, 405,
                        error_body("bad_request", "/solve expects POST"));
      return;
    }
    request_counter.add();
    if (draining_.load(std::memory_order_acquire)) {
      counts_.add_named("draining");
      respond_and_close(conn.fd, 503,
                        error_body("draining", "server is draining"));
      return;
    }
    PendingRequest pending{conn.fd, request.body, Clock::now()};
    if (!queue_->try_push(std::move(pending))) {
      // Admission control: the queue is the only buffer, and it is full.
      // Shed immediately — a client deserves a fast 503 over an unbounded
      // wait.
      shed_counter.add();
      counts_.add_named("overload");
      respond_and_close(conn.fd, 503,
                        error_body("overload", "solve queue is full"));
      return;
    }
    depth_gauge.set(static_cast<double>(queue_->size()));
    return;  // fd ownership moved into the queue
  }

  bad_counter.add();
  counts_.add_named("bad_request");
  respond_and_close(conn.fd, 404,
                    error_body("bad_request",
                               "unknown endpoint '" + request.target + "'"));
}

void Server::dispatcher_loop() {
  static obs::Gauge& depth_gauge = obs::gauge("serve.queue.depth");
  for (;;) {
    std::vector<PendingRequest> batch = queue_->pop_batch(options_.max_batch);
    if (batch.empty()) break;  // closed and fully drained
    depth_gauge.set(static_cast<double>(queue_->size()));
    if (reject_queued_.load(std::memory_order_acquire)) {
      for (PendingRequest& request : batch) {
        counts_.add_named("draining");
        respond_and_close(request.fd, 503,
                          error_body("draining",
                                     "server stopped before this request "
                                     "ran"));
      }
      continue;
    }
    parallel::global_pool().for_chunks(
        batch.size(), 1,
        [&](std::size_t begin, std::size_t) { handle_request(batch[begin]); });
  }
}

void Server::handle_request(PendingRequest& request) {
  static obs::Counter& error_counter = obs::counter("serve.internal_errors");
  obs::Span span("serve.solve");
  auto& injector = testing::FaultInjector::instance();
  // Chaos hook: an injected positive delay stalls this worker, letting
  // tests saturate the admission queue deterministically.
  const double delay_ms = injector.tap("serve.worker.delay_ms", 0.0);
  if (delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(delay_ms)));
  }

  int status = 500;
  std::string body;
  try {
    // Deadlines are measured from ADMISSION, so queue wait counts against
    // the request's budget.
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - request.admitted_at)
            .count();
    robust::Deadline deadline;
    if (options_.default_timeout_ms > 0) {
      deadline = robust::Deadline::after_seconds(
          options_.default_timeout_ms / 1000.0 - elapsed);
    }
    body = solve_response_body(request.body, deadline, elapsed, &status);
  } catch (const std::exception& e) {
    // The solve core classifies everything it expects; reaching this
    // handler means a bug, but the daemon still answers and survives.
    error_counter.add();
    counts_.add_named("error");
    status = 500;
    body = error_body("error", e.what());
  } catch (...) {
    error_counter.add();
    counts_.add_named("error");
    status = 500;
    body = error_body("error", "unknown internal error");
  }
  respond_and_close(request.fd, status, body);
}

std::string Server::solve_response_body(const std::string& request_body,
                                        const robust::Deadline& deadline,
                                        double queued_seconds,
                                        int* status_out) {
  static obs::Counter& bad_counter = obs::counter("serve.bad_requests");
  static obs::Counter& dedup_counter = obs::counter("serve.deduped");
  static obs::Counter& degraded_counter = obs::counter("serve.degraded");
  auto& injector = testing::FaultInjector::instance();
  auto& cache = markov::SolutionCache::instance();

  const auto bad_request = [&](const std::string& message) {
    bad_counter.add();
    counts_.add_named("bad_request");
    *status_out = 400;
    return error_body("bad_request", message);
  };

  const JsonParseResult parsed = parse_json(request_body);
  if (!parsed.ok) {
    return bad_request("invalid JSON at byte " +
                       std::to_string(parsed.error_offset) + ": " +
                       parsed.error);
  }
  if (!parsed.value.is_object()) {
    return bad_request("request must be a JSON object");
  }

  std::string id;
  if (const JsonValue* v = parsed.value.get("id")) {
    if (!v->is_string()) return bad_request("\"id\" must be a string");
    id = v->as_string();
  }
  SolveSpec spec;
  if (const JsonValue* v = parsed.value.get("model")) {
    if (!v->is_string()) return bad_request("\"model\" must be a string");
    spec.inline_text = v->as_string();
  }
  if (const JsonValue* v = parsed.value.get("path")) {
    if (!v->is_string()) return bad_request("\"path\" must be a string");
    if (!options_.allow_path_requests) {
      return bad_request("path requests are disabled (--allow-paths)");
    }
    spec.path = v->as_string();
  }
  if (spec.inline_text.empty() && spec.path.empty()) {
    return bad_request("request needs \"model\" (inline source) or \"path\"");
  }
  spec.times = options_.default_times;
  if (const JsonValue* v = parsed.value.get("times")) {
    if (!v->is_array()) return bad_request("\"times\" must be an array");
    spec.times.clear();
    for (const JsonValue& t : v->as_array()) {
      if (!t.is_number()) return bad_request("\"times\" entries must be numbers");
      spec.times.push_back(t.as_number());
    }
  }
  spec.deadline = deadline;
  if (const JsonValue* v = parsed.value.get("timeout_ms")) {
    if (!v->is_number() || v->as_number() <= 0) {
      return bad_request("\"timeout_ms\" must be a positive number");
    }
    // Also admission-relative: time already spent queued counts.
    spec.deadline = robust::Deadline::earliest(
        spec.deadline,
        robust::Deadline::after_seconds(v->as_number() / 1000.0 -
                                        queued_seconds));
  }

  // Chaos hook: a whole-request injected failure, independent of the model.
  if (injector.should_fail("serve.solve")) {
    counts_.add(3);
    *status_out = 500;
    return error_body("numerical", "injected failure: serve.solve");
  }

  const auto id_fields = [&](bool cached) {
    if (id.empty()) return std::string();
    return "\"id\":\"" + obs::json_escape(id) + "\",\"cached\":" +
           (cached ? "true," : "false,");
  };

  // Idempotent retry: a request id maps to its full successful response.
  // Like every cache interaction, this is bypassed while the fault
  // injector is armed — injected faults are invisible to the key.
  const bool dedup = !id.empty() && cache.enabled() && !injector.active();
  if (dedup) {
    markov::CacheKey key;
    key.add(markov::SolutionCache::kResponseTag);
    key.add(std::string_view(id));
    if (const auto hit = cache.lookup(key)) {
      dedup_counter.add();
      counts_.add(0);
      *status_out = 200;
      return "{" + id_fields(true) + hit->payload + "}";
    }
  }

  const SolveOutcome outcome = solve_model(spec);
  counts_.add(outcome.exit_class);
  if (outcome.degraded) degraded_counter.add();
  *status_out = status_for_exit_class(outcome.exit_class);

  // Only complete successes become idempotency records: a degraded or
  // failed solve must re-run on retry, never be replayed from cache.
  if (dedup && outcome.exit_class == 0 && !injector.active()) {
    markov::CacheKey key;
    key.add(markov::SolutionCache::kResponseTag);
    key.add(std::string_view(id));
    cache.insert(std::move(key),
                 markov::SolutionCache::Entry{{}, {}, outcome.fields});
  }
  return "{" + id_fields(false) + outcome.fields + "}";
}

}  // namespace relkit::serve
