#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace relkit::serve {

namespace {

/// Case-insensitive ASCII comparison for header names.
bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

HttpRequestParser::Status HttpRequestParser::feed(std::string_view chunk) {
  if (status_ != Status::kNeedMore) return status_;

  if (!headers_done_) {
    buffer_.append(chunk);
    const std::size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer_.size() > max_header_bytes_) {
        status_ = Status::kHeadersTooLarge;
      }
      return status_;
    }
    if (end + 4 > max_header_bytes_) {
      status_ = Status::kHeadersTooLarge;
      return status_;
    }
    status_ = parse_headers();
    if (status_ != Status::kNeedMore) return status_;
    headers_done_ = true;
    // Whatever followed the header terminator is body bytes.
    request_.body = buffer_.substr(end + 4);
    buffer_.clear();
  } else {
    request_.body.append(chunk);
  }

  if (request_.body.size() > request_.content_length ||
      request_.content_length > max_body_bytes_) {
    status_ = Status::kBodyTooLarge;
    return status_;
  }
  if (request_.body.size() == request_.content_length) {
    status_ = Status::kComplete;
  }
  return status_;
}

HttpRequestParser::Status HttpRequestParser::parse_headers() {
  const std::size_t line_end = buffer_.find("\r\n");
  std::string_view request_line(buffer_.data(), line_end);

  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) return Status::kBadRequest;
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return Status::kBadRequest;
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = request_line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty()) {
    return Status::kBadRequest;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::kUnsupported;
  }

  bool have_length = false;
  std::size_t pos = line_end + 2;
  const std::size_t headers_end = buffer_.find("\r\n\r\n");
  while (pos < headers_end + 2) {
    const std::size_t eol = buffer_.find("\r\n", pos);
    std::string_view line(buffer_.data() + pos, eol - pos);
    if (line.empty()) break;
    pos = eol + 2;

    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return Status::kBadRequest;
    const std::string_view name = trim(line.substr(0, colon));
    const std::string_view value = trim(line.substr(colon + 1));
    if (iequals(name, "transfer-encoding")) {
      // Chunked (or any) transfer coding is refused: framing must be a
      // plain Content-Length so body limits are enforceable up front.
      return Status::kUnsupported;
    }
    if (iequals(name, "traceparent")) {
      // Kept raw; parsing/validation is the server's concern (an invalid
      // value is not a protocol error — the id is simply regenerated).
      request_.traceparent = std::string(value);
    }
    if (iequals(name, "content-length")) {
      if (have_length || value.empty()) return Status::kBadRequest;
      std::size_t length = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') return Status::kBadRequest;
        if (length > (max_body_bytes_ + 9) / 10) return Status::kBodyTooLarge;
        length = length * 10 + static_cast<std::size_t>(c - '0');
      }
      request_.content_length = length;
      have_length = true;
    }
  }
  if (request_.content_length > max_body_bytes_) return Status::kBodyTooLarge;
  return Status::kNeedMore;
}

std::string_view http_reason(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string http_response(int status_code, std::string_view body,
                          std::string_view content_type,
                          std::string_view extra_headers) {
  std::string out;
  out.reserve(body.size() + extra_headers.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status_code);
  out += ' ';
  out += http_reason(status_code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace relkit::serve
