// The shared solve core behind `relkit_cli --batch` lines and relkit_serve
// responses: parse one model (from a file or inline text), solve it under
// an optional wall-clock deadline, and classify the outcome into the CLI's
// exit-code taxonomy — so a served solve and a CLI solve of the same model
// produce byte-identical result fields.
#pragma once

#include <string>
#include <vector>

#include "robust/budget.hpp"
#include "robust/robust.hpp"

namespace relkit::serve {

/// What to solve. Exactly one of `path` / `inline_text` should be set;
/// `inline_text` wins when both are.
struct SolveSpec {
  std::string path;         ///< model file to parse (CLI batch, gated server)
  std::string inline_text;  ///< model source text (server requests)
  std::vector<double> times;
  /// Per-request deadline, installed as the thread's ambient deadline for
  /// the duration of the solve so nested CTMC solves inherit it.
  robust::Deadline deadline;
  /// Forced stationary solver, installed as the thread's ambient solver
  /// choice (ScopedSolverChoice) for the duration of the solve. kAuto =
  /// the verified fallback chain.
  robust::SolverChoice solver = robust::SolverChoice::kAuto;
};

/// Classified outcome. `fields` is the inside of a JSON object (starting
/// at `"ok":...`, no surrounding braces) so callers can prepend their own
/// correlation fields (batch index, request id) and append extras
/// (profile) before closing the object.
struct SolveOutcome {
  /// CLI exit class: 0 ok, 2 model, 3 numerical, 4 invalid argument,
  /// 5 deadline-exceeded-with-partial-result.
  int exit_class = 0;
  /// "", "model", "numerical", "invalid", "deadline", or "error".
  std::string error_class;
  /// True for the deadline-exceeded case: the response carries a partial
  /// result and diagnostics rather than a full answer.
  bool degraded = false;
  std::string fields;
};

/// Formats a double the way every RelKit JSON surface does (%.12g).
std::string json_number(double v);

/// Parses and solves one model; never throws. Exceptions from parsing and
/// solving are folded into the outcome's error class; a ConvergenceError
/// whose deadline expired with a usable partial result becomes the
/// degraded "deadline" class (exit 5) carrying `"partial"` and `"report"`
/// fields instead of being lumped in with hard numerical failures.
SolveOutcome solve_model(const SolveSpec& spec);

}  // namespace relkit::serve
