#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace relkit::serve {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Cursor over the input; fail() records the first error and poisons the
/// parse so callers can bail without exceptions.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t max_depth;
  std::string error;
  std::size_t error_offset = 0;

  bool failed() const { return !error.empty(); }

  JsonValue fail(const std::string& message) {
    if (!failed()) {
      error = message;
      error_offset = pos;
    }
    return JsonValue::make_null();
  }

  void skip_space() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool eat_word(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > max_depth) return fail("nesting too deep");
    skip_space();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return parse_string_value();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      if (eat_word("null")) return JsonValue::make_null();
      return fail("invalid literal");
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return fail(std::string("unexpected character '") + c + "'");
  }

  JsonValue parse_bool() {
    if (eat_word("true")) return JsonValue::make_bool(true);
    if (eat_word("false")) return JsonValue::make_bool(false);
    return fail("invalid literal");
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (eat('-')) {
    }
    if (!std::isdigit(static_cast<unsigned char>(
            pos < text.size() ? text[pos] : '\0'))) {
      return fail("invalid number");
    }
    // RFC 8259 int grammar: a leading zero stands alone.
    if (text[pos] == '0') {
      ++pos;
      if (pos < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("invalid number: leading zero");
      }
    }
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (eat('.')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("invalid number: digits required after '.'");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("invalid number: exponent digits required");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    const std::string token(text.substr(start, pos - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return fail("number out of range");
    return JsonValue::make_number(value);
  }

  /// Appends `code` (a Unicode scalar value) as UTF-8.
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  /// Parses 4 hex digits after \u; returns false on malformed input.
  bool parse_hex4(unsigned& out) {
    if (pos + 4 > text.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos += 4;
    out = value;
    return true;
  }

  /// Parses a quoted string body; on failure poisons the parser and
  /// returns an empty string.
  std::string parse_string_raw() {
    std::string out;
    if (!eat('"')) {
      fail("expected '\"'");
      return out;
    }
    while (pos < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
        return out;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            if (!parse_hex4(code)) {
              fail("invalid \\u escape");
              return out;
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: a low surrogate must follow.
              unsigned low = 0;
              if (!eat('\\') || !eat('u') || !parse_hex4(low) ||
                  low < 0xDC00 || low > 0xDFFF) {
                fail("unpaired surrogate in \\u escape");
                return out;
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              fail("unpaired surrogate in \\u escape");
              return out;
            }
            append_utf8(out, code);
            break;
          }
          default:
            fail("invalid escape");
            return out;
        }
        continue;
      }
      out.push_back(static_cast<char>(c));
      ++pos;
    }
    fail("unterminated string");
    return out;
  }

  JsonValue parse_string_value() {
    std::string s = parse_string_raw();
    if (failed()) return JsonValue::make_null();
    return JsonValue::make_string(std::move(s));
  }

  JsonValue parse_array(std::size_t depth) {
    eat('[');
    std::vector<JsonValue> items;
    skip_space();
    if (eat(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      items.push_back(parse_value(depth + 1));
      if (failed()) return JsonValue::make_null();
      skip_space();
      if (eat(']')) return JsonValue::make_array(std::move(items));
      if (!eat(',')) return fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object(std::size_t depth) {
    eat('{');
    std::map<std::string, JsonValue> members;
    skip_space();
    if (eat('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_space();
      std::string key = parse_string_raw();
      if (failed()) return JsonValue::make_null();
      skip_space();
      if (!eat(':')) return fail("expected ':' after object key");
      JsonValue value = parse_value(depth + 1);
      if (failed()) return JsonValue::make_null();
      members.insert_or_assign(std::move(key), std::move(value));
      skip_space();
      if (eat('}')) return JsonValue::make_object(std::move(members));
      if (!eat(',')) return fail("expected ',' or '}' in object");
    }
  }
};

}  // namespace

JsonParseResult parse_json(std::string_view text, std::size_t max_depth) {
  Parser parser{text, 0, max_depth, {}, 0};
  JsonParseResult result;
  result.value = parser.parse_value(0);
  if (!parser.failed()) {
    parser.skip_space();
    if (parser.pos != text.size()) {
      parser.fail("trailing garbage after JSON value");
    }
  }
  result.ok = !parser.failed();
  result.error = parser.error;
  result.error_offset = parser.error_offset;
  if (!result.ok) result.value = JsonValue::make_null();
  return result;
}

}  // namespace relkit::serve
