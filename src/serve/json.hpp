// Minimal JSON parsing for relkit_serve request bodies.
//
// RelKit emits JSON all over (batch lines, metrics, traces) but never had
// to *read* any until the daemon accepted requests over the wire. This is
// a small, strict, allocation-honest recursive-descent parser for exactly
// that: untrusted request bodies of bounded size. It supports the full
// JSON value grammar (RFC 8259) with a fixed nesting limit, rejects
// trailing garbage, and reports errors with a byte offset so malformed
// payloads get a useful 400 instead of a crash — parse failures are a
// return value, never an exception, because a hostile client must not be
// able to drive the server's exception paths.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace relkit::serve {

/// A parsed JSON value. Objects keep one value per key (last wins),
/// matching what an idempotent request schema needs.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const {
    return object_;
  }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;

  // Construction is the parser's business; tests build via parse_json.
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Outcome of a parse: either `value` is meaningful (ok == true) or
/// `error` describes the first problem with its byte offset.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
  std::size_t error_offset = 0;
};

/// Parses one complete JSON document. Strict: rejects trailing non-space
/// bytes, unescaped control characters in strings, non-finite number
/// spellings, and nesting deeper than `max_depth`.
JsonParseResult parse_json(std::string_view text, std::size_t max_depth = 64);

}  // namespace relkit::serve
