#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace relkit::serve {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point give_up) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      give_up - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

ClientResponse fail(const std::string& what) {
  ClientResponse r;
  r.error = what + ": " + std::strerror(errno);
  return r;
}

/// One full request/response exchange; the server closes after answering,
/// so "read until EOF" delimits the response.
ClientResponse exchange(const std::string& host, int port,
                        const std::string& request, int timeout_ms) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  const int fd = tcp_connect(host, port, timeout_ms);
  if (fd < 0) return fail("connect");
  if (!tcp_send(fd, request)) {
    ClientResponse r = fail("send");
    tcp_close(fd);
    return r;
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    struct pollfd pfd {fd, POLLIN, 0};
    const int left = remaining_ms(give_up);
    if (left <= 0 || ::poll(&pfd, 1, left) <= 0) {
      tcp_close(fd);
      ClientResponse r;
      r.error = "timed out waiting for response";
      return r;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (or reset after data): response complete
  }
  tcp_close(fd);

  ClientResponse r;
  const std::size_t line_end = raw.find("\r\n");
  const std::size_t headers_end = raw.find("\r\n\r\n");
  if (line_end == std::string::npos || headers_end == std::string::npos ||
      raw.compare(0, 9, "HTTP/1.1 ") != 0) {
    r.error = "malformed response";
    return r;
  }
  r.status = std::atoi(raw.c_str() + 9);
  r.head = raw.substr(0, headers_end + 2);
  r.body = raw.substr(headers_end + 4);
  r.ok = true;
  return r;
}

char ascii_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::string ClientResponse::header(const std::string& name) const {
  std::size_t pos = head.find("\r\n");  // skip the status line
  while (pos != std::string::npos && pos + 2 < head.size()) {
    pos += 2;
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) break;
    const std::size_t colon = head.find(':', pos);
    if (colon != std::string::npos && colon < eol &&
        colon - pos == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (ascii_lower(head[pos + i]) != ascii_lower(name[i])) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t begin = colon + 1;
        while (begin < eol && (head[begin] == ' ' || head[begin] == '\t')) {
          ++begin;
        }
        return head.substr(begin, eol - begin);
      }
    }
    pos = eol;
  }
  return {};
}

int tcp_connect(const std::string& host, int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  struct timeval tv {timeout_ms / 1000, (timeout_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool tcp_send(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void tcp_close(int fd) {
  if (fd >= 0) ::close(fd);
}

ClientResponse http_get(const std::string& host, int port,
                        const std::string& target, int timeout_ms,
                        const std::string& extra_headers) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: relkit\r\n" +
                              extra_headers + "Connection: close\r\n\r\n";
  return exchange(host, port, request, timeout_ms);
}

ClientResponse http_post(const std::string& host, int port,
                         const std::string& target, const std::string& body,
                         int timeout_ms, const std::string& extra_headers) {
  const std::string request =
      "POST " + target + " HTTP/1.1\r\nHost: relkit\r\n" +
      "Content-Type: application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n" + extra_headers +
      "Connection: close\r\n\r\n" + body;
  return exchange(host, port, request, timeout_ms);
}

}  // namespace relkit::serve
