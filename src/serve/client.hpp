// A deliberately small blocking HTTP/1.1 client for exercising
// relkit_serve in tests: GET/POST with a total timeout, plus raw socket
// helpers so the chaos suite can act as a hostile client (partial
// requests, mid-request disconnects, slow readers).
#pragma once

#include <string>

namespace relkit::serve {

/// A client-side view of one response.
struct ClientResponse {
  bool ok = false;        ///< transport succeeded and a response was parsed
  int status = 0;
  std::string head;       ///< raw header block (status line .. blank line)
  std::string body;
  std::string error;      ///< transport/parse failure description

  /// Value of a response header by case-insensitive name ("" when absent).
  std::string header(const std::string& name) const;
};

/// Blocking GET; `timeout_ms` bounds the whole exchange. `extra_headers`,
/// when non-empty, must be complete CRLF-terminated request header lines
/// (e.g. a `traceparent` to propagate).
ClientResponse http_get(const std::string& host, int port,
                        const std::string& target, int timeout_ms = 5000,
                        const std::string& extra_headers = {});

/// Blocking POST with a JSON body.
ClientResponse http_post(const std::string& host, int port,
                         const std::string& target, const std::string& body,
                         int timeout_ms = 5000,
                         const std::string& extra_headers = {});

// ---- raw helpers for hostile-client tests ----------------------------------

/// Connects and returns the fd (-1 on failure). The caller owns the fd.
int tcp_connect(const std::string& host, int port, int timeout_ms = 5000);

/// Best-effort blocking send of raw bytes on a tcp_connect fd.
bool tcp_send(int fd, const std::string& data);

/// Closes a tcp_connect fd.
void tcp_close(int fd);

}  // namespace relkit::serve
