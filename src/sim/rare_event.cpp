#include "sim/rare_event.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "obs/hw_counters.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"

namespace relkit::sim {

namespace {

constexpr std::size_t kNoDistance = std::numeric_limits<std::size_t>::max();

const char* method_name(RareMethod m) {
  switch (m) {
    case RareMethod::kNaive:
      return "naive";
    case RareMethod::kRestart:
      return "restart";
    case RareMethod::kImportanceSampling:
      return "importance-sampling";
  }
  return "unknown";
}

/// Lazy adapter over SystemSimulator's component space: the state is a
/// bitmask of DOWN components (bit i set = component i down), so state 0 is
/// the all-up regeneration point and importance = popcount. Requires every
/// component to be exponential/exponential so the state process is a CTMC.
class ComponentRareModel final : public RareEventModel {
 public:
  ComponentRareModel(const std::vector<SimComponent>& components,
                     const StructureFn& up, const char* what) : up_(up) {
    detail::require(components.size() <= 64,
                    std::string(what) +
                        ": rare-event estimators support at most 64 "
                        "components");
    for (const auto& c : components) {
      const auto* life = dynamic_cast<const Exponential*>(c.lifetime.get());
      const auto* rep = dynamic_cast<const Exponential*>(c.repair.get());
      detail::require(life != nullptr && rep != nullptr,
                      std::string(what) +
                          ": rare-event estimators require exponential "
                          "lifetime AND exponential repair on every "
                          "component (the state process must be a CTMC)");
      lambda_.push_back(life->rate());
      mu_.push_back(rep->rate());
    }
  }

  std::uint64_t initial_state() const override { return 0; }

  void transitions(std::uint64_t s,
                   std::vector<RareTransition>& out) const override {
    out.clear();
    for (std::size_t i = 0; i < lambda_.size(); ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if (s & bit) {
        out.push_back({s & ~bit, mu_[i], false});
      } else {
        out.push_back({s | bit, lambda_[i], true});
      }
    }
  }

  bool up(std::uint64_t s) const override {
    thread_local std::vector<bool> scratch;
    scratch.assign(lambda_.size(), true);
    for (std::size_t i = 0; i < lambda_.size(); ++i) {
      if (s >> i & 1) scratch[i] = false;
    }
    return up_(scratch);
  }

  double importance(std::uint64_t s) const override {
    return static_cast<double>(std::popcount(s));
  }

  /// Thresholds {0.5, 1.5, ..., d - 1.5} where d is the size of the
  /// smallest component set whose failure takes the system down (searched
  /// up to triples; deeper systems still split on the way to 3 down).
  std::vector<double> auto_levels() const override {
    const std::size_t d = min_cut_size();
    std::vector<double> levels;
    for (std::size_t k = 1; k + 1 <= d; ++k) {
      levels.push_back(static_cast<double>(k) - 0.5);
    }
    return levels;
  }

 private:
  std::size_t min_cut_size() const {
    const std::size_t n = lambda_.size();
    std::vector<bool> state(n, true);
    auto down_with = [&](std::initializer_list<std::size_t> comps) {
      std::fill(state.begin(), state.end(), true);
      for (const auto c : comps) state[c] = false;
      return !up_(state);
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (down_with({i})) return 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (down_with({i, j})) return 2;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        for (std::size_t k = j + 1; k < n; ++k) {
          if (down_with({i, j, k})) return 3;
        }
      }
    }
    // No cut of size <= 3: cap the search; splitting up to 3 down is still
    // a valid (if partial) level ladder for deeper systems.
    return std::min<std::size_t>(4, n);
  }

  const StructureFn& up_;
  std::vector<double> lambda_;
  std::vector<double> mu_;
};

/// Per-cycle (numerator, denominator) contribution of the ratio estimator.
struct CycleOutcome {
  double num = 0.0;  ///< unavailability: weighted down time; mttf: weighted Z
  double den = 0.0;  ///< unavailability: weighted cycle time; mttf: weighted
                     ///< failure indicator
};

/// Walks one regenerative cycle: a DFS over RESTART branches (a single
/// branch for kNaive / kImportanceSampling). All floating-point
/// accumulation happens in deterministic DFS order; branch streams are
/// split from the parent stream in spawn order.
///
/// RESTART weight accounting (Villén-Altamirano): a branch's weight is a
/// pure function of its current importance region — splits^-(number of
/// thresholds below the current importance). Dividing by `splits` on each
/// up-crossing and RESTORING the factor on each down-crossing is what
/// makes killing retrials at their birth threshold unbiased; a weight that
/// only ever shrinks under-counts every re-ascent after a partial descent.
class CycleWalker {
 public:
  CycleWalker(const RareEventModel& model, const RareEventOptions& opts,
              const std::vector<double>& levels, bool mttf)
      : model_(model),
        opts_(opts),
        levels_(levels),
        mttf_(mttf),
        s0_(model.initial_state()) {}

  CycleOutcome run(Rng& rng) {
    out_ = {};
    branches_ = 0;
    biasing_ = opts_.method == RareMethod::kImportanceSampling;
    restart_ = opts_.method == RareMethod::kRestart && !levels_.empty();
    final_lr_ = 1.0;
    branch(s0_, rng, 1.0, kOriginal, 0, 0);
    if (opts_.method == RareMethod::kImportanceSampling) {
      static obs::Histogram& lr_hist =
          obs::histogram("sim.is.likelihood_ratio");
      lr_hist.observe(final_lr_);
    }
    return out_;
  }

 private:
  static constexpr std::size_t kOriginal =
      std::numeric_limits<std::size_t>::max();
  static constexpr std::size_t kMaxBranches = std::size_t{1} << 20;

  std::size_t level_of(double phi) const {
    return static_cast<std::size_t>(
        std::upper_bound(levels_.begin(), levels_.end(), phi) -
        levels_.begin());
  }

  /// splits^-region, by repeated division so jobs=1 stays bit-identical to
  /// the pool path (no libm involved).
  double region_weight(std::size_t region) const {
    double w = 1.0;
    for (std::size_t i = 0; i < region; ++i) {
      w /= static_cast<double>(opts_.splits);
    }
    return w;
  }

  /// Spawns the retrials for an up-crossing of thresholds
  /// [cross_begin, cross_end) at state `s`: splits - 1 retrials per
  /// threshold, each of which recursively splits for the remaining
  /// thresholds on entry, so a jump over k thresholds yields the
  /// splits^k trajectories the classical scheme requires (not a flat
  /// 1 + k*(splits-1)). A retrial born at threshold `lvl` dies when its
  /// importance falls below levels_[lvl].
  void spawn(std::uint64_t s, Rng& rng, double lr, std::size_t cross_begin,
             std::size_t cross_end) {
    auto& injector = testing::FaultInjector::instance();
    static obs::Counter& split_counter = obs::counter("sim.restart.splits");
    for (std::size_t lvl = cross_begin; lvl < cross_end; ++lvl) {
      if (injector.should_fail("sim.restart.split")) {
        robust::SolveReport report;
        report.method = "rare-event/restart";
        report.attempts = {"restart"};
        report.converged = false;
        report.warn(
            "fault injection: sim.restart.split forced a split failure");
        robust::record_last_report(report);
        throw robust::ConvergenceError(
            "rare-event: RESTART split failed (fault injection)", {}, report);
      }
      split_counter.add(opts_.splits - 1);
      for (unsigned c = 1; c < opts_.splits; ++c) {
        Rng child = rng.split();
        branch(s, child, lr, lvl, lvl + 1, cross_end);
      }
    }
  }

  /// `birth` is kOriginal for the main trajectory, else the index of the
  /// threshold whose down-crossing kills this retrial. On entry the branch
  /// first spawns its own retrials for thresholds [cross_begin, cross_end)
  /// — the part of a multi-threshold jump the parent delegated to it.
  void branch(std::uint64_t s, Rng& rng, double lr, std::size_t birth,
              std::size_t cross_begin, std::size_t cross_end) {
    if (++branches_ > kMaxBranches) {
      throw NumericalError(
          "rare-event: RESTART branch population exceeded " +
          std::to_string(kMaxBranches) +
          " in one cycle — lower `splits` or use fewer levels");
    }
    if (restart_ && cross_begin < cross_end) {
      spawn(s, rng, lr, cross_begin, cross_end);
    }
    std::size_t region = restart_ ? level_of(model_.importance(s)) : 0;
    double weight = region_weight(region);
    std::vector<RareTransition> trans;
    trans.reserve(8);
    while (true) {
      model_.transitions(s, trans);
      detail::require_model(!trans.empty(),
                            "rare-event model: state with no outgoing "
                            "transitions (availability models must not "
                            "absorb)");
      double total = 0.0;
      for (const auto& t : trans) total += t.rate;
      detail::require_model(total > 0.0 && std::isfinite(total),
                            "rare-event model: non-positive or non-finite "
                            "total exit rate");
      const double dt = -std::log(rng.uniform_pos()) / total;
      if (mttf_) {
        out_.num += weight * lr * dt;
      } else {
        out_.den += weight * lr * dt;
        if (!model_.up(s)) out_.num += weight * lr * dt;
      }

      // ---- choose the embedded-chain jump ---------------------------------
      std::size_t chosen = trans.size() - 1;
      bool biased_step = false;
      if (biasing_) {
        std::size_t fail_count = 0;
        double fail_rate = 0.0;
        for (const auto& t : trans) {
          if (t.is_failure) {
            ++fail_count;
            fail_rate += t.rate;
          }
        }
        if (fail_count > 0 && fail_count < trans.size()) {
          biased_step = true;
          if (rng.uniform() < opts_.bias) {
            // Balanced: uniform among the failure transitions.
            std::size_t k = std::min<std::size_t>(
                fail_count - 1,
                static_cast<std::size_t>(
                    rng.uniform() * static_cast<double>(fail_count)));
            for (std::size_t i = 0; i < trans.size(); ++i) {
              if (!trans[i].is_failure) continue;
              if (k == 0) {
                chosen = i;
                break;
              }
              --k;
            }
            lr *= (trans[chosen].rate / total) /
                  (opts_.bias / static_cast<double>(fail_count));
          } else {
            // Repairs keep their relative rates under mass (1 - bias).
            const double repair_rate = total - fail_rate;
            double pick = rng.uniform() * repair_rate;
            for (std::size_t i = 0; i < trans.size(); ++i) {
              if (trans[i].is_failure) continue;
              chosen = i;
              if (pick < trans[i].rate) break;
              pick -= trans[i].rate;
            }
            lr *= repair_rate / (total * (1.0 - opts_.bias));
          }
        }
      }
      if (!biased_step) {
        double pick = rng.uniform() * total;
        for (std::size_t i = 0; i < trans.size(); ++i) {
          chosen = i;
          if (pick < trans[i].rate) break;
          pick -= trans[i].rate;
        }
      }

      const std::uint64_t next = trans[chosen].target;

      // ---- arrival bookkeeping --------------------------------------------
      if (next == s0_) {  // regeneration: the cycle (or branch) is over
        if (birth == kOriginal) final_lr_ = lr;
        return;
      }
      // Branch death is decided BEFORE the up/down bookkeeping: with a
      // non-coherent structure function a repair step can both drop a
      // retrial below its birth threshold and take the system down, and
      // the splitting scheme requires such a retrial to die unscored (the
      // branches born below cover that region).
      std::size_t next_region = region;
      if (restart_) {
        const double phi_t = model_.importance(next);
        if (birth != kOriginal && phi_t < levels_[birth]) {
          return;  // fell below the birth threshold: the branch dies
        }
        next_region = level_of(phi_t);
      }
      if (!model_.up(next)) {
        if (mttf_) {  // first system failure: score the indicator and stop
          out_.den += weight * lr;
          if (birth == kOriginal) final_lr_ = lr;
          return;
        }
        // Unavailability: keep walking through the repair, but stop
        // inflating failures — the rare part of the cycle already happened
        // and an unbounded LR would ruin the variance.
        biasing_ = false;
      }
      if (restart_ && next_region > region) {
        spawn(next, rng, lr, region, next_region);
      }
      region = next_region;
      weight = region_weight(region);
      s = next;
    }
  }

  const RareEventModel& model_;
  const RareEventOptions& opts_;
  const std::vector<double>& levels_;
  const bool mttf_;
  const std::uint64_t s0_;
  CycleOutcome out_;
  std::size_t branches_ = 0;
  bool biasing_ = false;
  bool restart_ = false;
  double final_lr_ = 1.0;
};

/// Shared driver: runs regenerative cycles in deterministic batches until
/// the relative-error target, the cycle cap, or the budget stops the run.
/// Mirrors run_replications' budget/partial-estimate semantics, but merges
/// identically for EVERY jobs value (the sequential path uses the same
/// chunk decomposition and fold as the pool path).
Estimate run_rare(const char* what, const RareEventModel& model, bool mttf,
                  std::uint64_t seed, const RareEventOptions& opts) {
  detail::require(opts.bias > 0.0 && opts.bias < 1.0,
                  std::string(what) + ": bias must be in (0, 1)");
  detail::require(opts.splits >= 2,
                  std::string(what) + ": splits must be >= 2");
  detail::require(opts.relative_error > 0.0,
                  std::string(what) + ": relative_error must be > 0");
  detail::require(opts.batch >= 1, std::string(what) + ": batch must be >= 1");
  detail::require(opts.max_cycles >= 2,
                  std::string(what) + ": max_cycles must be >= 2");
  detail::require_model(model.up(model.initial_state()),
                        std::string(what) +
                            ": the regeneration state must be up");

  std::vector<double> levels;
  if (opts.method == RareMethod::kRestart) {
    levels = opts.levels.empty() ? model.auto_levels() : opts.levels;
    std::sort(levels.begin(), levels.end());
    levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
    // A threshold at or below the regeneration importance can never be
    // up-crossed from the start region; keeping it would also push branch
    // weights above 1 (weights are splits^-region).
    const double phi0 = model.importance(model.initial_state());
    levels.erase(levels.begin(),
                 std::upper_bound(levels.begin(), levels.end(), phi0));
  }

  // The options budget combined with the calling thread's ambient deadline
  // (robust::ScopedDeadline), so relkit_cli --timeout-ms and serve deadlines
  // bound rare-event runs like every other solve.
  robust::Budget budget = opts.budget;
  budget.deadline =
      robust::Deadline::earliest(budget.deadline, robust::ambient_deadline());

  auto& injector = testing::FaultInjector::instance();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t target =
      injector.cap("sim.rare.cycles", budget.cap_iterations(opts.max_cycles));

  obs::Span span("sim.rare.estimate");
  obs::HwCounterGroup hw_counters(span);
  span.set("what", what);
  span.set("method", method_name(opts.method));
  span.set("target", target);
  parallel::PoolLease lease(opts.jobs);
  span.set("jobs", static_cast<std::uint64_t>(lease.jobs()));
  static obs::Counter& cycle_counter = obs::counter("sim.rare.cycles");

  Rng master(seed);
  BivariateStats stats;
  bool converged = false;
  bool stopped = false;
  std::string stop_reason;
  std::atomic<bool> deadline_hit{false};

  std::size_t launched = 0;
  while (launched < target) {
    if (budget.deadline.expired()) {
      stopped = true;
      stop_reason = "deadline expired";
      break;
    }
    const std::size_t n = std::min(opts.batch, target - launched);
    launched += n;
    // Pre-split every cycle's stream in cycle order — the stream a cycle
    // consumes never depends on the batch shape or the worker count.
    std::vector<Rng> streams;
    streams.reserve(n);
    for (std::size_t r = 0; r < n; ++r) streams.push_back(master.split());

    const std::size_t chunk = parallel::default_chunk(n);
    auto chunk_fn = [&](std::size_t begin, std::size_t end) {
      BivariateStats local;
      CycleWalker walker(model, opts, levels, mttf);
      for (std::size_t r = begin; r < end; ++r) {
        const CycleOutcome c = walker.run(streams[r]);
        local.add(c.num, c.den);
      }
      cycle_counter.add(end - begin);
      return local;
    };
    const auto merge_fn = [](BivariateStats& acc,
                             const BivariateStats& part) { acc.merge(part); };
    BivariateStats batch_stats;
    if (lease.get() == nullptr) {
      // Sequential path: same chunk decomposition, same fold order as the
      // pool path, so the result is bit-identical for every jobs value.
      for (std::size_t b = 0; b < n; b += chunk) {
        if (budget.deadline.expired()) {
          deadline_hit.store(true, std::memory_order_relaxed);
          break;
        }
        merge_fn(batch_stats, chunk_fn(b, std::min(b + chunk, n)));
      }
    } else {
      batch_stats = parallel::reduce_chunks<BivariateStats>(
          *lease.get(), n, chunk, BivariateStats{}, chunk_fn, merge_fn, [&] {
            if (!budget.deadline.expired()) return false;
            deadline_hit.store(true, std::memory_order_relaxed);
            return true;
          });
    }
    stats.merge(batch_stats);
    if (deadline_hit.load(std::memory_order_relaxed)) {
      stopped = true;
      stop_reason = "deadline expired";
      break;
    }
    // Stopping rule: stop as soon as the CI is tight enough relative to
    // the estimate. Needs at least one observed failure to be meaningful.
    const bool failed_once = mttf ? stats.mean_y() > 0.0 : stats.mean_x() > 0.0;
    if (failed_once && stats.count() >= 2) {
      const double ratio = stats.ratio();
      if (ratio > 0.0 &&
          stats.ratio_ci_halfwidth(0.95) <= opts.relative_error * ratio) {
        converged = true;
        break;
      }
    }
  }
  if (!converged && !stopped) {
    stopped = true;
    stop_reason = "cycle budget capped before the relative-error target";
  }

  robust::SolveReport report;
  report.method = std::string("rare-event/") + method_name(opts.method);
  report.attempts = {method_name(opts.method)};
  report.iterations = stats.count();
  report.converged = converged;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (stopped) {
    report.warn(std::string(what) + ": budget stop (" + stop_reason +
                ") after " + std::to_string(stats.count()) + " cycles");
  }

  span.set("cycles", stats.count());
  span.set("budget_stopped", stopped);

  if (stats.count() < 2) {
    robust::record_last_report(report);
    throw robust::ConvergenceError(
        std::string(what) +
            ": budget exhausted before 2 regenerative cycles completed — "
            "no confidence interval possible",
        std::vector<double>(stats.count(), 0.0), report);
  }

  const bool failed_once = mttf ? stats.mean_y() > 0.0 : stats.mean_x() > 0.0;
  if (!failed_once) {
    if (mttf) {
      report.warn(std::string(what) + ": no system failure observed in " +
                  std::to_string(stats.count()) +
                  " cycles — MTTF has no finite estimate; raise the cycle "
                  "budget or use RESTART / importance sampling");
      robust::record_last_report(report);
      throw robust::ConvergenceError(
          std::string(what) + ": no failures observed in " +
              std::to_string(stats.count()) + " regenerative cycles",
          {}, report);
    }
    // Zero observed failures: a two-sided CI would be the empty interval
    // {0}. Report the one-sided rule-of-three bound on the per-cycle
    // failure probability instead (docs/rare_events.md).
    report.warn(std::string(what) + ": zero failures in " +
                std::to_string(stats.count()) +
                " cycles — reporting the one-sided rule-of-three bound 3/n");
    report.note_attempt_result(method_name(opts.method), stats.count(),
                               std::nan(""), false);
    robust::record_last_report(report);
    Estimate e;
    e.mean = 0.0;
    e.half_width = 3.0 / static_cast<double>(stats.count());
    e.replications = stats.count();
    e.budget_stopped = true;
    e.one_sided = true;
    span.set("mean", 0.0);
    return e;
  }

  Estimate e;
  e.mean = stats.ratio();
  e.half_width = stats.ratio_ci_halfwidth(0.95);
  e.replications = stats.count();
  e.budget_stopped = stopped;
  report.note_attempt_result(method_name(opts.method), stats.count(),
                             e.half_width, converged);
  robust::record_last_report(report);
  span.set("mean", e.mean);
  return e;
}

}  // namespace

// ---- CtmcRareModel ---------------------------------------------------------

CtmcRareModel::CtmcRareModel(const markov::Ctmc& chain,
                             std::function<bool(markov::StateId)> up_state,
                             markov::StateId regeneration)
    : regeneration_(regeneration) {
  detail::require(up_state != nullptr, "CtmcRareModel: null up predicate");
  const std::size_t n = chain.state_count();
  detail::require(regeneration < n,
                  "CtmcRareModel: regeneration state out of range");
  up_.resize(n);
  for (std::size_t s = 0; s < n; ++s) up_[s] = up_state(s);
  detail::require_model(up_[regeneration],
                        "CtmcRareModel: regeneration state must be up");

  // Adjacency from the dense generator — rare-event CTMC views are the
  // tutorial-sized dependability chains, not the 10^6-state solves.
  const Matrix q = chain.dense_generator();
  trans_.resize(n);
  std::vector<std::vector<std::size_t>> reverse(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c || q(r, c) <= 0.0) continue;
      trans_[r].push_back({c, q(r, c), false});
      reverse[c].push_back(r);
    }
  }

  // BFS jump distance from every state to the down set (over reversed
  // edges), then classify: a transition is a failure transition iff it
  // strictly decreases the distance to failure.
  dist_.assign(n, kNoDistance);
  std::deque<std::size_t> frontier;
  for (std::size_t s = 0; s < n; ++s) {
    if (!up_[s]) {
      dist_[s] = 0;
      frontier.push_back(s);
    }
  }
  detail::require_model(!frontier.empty(),
                        "CtmcRareModel: no down state in the chain");
  while (!frontier.empty()) {
    const std::size_t t = frontier.front();
    frontier.pop_front();
    for (const auto s : reverse[t]) {
      if (dist_[s] != kNoDistance) continue;
      dist_[s] = dist_[t] + 1;
      frontier.push_back(s);
    }
  }
  detail::require_model(
      dist_[regeneration] != kNoDistance,
      "CtmcRareModel: no down state reachable from the regeneration state");
  for (std::size_t s = 0; s < n; ++s) {
    for (auto& t : trans_[s]) {
      t.is_failure = dist_[s] != kNoDistance &&
                     dist_[t.target] != kNoDistance &&
                     dist_[t.target] < dist_[s];
    }
  }
}

void CtmcRareModel::transitions(std::uint64_t s,
                                std::vector<RareTransition>& out) const {
  out.assign(trans_[s].begin(), trans_[s].end());
}

bool CtmcRareModel::up(std::uint64_t s) const { return up_[s]; }

double CtmcRareModel::importance(std::uint64_t s) const {
  if (dist_[s] == kNoDistance) return -1e300;  // can never reach failure
  return static_cast<double>(dist_[regeneration_]) -
         static_cast<double>(dist_[s]);
}

std::vector<double> CtmcRareModel::auto_levels() const {
  const std::size_t d0 = dist_[regeneration_];
  std::vector<double> levels;
  for (std::size_t k = 1; k + 1 <= d0; ++k) {
    levels.push_back(static_cast<double>(k) - 0.5);
  }
  return levels;
}

std::size_t CtmcRareModel::distance_to_failure(markov::StateId s) const {
  detail::require(s < dist_.size(),
                  "distance_to_failure: state out of range");
  return dist_[s];
}

// ---- public entry points ---------------------------------------------------

Estimate rare_unavailability(const RareEventModel& model, std::uint64_t seed,
                             const RareEventOptions& opts) {
  return run_rare("rare_unavailability", model, /*mttf=*/false, seed, opts);
}

Estimate rare_mttf(const RareEventModel& model, std::uint64_t seed,
                   const RareEventOptions& opts) {
  return run_rare("rare_mttf", model, /*mttf=*/true, seed, opts);
}

Estimate SystemSimulator::unavailability_rare(
    std::uint64_t seed, const RareEventOptions& opts) const {
  const ComponentRareModel model(components_, up_, "unavailability_rare");
  return run_rare("unavailability_rare", model, /*mttf=*/false, seed, opts);
}

Estimate SystemSimulator::mttf_rare(std::uint64_t seed,
                                    const RareEventOptions& opts) const {
  const ComponentRareModel model(components_, up_, "mttf_rare");
  return run_rare("mttf_rare", model, /*mttf=*/true, seed, opts);
}

}  // namespace relkit::sim
