// Rare-event estimation engine — RESTART importance splitting and
// balanced-failure-biasing importance sampling over regenerative cycles.
//
// The tutorial's high-availability targets (five to nine nines, 10^9-hour
// MTTFs) are exactly where plain Monte Carlo goes blind: observing even one
// failure needs ~1/U replications. Both estimators here work on the
// embedded jump chain of a CTMC view of the model and measure regenerative
// cycles that start and end in the all-up regeneration state:
//
//   unavailability  U    = E[down time per cycle] / E[cycle length]
//   mean time to failure = E[Z] / gamma,  Z = time to min(failure, cycle
//                          end), gamma = P(failure before cycle end)
//
// Both are ratio estimators; CIs come from the delta method on a
// BivariateStats accumulator. Three methods (RareEventOptions::method):
//
//   * kNaive    — plain cycles. Baseline; blind below ~1/cycles.
//   * kRestart  — importance splitting: when a trajectory's importance
//                 (e.g. number of failed components) up-crosses a
//                 threshold it splits into `splits` branches. A branch's
//                 weight is splits^-(thresholds below its current
//                 importance): divided by `splits` at each up-crossing
//                 and restored at each down-crossing, which is what makes
//                 killing a non-original branch when it falls back below
//                 its birth threshold unbiased for any additive path
//                 functional (Villén-Altamirano). Thresholds at or below
//                 the regeneration importance are ignored.
//   * kImportanceSampling — balanced failure biasing: in states with both
//                 failure and repair transitions enabled, move probability
//                 mass `bias` onto the failure transitions (uniformly) in
//                 the embedded chain; holding times are untouched. Each
//                 jump multiplies the likelihood ratio by p_orig/p_biased;
//                 contributions are weighted by the running LR, which
//                 makes the estimator exactly unbiased. Biasing switches
//                 off after the first system failure of the cycle so the
//                 LR stays bounded.
//
// Determinism contract (docs/parallelism.md): per-cycle RNG streams are
// pre-split from the master seed in cycle order, RESTART branch streams
// are split from the parent branch's stream in spawn (DFS) order, and
// per-chunk accumulators merge in chunk-index order with chunk boundaries
// that depend only on the cycle count — so the estimate is bit-identical
// for EVERY jobs value, including jobs == 1.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "markov/ctmc.hpp"
#include "sim/simulator.hpp"

namespace relkit::sim {

/// One transition of the explicit jump process.
struct RareTransition {
  std::uint64_t target = 0;
  double rate = 0.0;
  /// True when the transition moves the system toward failure; these are
  /// the transitions balanced failure biasing inflates.
  bool is_failure = false;
};

/// Abstract explicit-state view of the model the rare-event engine walks.
/// States are opaque 64-bit ids so adapters can be lazy (the component
/// adapter uses a bitmask of down components and never enumerates 2^n).
class RareEventModel {
 public:
  virtual ~RareEventModel() = default;

  /// The regeneration state (must satisfy up()). Cycles start here and end
  /// on the first return.
  virtual std::uint64_t initial_state() const = 0;
  /// Fills `out` with the transitions leaving `s` (out is cleared first).
  virtual void transitions(std::uint64_t s,
                           std::vector<RareTransition>& out) const = 0;
  /// System-up predicate.
  virtual bool up(std::uint64_t s) const = 0;
  /// Importance function for RESTART: larger = closer to system failure.
  /// Both shipped adapters return integers (failed-component count /
  /// BFS distance toward the down set).
  virtual double importance(std::uint64_t s) const = 0;
  /// Default RESTART thresholds when RareEventOptions::levels is empty.
  /// Base implementation: none (RESTART degenerates to kNaive).
  virtual std::vector<double> auto_levels() const { return {}; }
};

/// Adapter: a markov::Ctmc plus an up-state predicate. Failure transitions
/// and the importance function are auto-derived from a BFS distance toward
/// the down set (a transition is "failure" iff it decreases the distance);
/// auto levels split once per distance step after the first. Throws
/// ModelError when no down state is reachable from the regeneration state.
class CtmcRareModel final : public RareEventModel {
 public:
  CtmcRareModel(const markov::Ctmc& chain,
                std::function<bool(markov::StateId)> up_state,
                markov::StateId regeneration = 0);

  std::uint64_t initial_state() const override { return regeneration_; }
  void transitions(std::uint64_t s,
                   std::vector<RareTransition>& out) const override;
  bool up(std::uint64_t s) const override;
  double importance(std::uint64_t s) const override;
  std::vector<double> auto_levels() const override;

  /// BFS jump distance from `s` to the nearest down state.
  std::size_t distance_to_failure(markov::StateId s) const;

 private:
  std::uint64_t regeneration_;
  std::vector<bool> up_;
  std::vector<std::vector<RareTransition>> trans_;
  std::vector<std::size_t> dist_;  ///< jump distance to the down set
};

/// Steady-state unavailability of an explicit rare-event model.
Estimate rare_unavailability(const RareEventModel& model, std::uint64_t seed,
                             const RareEventOptions& opts = {});

/// Mean time to first entry into a down state, starting from (and
/// regenerating at) the initial state. Throws robust::ConvergenceError if
/// no failure was observed within the cycle budget.
Estimate rare_mttf(const RareEventModel& model, std::uint64_t seed,
                   const RareEventOptions& opts = {});

}  // namespace relkit::sim
