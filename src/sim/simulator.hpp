// Discrete-event simulation — the independent estimator used to
// cross-validate every analytic solver in RelKit (experiment E9).
//
// Two simulators:
//
//   * SystemSimulator — components with arbitrary lifetime/repair
//     distributions and an arbitrary structure function over component
//     states. Estimates point availability, interval availability,
//     reliability (no system failure before t) and MTTF, each with a
//     95% confidence half-width.
//
//   * SrnSimulator — plays the token game of a stochastic reward net
//     (exponential timed transitions raced by sampling, immediates resolved
//     by priority/weight) and estimates transient and accumulated rewards.
//
// Replications are driven by independent RNG streams split from one seed,
// so results are reproducible. When parallel::default_jobs() > 1 the
// replications fan out across the process-wide thread pool: streams are
// still split in replication order and per-chunk accumulators merge in a
// fixed chunk order, so for a given seed the estimate is identical for any
// worker count >= 2, and jobs == 1 remains bit-identical to the historical
// sequential loop (determinism contract: docs/parallelism.md). Budget
// deadlines are polled between chunks, so cancellation keeps working.
#pragma once

#include <functional>
#include <vector>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "robust/budget.hpp"
#include "robust/report.hpp"
#include "spn/srn.hpp"

namespace relkit::sim {

/// Point estimate with a confidence interval.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% normal-approximation half-width
  std::size_t replications = 0;
  /// True when a budget (deadline or replication cap) stopped the run
  /// before the requested replication count; the estimate is still valid,
  /// just wider. Details are in robust::last_report().
  bool budget_stopped = false;
  /// True when every observation of a Bernoulli estimator landed on the
  /// same side (zero observed failures, or zero observed successes): the
  /// sample variance is 0 and a two-sided CI would be a zero-width
  /// interval that "covers" nothing. Instead half_width carries the
  /// one-sided 95% rule-of-three bound 3/n, so hi() (mean 0) or lo()
  /// (mean 1) is a valid one-sided confidence limit.
  bool one_sided = false;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  /// half_width / mean — the stopping-rule quantity of the rare-event
  /// estimators (inf when mean == 0).
  double relative_error() const;
};

/// Variance-reduction method for the rare-event estimators
/// (docs/rare_events.md has the selection table).
enum class RareMethod {
  kNaive,               ///< plain regenerative cycles, no biasing
  kRestart,             ///< importance splitting at level up-crossings
  kImportanceSampling,  ///< balanced failure biasing + likelihood ratios
};

/// Options for the rare-event entry points (`unavailability_rare`,
/// `mttf_rare`, `rare_unavailability`, `rare_mttf`).
struct RareEventOptions {
  RareMethod method = RareMethod::kImportanceSampling;
  /// IS: probability mass moved onto the failure transitions in states
  /// where both failure and repair transitions are enabled (balanced
  /// failure biasing). Must be in (0, 1).
  double bias = 0.5;
  /// RESTART: importance thresholds, ascending. Splitting happens when a
  /// trajectory's importance up-crosses a threshold. Empty = auto-derive
  /// from the model (RareEventModel::auto_levels()).
  std::vector<double> levels;
  /// RESTART: branches per threshold up-crossing (>= 2).
  unsigned splits = 8;
  /// Stopping rule: stop as soon as the 95% CI half-width is at most this
  /// fraction of the estimate.
  double relative_error = 0.1;
  /// Regenerative cycles between stopping-rule checks.
  std::size_t batch = 4096;
  /// Hard cap on regenerative cycles (the "replication" unit of the rare
  /// estimators); reaching it before the relative-error target sets
  /// budget_stopped.
  std::size_t max_cycles = 1'000'000;
  /// Parallelism degree: 0 = parallel::default_jobs(), 1 = sequential.
  /// The estimate is identical for every jobs value (pre-split per-cycle
  /// streams, fixed chunk boundaries, ordered merge).
  unsigned jobs = 0;
  /// Deadline / iteration budget (max_iterations also caps cycles).
  robust::Budget budget;
};

/// One simulated component: lifetime distribution plus optional repair-time
/// distribution (null = non-repairable).
struct SimComponent {
  DistPtr lifetime;
  DistPtr repair;  // may be null
};

/// System-up predicate over component states (true = up).
using StructureFn = std::function<bool(const std::vector<bool>&)>;

/// Simulates independent components under a structure function.
class SystemSimulator {
 public:
  SystemSimulator(std::vector<SimComponent> components, StructureFn system_up);

  /// P(system up at time t). All estimators honor `budget`
  /// (budget.max_iterations caps replications, the deadline stops the run
  /// early); a budget stop with >= 2 completed replications returns the
  /// partial estimate with budget_stopped set, fewer throws
  /// robust::ConvergenceError.
  Estimate availability_at(double t, std::size_t replications,
                           std::uint64_t seed,
                           const robust::Budget& budget = {}) const;

  /// Fraction of [0, t] the system is up (expected interval availability).
  Estimate interval_availability(double t, std::size_t replications,
                                 std::uint64_t seed,
                                 const robust::Budget& budget = {}) const;

  /// P(system never down during [0, t]) — reliability with repairable
  /// components; equal to availability_at for non-repairable ones.
  Estimate reliability(double t, std::size_t replications,
                       std::uint64_t seed,
                       const robust::Budget& budget = {}) const;

  /// Mean time to first system failure.
  Estimate mttf(std::size_t replications, std::uint64_t seed,
                const robust::Budget& budget = {}) const;

  /// Steady-state unavailability 1 - A by rare-event regenerative
  /// simulation (RESTART splitting or failure-biasing IS, see
  /// docs/rare_events.md). Requires every component to have an exponential
  /// lifetime AND an exponential repair distribution (the component-state
  /// process must be a CTMC) and at most 64 components. Cycles regenerate
  /// at the all-up state; the run stops at opts.relative_error or at the
  /// cycle/budget cap (budget_stopped).
  Estimate unavailability_rare(std::uint64_t seed,
                               const RareEventOptions& opts = {}) const;

  /// Mean time to first system failure by rare-event regenerative
  /// simulation (same requirements as unavailability_rare). Uses the
  /// ratio identity MTTF = E[Z] / gamma over regeneration cycles. Throws
  /// robust::ConvergenceError when no failure was observed within the
  /// budget (naive method on a nine-nines system will).
  Estimate mttf_rare(std::uint64_t seed,
                     const RareEventOptions& opts = {}) const;

 private:
  struct RunResult {
    double first_failure;  ///< time of first system-down (inf if none)
    double up_time;        ///< total up time in [0, horizon]
    bool up_at_horizon;
  };
  /// Simulates one replication up to `horizon` (or to first system failure
  /// when `stop_at_failure`).
  RunResult run(double horizon, bool stop_at_failure, Rng& rng) const;

  std::vector<SimComponent> components_;
  StructureFn up_;
};

/// Token-game simulator for stochastic reward nets.
class SrnSimulator {
 public:
  explicit SrnSimulator(const spn::Srn& net);

  /// E[reward rate at time t].
  Estimate transient_reward(const spn::RewardFn& reward, double t,
                            std::size_t replications, std::uint64_t seed,
                            const robust::Budget& budget = {}) const;

  /// E[integral of reward over [0, t]].
  Estimate accumulated_reward(const spn::RewardFn& reward, double t,
                              std::size_t replications, std::uint64_t seed,
                              const robust::Budget& budget = {}) const;

 private:
  /// Advances the marking to time t; calls `observe(interval, marking)` for
  /// every sojourn interval.
  spn::Marking play(
      double t, Rng& rng,
      const std::function<void(double, const spn::Marking&)>& observe) const;

  const spn::Srn& net_;
};

}  // namespace relkit::sim
