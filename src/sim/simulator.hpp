// Discrete-event simulation — the independent estimator used to
// cross-validate every analytic solver in RelKit (experiment E9).
//
// Two simulators:
//
//   * SystemSimulator — components with arbitrary lifetime/repair
//     distributions and an arbitrary structure function over component
//     states. Estimates point availability, interval availability,
//     reliability (no system failure before t) and MTTF, each with a
//     95% confidence half-width.
//
//   * SrnSimulator — plays the token game of a stochastic reward net
//     (exponential timed transitions raced by sampling, immediates resolved
//     by priority/weight) and estimates transient and accumulated rewards.
//
// Replications are driven by independent RNG streams split from one seed,
// so results are reproducible. When parallel::default_jobs() > 1 the
// replications fan out across the process-wide thread pool: streams are
// still split in replication order and per-chunk accumulators merge in a
// fixed chunk order, so for a given seed the estimate is identical for any
// worker count >= 2, and jobs == 1 remains bit-identical to the historical
// sequential loop (determinism contract: docs/parallelism.md). Budget
// deadlines are polled between chunks, so cancellation keeps working.
#pragma once

#include <functional>
#include <vector>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "robust/budget.hpp"
#include "robust/report.hpp"
#include "spn/srn.hpp"

namespace relkit::sim {

/// Point estimate with a confidence interval.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  ///< 95% normal-approximation half-width
  std::size_t replications = 0;
  /// True when a budget (deadline or replication cap) stopped the run
  /// before the requested replication count; the estimate is still valid,
  /// just wider. Details are in robust::last_report().
  bool budget_stopped = false;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

/// One simulated component: lifetime distribution plus optional repair-time
/// distribution (null = non-repairable).
struct SimComponent {
  DistPtr lifetime;
  DistPtr repair;  // may be null
};

/// System-up predicate over component states (true = up).
using StructureFn = std::function<bool(const std::vector<bool>&)>;

/// Simulates independent components under a structure function.
class SystemSimulator {
 public:
  SystemSimulator(std::vector<SimComponent> components, StructureFn system_up);

  /// P(system up at time t). All estimators honor `budget`
  /// (budget.max_iterations caps replications, the deadline stops the run
  /// early); a budget stop with >= 2 completed replications returns the
  /// partial estimate with budget_stopped set, fewer throws
  /// robust::ConvergenceError.
  Estimate availability_at(double t, std::size_t replications,
                           std::uint64_t seed,
                           const robust::Budget& budget = {}) const;

  /// Fraction of [0, t] the system is up (expected interval availability).
  Estimate interval_availability(double t, std::size_t replications,
                                 std::uint64_t seed,
                                 const robust::Budget& budget = {}) const;

  /// P(system never down during [0, t]) — reliability with repairable
  /// components; equal to availability_at for non-repairable ones.
  Estimate reliability(double t, std::size_t replications,
                       std::uint64_t seed,
                       const robust::Budget& budget = {}) const;

  /// Mean time to first system failure.
  Estimate mttf(std::size_t replications, std::uint64_t seed,
                const robust::Budget& budget = {}) const;

 private:
  struct RunResult {
    double first_failure;  ///< time of first system-down (inf if none)
    double up_time;        ///< total up time in [0, horizon]
    bool up_at_horizon;
  };
  /// Simulates one replication up to `horizon` (or to first system failure
  /// when `stop_at_failure`).
  RunResult run(double horizon, bool stop_at_failure, Rng& rng) const;

  std::vector<SimComponent> components_;
  StructureFn up_;
};

/// Token-game simulator for stochastic reward nets.
class SrnSimulator {
 public:
  explicit SrnSimulator(const spn::Srn& net);

  /// E[reward rate at time t].
  Estimate transient_reward(const spn::RewardFn& reward, double t,
                            std::size_t replications, std::uint64_t seed,
                            const robust::Budget& budget = {}) const;

  /// E[integral of reward over [0, t]].
  Estimate accumulated_reward(const spn::RewardFn& reward, double t,
                              std::size_t replications, std::uint64_t seed,
                              const robust::Budget& budget = {}) const;

 private:
  /// Advances the marking to time t; calls `observe(interval, marking)` for
  /// every sojourn interval.
  spn::Marking play(
      double t, Rng& rng,
      const std::function<void(double, const spn::Marking&)>& observe) const;

  const spn::Srn& net_;
};

}  // namespace relkit::sim
