#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>
#include <string>

#include <atomic>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "parallel/pool.hpp"
#include "robust/fault_injection.hpp"

namespace relkit::sim {

double Estimate::relative_error() const {
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return half_width / std::abs(mean);
}

namespace {

Estimate summarize(const OnlineStats& stats) {
  Estimate e;
  e.mean = stats.mean();
  e.replications = stats.count();
  if (stats.count() >= 2 && stats.variance() == 0.0 &&
      (stats.mean() == 0.0 || stats.mean() == 1.0)) {
    // Degenerate Bernoulli sample: every replication landed on the same
    // side, so the sample variance (and a two-sided CI) is exactly zero —
    // which would falsely "cover" only the point itself. Report the
    // one-sided 95% rule-of-three bound 3/n instead: with n Bernoulli
    // trials and zero observed events, p <= 3/n at ~95% confidence.
    e.half_width = 3.0 / static_cast<double>(stats.count());
    e.one_sided = true;
  } else {
    e.half_width = stats.count() >= 2 ? stats.ci_halfwidth(0.95) : 0.0;
  }
  return e;
}

/// Runs up to `replications` independent replications of `one_rep` under
/// the budget; each replication gets its own RNG stream split from `seed`
/// in replication order, regardless of how many workers run them.
/// A budget stop with >= 2 completed replications returns the partial
/// estimate (budget_stopped set, warning recorded); with fewer it throws
/// robust::ConvergenceError carrying the partial mean.
///
/// Determinism contract (docs/parallelism.md): with
/// parallel::default_jobs() == 1 this is the historical sequential loop,
/// bit for bit. With jobs > 1, replications are farmed out in chunks whose
/// boundaries depend only on the replication count; per-chunk accumulators
/// merge in chunk order, so the estimate is identical for ANY worker count
/// >= 2 (and differs from the sequential result only in floating-point
/// summation order, never in the sampled values).
Estimate run_replications(const char* what, std::size_t replications,
                          std::uint64_t seed, const robust::Budget& budget,
                          const std::function<double(Rng&)>& one_rep) {
  detail::require(replications >= 2,
                  std::string(what) + ": need >= 2 reps");
  auto& injector = testing::FaultInjector::instance();
  const auto start = std::chrono::steady_clock::now();
  const std::size_t target =
      injector.cap("sim.replications", budget.cap_iterations(replications));
  const unsigned jobs = parallel::default_jobs();

  obs::Span span("sim.estimate");
  span.set("what", what);
  span.set("target", target);
  span.set("jobs", static_cast<std::uint64_t>(jobs));
  static obs::Counter& rep_counter = obs::counter("sim.replications");

  Rng master(seed);
  OnlineStats stats;
  bool stopped = false;
  std::string stop_reason;
  if (jobs <= 1) {
    for (std::size_t r = 0; r < target; ++r) {
      if (budget.deadline.expired()) {
        stopped = true;
        stop_reason = "deadline expired";
        break;
      }
      Rng stream = master.split();
      stats.add(one_rep(stream));
      rep_counter.add();
    }
  } else {
    // Pre-split every replication's stream in replication order — the same
    // split() sequence the sequential path consumes, so sample values do
    // not depend on the worker count.
    std::vector<Rng> streams;
    streams.reserve(target);
    for (std::size_t r = 0; r < target; ++r) streams.push_back(master.split());
    std::atomic<bool> deadline_hit{false};
    stats = parallel::reduce_chunks<OnlineStats>(
        parallel::global_pool(), target, parallel::default_chunk(target),
        OnlineStats{},
        [&](std::size_t begin, std::size_t end) {
          OnlineStats local;
          for (std::size_t r = begin; r < end; ++r) {
            local.add(one_rep(streams[r]));
          }
          rep_counter.add(end - begin);
          return local;
        },
        [](OnlineStats& acc, const OnlineStats& chunk) { acc.merge(chunk); },
        [&] {
          if (!budget.deadline.expired()) return false;
          deadline_hit.store(true, std::memory_order_relaxed);
          return true;
        });
    if (deadline_hit.load() && stats.count() < target) {
      stopped = true;
      stop_reason = "deadline expired";
    }
  }
  if (stats.count() < replications && !stopped) {
    stopped = true;
    stop_reason = "replication budget capped";
  }

  robust::SolveReport report;
  report.method = "monte-carlo";
  report.attempts = {"monte-carlo"};
  report.iterations = stats.count();
  report.converged = !stopped;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (stopped) {
    report.warn(std::string(what) + ": budget stop (" + stop_reason +
                ") after " + std::to_string(stats.count()) + " of " +
                std::to_string(replications) + " replications");
  }
  report.note_attempt_result("monte-carlo", stats.count(),
                             stats.count() >= 2 ? stats.ci_halfwidth(0.95)
                                                : std::nan(""),
                             !stopped);
  span.set("replications", stats.count());
  span.set("mean", stats.count() ? stats.mean() : 0.0);
  span.set("budget_stopped", stopped);
  robust::record_last_report(report);

  if (stats.count() < 2) {
    throw robust::ConvergenceError(
        std::string(what) + ": budget exhausted before 2 replications "
        "completed — no confidence interval possible",
        std::vector<double>(stats.count(), stats.count() ? stats.mean()
                                                         : 0.0),
        report);
  }
  Estimate e = summarize(stats);
  e.budget_stopped = stopped;
  return e;
}

}  // namespace

SystemSimulator::SystemSimulator(std::vector<SimComponent> components,
                                 StructureFn system_up)
    : components_(std::move(components)), up_(std::move(system_up)) {
  detail::require(!components_.empty(), "SystemSimulator: no components");
  detail::require(up_ != nullptr, "SystemSimulator: null structure function");
  for (const auto& c : components_) {
    detail::require(c.lifetime != nullptr,
                    "SystemSimulator: component without lifetime");
  }
  // The all-up system must be up, otherwise the model is degenerate.
  detail::require_model(up_(std::vector<bool>(components_.size(), true)),
                        "SystemSimulator: system down with all components up");
}

SystemSimulator::RunResult SystemSimulator::run(double horizon,
                                                bool stop_at_failure,
                                                Rng& rng) const {
  const std::size_t n = components_.size();
  std::vector<bool> state(n, true);

  // Event queue of (time, component); each component always has exactly one
  // pending event (its next state flip) unless dead without repair.
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (std::size_t i = 0; i < n; ++i) {
    events.emplace(components_[i].lifetime->sample(rng), i);
  }

  RunResult result;
  result.first_failure = std::numeric_limits<double>::infinity();
  result.up_time = 0.0;
  bool system_up = true;
  double now = 0.0;

  static obs::Counter& event_counter = obs::counter("sim.events");
  while (!events.empty()) {
    const auto [when, comp] = events.top();
    if (when > horizon) break;
    events.pop();
    event_counter.add();
    if (system_up) result.up_time += when - now;
    now = when;

    if (state[comp]) {
      state[comp] = false;
      if (components_[comp].repair != nullptr) {
        events.emplace(now + components_[comp].repair->sample(rng), comp);
      }
    } else {
      state[comp] = true;
      events.emplace(now + components_[comp].lifetime->sample(rng), comp);
    }

    const bool next_up = up_(state);
    if (system_up && !next_up) {
      if (now < result.first_failure) result.first_failure = now;
      if (stop_at_failure) {
        result.up_at_horizon = false;
        return result;
      }
    }
    system_up = next_up;
  }
  if (system_up) result.up_time += horizon - now;
  result.up_at_horizon = system_up;
  return result;
}

Estimate SystemSimulator::availability_at(double t, std::size_t replications,
                                          std::uint64_t seed,
                                          const robust::Budget& budget) const {
  detail::require(t >= 0.0, "availability_at: t must be >= 0");
  return run_replications("availability_at", replications, seed, budget,
                          [&](Rng& stream) {
                            const RunResult res = run(t, false, stream);
                            return res.up_at_horizon ? 1.0 : 0.0;
                          });
}

Estimate SystemSimulator::interval_availability(
    double t, std::size_t replications, std::uint64_t seed,
    const robust::Budget& budget) const {
  detail::require(t > 0.0, "interval_availability: t must be > 0");
  return run_replications("interval_availability", replications, seed,
                          budget, [&](Rng& stream) {
                            const RunResult res = run(t, false, stream);
                            return res.up_time / t;
                          });
}

Estimate SystemSimulator::reliability(double t, std::size_t replications,
                                      std::uint64_t seed,
                                      const robust::Budget& budget) const {
  detail::require(t >= 0.0, "reliability: t must be >= 0");
  return run_replications("reliability", replications, seed, budget,
                          [&](Rng& stream) {
                            const RunResult res = run(t, true, stream);
                            return res.first_failure > t ? 1.0 : 0.0;
                          });
}

Estimate SystemSimulator::mttf(std::size_t replications, std::uint64_t seed,
                               const robust::Budget& budget) const {
  return run_replications(
      "mttf", replications, seed, budget, [&](Rng& stream) {
        // Simulate until failure; expand the horizon geometrically if
        // needed.
        double horizon = 1.0;
        for (int attempt = 0;; ++attempt) {
          Rng attempt_stream = stream;  // same randomness, longer horizon
          const RunResult res = run(horizon, true, attempt_stream);
          if (std::isfinite(res.first_failure)) return res.first_failure;
          if (attempt >= 63) {
            throw NumericalError("mttf: system never failed within horizon");
          }
          horizon *= 8.0;
        }
      });
}

SrnSimulator::SrnSimulator(const spn::Srn& net) : net_(net) {}

spn::Marking SrnSimulator::play(
    double t, Rng& rng,
    const std::function<void(double, const spn::Marking&)>& observe) const {
  spn::Marking m = net_.initial_marking();
  double now = 0.0;

  auto settle_immediates = [&](spn::Marking marking) {
    for (int guard = 0; guard < 100000; ++guard) {
      std::vector<spn::TransId> best;
      unsigned best_priority = 0;
      for (spn::TransId tr = 0; tr < net_.transition_count(); ++tr) {
        if (net_.is_timed(tr) || !net_.enabled(tr, marking)) continue;
        const unsigned p = net_.priority_of(tr);
        if (p > best_priority) {
          best_priority = p;
          best.clear();
        }
        if (p == best_priority) best.push_back(tr);
      }
      if (best.empty()) return marking;
      double total = 0.0;
      for (const auto tr : best) total += net_.weight_of(tr);
      double pick = rng.uniform() * total;
      spn::TransId chosen = best.back();
      for (const auto tr : best) {
        if (pick < net_.weight_of(tr)) {
          chosen = tr;
          break;
        }
        pick -= net_.weight_of(tr);
      }
      marking = net_.fire(chosen, marking);
    }
    throw ModelError("SrnSimulator: immediate transitions never settle");
  };

  m = settle_immediates(m);
  while (now < t) {
    // Race the enabled timed transitions.
    double total_rate = 0.0;
    std::vector<std::pair<spn::TransId, double>> enabled;
    for (spn::TransId tr = 0; tr < net_.transition_count(); ++tr) {
      if (!net_.is_timed(tr) || !net_.enabled(tr, m)) continue;
      const double rate = net_.rate_of(tr, m);
      detail::require_model(rate > 0.0,
                            "SrnSimulator: enabled transition with rate <= 0");
      enabled.emplace_back(tr, rate);
      total_rate += rate;
    }
    if (enabled.empty()) {
      observe(t - now, m);  // dead marking: stay here to the horizon
      return m;
    }
    const double dwell = -std::log(rng.uniform_pos()) / total_rate;
    if (now + dwell >= t) {
      observe(t - now, m);
      return m;
    }
    observe(dwell, m);
    now += dwell;
    static obs::Counter& firing_counter = obs::counter("sim.srn_firings");
    firing_counter.add();
    double pick = rng.uniform() * total_rate;
    spn::TransId chosen = enabled.back().first;
    for (const auto& [tr, rate] : enabled) {
      if (pick < rate) {
        chosen = tr;
        break;
      }
      pick -= rate;
    }
    m = settle_immediates(net_.fire(chosen, m));
  }
  return m;
}

Estimate SrnSimulator::transient_reward(const spn::RewardFn& reward, double t,
                                        std::size_t replications,
                                        std::uint64_t seed,
                                        const robust::Budget& budget) const {
  detail::require(reward != nullptr, "transient_reward: null reward");
  return run_replications(
      "transient_reward", replications, seed, budget, [&](Rng& stream) {
        const spn::Marking at_t =
            play(t, stream, [](double, const spn::Marking&) {});
        return reward(at_t);
      });
}

Estimate SrnSimulator::accumulated_reward(const spn::RewardFn& reward,
                                          double t, std::size_t replications,
                                          std::uint64_t seed,
                                          const robust::Budget& budget) const {
  detail::require(reward != nullptr, "accumulated_reward: null reward");
  detail::require(t > 0.0, "accumulated_reward: t must be > 0");
  return run_replications(
      "accumulated_reward", replications, seed, budget, [&](Rng& stream) {
        double acc = 0.0;
        play(t, stream, [&](double interval, const spn::Marking& m) {
          acc += interval * reward(m);
        });
        return acc;
      });
}

}  // namespace relkit::sim
