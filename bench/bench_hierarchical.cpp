// E4 — "Hierarchical and fixed-point iterative methods provide a scalable
// alternative": hierarchy vs monolithic composite CTMC.
//
// A system of K independent duplex subsystems:
//   * monolithic: one CTMC over the product space, 3^K states;
//   * hierarchical: K small (3-state) CTMCs feeding an RBD — K*3 states.
// Both are exact here (the subsystems are independent), so the availability
// must agree to solver precision while costs diverge exponentially.
//
// Second part: a *coupled* variant (a shared repair crew slows per-subsystem
// repair as more subsystems are down) solved by fixed-point iteration on the
// crew utilization, reporting iterations to convergence — the tutorial's
// Cisco/IBM-style fixed-point pattern.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <cmath>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

constexpr double kLambda = 1e-3;
constexpr double kMu = 0.5;

// 3-state duplex subsystem (2up -> 1up -> 0up with single repair).
double duplex_availability(double lambda, double mu) {
  markov::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 2 * lambda);
  c.add_transition(1, 2, lambda);
  c.add_transition(1, 0, mu);
  c.add_transition(2, 1, mu);
  const auto pi = c.steady_state();
  return pi[0] + pi[1];
}

// Monolithic composite: K duplexes in one CTMC (3^K states); system up when
// every duplex has >= 1 unit up.
double monolithic_availability(int k, std::size_t* states_out) {
  std::size_t n = 1;
  for (int i = 0; i < k; ++i) n *= 3;
  *states_out = n;
  markov::Ctmc c;
  c.add_states(n);
  // State encoding: base-3 digits, digit j = #units down in subsystem j.
  std::vector<std::size_t> pow3(k + 1, 1);
  for (int i = 1; i <= k; ++i) pow3[i] = pow3[i - 1] * 3;
  for (std::size_t s = 0; s < n; ++s) {
    for (int j = 0; j < k; ++j) {
      const int digit = static_cast<int>(s / pow3[j]) % 3;
      if (digit < 2) {  // a failure is possible
        c.add_transition(s, s + pow3[j], (2 - digit) * kLambda);
      }
      if (digit > 0) {  // a repair is possible
        c.add_transition(s, s - pow3[j], kMu);
      }
    }
  }
  const auto pi = c.steady_state();
  double avail = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    bool up = true;
    for (int j = 0; j < k; ++j) {
      if (static_cast<int>(s / pow3[j]) % 3 == 2) {
        up = false;
        break;
      }
    }
    if (up) avail += pi[s];
  }
  return avail;
}

double hierarchical_availability(int k) {
  const double a = duplex_availability(kLambda, kMu);
  return std::pow(a, k);  // series of K independent duplex subsystems
}

double ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table() {
  std::printf("== E4: hierarchical vs monolithic composition =============\n");
  std::printf("%-4s %-10s %-12s %-12s %-12s %-10s\n", "K", "mono sts",
              "mono [ms]", "hier [ms]", "|delta A|", "agree");
  for (int k : {2, 3, 4, 5, 6, 7}) {
    std::size_t states = 0;
    auto t0 = std::chrono::steady_clock::now();
    const double mono = monolithic_availability(k, &states);
    const double t_mono = ms(t0);
    t0 = std::chrono::steady_clock::now();
    const double hier = hierarchical_availability(k);
    const double t_hier = ms(t0);
    std::printf("%-4d %-10zu %-12.2f %-12.4f %-12.2e %-10s\n", k, states,
                t_mono, t_hier, std::abs(mono - hier),
                std::abs(mono - hier) < 1e-10 ? "yes" : "NO");
  }

  // Coupled variant: effective repair rate mu_eff = mu / (1 + 0.3 * D)
  // where D = expected number of down subsystems across the farm — a
  // cyclic dependency solved by fixed point.
  std::printf("\nfixed-point solution of the coupled (shared-crew) farm:\n");
  std::printf("%-4s %-14s %-12s %-10s\n", "K", "availability", "iterations",
              "residual");
  for (int k : {4, 8, 16, 32}) {
    core::Hierarchy h;
    h.set_parameter("down_expect", 0.0);
    core::FixedPointResult res{};
    const auto update = [k](const core::Hierarchy& hh) {
      const double mu_eff = kMu / (1.0 + 0.3 * hh.value("down_expect"));
      // Expected down units per duplex from its 3-state model.
      markov::Ctmc c;
      c.add_states(3);
      c.add_transition(0, 1, 2 * kLambda);
      c.add_transition(1, 2, kLambda);
      c.add_transition(1, 0, mu_eff);
      c.add_transition(2, 1, mu_eff);
      const auto pi = c.steady_state();
      return k * (pi[1] + 2.0 * pi[2]);
    };
    res = h.solve_fixed_point({{"down_expect", update}});
    const double mu_eff = kMu / (1.0 + 0.3 * h.value("down_expect"));
    const double a = std::pow(duplex_availability(kLambda, mu_eff), k);
    std::printf("%-4d %-14.9f %-12zu %-10.1e\n", k, a, res.iterations,
                res.residual);
  }
  std::printf("\nShape check: identical availability, but monolithic cost\n"
              "explodes 3^K while the hierarchy stays trivial; the coupled\n"
              "farm converges in a handful of fixed-point iterations.\n\n");
}

void BM_Monolithic(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monolithic_availability(k, &states));
  }
}
BENCHMARK(BM_Monolithic)->DenseRange(2, 7);

void BM_Hierarchical(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchical_availability(k));
  }
}
BENCHMARK(BM_Hierarchical)->DenseRange(2, 7);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
