// E6 — "how to deal with non-exponential distributions".
//
// A 2-state availability model whose repair time is Weibull (shape 0.7:
// heavy-tailed field repair) is solved four ways:
//   1. naive exponential approximation (rate = 1/mean),
//   2. phase-type 2-moment fit expanded into a CTMC, orders shown,
//   3. semi-Markov process (exact steady state),
//   4. discrete-event simulation (confidence interval).
// Shape to reproduce: steady-state availability depends only on means
// (so all methods agree there), but the *transient* availability differs
// visibly between exponential and non-exponential treatments; the PH
// transient converges toward the SMP as the fit gets better.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

constexpr double kUpRate = 1.0 / 100.0;  // exponential lifetime, mean 100 h

void print_table() {
  std::printf("== E6: non-exponential repair across solution methods =====\n");
  const auto repair = weibull(0.7, 4.0);  // mean ~5.06 h, cv ~1.46
  std::printf("repair: %s  mean %.3f  cv %.3f\n\n",
              repair->describe().c_str(), repair->mean(), repair->cv());

  // --- steady state.
  const double mean_up = 1.0 / kUpRate;
  const double a_renewal = mean_up / (mean_up + repair->mean());

  semimarkov::SemiMarkov smp;
  const auto up_s = smp.add_state("up");
  const auto dn_s = smp.add_state("down");
  smp.add_transition(up_s, dn_s, 1.0, exponential(kUpRate));
  smp.add_transition(dn_s, up_s, 1.0, repair);
  const double a_smp = smp.steady_state()[up_s];

  markov::Ctmc expo;
  expo.add_states(2);
  expo.add_transition(0, 1, kUpRate);
  expo.add_transition(1, 0, 1.0 / repair->mean());
  const double a_expo = expo.steady_state()[0];

  std::printf("steady-state availability:\n");
  std::printf("  renewal closed form : %.9f\n", a_renewal);
  std::printf("  SMP                 : %.9f\n", a_smp);
  std::printf("  exponential approx  : %.9f   (means-only: must agree)\n\n",
              a_expo);

  // --- transient at several t: here the distribution shape matters.
  std::printf("transient availability A(t) from 'up':\n");
  std::printf("%-8s %-12s %-12s %-22s %-14s\n", "t", "expo", "SMP",
              "PH fit (order, value)", "|expo-SMP|");
  const phase::PhaseType ph_fit = phase::fit_distribution(*repair);
  // CTMC with PH repair: states 0=up, 1..order = repair stages.
  markov::Ctmc phc;
  const auto up_state = phc.add_state("up");
  std::vector<markov::StateId> stages;
  for (std::size_t i = 0; i < ph_fit.order(); ++i) {
    stages.push_back(phc.add_state("r" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < ph_fit.order(); ++i) {
    if (ph_fit.alpha()[i] > 0.0) {
      phc.add_transition(up_state, stages[i], kUpRate * ph_fit.alpha()[i]);
    }
    for (std::size_t j = 0; j < ph_fit.order(); ++j) {
      if (i != j && ph_fit.t()(i, j) > 0.0) {
        phc.add_transition(stages[i], stages[j], ph_fit.t()(i, j));
      }
    }
    const double exit = ph_fit.exit_rates()[i];
    if (exit > 0.0) phc.add_transition(stages[i], up_state, exit);
  }

  for (double t : {2.0, 5.0, 10.0, 25.0, 50.0, 200.0}) {
    const double pe = expo.transient(expo.point_mass(0), t)[0];
    const double ps = smp.transient(up_s, t, 1500)[up_s];
    const double pp = phc.transient(phc.point_mass(up_state), t)[up_state];
    std::printf("%-8.0f %-12.6f %-12.6f order %zu: %-10.6f %-14.2e\n", t, pe,
                ps, ph_fit.order(), pp, std::abs(pe - ps));
  }
  std::printf("\nShape check: exponential and SMP transients differ by up\n"
              "to ~1e-2 in the settling region and agree in steady state;\n"
              "the PH expansion tracks the SMP far better than the naive\n"
              "exponential at equal analytic convenience.\n\n");
}

void BM_SmpTransient(benchmark::State& state) {
  semimarkov::SemiMarkov smp;
  const auto up_s = smp.add_state("up");
  const auto dn_s = smp.add_state("down");
  smp.add_transition(up_s, dn_s, 1.0, exponential(kUpRate));
  smp.add_transition(dn_s, up_s, 1.0, weibull(0.7, 4.0));
  const auto grid = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(smp.transient(up_s, 25.0, grid));
  }
}
BENCHMARK(BM_SmpTransient)->RangeMultiplier(2)->Range(100, 1600);

void BM_PhFitAndExpand(benchmark::State& state) {
  const auto repair = weibull(0.7, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phase::fit_distribution(*repair));
  }
}
BENCHMARK(BM_PhFitAndExpand);

void BM_PhCdfEvaluation(benchmark::State& state) {
  const phase::PhaseType ph = phase::fit_moments(5.0, 1.5);
  double t = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ph.cdf(t));
    t = t < 40.0 ? t + 0.1 : 0.1;
  }
}
BENCHMARK(BM_PhCdfEvaluation);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
