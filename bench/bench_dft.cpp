// E11 (extension) — dynamic fault trees via the modular (HARP-style)
// method: per-module CTMC cost stays tiny while the static remainder is
// solved combinatorially, and the hot-spare (static) approximation error
// vs true spare dormancy is quantified.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

// A farm of `m` independent warm-spare pairs under an OR (any pair lost
// fails the system), all units at rate 1e-4/h.
dft::Dft spare_farm(std::uint32_t m, double dormancy) {
  std::vector<dft::NodePtr> gates;
  std::map<std::string, double> rates;
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::string p = "p" + std::to_string(i);
    const std::string s = "s" + std::to_string(i);
    gates.push_back(dft::Node::spare_gate(
        "sp" + std::to_string(i),
        {dft::Node::basic(p), dft::Node::basic(s)}, dormancy));
    rates.emplace(p, 1e-4);
    rates.emplace(s, 1e-4);
  }
  return dft::Dft(dft::Node::or_gate(std::move(gates)), std::move(rates));
}

void print_table() {
  std::printf("== E11: dynamic fault trees (modular method) ==============\n");
  std::printf("spare-farm unreliability at t = 1000 h, units 1e-4/h:\n");
  std::printf("%-8s %-10s %-14s %-14s %-12s\n", "pairs", "modules",
              "cold (d=0)", "hot (d=1)", "hot/cold");
  for (std::uint32_t m : {1u, 4u, 16u, 64u}) {
    const dft::Dft cold = spare_farm(m, 0.0);
    const dft::Dft hot = spare_farm(m, 1.0);
    const double qc = cold.unreliability(1000.0);
    const double qh = hot.unreliability(1000.0);
    std::printf("%-8u %-10zu %-14.6e %-14.6e %-12.3f\n", m,
                cold.module_count(), qc, qh, qh / qc);
  }
  std::printf("\nPAND order-dependence (rates a=3e-4, b=2e-4, t=2000 h):\n");
  const auto pand = dft::Node::pand_gate(
      "pand", {dft::Node::basic("a"), dft::Node::basic("b")});
  const dft::Dft seq(pand, {{"a", 3e-4}, {"b", 2e-4}});
  const auto plain = dft::Node::and_gate(
      {dft::Node::basic("a"), dft::Node::basic("b")});
  const dft::Dft both(plain, {{"a", 3e-4}, {"b", 2e-4}});
  std::printf("  AND (order-blind) : %.6e\n", both.unreliability(2000.0));
  std::printf("  PAND (a before b) : %.6e\n", seq.unreliability(2000.0));
  std::printf("\nShape check: a hot spare roughly doubles the per-pair\n"
              "failure probability vs a cold spare at these rates; PAND\n"
              "keeps only the ordered fraction of the AND probability.\n\n");
}

void BM_DftBuildAndSolve(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const dft::Dft farm = spare_farm(m, 0.3);
    benchmark::DoNotOptimize(farm.unreliability(1000.0));
  }
}
BENCHMARK(BM_DftBuildAndSolve)->RangeMultiplier(4)->Range(1, 64);

void BM_DftUnreliabilityOnly(benchmark::State& state) {
  const dft::Dft farm = spare_farm(16, 0.3);
  double t = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(farm.unreliability(t));
    t = t < 5000.0 ? t + 10.0 : 10.0;
  }
}
BENCHMARK(BM_DftUnreliabilityOnly);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
