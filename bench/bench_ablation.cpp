// A1-A3 — ablations of the design choices called out in DESIGN.md.
//
//   A1: BDD variable ordering — first-appearance DFS order (RelKit's
//       default) vs reversed vs interleaved on a series-of-parallel RBD.
//       BDD size is ordering-sensitive; the DFS order keeps related
//       variables adjacent.
//   A2: SOR relaxation factor — fixed omega in {1.0, 1.3, 1.6, adaptive}
//       on a birth-death chain: sweep counts to convergence.
//   A3: uniformization truncation epsilon — accuracy vs Poisson window
//       size on a stiff transient.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

// A1: build the same 2-of-2-parallel x n-series structure function with
// three different variable orders, measure BDD nodes.
std::size_t bdd_nodes_for_order(int n_pairs, int order_kind) {
  bdd::Manager mgr;
  // order_kind 0: pair-adjacent (a0 b0 a1 b1 ...)  [RelKit's DFS order]
  // order_kind 1: grouped (a0 a1 ... b0 b1 ...)
  // order_kind 2: reversed pair-adjacent
  std::vector<std::uint32_t> a_level(n_pairs), b_level(n_pairs);
  for (int i = 0; i < n_pairs; ++i) {
    switch (order_kind) {
      case 0:
        a_level[i] = 2 * i;
        b_level[i] = 2 * i + 1;
        break;
      case 1:
        a_level[i] = i;
        b_level[i] = n_pairs + i;
        break;
      default:
        a_level[i] = 2 * (n_pairs - 1 - i);
        b_level[i] = 2 * (n_pairs - 1 - i) + 1;
        break;
    }
  }
  std::vector<bdd::NodeRef> stages;
  for (int i = 0; i < n_pairs; ++i) {
    stages.push_back(
        mgr.apply_or(mgr.var(a_level[i]), mgr.var(b_level[i])));
  }
  const bdd::NodeRef f = mgr.and_all(stages);
  return mgr.node_count(f);
}

void print_table() {
  std::printf("== A1: BDD variable ordering ===============================\n");
  std::printf("%-8s %-14s %-14s %-14s\n", "pairs", "pair-adjacent",
              "grouped", "reversed");
  for (int n : {4, 8, 12, 16}) {
    std::printf("%-8d %-14zu %-14zu %-14zu\n", n, bdd_nodes_for_order(n, 0),
                bdd_nodes_for_order(n, 1), bdd_nodes_for_order(n, 2));
  }
  std::printf("(the classic ordering lesson: pair-adjacent and reversed\n"
              "stay LINEAR, while separating each pair's halves makes the\n"
              "same function EXPONENTIAL (~2^n nodes) — why RelKit assigns\n"
              "levels in first-appearance DFS order.)\n");

  std::printf("\n== A2: SOR relaxation factor ===============================\n");
  std::printf("%-12s %-12s %-12s\n", "omega", "sweeps", "residual");
  const std::size_t n = 2000;
  SparseBuilder bt(n, n);
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    bt.add(i + 1, i, 1.0);
    diag[i] -= 1.0;
    bt.add(i, i + 1, 1.4);
    diag[i + 1] -= 1.4;
  }
  const SparseMatrix qt = bt.build();
  for (double omega : {1.0, 1.3, 1.6, -1.0 /* adaptive */}) {
    SorOptions opts;
    opts.tol = 1e-10;
    if (omega > 0) {
      opts.omega = omega;
      opts.adaptive_omega = false;
    } else {
      opts.adaptive_omega = true;
    }
    const SorResult res = sor_steady_state(qt, diag, opts);
    std::printf("%-12s %-12zu %-12.1e\n",
                omega > 0 ? std::to_string(omega).substr(0, 4).c_str()
                          : "adaptive",
                res.iterations, res.residual);
  }

  std::printf("\n== A3: uniformization truncation epsilon ===================\n");
  std::printf("%-10s %-16s %-14s\n", "eps", "A(100) value", "err vs 1e-14");
  markov::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1e3);  // stiff
  const auto pi0 = c.point_mass(0);
  const double ref = c.transient(pi0, 100.0, 1e-14)[0];
  for (double eps : {1e-4, 1e-6, 1e-8, 1e-10, 1e-12}) {
    const double v = c.transient(pi0, 100.0, eps)[0];
    std::printf("%-10.0e %-16.12f %-14.2e\n", eps, v, std::abs(v - ref));
  }
  std::printf("\nShape check: a bad variable order turns a linear BDD\n"
              "exponential; adaptive omega roughly halves Gauss-Seidel's\n"
              "sweep count without tuning; uniformization accuracy is flat\n"
              "well past the default (the window is conservative).\n\n");
}

void BM_BddOrdering(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd_nodes_for_order(14, kind));
  }
}
BENCHMARK(BM_BddOrdering)->Arg(0)->Arg(1)->Arg(2);

void BM_SorOmega(benchmark::State& state) {
  const std::size_t n = 2000;
  SparseBuilder bt(n, n);
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    bt.add(i + 1, i, 1.0);
    diag[i] -= 1.0;
    bt.add(i, i + 1, 1.4);
    diag[i + 1] -= 1.4;
  }
  const SparseMatrix qt = bt.build();
  SorOptions opts;
  opts.tol = 1e-10;
  if (state.range(0) > 0) {
    opts.omega = static_cast<double>(state.range(0)) / 10.0;
    opts.adaptive_omega = false;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sor_steady_state(qt, diag, opts));
  }
}
BENCHMARK(BM_SorOmega)->Arg(10)->Arg(13)->Arg(16)->Arg(0);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
