// E9 — analytic vs simulation cross-validation.
//
// Every analytic solver is checked against the independent discrete-event
// simulator on a representative model: RBD reliability, fault-tree
// unavailability, CTMC transient availability, SRN accumulated reward.
// The table reports analytic value, simulation CI, and whether the CI
// covers the analytic value; the series sweeps replication counts to show
// the 1/sqrt(n) CI shrink.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/relkit.hpp"
#include "parallel/pool.hpp"
#include "sim/rare_event.hpp"

using namespace relkit;

namespace {

/// Threads column: wall time and speedup of the 20k-replication duplex
/// availability estimate for jobs = 1/2/4. The jobs >= 2 estimates are
/// identical by the determinism contract (docs/parallelism.md); jobs = 1
/// is the historical sequential path bit for bit. Restores `restore_jobs`
/// (the --jobs flag) afterwards so the microbenchmarks run as requested.
void print_threads_table(unsigned restore_jobs) {
  std::printf("Parallel scaling (duplex availability_at, 20000 reps):\n");
  std::printf("%-6s %-12s %-9s %-12s\n", "jobs", "wall (ms)", "speedup",
              "mean");
  sim::SystemSimulator simulator(
      {{exponential(0.1), exponential(1.0)},
       {exponential(0.1), exponential(1.0)}},
      [](const std::vector<bool>& s) { return s[0] || s[1]; });
  double base_ms = 0.0;
  for (const unsigned jobs : {1u, 2u, 4u}) {
    parallel::set_default_jobs(jobs);
    const auto start = std::chrono::steady_clock::now();
    const auto est = simulator.availability_at(10.0, 20000, 106);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (jobs == 1) base_ms = ms;
    std::printf("%-6u %-12.2f %-9.2f %-12.6f\n", jobs, ms,
                base_ms / ms, est.mean);
  }
  parallel::set_default_jobs(restore_jobs);
  std::printf("\n");
}

void print_table() {
  std::printf("== E9: analytic vs simulation ==============================\n");
  std::printf("%-34s %-12s %-22s %-8s\n", "measure", "analytic",
              "simulation (95% CI)", "covers");

  // (1) RBD: 2-of-3 Weibull units, reliability at t = 50.
  {
    std::vector<rbd::BlockPtr> blocks;
    std::map<std::string, ComponentModel> models;
    std::vector<sim::SimComponent> comps;
    for (int i = 0; i < 3; ++i) {
      const std::string name = "u" + std::to_string(i);
      blocks.push_back(rbd::Block::component(name));
      models.emplace(name,
                     ComponentModel::with_lifetime(weibull(1.5, 80.0)));
      comps.push_back({weibull(1.5, 80.0), nullptr});
    }
    const rbd::Rbd model(rbd::Block::k_of_n(2, blocks), models);
    const double analytic = model.reliability(50.0);
    sim::SystemSimulator simulator(
        comps, [](const std::vector<bool>& s) {
          int up = 0;
          for (bool b : s) up += b ? 1 : 0;
          return up >= 2;
        });
    const auto est = simulator.availability_at(50.0, 20000, 101);
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "RBD 2-of-3 Weibull R(50)", analytic, est.mean,
                est.half_width,
                std::abs(est.mean - analytic) <= 3 * est.half_width ? "yes"
                                                                    : "NO");
  }

  // (2) Fault tree: bridge-ish repeated-event tree, steady unavailability.
  {
    const auto a = ftree::Node::basic("A");
    const auto b = ftree::Node::basic("B");
    const auto c = ftree::Node::basic("C");
    const auto top = ftree::Node::or_gate(
        {ftree::Node::and_gate({a, b}), ftree::Node::and_gate({b, c})});
    const double lam = 0.05, mu = 0.5;
    const ftree::FaultTree tree(
        top, {{"A", ftree::EventModel::repairable(lam, mu)},
              {"B", ftree::EventModel::repairable(lam, mu)},
              {"C", ftree::EventModel::repairable(lam, mu)}});
    const double analytic = tree.top_probability_limit();
    sim::SystemSimulator simulator(
        {{exponential(lam), exponential(mu)},
         {exponential(lam), exponential(mu)},
         {exponential(lam), exponential(mu)}},
        [](const std::vector<bool>& s) {
          const bool fa = !s[0], fb = !s[1], fc = !s[2];
          return !((fa && fb) || (fb && fc));
        });
    const auto est = simulator.availability_at(200.0, 20000, 102);
    const double sim_unavail = 1.0 - est.mean;
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "FT repeated events, steady Q", analytic, sim_unavail,
                est.half_width,
                std::abs(sim_unavail - analytic) <= 3 * est.half_width
                    ? "yes"
                    : "NO");
  }

  // (3) CTMC transient availability of a duplex at t = 10.
  {
    const double lam = 0.1, mu = 1.0;
    markov::Ctmc chain;
    chain.add_states(3);
    chain.add_transition(0, 1, 2 * lam);
    chain.add_transition(1, 2, lam);
    chain.add_transition(1, 0, mu);
    chain.add_transition(2, 1, mu);
    const auto pi = chain.transient(chain.point_mass(0), 10.0);
    const double analytic = pi[0] + pi[1];
    // Equivalent SRN simulated by token game.
    spn::Srn net;
    const auto up = net.add_place("up", 2);
    const auto down = net.add_place("down", 0);
    const auto fail = net.add_timed(
        "fail", [up, lam](const spn::Marking& m) { return lam * m[up]; });
    net.add_input_arc(fail, up);
    net.add_output_arc(fail, down);
    const auto rep = net.add_timed("repair", mu);
    net.add_input_arc(rep, down);
    net.add_output_arc(rep, up);
    sim::SrnSimulator simulator(net);
    const auto est = simulator.transient_reward(
        [up](const spn::Marking& m) { return m[up] >= 1 ? 1.0 : 0.0; }, 10.0,
        20000, 103);
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "CTMC duplex A(10)", analytic, est.mean, est.half_width,
                std::abs(est.mean - analytic) <= 3 * est.half_width ? "yes"
                                                                    : "NO");
  }

  // (4) SRN accumulated up-time over [0, 20].
  {
    const double lam = 0.2, mu = 1.5;
    spn::Srn net;
    const auto up = net.add_place("up", 1);
    const auto down = net.add_place("down", 0);
    const auto fail = net.add_timed("fail", lam);
    net.add_input_arc(fail, up);
    net.add_output_arc(fail, down);
    const auto rep = net.add_timed("repair", mu);
    net.add_input_arc(rep, down);
    net.add_output_arc(rep, up);
    const auto reward = [up](const spn::Marking& m) {
      return m[up] == 1 ? 1.0 : 0.0;
    };
    const double analytic = net.accumulated_reward(reward, 20.0);
    sim::SrnSimulator simulator(net);
    const auto est = simulator.accumulated_reward(reward, 20.0, 20000, 104);
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "SRN accumulated up-time [0,20]", analytic, est.mean,
                est.half_width,
                std::abs(est.mean - analytic) <= 3 * est.half_width ? "yes"
                                                                    : "NO");
  }

  // CI shrink series.
  std::printf("\nCI half-width vs replications (duplex A(10)):\n");
  std::printf("%-10s %-14s\n", "reps", "half-width");
  {
    sim::SystemSimulator simulator(
        {{exponential(0.1), exponential(1.0)},
         {exponential(0.1), exponential(1.0)}},
        [](const std::vector<bool>& s) { return s[0] || s[1]; });
    for (std::size_t reps : {250u, 1000u, 4000u, 16000u}) {
      const auto est = simulator.availability_at(10.0, reps, 105);
      std::printf("%-10zu %-14.6f\n", reps, est.half_width);
    }
  }
  std::printf("\nShape check: every simulation CI covers its analytic\n"
              "value and half-widths shrink ~1/sqrt(reps).\n\n");
}

// ---- E9b: rare-event nine-nines validation ---------------------------------
//
// Three tutorial-grade high-availability models whose steady-state
// unavailability (or dual-failure probability) sits around nine nines —
// exactly where plain Monte Carlo goes blind. Each model gets three rows:
// naive time-horizon MC (10^6 replications of "is the system down at
// t = 24h?"; expected hits << 1, so the estimator reports the one-sided
// rule-of-three bound), RESTART splitting, and balanced-failure-biasing
// importance sampling. The variance-reduction methods must cover the
// analytic value at <= 10% relative error within 10^6 regenerative cycles
// (the acceptance gate asserted by tests/test_sim_rare.cpp under
// RELKIT_LARGE=1; EXPERIMENTS.md E13 records measured factors).

/// BladeCenter power domain: duplex PSU with one shared repair crew
/// (states 0: both up, 1: one up, 2: none up), lam = 1/150000h,
/// mu = 1/8h. U = pi[2] ~ 5.7e-9.
markov::Ctmc psu_duplex_chain(double lam, double mu) {
  markov::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 2 * lam);
  c.add_transition(1, 2, lam);
  c.add_transition(1, 0, mu);
  c.add_transition(2, 1, mu);
  return c;
}

/// GGSN active/standby pair (examples/ggsn_availability.cpp, default
/// parameters). The rare metric is the DUAL-failure probability pi[dual]
/// ~ 5.9e-8 — the uncovered-recovery state dominates total unavailability
/// and is not rare, so the rare-event cross-check targets the state both
/// gateways are lost in.
markov::Ctmc ggsn_chain() {
  const double lam_hw = 1.0 / 30000.0, lam_sw = 1.0 / 1500.0;
  const double mu_reboot = 6.0, mu_hw = 0.25, mu_switch = 120.0;
  const double mu_manual = 2.0, coverage = 0.95;
  const double lam = lam_hw + lam_sw;
  const double w_sw = lam_sw / lam;
  const double mu_node = 1.0 / (w_sw / mu_reboot + (1 - w_sw) / mu_hw);
  markov::Ctmc c;
  const auto both = c.add_state("both_up");
  const auto swo = c.add_state("switching");
  const auto solo = c.add_state("standby_carries");
  const auto manual = c.add_state("uncovered");
  const auto dual = c.add_state("dual_failure");
  c.add_transition(both, swo, lam * coverage);
  c.add_transition(both, manual, lam * (1.0 - coverage));
  c.add_transition(swo, solo, mu_switch);
  c.add_transition(solo, dual, lam);
  c.add_transition(solo, both, mu_node);
  c.add_transition(manual, solo, mu_manual);
  c.add_transition(dual, solo, mu_node);
  return c;
}

/// SIP cluster (examples/models/sip_cluster.rbd): 1-of-2 proxy pair in
/// series with a 4-of-6 application tier, all repairable. U ~ 1.0e-8 with
/// a closed-form product analytic.
struct SipModel {
  std::vector<sim::SimComponent> components;
  sim::StructureFn system_up;
  double analytic = 0.0;
};
SipModel sip_cluster() {
  const double lam_p = 1e-4, mu_p = 1.0, lam_a = 1e-4, mu_a = 2.0;
  SipModel m;
  for (int i = 0; i < 2; ++i) {
    m.components.push_back({exponential(lam_p), exponential(mu_p)});
  }
  for (int i = 0; i < 6; ++i) {
    m.components.push_back({exponential(lam_a), exponential(mu_a)});
  }
  m.system_up = [](const std::vector<bool>& s) {
    if (!s[0] && !s[1]) return false;
    int up = 0;
    for (std::size_t i = 2; i < 8; ++i) up += s[i] ? 1 : 0;
    return up >= 4;
  };
  const double p_p = lam_p / (lam_p + mu_p);
  const double p_a = lam_a / (lam_a + mu_a);
  // App tier up: at most 2 of 6 down.
  double a_app = 0.0;
  const double binom[3] = {1.0, 6.0, 15.0};
  for (int k = 0; k <= 2; ++k) {
    a_app += binom[k] * std::pow(p_a, k) * std::pow(1.0 - p_a, 6 - k);
  }
  m.analytic = 1.0 - (1.0 - p_p * p_p) * a_app;
  return m;
}

/// Naive time-horizon MC on an explicit CTMC: R independent Bernoulli
/// replications of "down at t = horizon?" — the estimator everyone writes
/// first, shown here to be blind at nine nines.
sim::Estimate naive_state_at(const sim::RareEventModel& model, double horizon,
                             std::size_t reps, std::uint64_t seed) {
  Rng master(seed);
  std::size_t down = 0;
  std::vector<sim::RareTransition> trans;
  for (std::size_t r = 0; r < reps; ++r) {
    Rng rng = master.split();
    std::uint64_t s = model.initial_state();
    double t = 0.0;
    while (true) {
      model.transitions(s, trans);
      double total = 0.0;
      for (const auto& tr : trans) total += tr.rate;
      t += -std::log(rng.uniform_pos()) / total;
      if (t >= horizon) break;
      double pick = rng.uniform() * total;
      std::size_t chosen = trans.size() - 1;
      for (std::size_t i = 0; i < trans.size(); ++i) {
        chosen = i;
        if (pick < trans[i].rate) break;
        pick -= trans[i].rate;
      }
      s = trans[chosen].target;
    }
    if (!model.up(s)) ++down;
  }
  sim::Estimate e;
  e.mean = static_cast<double>(down) / static_cast<double>(reps);
  e.replications = reps;
  if (down == 0) {
    e.one_sided = true;
    e.half_width = 3.0 / static_cast<double>(reps);
  } else {
    const double p = e.mean;
    e.half_width =
        1.959963985 * std::sqrt(p * (1.0 - p) / static_cast<double>(reps));
  }
  return e;
}

void print_rare_row(const char* label, double analytic,
                    const sim::Estimate& est) {
  char ci[64];
  char re[16];
  char covers[16];
  if (est.one_sided && est.mean == 0.0) {
    std::snprintf(ci, sizeof(ci), "0 hits; U <= %.1e", est.hi());
    std::snprintf(re, sizeof(re), "-");
    std::snprintf(covers, sizeof(covers), "blind");
  } else {
    std::snprintf(ci, sizeof(ci), "%.3e +/- %.1e", est.mean, est.half_width);
    std::snprintf(re, sizeof(re), "%.3f", est.relative_error());
    std::snprintf(covers, sizeof(covers), "%s",
                  analytic >= est.lo() && analytic <= est.hi() ? "yes" : "NO");
  }
  std::printf("  %-24s %-11.3e %-26s %-7s %-9zu %-8s\n", label, analytic, ci,
              re, est.replications, covers);
}

void print_rare_table() {
  std::printf(
      "== E9b: rare-event nine-nines validation ===================\n");
  std::printf("  %-24s %-11s %-26s %-7s %-9s %-8s\n", "model/method",
              "analytic", "estimate (95% CI)", "rel.err", "cycles", "covers");

  sim::RareEventOptions naive_opts;
  naive_opts.method = sim::RareMethod::kNaive;
  sim::RareEventOptions restart_opts;
  restart_opts.method = sim::RareMethod::kRestart;
  restart_opts.splits = 64;
  sim::RareEventOptions is_opts;
  is_opts.method = sim::RareMethod::kImportanceSampling;

  // (1) BladeCenter PSU duplex, shared repair.
  {
    const markov::Ctmc chain = psu_duplex_chain(1.0 / 150000.0, 1.0 / 8.0);
    const double analytic = chain.steady_state()[2];
    const sim::CtmcRareModel model(chain, [](markov::StateId s) {
      return s != 2;
    });
    std::printf("  bladecenter PSU duplex (U ~ %.1e):\n", analytic);
    print_rare_row("naive @24h", analytic,
                   naive_state_at(model, 24.0, 1'000'000, 201));
    print_rare_row("restart", analytic,
                   sim::rare_unavailability(model, 202, restart_opts));
    print_rare_row("importance sampling", analytic,
                   sim::rare_unavailability(model, 203, is_opts));
  }

  // (2) GGSN active/standby: dual-failure probability.
  {
    const markov::Ctmc chain = ggsn_chain();
    const double analytic = chain.steady_state()[4];
    const sim::CtmcRareModel model(chain, [](markov::StateId s) {
      return s != 4;
    });
    sim::RareEventOptions ggsn_restart = restart_opts;
    ggsn_restart.splits = 16;  // two auto levels: 16^2 branches reach solo
    std::printf("  GGSN dual failure (pi ~ %.1e):\n", analytic);
    print_rare_row("naive @24h", analytic,
                   naive_state_at(model, 24.0, 1'000'000, 204));
    print_rare_row("restart", analytic,
                   sim::rare_unavailability(model, 205, ggsn_restart));
    print_rare_row("importance sampling", analytic,
                   sim::rare_unavailability(model, 206, is_opts));
  }

  // (3) SIP cluster (component model through SystemSimulator).
  {
    const SipModel sip = sip_cluster();
    sim::SystemSimulator simulator(sip.components, sip.system_up);
    const auto at = simulator.availability_at(24.0, 1'000'000, 207);
    sim::Estimate naive;  // flip availability into unavailability terms
    naive.mean = 1.0 - at.mean;
    naive.half_width = at.half_width;
    naive.replications = at.replications;
    naive.one_sided = at.one_sided;
    std::printf("  SIP cluster (U ~ %.1e):\n", sip.analytic);
    print_rare_row("naive @24h", sip.analytic, naive);
    print_rare_row("restart", sip.analytic,
                   simulator.unavailability_rare(208, restart_opts));
    print_rare_row("importance sampling", sip.analytic,
                   simulator.unavailability_rare(209, is_opts));
  }

  std::printf("\nShape check: naive MC is blind (rule-of-three bound only);\n"
              "RESTART and IS cover every analytic value at rel.err <= 0.1\n"
              "within 10^6 regenerative cycles.\n\n");
}

void BM_SimAvailability(benchmark::State& state) {
  sim::SystemSimulator simulator(
      {{exponential(0.1), exponential(1.0)},
       {exponential(0.1), exponential(1.0)}},
      [](const std::vector<bool>& s) { return s[0] || s[1]; });
  const auto reps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.availability_at(10.0, reps, 7));
  }
}
BENCHMARK(BM_SimAvailability)->RangeMultiplier(4)->Range(250, 16000);

void BM_SimAvailabilityJobs(benchmark::State& state) {
  sim::SystemSimulator simulator(
      {{exponential(0.1), exponential(1.0)},
       {exponential(0.1), exponential(1.0)}},
      [](const std::vector<bool>& s) { return s[0] || s[1]; });
  const auto reps = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<unsigned>(state.range(1));
  const unsigned before = parallel::default_jobs();
  parallel::set_default_jobs(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.availability_at(10.0, reps, 7));
  }
  parallel::set_default_jobs(before);
}
BENCHMARK(BM_SimAvailabilityJobs)
    ->Args({16000, 1})
    ->Args({16000, 2})
    ->Args({16000, 4});

/// Rare-event engine throughput on the SIP cluster at a fixed 4096-cycle
/// budget: arg 0 = naive, 1 = RESTART (splits 8), 2 = importance sampling.
void BM_RareUnavailability(benchmark::State& state) {
  const SipModel sip = sip_cluster();
  sim::SystemSimulator simulator(sip.components, sip.system_up);
  sim::RareEventOptions opts;
  opts.method = state.range(0) == 0   ? sim::RareMethod::kNaive
                : state.range(0) == 1 ? sim::RareMethod::kRestart
                                      : sim::RareMethod::kImportanceSampling;
  opts.splits = 8;
  opts.max_cycles = 4096;
  opts.relative_error = 1e-6;  // never reached: always runs the full budget
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.unavailability_rare(7, opts));
  }
}
BENCHMARK(BM_RareUnavailability)->Arg(0)->Arg(1)->Arg(2);

void BM_AnalyticEquivalent(benchmark::State& state) {
  markov::Ctmc chain;
  chain.add_states(3);
  chain.add_transition(0, 1, 0.2);
  chain.add_transition(1, 2, 0.1);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 1, 1.0);
  const auto pi0 = chain.point_mass(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.transient(pi0, 10.0));
  }
}
BENCHMARK(BM_AnalyticEquivalent);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  print_rare_table();
  print_threads_table(opts.jobs);
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
