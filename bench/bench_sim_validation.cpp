// E9 — analytic vs simulation cross-validation.
//
// Every analytic solver is checked against the independent discrete-event
// simulator on a representative model: RBD reliability, fault-tree
// unavailability, CTMC transient availability, SRN accumulated reward.
// The table reports analytic value, simulation CI, and whether the CI
// covers the analytic value; the series sweeps replication counts to show
// the 1/sqrt(n) CI shrink.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/relkit.hpp"
#include "parallel/pool.hpp"

using namespace relkit;

namespace {

/// Threads column: wall time and speedup of the 20k-replication duplex
/// availability estimate for jobs = 1/2/4. The jobs >= 2 estimates are
/// identical by the determinism contract (docs/parallelism.md); jobs = 1
/// is the historical sequential path bit for bit. Restores `restore_jobs`
/// (the --jobs flag) afterwards so the microbenchmarks run as requested.
void print_threads_table(unsigned restore_jobs) {
  std::printf("Parallel scaling (duplex availability_at, 20000 reps):\n");
  std::printf("%-6s %-12s %-9s %-12s\n", "jobs", "wall (ms)", "speedup",
              "mean");
  sim::SystemSimulator simulator(
      {{exponential(0.1), exponential(1.0)},
       {exponential(0.1), exponential(1.0)}},
      [](const std::vector<bool>& s) { return s[0] || s[1]; });
  double base_ms = 0.0;
  for (const unsigned jobs : {1u, 2u, 4u}) {
    parallel::set_default_jobs(jobs);
    const auto start = std::chrono::steady_clock::now();
    const auto est = simulator.availability_at(10.0, 20000, 106);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (jobs == 1) base_ms = ms;
    std::printf("%-6u %-12.2f %-9.2f %-12.6f\n", jobs, ms,
                base_ms / ms, est.mean);
  }
  parallel::set_default_jobs(restore_jobs);
  std::printf("\n");
}

void print_table() {
  std::printf("== E9: analytic vs simulation ==============================\n");
  std::printf("%-34s %-12s %-22s %-8s\n", "measure", "analytic",
              "simulation (95% CI)", "covers");

  // (1) RBD: 2-of-3 Weibull units, reliability at t = 50.
  {
    std::vector<rbd::BlockPtr> blocks;
    std::map<std::string, ComponentModel> models;
    std::vector<sim::SimComponent> comps;
    for (int i = 0; i < 3; ++i) {
      const std::string name = "u" + std::to_string(i);
      blocks.push_back(rbd::Block::component(name));
      models.emplace(name,
                     ComponentModel::with_lifetime(weibull(1.5, 80.0)));
      comps.push_back({weibull(1.5, 80.0), nullptr});
    }
    const rbd::Rbd model(rbd::Block::k_of_n(2, blocks), models);
    const double analytic = model.reliability(50.0);
    sim::SystemSimulator simulator(
        comps, [](const std::vector<bool>& s) {
          int up = 0;
          for (bool b : s) up += b ? 1 : 0;
          return up >= 2;
        });
    const auto est = simulator.availability_at(50.0, 20000, 101);
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "RBD 2-of-3 Weibull R(50)", analytic, est.mean,
                est.half_width,
                std::abs(est.mean - analytic) <= 3 * est.half_width ? "yes"
                                                                    : "NO");
  }

  // (2) Fault tree: bridge-ish repeated-event tree, steady unavailability.
  {
    const auto a = ftree::Node::basic("A");
    const auto b = ftree::Node::basic("B");
    const auto c = ftree::Node::basic("C");
    const auto top = ftree::Node::or_gate(
        {ftree::Node::and_gate({a, b}), ftree::Node::and_gate({b, c})});
    const double lam = 0.05, mu = 0.5;
    const ftree::FaultTree tree(
        top, {{"A", ftree::EventModel::repairable(lam, mu)},
              {"B", ftree::EventModel::repairable(lam, mu)},
              {"C", ftree::EventModel::repairable(lam, mu)}});
    const double analytic = tree.top_probability_limit();
    sim::SystemSimulator simulator(
        {{exponential(lam), exponential(mu)},
         {exponential(lam), exponential(mu)},
         {exponential(lam), exponential(mu)}},
        [](const std::vector<bool>& s) {
          const bool fa = !s[0], fb = !s[1], fc = !s[2];
          return !((fa && fb) || (fb && fc));
        });
    const auto est = simulator.availability_at(200.0, 20000, 102);
    const double sim_unavail = 1.0 - est.mean;
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "FT repeated events, steady Q", analytic, sim_unavail,
                est.half_width,
                std::abs(sim_unavail - analytic) <= 3 * est.half_width
                    ? "yes"
                    : "NO");
  }

  // (3) CTMC transient availability of a duplex at t = 10.
  {
    const double lam = 0.1, mu = 1.0;
    markov::Ctmc chain;
    chain.add_states(3);
    chain.add_transition(0, 1, 2 * lam);
    chain.add_transition(1, 2, lam);
    chain.add_transition(1, 0, mu);
    chain.add_transition(2, 1, mu);
    const auto pi = chain.transient(chain.point_mass(0), 10.0);
    const double analytic = pi[0] + pi[1];
    // Equivalent SRN simulated by token game.
    spn::Srn net;
    const auto up = net.add_place("up", 2);
    const auto down = net.add_place("down", 0);
    const auto fail = net.add_timed(
        "fail", [up, lam](const spn::Marking& m) { return lam * m[up]; });
    net.add_input_arc(fail, up);
    net.add_output_arc(fail, down);
    const auto rep = net.add_timed("repair", mu);
    net.add_input_arc(rep, down);
    net.add_output_arc(rep, up);
    sim::SrnSimulator simulator(net);
    const auto est = simulator.transient_reward(
        [up](const spn::Marking& m) { return m[up] >= 1 ? 1.0 : 0.0; }, 10.0,
        20000, 103);
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "CTMC duplex A(10)", analytic, est.mean, est.half_width,
                std::abs(est.mean - analytic) <= 3 * est.half_width ? "yes"
                                                                    : "NO");
  }

  // (4) SRN accumulated up-time over [0, 20].
  {
    const double lam = 0.2, mu = 1.5;
    spn::Srn net;
    const auto up = net.add_place("up", 1);
    const auto down = net.add_place("down", 0);
    const auto fail = net.add_timed("fail", lam);
    net.add_input_arc(fail, up);
    net.add_output_arc(fail, down);
    const auto rep = net.add_timed("repair", mu);
    net.add_input_arc(rep, down);
    net.add_output_arc(rep, up);
    const auto reward = [up](const spn::Marking& m) {
      return m[up] == 1 ? 1.0 : 0.0;
    };
    const double analytic = net.accumulated_reward(reward, 20.0);
    sim::SrnSimulator simulator(net);
    const auto est = simulator.accumulated_reward(reward, 20.0, 20000, 104);
    std::printf("%-34s %-12.6f %.6f +/- %.6f   %-8s\n",
                "SRN accumulated up-time [0,20]", analytic, est.mean,
                est.half_width,
                std::abs(est.mean - analytic) <= 3 * est.half_width ? "yes"
                                                                    : "NO");
  }

  // CI shrink series.
  std::printf("\nCI half-width vs replications (duplex A(10)):\n");
  std::printf("%-10s %-14s\n", "reps", "half-width");
  {
    sim::SystemSimulator simulator(
        {{exponential(0.1), exponential(1.0)},
         {exponential(0.1), exponential(1.0)}},
        [](const std::vector<bool>& s) { return s[0] || s[1]; });
    for (std::size_t reps : {250u, 1000u, 4000u, 16000u}) {
      const auto est = simulator.availability_at(10.0, reps, 105);
      std::printf("%-10zu %-14.6f\n", reps, est.half_width);
    }
  }
  std::printf("\nShape check: every simulation CI covers its analytic\n"
              "value and half-widths shrink ~1/sqrt(reps).\n\n");
}

void BM_SimAvailability(benchmark::State& state) {
  sim::SystemSimulator simulator(
      {{exponential(0.1), exponential(1.0)},
       {exponential(0.1), exponential(1.0)}},
      [](const std::vector<bool>& s) { return s[0] || s[1]; });
  const auto reps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.availability_at(10.0, reps, 7));
  }
}
BENCHMARK(BM_SimAvailability)->RangeMultiplier(4)->Range(250, 16000);

void BM_SimAvailabilityJobs(benchmark::State& state) {
  sim::SystemSimulator simulator(
      {{exponential(0.1), exponential(1.0)},
       {exponential(0.1), exponential(1.0)}},
      [](const std::vector<bool>& s) { return s[0] || s[1]; });
  const auto reps = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<unsigned>(state.range(1));
  const unsigned before = parallel::default_jobs();
  parallel::set_default_jobs(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.availability_at(10.0, reps, 7));
  }
  parallel::set_default_jobs(before);
}
BENCHMARK(BM_SimAvailabilityJobs)
    ->Args({16000, 1})
    ->Args({16000, 2})
    ->Args({16000, 4});

void BM_AnalyticEquivalent(benchmark::State& state) {
  markov::Ctmc chain;
  chain.add_states(3);
  chain.add_transition(0, 1, 0.2);
  chain.add_transition(1, 2, 0.1);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 1, 1.0);
  const auto pi0 = chain.point_mass(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.transient(pi0, 10.0));
  }
}
BENCHMARK(BM_AnalyticEquivalent);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  print_threads_table(opts.jobs);
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
