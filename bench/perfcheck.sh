#!/bin/sh
# Quick perf gate, registered with ctest under the "perfcheck" label:
#
#   bench/perfcheck.sh [build-dir]
#
# Runs bench_obs_overhead into a temp dir and diffs it against the
# committed baseline (bench/baselines/BENCH_obs_overhead.json) with
# tools/bench_compare.py. Two verdicts with different strictness:
#
#   * the instrumentation contracts ("disabled overhead meets 2% target"
#     and "always-on recorder meets 2% target", printed by the bench
#     itself) always gate — any MISSES line fails. Unoptimized builds
#     print "not gated (unoptimized build)" instead of a verdict: the 2%
#     contracts describe optimized code, and uninlined debug hook costs
#     would fail them meaninglessly;
#   * the baseline comparison is report-only by default, because shared CI
#     machines make wall-clock gating flaky; set RELKIT_PERFCHECK_STRICT=1
#     to make regressions fail too. bench/run_all.sh --compare is the
#     strict full-set lane.
set -u

build_dir="${1:-build}"
repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd -- "$repo"

bench="$build_dir/bench/bench_obs_overhead"
if [ ! -x "$bench" ]; then
  echo "perfcheck: $bench not built" >&2
  exit 1
fi
if [ ! -f bench/baselines/BENCH_obs_overhead.json ]; then
  echo "perfcheck: no baseline (run bench/run_all.sh $build_dir" \
       "bench/baselines)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/fresh"

table="$tmp/table.txt"
if ! "$bench" --json "$tmp/fresh/BENCH_obs_overhead.json" \
     --jobs "${RELKIT_BENCH_JOBS:-$(nproc 2>/dev/null || echo 1)}" \
     --benchmark_min_time=0.05s >"$table" 2>&1; then
  cat "$table" >&2
  echo "perfcheck: bench_obs_overhead exited non-zero" >&2
  exit 1
fi
cat "$table"

# Contract lines: the bench prints "... meets 2% target: PASS" (or
# MISSES ... FAIL) for the disabled-hook, always-on-recorder, and serve
# contracts. Absent lines = obs compiled out = nothing to gate.
if grep -q "MISSES" "$table"; then
  echo "perfcheck: FAIL — an instrumentation contract misses its 2%" \
       "target (see the MISSES line above)" >&2
  exit 1
fi

# Baseline comparison against only this bench's baseline (the other
# BENCH_*.json files were not regenerated here and must not read as
# missing).
mkdir -p "$tmp/baseline"
cp bench/baselines/BENCH_obs_overhead.json "$tmp/baseline/"
[ -f bench/baselines/thresholds.json ] && \
  cp bench/baselines/thresholds.json "$tmp/baseline/"

strict_flag="--report-only"
[ "${RELKIT_PERFCHECK_STRICT:-0}" = "1" ] && strict_flag=""
# shellcheck disable=SC2086
python3 tools/bench_compare.py compare "$tmp/fresh" "$tmp/baseline" \
  $strict_flag
