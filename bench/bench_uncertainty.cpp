// E7 — "how to take into account parametric uncertainty in model inputs".
//
// Duplex-system availability with Gamma posteriors on failure and repair
// rates. Two series:
//   (a) CI width vs number of propagation samples (MC vs LHS) — LHS
//       converges faster for this monotone model;
//   (b) CI width vs amount of field data — more data, narrower posterior,
//       narrower availability interval.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdio>

#include "core/relkit.hpp"
#include "parallel/pool.hpp"

using namespace relkit;

namespace {

double duplex_availability(const std::map<std::string, double>& p) {
  const double lambda = p.at("lambda");
  const double mu = p.at("mu");
  markov::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 2 * lambda);
  c.add_transition(1, 2, lambda);
  c.add_transition(1, 0, mu);
  c.add_transition(2, 1, mu);
  const auto pi = c.steady_state();
  return pi[0] + pi[1];
}

void print_table() {
  std::printf("== E7: parametric uncertainty propagation ==================\n");
  std::printf("(a) 90%% interval width vs sample count  "
              "(posterior from 20 failures / 20000 h)\n");
  std::printf("%-9s %-14s %-14s\n", "samples", "MC width", "LHS width");
  const std::vector<uncertainty::ParamSpec> params{
      {"lambda", uncertainty::rate_posterior(20, 20000.0)},
      {"mu", uncertainty::rate_posterior(20, 50.0)}};
  for (std::size_t n : {100u, 400u, 1600u, 6400u}) {
    Rng r1(7), r2(7);
    const auto mc = uncertainty::propagate(params, duplex_availability, n, r1,
                                           uncertainty::Sampling::kMonteCarlo);
    const auto lhs =
        uncertainty::propagate(params, duplex_availability, n, r2,
                               uncertainty::Sampling::kLatinHypercube);
    const auto [ml, mh] = mc.interval(0.90);
    const auto [ll, lh] = lhs.interval(0.90);
    std::printf("%-9zu %-14.3e %-14.3e\n", n, mh - ml, lh - ll);
  }

  std::printf("\n(b) interval width vs amount of field data (LHS, 3000 "
              "samples)\n");
  std::printf("%-22s %-14s %-16s %-14s\n", "data", "mean A",
              "90% interval", "width");
  for (double scale : {1.0, 4.0, 16.0, 64.0}) {
    const std::vector<uncertainty::ParamSpec> ps{
        {"lambda", uncertainty::rate_posterior(5 * scale, 5000.0 * scale)},
        {"mu", uncertainty::rate_posterior(5 * scale, 12.5 * scale)}};
    Rng rng(11);
    const auto res =
        uncertainty::propagate(ps, duplex_availability, 3000, rng);
    const auto [lo, hi] = res.interval(0.90);
    std::printf("%3.0fx (%3.0f failures)    %.8f [%.6f,%.6f] %-14.3e\n",
                scale, 5 * scale, res.mean, lo, hi, hi - lo);
  }
  std::printf("\n(c) parallel scaling (LHS, 6400 samples, explicit jobs)\n");
  std::printf("%-6s %-12s %-9s %-14s\n", "jobs", "wall (ms)", "speedup",
              "mean A");
  {
    double base_ms = 0.0;
    for (const std::size_t jobs : {1u, 2u, 4u}) {
      Rng rng(17);
      const auto start = std::chrono::steady_clock::now();
      const auto res = uncertainty::propagate(
          params, duplex_availability, 6400, rng,
          uncertainty::Sampling::kLatinHypercube, jobs);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (jobs == 1) base_ms = ms;
      std::printf("%-6zu %-12.2f %-9.2f %-14.8f\n", jobs, ms, base_ms / ms,
                  res.mean);
    }
  }

  std::printf("\nShape check: both samplers' width estimates stabilize by\n"
              "~1-2k samples (LHS's variance reduction appears on the MEAN,\n"
              "not the percentile width — see test_uncertainty); quadrupling\n"
              "the field data roughly halves the interval width (sqrt-n\n"
              "posterior shrink).\n\n");
}

void BM_PropagateMc(benchmark::State& state) {
  const std::vector<uncertainty::ParamSpec> params{
      {"lambda", uncertainty::rate_posterior(20, 20000.0)},
      {"mu", uncertainty::rate_posterior(20, 50.0)}};
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uncertainty::propagate(params, duplex_availability, n, rng,
                               uncertainty::Sampling::kMonteCarlo));
  }
}
BENCHMARK(BM_PropagateMc)->RangeMultiplier(4)->Range(100, 6400);

void BM_PropagateLhs(benchmark::State& state) {
  const std::vector<uncertainty::ParamSpec> params{
      {"lambda", uncertainty::rate_posterior(20, 20000.0)},
      {"mu", uncertainty::rate_posterior(20, 50.0)}};
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uncertainty::propagate(params, duplex_availability, n, rng,
                               uncertainty::Sampling::kLatinHypercube));
  }
}
BENCHMARK(BM_PropagateLhs)->RangeMultiplier(4)->Range(100, 6400);

void BM_PropagateLhsJobs(benchmark::State& state) {
  const std::vector<uncertainty::ParamSpec> params{
      {"lambda", uncertainty::rate_posterior(20, 20000.0)},
      {"mu", uncertainty::rate_posterior(20, 50.0)}};
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uncertainty::propagate(params, duplex_availability, n, rng,
                               uncertainty::Sampling::kLatinHypercube, jobs));
  }
}
BENCHMARK(BM_PropagateLhsJobs)
    ->Args({6400, 1})
    ->Args({6400, 2})
    ->Args({6400, 4});

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
