// E3 — "the resulting state space explosion severely restricts the size of
// the problem": CTMC solution cost vs state count.
//
// Three series:
//   (a) birth-death availability chains from 10 to 100k states — steady
//       state via dense GTH (O(n^3)) vs sparse SOR (O(nnz) per sweep),
//       showing the crossover that forces iterative methods;
//   (b) the sparse-solver tier at 10^3..10^5 states on two chain
//       families (banded alternating-rate, near-completely-decomposable)
//       with per-solver columns — GTH / SOR / BiCGSTAB+RCM+ILU0 /
//       aggregation-disaggregation — all at the same 1e-10 target;
//   (c) transient uniformization cost vs qt (stiffness), showing cost
//       proportional to q t.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/relkit.hpp"
#include "markov/solution_cache.hpp"
#include "robust/robust.hpp"

using namespace relkit;

namespace {

markov::Ctmc birth_death(std::size_t n) {
  markov::Ctmc c;
  c.add_states(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    c.add_transition(i, i + 1, 1.0);
    c.add_transition(i + 1, i, 1.4);
  }
  return c;
}

// Banded family for the sparse-solver tier: alternating failure rates
// keep the stationary vector's dynamic range bounded (pi = c, 2c, c, ...),
// like a real availability model — and unlike a drifted chain, whose
// geometric pi underflows past a few thousand states.
markov::Ctmc banded_alternating(std::size_t n) {
  markov::Ctmc c;
  c.add_states(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    c.add_transition(i, i + 1, (i % 2 == 0) ? 2.0 : 0.5);
    c.add_transition(i + 1, i, 1.0);
  }
  return c;
}

// NCD family: n/100 strongly-mixing 100-state blocks ring-coupled at
// 1e-6 — the Courtois structure aggregation-disaggregation exploits.
markov::Ctmc ncd_chain(std::size_t n) {
  const std::size_t bs = 100;
  const std::size_t blocks = n / bs;
  markov::Ctmc c;
  c.add_states(blocks * bs);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t base = b * bs;
    for (std::size_t i = 0; i + 1 < bs; ++i) {
      c.add_transition(base + i, base + i + 1, 1.0);
      c.add_transition(base + i + 1, base + i, 1.5);
    }
    const std::size_t next = ((b + 1) % blocks) * bs;
    c.add_transition(base, next, 1e-6);
    c.add_transition(next, base, 1e-6);
  }
  return c;
}

double ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table() {
  std::printf("== E3: state-space solution cost vs size ==================\n");
  std::printf("%-9s %-12s %-12s %-14s\n", "states", "GTH [ms]", "SOR [ms]",
              "pi[0] match");
  for (std::size_t n : {10u, 50u, 100u, 200u, 400u, 800u, 3000u, 10000u}) {
    const markov::Ctmc c = birth_death(n);
    double t_gth = -1.0;
    double pi0_gth = -1.0;
    if (n <= 800) {  // dense elimination becomes infeasible quickly
      auto t0 = std::chrono::steady_clock::now();
      markov::SteadyStateOptions opts;
      opts.dense_threshold = 1u << 20;
      pi0_gth = c.steady_state(opts)[0];
      t_gth = ms(t0);
    }
    auto t0 = std::chrono::steady_clock::now();
    markov::SteadyStateOptions sor_opts;
    sor_opts.dense_threshold = 0;
    sor_opts.sor.tol = 1e-10;
    const double pi0_sor = c.steady_state(sor_opts)[0];
    const double t_sor = ms(t0);
    std::printf("%-9zu %-12s %-12.2f %-14s\n", n,
                t_gth < 0 ? "(skipped)" : std::to_string(t_gth).substr(0, 8).c_str(),
                t_sor,
                t_gth < 0 ? "-"
                          : (std::abs(pi0_gth - pi0_sor) < 1e-8 ? "yes"
                                                                : "NO"));
  }

  std::printf("\ntransient uniformization cost (1000-state chain):\n");
  std::printf("%-10s %-12s %-12s\n", "t", "q*t", "time [ms]");
  const markov::Ctmc c = birth_death(1000);
  for (double t : {1.0, 10.0, 100.0, 1000.0}) {
    auto t0 = std::chrono::steady_clock::now();
    const auto pi = c.transient(c.point_mass(0), t);
    benchmark::DoNotOptimize(pi);
    std::printf("%-10.0f %-12.0f %-12.2f\n", t, 2.4 * 1.02 * t, ms(t0));
  }
  std::printf("\nShape check: GTH cost grows ~n^3 and becomes infeasible\n"
              "around 10^3-10^4 states; SOR extends the reach by orders of\n"
              "magnitude (sweep cost O(nnz); sweep count grows with the\n"
              "chain diameter). Uniformization cost grows linearly in qt.\n\n");
}

// Per-solver tier table: every solver that can feasibly run, on the same
// chain, to the same verified 1e-10 residual — the numbers docs/solvers.md
// and EXPERIMENTS.md quote. GTH rows stop at 10^3 (O(n^3)); A/D only
// applies to the NCD family (the detector collapses the banded chain to
// one block).
void print_solver_tier_table() {
  struct Cell {
    double t = -1.0;     // ms; <0 = skipped
    bool failed = false;
  };
  const auto timed = [](const markov::Ctmc& c, robust::SolverChoice which,
                        Cell& cell) {
    markov::SteadyStateOptions opts;
    opts.solver = which;
    opts.sor.tol = 1e-10;
    opts.bicgstab.tol = 1e-10;
    opts.ncd.tol = 1e-10;
    opts.use_cache = false;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      benchmark::DoNotOptimize(c.steady_state(opts));
      cell.t = ms(t0);
    } catch (const std::exception&) {
      cell.failed = true;
    }
  };
  const auto fmt = [](const Cell& cell) {
    if (cell.failed) return std::string("FAILED");
    if (cell.t < 0) return std::string("(skipped)");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", cell.t);
    return std::string(buf);
  };
  std::printf(
      "== sparse-solver tier, verified residual <= 1e-10 ==========\n");
  std::printf("%-8s %-9s %-11s %-11s %-14s %-11s %-10s\n", "family",
              "states", "GTH [ms]", "SOR [ms]", "BiCGSTAB [ms]", "A/D [ms]",
              "SOR/best");
  for (const bool ncd : {false, true}) {
    for (std::size_t n : {1000u, 10000u, 100000u}) {
      const markov::Ctmc c = ncd ? ncd_chain(n) : banded_alternating(n);
      Cell gth, sor, bicgstab, ad;
      if (n <= 1000) timed(c, robust::SolverChoice::kGth, gth);
      timed(c, robust::SolverChoice::kSor, sor);
      timed(c, robust::SolverChoice::kBicgstab, bicgstab);
      if (ncd) timed(c, robust::SolverChoice::kAd, ad);
      const double best =
          ncd && ad.t >= 0 ? std::min(ad.t, bicgstab.t) : bicgstab.t;
      char speed[32] = "-";
      if (sor.t > 0 && best > 0) {
        std::snprintf(speed, sizeof speed, "%.0fx", sor.t / best);
      }
      std::printf("%-8s %-9zu %-11s %-11s %-14s %-11s %-10s\n",
                  ncd ? "ncd" : "banded", n, fmt(gth).c_str(),
                  fmt(sor).c_str(), fmt(bicgstab).c_str(), fmt(ad).c_str(),
                  speed);
    }
  }
  std::printf(
      "\nShape check: BiCGSTAB+RCM+ILU0 cost stays O(nnz * iters) with a\n"
      "near-constant iteration count on banded chains, so the gap over\n"
      "SOR widens with the chain diameter (>=10x at 10^4 states is the\n"
      "perfcheck floor). A/D sweeps depend on the NCD coupling, not the\n"
      "state count. Both reach the same 1e-10 verified residual as the\n"
      "direct methods.\n\n");
}

// Threads table: the parallel state-space kernels (SOR residual, power
// matvec, uniformization matvec) at jobs = 1/2/4 on one large chain. The
// solution cache is held off so every row measures a real solve; results
// are identical across rows by the determinism contract
// (docs/parallelism.md).
void print_threads_table() {
  const std::size_t n = 5000;
  const markov::Ctmc c = birth_death(n);
  const auto pi0 = c.point_mass(0);
  std::printf("== parallel state-space kernels (%zu-state chain) =========\n",
              n);
  std::printf("%-7s %-14s %-16s %-14s\n", "jobs", "SOR [ms]",
              "transient [ms]", "pi[0] match");
  markov::SolutionCache::instance().set_enabled(false);
  double pi0_ref = -1.0;
  for (unsigned jobs : {1u, 2u, 4u}) {
    markov::SteadyStateOptions opts;
    opts.dense_threshold = 0;
    opts.sor.tol = 1e-10;
    opts.jobs = jobs;
    auto t0 = std::chrono::steady_clock::now();
    const double pi0_sor = c.steady_state(opts)[0];
    const double t_sor = ms(t0);
    if (jobs == 1) pi0_ref = pi0_sor;
    t0 = std::chrono::steady_clock::now();
    const auto pi = c.transient(pi0, 50.0, 1e-12, jobs);
    benchmark::DoNotOptimize(pi);
    const double t_tr = ms(t0);
    std::printf("%-7u %-14.2f %-16.2f %-14s\n", jobs, t_sor, t_tr,
                pi0_sor == pi0_ref ? "yes" : "NO");
  }
  markov::SolutionCache::instance().set_enabled(true);
  std::printf("\n");
}

// Cache ablation: the same steady-state solve repeated with the
// SolutionCache off (every repeat pays the full solve) and on (repeats are
// served from the cache).
void print_cache_table() {
  const std::size_t n = 3000;
  const markov::Ctmc c = birth_death(n);
  markov::SteadyStateOptions opts;
  opts.dense_threshold = 0;
  opts.sor.tol = 1e-10;
  auto& cache = markov::SolutionCache::instance();
  std::printf("== solution cache ablation (%zu-state chain, 5 repeats) ===\n",
              n);
  std::printf("%-10s %-14s %-14s %-8s\n", "cache", "total [ms]",
              "per-solve [ms]", "hits");
  for (const bool enabled : {false, true}) {
    cache.clear();
    cache.set_enabled(enabled);
    const std::uint64_t hits_before = cache.hits();
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 5; ++rep) {
      benchmark::DoNotOptimize(c.steady_state(opts));
    }
    const double total = ms(t0);
    std::printf("%-10s %-14.2f %-14.2f %-8llu\n", enabled ? "on" : "off",
                total, total / 5.0,
                static_cast<unsigned long long>(cache.hits() - hits_before));
  }
  cache.set_enabled(true);
  cache.clear();
  std::printf("\n");
}

void BM_GthSteadyState(benchmark::State& state) {
  const markov::Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)));
  markov::SteadyStateOptions opts;
  opts.dense_threshold = 1u << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.steady_state(opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GthSteadyState)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_SorSteadyState(benchmark::State& state) {
  const markov::Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)));
  markov::SteadyStateOptions opts;
  opts.dense_threshold = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.steady_state(opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SorSteadyState)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity();

void BM_BicgstabSteadyState(benchmark::State& state) {
  const markov::Ctmc c =
      banded_alternating(static_cast<std::size_t>(state.range(0)));
  markov::SteadyStateOptions opts;
  opts.solver = robust::SolverChoice::kBicgstab;
  opts.bicgstab.tol = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.steady_state(opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BicgstabSteadyState)->RangeMultiplier(4)->Range(1024, 65536)
    ->Complexity();

void BM_AdSteadyState(benchmark::State& state) {
  const markov::Ctmc c = ncd_chain(static_cast<std::size_t>(state.range(0)));
  markov::SteadyStateOptions opts;
  opts.solver = robust::SolverChoice::kAd;
  opts.ncd.tol = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.steady_state(opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AdSteadyState)->RangeMultiplier(4)->Range(1600, 102400)
    ->Complexity();

void BM_TransientUniformization(benchmark::State& state) {
  const markov::Ctmc c = birth_death(1000);
  const double t = static_cast<double>(state.range(0));
  const auto pi0 = c.point_mass(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.transient(pi0, t));
  }
}
BENCHMARK(BM_TransientUniformization)->RangeMultiplier(4)->Range(1, 256);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  print_solver_tier_table();
  print_threads_table();
  print_cache_table();
  if (opts.table_only) return 0;
  // The BM_ loops re-solve identical chains; keep the cache out of the
  // measurement so they report solver cost, not lookup cost.
  markov::SolutionCache::instance().set_enabled(false);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
