// E3 — "the resulting state space explosion severely restricts the size of
// the problem": CTMC solution cost vs state count.
//
// Two series:
//   (a) birth-death availability chains from 10 to 100k states — steady
//       state via dense GTH (O(n^3)) vs sparse SOR (O(nnz) per sweep),
//       showing the crossover that forces iterative methods;
//   (b) transient uniformization cost vs qt (stiffness), showing cost
//       proportional to q t.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

markov::Ctmc birth_death(std::size_t n) {
  markov::Ctmc c;
  c.add_states(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    c.add_transition(i, i + 1, 1.0);
    c.add_transition(i + 1, i, 1.4);
  }
  return c;
}

double ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table() {
  std::printf("== E3: state-space solution cost vs size ==================\n");
  std::printf("%-9s %-12s %-12s %-14s\n", "states", "GTH [ms]", "SOR [ms]",
              "pi[0] match");
  for (std::size_t n : {10u, 50u, 100u, 200u, 400u, 800u, 3000u, 10000u}) {
    const markov::Ctmc c = birth_death(n);
    double t_gth = -1.0;
    double pi0_gth = -1.0;
    if (n <= 800) {  // dense elimination becomes infeasible quickly
      auto t0 = std::chrono::steady_clock::now();
      markov::SteadyStateOptions opts;
      opts.dense_threshold = 1u << 20;
      pi0_gth = c.steady_state(opts)[0];
      t_gth = ms(t0);
    }
    auto t0 = std::chrono::steady_clock::now();
    markov::SteadyStateOptions sor_opts;
    sor_opts.dense_threshold = 0;
    sor_opts.sor.tol = 1e-10;
    const double pi0_sor = c.steady_state(sor_opts)[0];
    const double t_sor = ms(t0);
    std::printf("%-9zu %-12s %-12.2f %-14s\n", n,
                t_gth < 0 ? "(skipped)" : std::to_string(t_gth).substr(0, 8).c_str(),
                t_sor,
                t_gth < 0 ? "-"
                          : (std::abs(pi0_gth - pi0_sor) < 1e-8 ? "yes"
                                                                : "NO"));
  }

  std::printf("\ntransient uniformization cost (1000-state chain):\n");
  std::printf("%-10s %-12s %-12s\n", "t", "q*t", "time [ms]");
  const markov::Ctmc c = birth_death(1000);
  for (double t : {1.0, 10.0, 100.0, 1000.0}) {
    auto t0 = std::chrono::steady_clock::now();
    const auto pi = c.transient(c.point_mass(0), t);
    benchmark::DoNotOptimize(pi);
    std::printf("%-10.0f %-12.0f %-12.2f\n", t, 2.4 * 1.02 * t, ms(t0));
  }
  std::printf("\nShape check: GTH cost grows ~n^3 and becomes infeasible\n"
              "around 10^3-10^4 states; SOR extends the reach by orders of\n"
              "magnitude (sweep cost O(nnz); sweep count grows with the\n"
              "chain diameter). Uniformization cost grows linearly in qt.\n\n");
}

void BM_GthSteadyState(benchmark::State& state) {
  const markov::Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)));
  markov::SteadyStateOptions opts;
  opts.dense_threshold = 1u << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.steady_state(opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GthSteadyState)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_SorSteadyState(benchmark::State& state) {
  const markov::Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)));
  markov::SteadyStateOptions opts;
  opts.dense_threshold = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.steady_state(opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SorSteadyState)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity();

void BM_TransientUniformization(benchmark::State& state) {
  const markov::Ctmc c = birth_death(1000);
  const double t = static_cast<double>(state.range(0));
  const auto pi0 = c.point_mass(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.transient(pi0, t));
  }
}
BENCHMARK(BM_TransientUniformization)->RangeMultiplier(4)->Range(1, 256);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
