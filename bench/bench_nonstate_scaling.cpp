// E1 — "Relatively efficient algorithms ... handle systems with hundreds of
// components": non-state-space scalability.
//
// Regenerates the tutorial's scalability series: BDD size and solve time of
// series-parallel RBDs and k-of-n fault trees as the component count grows
// from 10 to 640. The claim to check: cost grows mildly (near-linearly for
// these structures) rather than exploding like a state space would (2^n).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

rbd::Rbd make_series_of_pairs(int n_pairs) {
  std::vector<rbd::BlockPtr> stages;
  std::map<std::string, ComponentModel> models;
  for (int i = 0; i < n_pairs; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string b = "b" + std::to_string(i);
    stages.push_back(rbd::Block::parallel(
        {rbd::Block::component(a), rbd::Block::component(b)}));
    models.emplace(a, ComponentModel::fixed(0.99));
    models.emplace(b, ComponentModel::fixed(0.99));
  }
  return rbd::Rbd(rbd::Block::series(stages), models);
}

ftree::FaultTree make_kofn_tree(std::uint32_t n) {
  std::vector<ftree::NodePtr> leaves;
  std::map<std::string, ftree::EventModel> events;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = "e" + std::to_string(i);
    leaves.push_back(ftree::Node::basic(name));
    events.emplace(name, ftree::EventModel::fixed(0.995));
  }
  return ftree::FaultTree(
      ftree::Node::k_of_n_gate(n / 4 + 1, std::move(leaves)), events);
}

void print_table() {
  std::printf("== E1: non-state-space scalability =======================\n");
  std::printf("%-8s | %-22s | %-26s\n", "", "series-parallel RBD",
              "k-of-n fault tree");
  std::printf("%-8s | %-10s %-11s | %-10s %-10s %-10s\n", "n", "BDD nodes",
              "solve [us]", "BDD nodes", "solve[us]", "top prob");
  for (int n : {10, 20, 40, 80, 160, 320, 640}) {
    const auto rbd_model = make_series_of_pairs(n / 2);
    auto t0 = std::chrono::steady_clock::now();
    const double avail = rbd_model.availability();
    const double rbd_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(avail);

    const auto tree = make_kofn_tree(static_cast<std::uint32_t>(n));
    t0 = std::chrono::steady_clock::now();
    const double top = tree.top_probability_limit();
    const double ft_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-8d | %-10zu %-11.1f | %-10zu %-10.1f %-10.3e\n", n,
                rbd_model.bdd_node_count(), rbd_us, tree.bdd_node_count(),
                ft_us, top);
  }
  std::printf("\nShape check: BDD nodes grow ~linearly (series-parallel)\n"
              "and ~quadratically (k-of-n); a composite CTMC over the same\n"
              "components would need 2^n states (E3 shows that wall).\n\n");
}

void BM_RbdCompileAndSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto model = make_series_of_pairs(n / 2);
    benchmark::DoNotOptimize(model.availability());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RbdCompileAndSolve)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity();

void BM_FtreeCompileAndSolve(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto tree = make_kofn_tree(n);
    benchmark::DoNotOptimize(tree.top_probability_limit());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FtreeCompileAndSolve)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity();

void BM_ProbEvalOnly(benchmark::State& state) {
  const auto model = make_series_of_pairs(static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.availability());
  }
}
BENCHMARK(BM_ProbEvalOnly)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
