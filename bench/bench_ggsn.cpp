// E8 — the Cisco GGSN-style real-world availability table.
//
// Active/standby gateway CTMC with imperfect coverage, reboot vs field
// repair, and switchover delay. Regenerates the tutorial's headline table:
// downtime minutes/year as a function of failover coverage, plus the
// sensitivity ranking that tells the operator where to invest. Shape to
// reproduce: coverage dominates; moving c from 0.9 to 0.999 buys an order
// of magnitude of downtime.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

struct Params {
  double lam_hw = 1.0 / 30000.0;
  double lam_sw = 1.0 / 1500.0;
  double mu_reboot = 6.0;
  double mu_hw = 0.25;
  double mu_switch = 120.0;
  double mu_manual = 2.0;
  double coverage = 0.95;
};

markov::Ctmc build(const Params& p) {
  const double lam = p.lam_hw + p.lam_sw;
  const double w_sw = p.lam_sw / lam;
  const double mu_node = 1.0 / (w_sw / p.mu_reboot + (1 - w_sw) / p.mu_hw);
  markov::Ctmc c;
  const auto both = c.add_state("both");
  const auto swo = c.add_state("switching");
  const auto solo = c.add_state("solo");
  const auto manual = c.add_state("manual");
  const auto dual = c.add_state("dual");
  c.add_transition(both, swo, lam * p.coverage);
  c.add_transition(both, manual, lam * (1 - p.coverage));
  c.add_transition(swo, solo, p.mu_switch);
  c.add_transition(solo, dual, lam);
  c.add_transition(solo, both, mu_node);
  c.add_transition(manual, solo, p.mu_manual);
  c.add_transition(dual, solo, mu_node);
  return c;
}

double availability(const Params& p) {
  const markov::Ctmc c = build(p);
  const auto pi = c.steady_state();
  return pi[c.state_index("both")] + pi[c.state_index("solo")];
}

void print_table() {
  std::printf("== E8: GGSN availability vs failover coverage =============\n");
  Params p;
  std::printf("%-10s %-14s %-12s %-8s\n", "coverage", "availability",
              "min/yr", "nines");
  for (double c : {0.90, 0.95, 0.99, 0.999, 0.9999}) {
    p.coverage = c;
    const double a = availability(p);
    std::printf("%-10.4f %.9f  %8.2f   %.2f\n", c, a,
                core::downtime_minutes_per_year(a), core::nines(a));
  }

  // Exact parametric sensitivity of A w.r.t. coverage via the dQ method.
  p.coverage = 0.95;
  const markov::Ctmc c = build(p);
  const double lam = p.lam_hw + p.lam_sw;
  Matrix dq(5, 5);
  // d/dc of: both->swo rate lam*c ; both->manual rate lam*(1-c).
  dq(0, 1) = lam;
  dq(0, 3) = -lam;
  const auto dpi = markov::steady_state_sensitivity(c, dq);
  const double dA = dpi[0] + dpi[2];  // states both + solo
  std::printf("\nexact dA/dcoverage at c=0.95: %.4e  "
              "(downtime saved per +0.01 coverage: %.2f min/yr)\n", dA,
              -core::downtime_minutes_per_year(1.0) * 0.0 +
                  0.01 * dA * 365.25 * 24 * 60);

  // Transient: availability over the first week after commissioning.
  std::printf("\nA(t) from fresh deployment (c = 0.95):\n");
  const auto pi0 = c.point_mass(0);
  for (double t : {1.0, 24.0, 72.0, 168.0}) {
    const auto pi = c.transient(pi0, t);
    std::printf("  t = %5.0f h : %.9f\n", t, pi[0] + pi[2]);
  }
  std::printf("\nShape check: downtime falls roughly 10x from c=0.90 to\n"
              "c=0.999, and coverage dominates every other knob (E8/E4\n"
              "sensitivity ranking).\n\n");
}

void BM_GgsnSolve(benchmark::State& state) {
  Params p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(availability(p));
  }
}
BENCHMARK(BM_GgsnSolve);

void BM_GgsnSensitivity(benchmark::State& state) {
  Params p;
  const markov::Ctmc c = build(p);
  Matrix dq(5, 5);
  const double lam = p.lam_hw + p.lam_sw;
  dq(0, 1) = lam;
  dq(0, 3) = -lam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::steady_state_sensitivity(c, dq));
  }
}
BENCHMARK(BM_GgsnSensitivity);

void BM_GgsnTransientWeek(benchmark::State& state) {
  Params p;
  const markov::Ctmc c = build(p);
  const auto pi0 = c.point_mass(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.transient(pi0, 168.0));
  }
}
BENCHMARK(BM_GgsnTransientWeek);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
