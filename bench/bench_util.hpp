// Shared command-line handling for the bench_* binaries.
//
// Every bench accepts, in addition to the native google-benchmark flags:
//
//   --json OUT      (or --json=OUT)  write machine-readable results to OUT
//                                    in google-benchmark's JSON schema
//   --table-only                     print the experiment table and exit
//                                    (skips the microbenchmark loop)
//   --jobs N        (or --jobs=N)    parallelism degree for the fan-out
//                                    paths (sets parallel::set_default_jobs;
//                                    default 1 = sequential). Recorded into
//                                    the JSON context as "jobs" so
//                                    BENCH_*.json files say how they ran.
//
// bench/run_all.sh uses --json to regenerate the BENCH_<name>.json files
// referenced from EXPERIMENTS.md.
//
// google-benchmark rejects flags it does not know, so init() consumes the
// RelKit flags before benchmark::Initialize sees argv: --json is rewritten
// into --benchmark_out=OUT plus --benchmark_out_format=json, --table-only
// and --jobs are stripped. A malformed value (missing/empty OUT, non-integer
// or zero jobs) prints usage and exits with code 4, matching relkit_cli's
// invalid-argument convention.
#pragma once

#include <benchmark/benchmark.h>

#include <sys/utsname.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "parallel/pool.hpp"

namespace benchjson {

/// "model name" line from /proc/cpuinfo, or "unknown" — stamped into the
/// JSON context so bench_compare.py can refuse to diff runs from
/// different machines as if they were regressions.
inline std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) break;
      const auto begin = line.find_first_not_of(" \t", colon + 1);
      if (begin == std::string::npos) break;
      return line.substr(begin);
    }
  }
  return "unknown";
}

/// Kernel release (uname -r), or "unknown".
inline std::string kernel_release() {
  struct utsname u {};
  if (::uname(&u) != 0) return "unknown";
  return u.release;
}

struct Options {
  std::string json_path;    ///< empty = no JSON output requested
  bool table_only = false;  ///< print the table, skip the benchmark loop
  unsigned jobs = 1;        ///< effective parallelism degree
};

[[noreturn]] inline void usage_exit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--json OUT] [--table-only] [--jobs N] "
               "[google-benchmark flags]\n",
               prog);
  std::exit(4);
}

/// Consumes the RelKit bench flags from argc/argv (rewriting --json into
/// the native --benchmark_out flags); call before benchmark::Initialize.
inline Options init(int* argc, char** argv) {
  Options opts;
  // Rewritten flag strings must outlive argv consumers; reserve so the
  // char* pointers handed to argv never move.
  static std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(2 * *argc) + 2);
  std::vector<char*> keep;
  keep.push_back(argv[0]);
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 ||
        std::strncmp(arg, "--json=", 7) == 0) {
      if (arg[6] == '=') {
        opts.json_path = arg + 7;
      } else if (i + 1 < *argc) {
        opts.json_path = argv[++i];
      }
      if (opts.json_path.empty()) {
        std::fprintf(stderr, "%s: --json needs an output file\n", argv[0]);
        usage_exit(argv[0]);
      }
      storage.push_back("--benchmark_out=" + opts.json_path);
      keep.push_back(storage.back().data());
      storage.push_back("--benchmark_out_format=json");
      keep.push_back(storage.back().data());
    } else if (std::strcmp(arg, "--table-only") == 0) {
      opts.table_only = true;
    } else if (std::strcmp(arg, "--jobs") == 0 ||
               std::strncmp(arg, "--jobs=", 7) == 0) {
      const char* value = nullptr;
      if (arg[6] == '=') {
        value = arg + 7;
      } else if (i + 1 < *argc) {
        value = argv[++i];
      }
      char* rest = nullptr;
      const unsigned long parsed =
          value ? std::strtoul(value, &rest, 10) : 0;
      if (value == nullptr || rest == value || *rest != '\0' || parsed == 0) {
        std::fprintf(stderr, "%s: --jobs needs a positive integer\n",
                     argv[0]);
        usage_exit(argv[0]);
      }
      opts.jobs = static_cast<unsigned>(parsed);
    } else {
      keep.push_back(argv[i]);
    }
  }
  for (std::size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  *argc = static_cast<int>(keep.size());
  argv[*argc] = nullptr;
  relkit::parallel::set_default_jobs(opts.jobs);
  // Every BENCH_*.json records how parallel its run was, so speedup tables
  // in EXPERIMENTS.md are reproducible from the context alone.
  benchmark::AddCustomContext("jobs", std::to_string(opts.jobs));
  // RelKit's own optimization level (google-benchmark's library_build_type
  // describes libbenchmark, not this code): run_all.sh refuses to archive
  // baselines stamped "debug".
#if defined(__OPTIMIZE__) || defined(NDEBUG)
  benchmark::AddCustomContext("relkit_build_type", "release");
#else
  benchmark::AddCustomContext("relkit_build_type", "debug");
#endif
  // Host identity: numbers measured on different silicon or kernels are
  // not comparable, so the comparator warns on a context mismatch instead
  // of reporting cross-machine noise as regressions.
  benchmark::AddCustomContext("cpu_model", cpu_model());
  benchmark::AddCustomContext("kernel", kernel_release());
  return opts;
}

}  // namespace benchjson
