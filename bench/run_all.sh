#!/bin/sh
# Regenerates every BENCH_<name>.json referenced from EXPERIMENTS.md.
#
#   bench/run_all.sh [--compare] [--allow-debug] [build-dir] [output-dir]
#
# --compare: after regenerating, diff the fresh JSON against the committed
# baselines in bench/baselines/ with tools/bench_compare.py (strict: any
# regression beyond its threshold exits non-zero listing the offenders).
#
# Baselines must come from optimized builds: each bench stamps its JSON
# context with relkit_build_type (bench/bench_util.hpp), and any output
# stamped "debug" fails the run — debug timings archived as baselines make
# every future Release run look like a huge improvement and mask real
# regressions. --allow-debug overrides, for local experiments only.
#
# Builds nothing: expects the bench binaries to exist under
# <build-dir>/bench (default: build). JSON files land in <output-dir>
# (default: the repo root), one BENCH_<name>.json per bench_<name> binary,
# in google-benchmark's JSON schema. The human-readable experiment tables
# still go to stdout.
#
# Parallelism: RELKIT_BENCH_JOBS (default: nproc) is passed to every bench
# as --jobs and recorded into each JSON file's context, so the archived
# numbers say how parallel the run was.
#
# Every bench runs even if an earlier one fails; the script exits non-zero
# at the end listing the failures instead of continuing silently.
set -u

compare=0
allow_debug=0
while :; do
  case "${1:-}" in
    --compare) compare=1; shift ;;
    --allow-debug) allow_debug=1; shift ;;
    *) break ;;
  esac
done
build_dir="${1:-build}"
out_dir="${2:-.}"
bench_dir="$build_dir/bench"
jobs="${RELKIT_BENCH_JOBS:-$(nproc 2>/dev/null || echo 1)}"

if [ ! -d "$bench_dir" ]; then
  echo "run_all.sh: no bench binaries in $bench_dir (build first:" \
       "cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
  exit 1
fi

# Host identity, for the log next to the per-file context stamps: numbers
# from different machines are not comparable, and bench_compare.py warns
# when a baseline's cpu_model/kernel context disagrees with the fresh run.
echo "host: $(uname -sr), $(grep -m1 '^model name' /proc/cpuinfo 2>/dev/null \
  | cut -d: -f2- | sed 's/^ *//' || echo 'unknown cpu')"

found=0
failed=""
for bin in "$bench_dir"/bench_*; do
  [ -x "$bin" ] || continue
  found=1
  name="$(basename "$bin")"
  short="${name#bench_}"
  out="$out_dir/BENCH_${short}.json"
  echo "== $name -> $out (jobs=$jobs)"
  if ! "$bin" --json "$out" --jobs "$jobs" --benchmark_min_time=0.05s; then
    echo "run_all.sh: $name exited non-zero" >&2
    failed="$failed $name"
  elif [ "$allow_debug" -eq 0 ] && \
       ! grep -q '"relkit_build_type": *"release"' "$out"; then
    echo "run_all.sh: $out was not recorded from a Release build of RelKit" \
         "(context lacks relkit_build_type=release; stale binaries miss the" \
         "stamp entirely); rebuild with -DCMAKE_BUILD_TYPE=Release or pass" \
         "--allow-debug for throwaway local runs" >&2
    failed="$failed $name(debug-build)"
  fi
done

if [ "$found" -eq 0 ]; then
  echo "run_all.sh: no bench_* executables found in $bench_dir" >&2
  exit 1
fi
if [ -n "$failed" ]; then
  echo "run_all.sh: FAILED benches:$failed" >&2
  exit 1
fi
echo "done: $(ls "$out_dir"/BENCH_*.json 2>/dev/null | wc -l) JSON files"

if [ "$compare" -eq 1 ]; then
  script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
  python3 "$script_dir/../tools/bench_compare.py" compare \
    "$out_dir" "$script_dir/baselines"
fi
