#!/bin/sh
# Regenerates every BENCH_<name>.json referenced from EXPERIMENTS.md.
#
#   bench/run_all.sh [build-dir] [output-dir]
#
# Builds nothing: expects the bench binaries to exist under
# <build-dir>/bench (default: build). JSON files land in <output-dir>
# (default: the repo root), one BENCH_<name>.json per bench_<name> binary,
# in google-benchmark's JSON schema. The human-readable experiment tables
# still go to stdout.
set -eu

build_dir="${1:-build}"
out_dir="${2:-.}"
bench_dir="$build_dir/bench"

if [ ! -d "$bench_dir" ]; then
  echo "run_all.sh: no bench binaries in $bench_dir (build first:" \
       "cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
  exit 1
fi

found=0
for bin in "$bench_dir"/bench_*; do
  [ -x "$bin" ] || continue
  found=1
  name="$(basename "$bin")"
  short="${name#bench_}"
  out="$out_dir/BENCH_${short}.json"
  echo "== $name -> $out"
  "$bin" --json "$out" --benchmark_min_time=0.05s
done

if [ "$found" -eq 0 ]; then
  echo "run_all.sh: no bench_* executables found in $bench_dir" >&2
  exit 1
fi
echo "done: $(ls "$out_dir"/BENCH_*.json 2>/dev/null | wc -l) JSON files"
