// Obs-layer overhead check: the instrumentation contract (docs/
// observability.md) is that a hook with tracing disabled costs one relaxed
// atomic load and a predictable branch — under 2% of any real workload.
//
// This bench pins the claim three ways on the hottest instrumented path
// (BDD construction + evaluation, which fires bdd.ite_calls /
// bdd.nodes_allocated / bdd.prob_evals on every solve):
//
//   1. A/B wall time of the workload with obs disabled vs. enabled
//      (no sinks attached) — the enabled case is the *upper* bound, the
//      disabled case is what production runs pay;
//   2. hook density: how many hooks one workload iteration fires
//      (counted with obs enabled);
//   3. per-hook cost of a disabled Counter::add() measured in a tight
//      loop, giving a deterministic estimate
//        overhead = hooks/iter x cost/hook / workload time
//      that does not depend on run-to-run scheduler jitter;
//   4. sink ablation: the same workload with a RingBufferSink and with a
//      ChromeTraceSink attached, plus tight-loop per-span costs for each
//      sink — what --trace / --trace-format=chrome add on top of
//      "enabled, no sink";
//   5. flight-recorder ablation: the enabled workload with the always-on
//      crash recorder switched off, plus a tight-loop enabled-hook A/B
//      (recorder on vs. off) that gates the recorder's own contract — it
//      rides along on every enabled run, so it must stay under the same
//      2% line. A final row prices the per-span perf_event read cost of
//      --profile hardware counters where the kernel allows them.
//
// A second table pins the same contract on the relkit_serve request path:
// every request pays a fixed trace-id + sampling cost even with --trace
// and --access-log off, so the gate here is that fixed cost against the
// median /solve round trip (again a deterministic tight-loop estimate,
// not an A/B of two noisy network timings), plus ablation rows for
// sampled tracing, full tracing, and the access log.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/relkit.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/hw_counters.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace relkit;

namespace {

ftree::FaultTree make_kofn_tree(std::uint32_t n) {
  std::vector<ftree::NodePtr> leaves;
  std::map<std::string, ftree::EventModel> events;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = "e" + std::to_string(i);
    leaves.push_back(ftree::Node::basic(name));
    events.emplace(name, ftree::EventModel::fixed(0.995));
  }
  return ftree::FaultTree(
      ftree::Node::k_of_n_gate(n / 4 + 1, std::move(leaves)), events);
}

double one_workload() {
  const auto tree = make_kofn_tree(96);
  return tree.top_probability_limit();
}

// Contract verdict line. perfcheck.sh greps the output for "MISSES", so an
// unoptimized build — where per-hook cost is dominated by missing inlining,
// not by design — prints the number but does not gate: the 2% contracts
// are statements about optimized code, and bench/run_all.sh already
// refuses debug-built baselines for the same reason.
void print_contract_line(const char* label, double pct) {
#if defined(__OPTIMIZE__) || defined(NDEBUG)
  std::printf("%s %s 2%% target: %s\n", label, pct < 2.0 ? "meets" : "MISSES",
              pct < 2.0 ? "PASS" : "FAIL");
#else
  (void)pct;
  std::printf("%s vs 2%% target: not gated (unoptimized build)\n", label);
#endif
}

/// Median seconds per workload iteration over `reps` timed repetitions.
double time_workload(int reps) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(one_workload());
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

void print_table() {
  std::printf("== obs overhead on the BDD hot path ======================\n");
  if (!obs::kCompiledIn) {
    std::printf("obs compiled out (RELKIT_OBS=OFF): hooks are constexpr-"
                "false branches, overhead is zero by construction.\n\n");
    return;
  }

  constexpr int kReps = 31;
  obs::set_enabled(false);
  time_workload(5);  // warm up allocators and caches
  const double disabled_s = time_workload(kReps);
  obs::set_enabled(true);
  const double enabled_s = time_workload(kReps);

  // Flight-recorder ablation: the recorder rides along whenever obs is
  // enabled (always-on is its contract — a crash report needs the tail
  // nobody asked for in advance), so "enabled" above already includes it.
  // Turning it off isolates what the always-on rings cost.
  obs::flight::set_enabled(false);
  const double norec_s = time_workload(kReps);
  obs::flight::set_enabled(true);

  // Sink ablation: same workload, spans now reach an attached sink.
  auto& tracer = obs::Tracer::instance();
  const auto ring = std::make_shared<obs::RingBufferSink>();
  tracer.add_sink(ring);
  const double ring_s = time_workload(kReps);
  tracer.remove_sink(ring);
  const char* chrome_path = "bench_obs_overhead.chrome.tmp.json";
  std::shared_ptr<obs::ChromeTraceSink> chrome =
      obs::ChromeTraceSink::open(chrome_path);
  double chrome_s = 0.0;
  if (chrome) {
    tracer.add_sink(chrome);
    chrome_s = time_workload(kReps);
    tracer.remove_sink(chrome);
    chrome.reset();  // finalizes the file
    std::remove(chrome_path);
  }

  // Hook density of one iteration.
  auto& registry = obs::Registry::instance();
  registry.reset_values();
  benchmark::DoNotOptimize(one_workload());
  const std::uint64_t hooks_per_iter =
      obs::counter("bdd.ite_calls").value() +
      obs::counter("bdd.ite_cache_hits").value() +
      obs::counter("bdd.nodes_allocated").value() +
      obs::counter("bdd.prob_evals").value();
  obs::set_enabled(false);
  registry.reset_values();

  // Per-hook disabled cost, amortized over a tight loop.
  static obs::Counter& probe = obs::counter("bench.obs_probe");
  constexpr std::uint64_t kProbeLoops = 50'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kProbeLoops; ++i) probe.add();
  const double probe_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double ns_per_hook = probe_s / kProbeLoops * 1e9;

  // Per-hook ENABLED cost with the recorder off vs. on. A tight loop hits
  // one counter repeatedly, so this measures the coalesced path (repeat
  // hits fold into the newest ring event: a compare + add, not a full
  // 64-byte store) — the path hot solver loops live on, and the one that
  // regresses first if anyone reintroduces shared-cacheline traffic. The
  // mixed-counter cost shows up in the ungated workload A/B row instead.
  const auto time_hooks = [&]() {
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kProbeLoops; ++i) probe.add();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  obs::set_enabled(true);
  obs::flight::set_enabled(false);
  const double hook_norec_s = time_hooks();
  obs::flight::set_enabled(true);
  const double hook_rec_s = time_hooks();
  obs::set_enabled(false);
  const double recorder_ns_per_hook =
      (hook_rec_s - hook_norec_s) / kProbeLoops * 1e9;
  const double recorder_pct =
      hooks_per_iter *
      (recorder_ns_per_hook > 0.0 ? recorder_ns_per_hook * 1e-9 : 0.0) /
      disabled_s * 100.0;

  const double estimated_pct =
      hooks_per_iter * (probe_s / kProbeLoops) / disabled_s * 100.0;
  const double ab_pct = (enabled_s / disabled_s - 1.0) * 100.0;

  std::printf("workload: build + solve 2-of-96 fault tree (BDD)\n");
  std::printf("%-42s %10.1f us\n", "median iteration, obs disabled",
              disabled_s * 1e6);
  std::printf("%-42s %10.1f us\n", "median iteration, obs enabled (no sink)",
              enabled_s * 1e6);
  std::printf("%-42s %10.1f us\n", "median iteration, enabled, recorder off",
              norec_s * 1e6);
  std::printf("%-42s %10.1f us\n", "median iteration, enabled + ring sink",
              ring_s * 1e6);
  if (chrome_s > 0.0) {
    std::printf("%-42s %10.1f us\n",
                "median iteration, enabled + chrome sink", chrome_s * 1e6);
  }
  std::printf("%-42s %10.2f %%\n", "enabled-vs-disabled A/B delta", ab_pct);
  std::printf("%-42s %10llu\n", "hooks fired per iteration",
              static_cast<unsigned long long>(hooks_per_iter));
  std::printf("%-42s %10.2f ns\n", "cost per disabled hook", ns_per_hook);
  std::printf("%-42s %10.3f %%\n", "estimated disabled-hook overhead",
              estimated_pct);
  print_contract_line("disabled overhead", estimated_pct);
  std::printf("%-42s %10.2f %%\n", "recorder on-vs-off A/B delta (enabled)",
              (enabled_s / norec_s - 1.0) * 100.0);
  std::printf("%-42s %10.2f ns\n",
              "flight-recorder cost per coalesced hook", recorder_ns_per_hook);
  std::printf("%-42s %10.3f %%\n", "estimated always-on recorder overhead",
              recorder_pct);
  print_contract_line("always-on recorder", recorder_pct);

  // Hardware counters (--profile only): per-span cost of the two
  // perf read() syscalls, or the reason they are unavailable here.
  if (obs::hw::available()) {
    constexpr int kSpanLoops = 100'000;
    obs::set_enabled(true);
    obs::hw::set_profiling(true);
    const auto hw0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpanLoops; ++i) {
      obs::Span span("bench.obs_span");
      obs::HwCounterGroup hw_counters(span);
      benchmark::DoNotOptimize(&hw_counters);
    }
    const double hw_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - hw0)
                            .count();
    obs::hw::set_profiling(false);
    obs::set_enabled(false);
    std::printf("%-42s %10.1f ns\n", "hw-counter cost per profiled span",
                hw_s / kSpanLoops * 1e9);
  } else {
    std::printf("hw counters unavailable here: %s\n",
                obs::hw::unavailable_reason());
  }
  std::printf("\n");
}

// ---- serve request path ----------------------------------------------------

constexpr const char* kServeModel =
    "model rbd duplex\n"
    "event a prob 0.99\n"
    "event b prob 0.95\n"
    "gate top and a b\n"
    "top top\n";

std::string serve_request_body() {
  return "{\"model\":\"" + obs::json_escape(kServeModel) + "\"}";
}

/// Starts a server with `options`, times `reps` sequential POST /solve
/// round trips, stops it. Returns the median seconds per request, or a
/// negative value when a request fails.
double time_serve_requests(serve::ServerOptions options, int reps) {
  options.port = 0;
  serve::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve bench: %s\n", error.c_str());
    return -1.0;
  }
  const std::string body = serve_request_body();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  double failed = 0.0;
  for (int r = 0; r < reps + 3; ++r) {  // 3 warm-up round trips
    const auto t0 = std::chrono::steady_clock::now();
    const auto response =
        serve::http_post("127.0.0.1", server.port(), "/solve", body);
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!response.ok || response.status != 200) failed = 1.0;
    if (r >= 3) samples.push_back(dt);
  }
  server.stop();
  if (failed > 0.0 || samples.empty()) return -1.0;
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

void print_serve_table() {
  std::printf("== serve-path tracing / access-log overhead ==============\n");
  if (!obs::kCompiledIn) {
    std::printf("obs compiled out (RELKIT_OBS=OFF): request tracing is "
                "unavailable, nothing to gate.\n\n");
    return;
  }
  obs::set_enabled(true);

  constexpr int kReps = 31;
  serve::ServerOptions off;  // no trace_path, no access_log_path
  const double off_s = time_serve_requests(off, kReps);

  serve::ServerOptions sampled = off;
  sampled.trace_path = "bench_obs_overhead.serve_trace.tmp.json";
  sampled.trace_sample = 0.1;
  const double sampled_s = time_serve_requests(sampled, kReps);

  serve::ServerOptions full = off;
  full.trace_path = "bench_obs_overhead.serve_trace.tmp.json";
  full.trace_sample = 1.0;
  const double full_s = time_serve_requests(full, kReps);
  std::remove("bench_obs_overhead.serve_trace.tmp.json");

  serve::ServerOptions logged = off;
  logged.access_log_path = "bench_obs_overhead.serve_access.tmp.log";
  const double logged_s = time_serve_requests(logged, kReps);
  std::remove("bench_obs_overhead.serve_access.tmp.log");

  obs::set_enabled(false);
  if (off_s <= 0.0 || sampled_s <= 0.0 || full_s <= 0.0 || logged_s <= 0.0) {
    std::printf("serve bench requests failed; skipping the serve gate.\n\n");
    return;
  }

  // The cost a request pays with tracing and logging both off: one trace-id
  // generation + hex expansion + one sampling draw. Measured in a tight
  // loop so the gate does not ride on loopback round-trip jitter.
  constexpr std::uint64_t kIdLoops = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kIdLoops; ++i) {
    benchmark::DoNotOptimize(obs::trace_id_hex(obs::generate_trace_id()));
    benchmark::DoNotOptimize(obs::sample_trace(0.0));
  }
  const double id_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double ns_per_request = id_s / kIdLoops * 1e9;
  const double estimated_pct = (id_s / kIdLoops) / off_s * 100.0;

  std::printf("workload: POST /solve, inline 2-event RBD, loopback\n");
  std::printf("%-42s %10.1f us\n", "median request, tracing + log off",
              off_s * 1e6);
  std::printf("%-42s %10.1f us\n", "median request, tracing sampled 10%",
              sampled_s * 1e6);
  std::printf("%-42s %10.1f us\n", "median request, tracing full",
              full_s * 1e6);
  std::printf("%-42s %10.1f us\n", "median request, access log on",
              logged_s * 1e6);
  std::printf("%-42s %10.2f ns\n", "trace-id + sampling cost per request",
              ns_per_request);
  std::printf("%-42s %10.3f %%\n", "estimated disabled-tracing overhead",
              estimated_pct);
  print_contract_line("serve disabled overhead", estimated_pct);
  std::printf("\n");
}

void BM_WorkloadObsDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) benchmark::DoNotOptimize(one_workload());
}
BENCHMARK(BM_WorkloadObsDisabled);

void BM_WorkloadObsEnabled(benchmark::State& state) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("obs compiled out");
    return;
  }
  obs::set_enabled(true);
  for (auto _ : state) benchmark::DoNotOptimize(one_workload());
  obs::set_enabled(false);
}
BENCHMARK(BM_WorkloadObsEnabled);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  static obs::Counter& c = obs::counter("bench.obs_probe");
  for (auto _ : state) c.add();
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAddEnabled(benchmark::State& state) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("obs compiled out");
    return;
  }
  obs::set_enabled(true);
  static obs::Counter& c = obs::counter("bench.obs_probe");
  for (auto _ : state) c.add();
  obs::set_enabled(false);
}
BENCHMARK(BM_CounterAddEnabled);

// Same enabled hook with the flight recorder off: the gap against
// BM_CounterAddEnabled is the per-hit cost of the always-on crash rings.
void BM_CounterAddEnabledRecorderOff(benchmark::State& state) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("obs compiled out");
    return;
  }
  obs::set_enabled(true);
  obs::flight::set_enabled(false);
  static obs::Counter& c = obs::counter("bench.obs_probe");
  for (auto _ : state) c.add();
  obs::flight::set_enabled(true);
  obs::set_enabled(false);
}
BENCHMARK(BM_CounterAddEnabledRecorderOff);

void BM_SpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench.obs_span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabledRingSink(benchmark::State& state) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("obs compiled out");
    return;
  }
  obs::set_enabled(true);
  const auto sink = std::make_shared<obs::RingBufferSink>();
  obs::Tracer::instance().add_sink(sink);
  for (auto _ : state) {
    obs::Span span("bench.obs_span");
    benchmark::DoNotOptimize(&span);
  }
  obs::Tracer::instance().remove_sink(sink);
  obs::set_enabled(false);
}
BENCHMARK(BM_SpanEnabledRingSink);

// Fixed iteration count: the chrome sink buffers every span until flush
// (the object format has no valid incremental prefix), so an open-ended
// benchmark loop would grow memory without bound.
void BM_SpanEnabledChromeSink(benchmark::State& state) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("obs compiled out");
    return;
  }
  const char* path = "bench_obs_overhead.chrome.bm.tmp.json";
  std::shared_ptr<obs::ChromeTraceSink> sink =
      obs::ChromeTraceSink::open(path);
  if (!sink) {
    state.SkipWithError("cannot open temp trace file");
    return;
  }
  obs::set_enabled(true);
  obs::Tracer::instance().add_sink(sink);
  for (auto _ : state) {
    obs::Span span("bench.obs_span");
    benchmark::DoNotOptimize(&span);
  }
  obs::Tracer::instance().remove_sink(sink);
  sink.reset();  // finalizes and closes the file
  std::remove(path);
  obs::set_enabled(false);
}
BENCHMARK(BM_SpanEnabledChromeSink)->Iterations(1 << 16);

// Span with a perf_event counter group attached, as --profile does on the
// solver hot paths. Skipped (not failed) where the kernel forbids
// perf_event_open — containers and locked-down hosts — matching the
// graceful degradation of --profile itself.
void BM_SpanEnabledHwCounters(benchmark::State& state) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("obs compiled out");
    return;
  }
  if (!obs::hw::available()) {
    state.SkipWithError(obs::hw::unavailable_reason());
    return;
  }
  obs::set_enabled(true);
  obs::hw::set_profiling(true);
  for (auto _ : state) {
    obs::Span span("bench.obs_span");
    obs::HwCounterGroup hw_counters(span);
    benchmark::DoNotOptimize(&hw_counters);
  }
  obs::hw::set_profiling(false);
  obs::set_enabled(false);
}
BENCHMARK(BM_SpanEnabledHwCounters);

// Serve-path ablation rows. Fixed iteration counts: each request is a full
// loopback HTTP round trip (~hundreds of us) and the traced variants buffer
// spans until server shutdown, so an open-ended loop would be both slow and
// unbounded in memory.
void run_serve_benchmark(benchmark::State& state,
                         const serve::ServerOptions& base) {
  if (!obs::kCompiledIn) {
    state.SkipWithError("obs compiled out");
    return;
  }
  obs::set_enabled(true);
  serve::ServerOptions options = base;
  options.port = 0;
  serve::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    state.SkipWithError(error.c_str());
    obs::set_enabled(false);
    return;
  }
  const std::string body = serve_request_body();
  for (auto _ : state) {
    const auto response =
        serve::http_post("127.0.0.1", server.port(), "/solve", body);
    if (!response.ok || response.status != 200) {
      state.SkipWithError("request failed");
      break;
    }
  }
  server.stop();
  obs::set_enabled(false);
}

void BM_ServeSolveTracingOff(benchmark::State& state) {
  run_serve_benchmark(state, serve::ServerOptions{});
}
BENCHMARK(BM_ServeSolveTracingOff)->Iterations(200);

void BM_ServeSolveTracingSampled(benchmark::State& state) {
  serve::ServerOptions options;
  options.trace_path = "bench_obs_overhead.serve_trace.bm.tmp.json";
  options.trace_sample = 0.1;
  run_serve_benchmark(state, options);
  std::remove(options.trace_path.c_str());
}
BENCHMARK(BM_ServeSolveTracingSampled)->Iterations(200);

void BM_ServeSolveTracingFull(benchmark::State& state) {
  serve::ServerOptions options;
  options.trace_path = "bench_obs_overhead.serve_trace.bm.tmp.json";
  options.trace_sample = 1.0;
  run_serve_benchmark(state, options);
  std::remove(options.trace_path.c_str());
}
BENCHMARK(BM_ServeSolveTracingFull)->Iterations(200);

void BM_ServeSolveAccessLog(benchmark::State& state) {
  serve::ServerOptions options;
  options.access_log_path = "bench_obs_overhead.serve_access.bm.tmp.log";
  run_serve_benchmark(state, options);
  std::remove(options.access_log_path.c_str());
}
BENCHMARK(BM_ServeSolveAccessLog)->Iterations(200);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  print_serve_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
