// E10 — importance measures guide design ("which component should we
// improve?").
//
// Two canonical rankings from the tutorial:
//   (a) the bridge network — the bridging element E scores lowest on every
//       measure (reinforcing it is a waste), the series-critical elements
//       top the list;
//   (b) a series-parallel fault tree where Birnbaum and Fussell-Vesely
//       disagree on the ranking (Birnbaum favors the structurally critical
//       event, F-V the one that actually fails), the tutorial's caution
//       about picking the right measure.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

rbd::Rbd bridge_rbd() {
  const auto a = rbd::Block::component("A");
  const auto b = rbd::Block::component("B");
  const auto c = rbd::Block::component("C");
  const auto d = rbd::Block::component("D");
  const auto e = rbd::Block::component("E");
  const auto root = rbd::Block::parallel({
      rbd::Block::series({a, b}),
      rbd::Block::series({c, d}),
      rbd::Block::series({a, e, d}),
      rbd::Block::series({c, e, b}),
  });
  std::map<std::string, ComponentModel> models;
  models.emplace("A", ComponentModel::fixed(0.95));
  models.emplace("B", ComponentModel::fixed(0.99));
  models.emplace("C", ComponentModel::fixed(0.95));
  models.emplace("D", ComponentModel::fixed(0.99));
  models.emplace("E", ComponentModel::fixed(0.90));
  return rbd::Rbd(root, models);
}

void print_table() {
  std::printf("== E10: importance rankings ================================\n");
  std::printf("(a) bridge network (p_A=p_C=0.95, p_B=p_D=0.99, p_E=0.90)\n");
  const rbd::Rbd bridge = bridge_rbd();
  std::printf("%-6s %-12s %-12s %-12s\n", "comp", "Birnbaum", "criticality",
              "Fussell-V");
  for (const auto& row : bridge.importance(-1.0)) {
    std::printf("%-6s %-12.4e %-12.4e %-12.4e\n", row.component.c_str(),
                row.birnbaum, row.criticality, row.fussell_vesely);
  }

  std::printf("\n(b) fault tree where measures disagree:\n"
              "    TOP = OR(AND(A, B), C); qA = 0.3, qB = 0.3, qC = 0.001\n");
  const auto top = ftree::Node::or_gate(
      {ftree::Node::and_gate(
           {ftree::Node::basic("A"), ftree::Node::basic("B")}),
       ftree::Node::basic("C")});
  const ftree::FaultTree tree(top,
                              {{"A", ftree::EventModel::fixed(0.7)},
                               {"B", ftree::EventModel::fixed(0.7)},
                               {"C", ftree::EventModel::fixed(0.999)}});
  std::printf("%-6s %-12s %-12s %-10s %-10s %-10s\n", "event", "Birnbaum",
              "F-V", "RAW", "RRW", "crit");
  for (const auto& row : tree.importance(-1.0)) {
    std::printf("%-6s %-12.4e %-12.4e %-10.3f %-10.3f %-10.4f\n",
                row.event.c_str(), row.birnbaum, row.fussell_vesely, row.raw,
                row.rrw, row.criticality);
  }
  std::printf("\nShape check: in (a) the bridging element E ranks last on\n"
              "Birnbaum; in (b) C tops Birnbaum/RAW (structurally critical)\n"
              "while A and B dominate Fussell-Vesely (they actually fail).\n\n");
}

void BM_BridgeImportance(benchmark::State& state) {
  const rbd::Rbd bridge = bridge_rbd();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bridge.importance(-1.0));
  }
}
BENCHMARK(BM_BridgeImportance);

void BM_FtreeImportanceLarge(benchmark::State& state) {
  // Importance on a 120-event voting tree: the production-scale case.
  const auto gen = ftree::generate_wide_tree(30, 2, 4, 1e-3);
  const ftree::FaultTree tree(gen.top, gen.events);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.importance(-1.0));
  }
}
BENCHMARK(BM_FtreeImportanceLarge);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
