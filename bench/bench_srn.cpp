// E5 — SRN modeling power: dependencies that break the independence
// assumption.
//
// An n-unit pool with ONE shared repair facility, expressed as an SRN and
// automatically converted into a CTMC (n+1 tangible markings). The table
// contrasts the exact dependent availability with the combinatorial
// "independent repair" approximation, showing the approximation's optimism
// growing with n — the tutorial's core argument for state-space methods.
// Also reports reachability-graph generation cost as the token count grows.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <cmath>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

constexpr double kLambda = 0.01;
constexpr double kMu = 0.2;

spn::Srn shared_repair_net(unsigned n) {
  spn::Srn net;
  const auto up = net.add_place("up", n);
  const auto down = net.add_place("down", 0);
  const auto fail = net.add_timed(
      "fail", [up](const spn::Marking& m) { return kLambda * m[up]; });
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, down);
  const auto repair = net.add_timed("repair", kMu);  // single crew
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);
  return net;
}

double ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table() {
  std::printf("== E5: shared repair via SRN vs independent approximation =\n");
  std::printf("%-4s %-9s %-16s %-16s %-12s\n", "n", "markings",
              "A(k-of-n exact)", "A(independent)", "optimism");
  const double a1 = kMu / (kLambda + kMu);
  for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
    const unsigned k = n - 1;  // tolerate one unit down
    spn::Srn net = shared_repair_net(n);
    const auto up = net.place_index("up");
    const auto g = net.generate();
    const double exact = net.probability(
        [up, k](const spn::Marking& m) { return m[up] >= k; });

    // Independent approximation: each unit at availability a1, k-of-n.
    double indep = 0.0;
    for (unsigned j = k; j <= n; ++j) {
      double binom = 1.0;
      for (unsigned i = 0; i < j; ++i) {
        binom *= static_cast<double>(n - i) / (i + 1.0);
      }
      indep += binom * std::pow(a1, j) * std::pow(1 - a1, n - j);
    }
    std::printf("%-4u %-9zu %-16.9f %-16.9f %+12.2e\n", n, g.markings.size(),
                exact, indep, indep - exact);
  }

  std::printf("\nreachability-graph generation cost (3-place cycle, K "
              "tokens):\n%-6s %-10s %-12s\n", "K", "markings", "gen+solve[ms]");
  for (std::uint32_t ktok : {5u, 10u, 20u, 40u, 80u}) {
    spn::Srn net;
    const auto p0 = net.add_place("p0", ktok);
    const auto p1 = net.add_place("p1", 0);
    const auto p2 = net.add_place("p2", 0);
    const auto t01 = net.add_timed(
        "t01", [p0](const spn::Marking& m) { return 1.0 * m[p0]; });
    net.add_input_arc(t01, p0);
    net.add_output_arc(t01, p1);
    const auto t12 = net.add_timed(
        "t12", [p1](const spn::Marking& m) { return 2.0 * m[p1]; });
    net.add_input_arc(t12, p1);
    net.add_output_arc(t12, p2);
    const auto t20 = net.add_timed(
        "t20", [p2](const spn::Marking& m) { return 3.0 * m[p2]; });
    net.add_input_arc(t20, p2);
    net.add_output_arc(t20, p0);
    auto t0 = std::chrono::steady_clock::now();
    const auto g = net.generate();
    const auto pi = g.ctmc.steady_state();
    benchmark::DoNotOptimize(pi);
    std::printf("%-6u %-10zu %-12.2f\n", ktok, g.markings.size(), ms(t0));
  }
  std::printf("\nShape check: the independent approximation is optimistic\n"
              "and its error grows with n (repair queueing ignored); SRN\n"
              "generation cost tracks the marking count C(K+2,2).\n\n");
}

void BM_SrnGenerate(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    spn::Srn net = shared_repair_net(n);
    benchmark::DoNotOptimize(net.generate());
  }
}
BENCHMARK(BM_SrnGenerate)->RangeMultiplier(2)->Range(4, 256);

void BM_SrnGenerateAndSolve(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    spn::Srn net = shared_repair_net(n);
    const auto g = net.generate();
    benchmark::DoNotOptimize(g.ctmc.steady_state());
  }
}
BENCHMARK(BM_SrnGenerateAndSolve)->RangeMultiplier(2)->Range(4, 256);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
