// E2 — the Boeing 787 story: bounds when exact solution is infeasible.
//
// Sweeps the width of a synthetic voting fault tree and compares the cost
// and tightness of exact BDD solution, union bounds, Esary-Proschan, and
// Bonferroni truncated inclusion-exclusion. Shape to reproduce: bound
// computation stays cheap while exact cut enumeration cost climbs, and the
// Bonferroni interval tightens rapidly with depth.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdio>

#include "core/relkit.hpp"

using namespace relkit;

namespace {

double ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table() {
  std::printf("== E2: bounds vs exact on growing voting trees ============\n");
  std::printf("%-9s %-8s | %-11s %-9s | %-12s %-12s %-12s %-12s\n",
              "clusters", "events", "exact", "t[ms]", "union width",
              "EP width", "Bonf2 width", "Bonf3 width");
  for (std::uint32_t m : {10u, 20u, 40u, 80u, 160u}) {
    const auto gen = ftree::generate_wide_tree(m, 2, 4, 2e-3);
    const ftree::FaultTree tree(gen.top, gen.events);
    auto t0 = std::chrono::steady_clock::now();
    const double exact = tree.top_probability_limit();
    const double t_exact = ms(t0);
    const auto q = tree.event_probs(-1.0);
    const auto cuts = tree.manager().minimal_solutions(tree.top_ref());
    const Interval u = ftree::union_bound(cuts, q);
    const Interval ep = ftree::esary_proschan_bound(cuts, {}, q);
    const Interval b2 = ftree::bonferroni_bound(cuts, q, 2);
    // Depth-3 cost grows as C(6m, 3); keep it to the smaller trees.
    const Interval b3 =
        m <= 40 ? ftree::bonferroni_bound(cuts, q, 3) : Interval(0.0, 1.0);
    std::printf("%-9u %-8zu | %.5e %-9.2f | %-12.2e %-12.2e %-12.2e %-12s\n",
                m, tree.event_count(), exact, t_exact, u.width(), ep.width(),
                b2.width(),
                m <= 40 ? std::to_string(b3.width()).substr(0, 10).c_str()
                        : "(skipped)");
    // Sanity: all bounds bracket the exact value.
    if (!(u.lo <= exact && exact <= u.hi && b2.lo <= exact &&
          exact <= b2.hi && ep.hi >= exact)) {
      std::printf("  !! BOUND VIOLATION\n");
    }
  }
  std::printf("\nShape check: union width grows with the cut count while\n"
              "Esary-Proschan and Bonferroni-2 stay tight; bound cost is\n"
              "well below exact enumeration cost at every size.\n\n");
}

void BM_ExactBdd(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  const auto gen = ftree::generate_wide_tree(m, 2, 4, 2e-3);
  for (auto _ : state) {
    const ftree::FaultTree tree(gen.top, gen.events);
    benchmark::DoNotOptimize(tree.top_probability_limit());
  }
}
BENCHMARK(BM_ExactBdd)->RangeMultiplier(2)->Range(10, 160);

void BM_UnionBound(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  const auto gen = ftree::generate_wide_tree(m, 2, 4, 2e-3);
  const ftree::FaultTree tree(gen.top, gen.events);
  const auto q = tree.event_probs(-1.0);
  const auto cuts = tree.manager().minimal_solutions(tree.top_ref());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftree::union_bound(cuts, q));
  }
}
BENCHMARK(BM_UnionBound)->RangeMultiplier(2)->Range(10, 160);

void BM_Bonferroni2(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  const auto gen = ftree::generate_wide_tree(m, 2, 4, 2e-3);
  const ftree::FaultTree tree(gen.top, gen.events);
  const auto q = tree.event_probs(-1.0);
  const auto cuts = tree.manager().minimal_solutions(tree.top_ref());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftree::bonferroni_bound(cuts, q, 2));
  }
}
BENCHMARK(BM_Bonferroni2)->RangeMultiplier(2)->Range(10, 80);

void BM_EsaryProschan(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  const auto gen = ftree::generate_wide_tree(m, 2, 4, 2e-3);
  const ftree::FaultTree tree(gen.top, gen.events);
  const auto q = tree.event_probs(-1.0);
  const auto cuts = tree.manager().minimal_solutions(tree.top_ref());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftree::esary_proschan_bound(cuts, {}, q));
  }
}
BENCHMARK(BM_EsaryProschan)->RangeMultiplier(2)->Range(10, 160);

}  // namespace

int main(int argc, char** argv) {
  const benchjson::Options opts = benchjson::init(&argc, argv);
  print_table();
  if (opts.table_only) return 0;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
