#!/bin/sh
# Tier-1 verify, exactly as ROADMAP.md specifies:
#
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# Run from anywhere; the build tree is <repo>/build. Any failing step
# fails the script (and CI) immediately.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd -- "$repo"

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j
