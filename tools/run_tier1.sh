#!/bin/sh
# Tier-1 verify, exactly as ROADMAP.md specifies:
#
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# Run from anywhere; the build tree is <repo>/build. Any failing step
# fails the script (and CI) immediately.
#
# The ctest sweep includes the "perfcheck" test, which is report-only
# here (it gates only on the <2% instrumentation contract, not on the
# bench baselines — wall-clock diffing belongs to the strict lane,
# bench/run_all.sh --compare, or RELKIT_PERFCHECK_STRICT=1).
#
# It also includes the relkit_serve suites: test_serve (engine + live
# daemon happy paths) and test_serve_chaos (the resilience battery, also
# runnable alone as `ctest -L chaos`), so a tier-1 pass certifies the
# serving layer, not just the solvers.
#
# The rare-event property suite (ctest label "sim_rare", RUN_SERIAL) is
# part of the sweep too; its expensive nine-nines acceptance sweep only
# runs when RELKIT_LARGE=1 is exported (mirroring solver_large) and is
# skipped here.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd -- "$repo"

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j
