#!/usr/bin/env python3
"""Docs lint: the documentation site under docs/ must stay navigable.

Checks, across every *.md file under docs/ (plus README.md for its links
into docs/):

  1. every docs page is reachable from docs/index.md — linked directly or
     transitively through other docs pages;
  2. every relative markdown link resolves to an existing file;
  3. every intra-docs anchor (#fragment) resolves to a heading in the
     target page (GitHub slug rules: lowercase, spaces -> dashes,
     punctuation stripped).

External links (http/https/mailto) are not fetched. Exits non-zero
listing every violation, so the docs cannot silently rot.

Usage: check_docs.py [repo-root]   (default: parent of this script's dir)
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_\[\]()]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path: pathlib.Path) -> set[str]:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def links_in(path: pathlib.Path) -> list[str]:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return LINK_RE.findall(text)


def main() -> int:
    root = (
        pathlib.Path(sys.argv[1])
        if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent
    )
    docs = root / "docs"
    index = docs / "index.md"
    problems: list[str] = []
    if not docs.is_dir():
        print(f"check_docs: no docs/ under {root}", file=sys.stderr)
        return 2
    if not index.is_file():
        print("check_docs: docs/index.md is missing", file=sys.stderr)
        return 2

    pages = sorted(docs.rglob("*.md"))
    sources = pages + [root / "README.md"]

    # Link/anchor validity for every page (and README's links into docs/).
    for page in sources:
        if not page.is_file():
            continue
        for link in links_in(page):
            if link.startswith(("http://", "https://", "mailto:")):
                continue
            target_part, _, fragment = link.partition("#")
            target = (
                (page.parent / target_part).resolve()
                if target_part
                else page.resolve()
            )
            rel = page.relative_to(root)
            if target_part and not target.exists():
                problems.append(f"{rel}: dead link '{link}'")
                continue
            if fragment and target.suffix == ".md":
                if github_slug(fragment) not in anchors_in(target):
                    problems.append(f"{rel}: dead anchor '{link}'")

    # Reachability: walk docs-internal links from index.md.
    reachable = {index.resolve()}
    queue = [index]
    while queue:
        page = queue.pop()
        for link in links_in(page):
            if link.startswith(("http://", "https://", "mailto:")):
                continue
            target_part = link.partition("#")[0]
            if not target_part:
                continue
            target = (page.parent / target_part).resolve()
            if (
                target.suffix == ".md"
                and target.is_file()
                and docs.resolve() in target.parents
                and target not in reachable
            ):
                reachable.add(target)
                queue.append(target)
    for page in pages:
        if page.resolve() not in reachable:
            problems.append(
                f"{page.relative_to(root)}: not reachable from docs/index.md"
            )

    if problems:
        print("check_docs: documentation problems:", file=sys.stderr)
        for p in sorted(problems):
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"check_docs: {len(pages)} pages OK, all reachable from index.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
