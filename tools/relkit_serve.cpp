// relkit_serve — a long-running availability-modeling daemon.
//
//   relkit_serve [--port N] [--bind ADDR] [--jobs N] [--queue-cap N]
//                [--timeout-ms N] [--read-timeout-ms N]
//                [--write-timeout-ms N] [--max-body BYTES] [--allow-paths]
//                [--time t1 t2 ...] [--trace[=FILE]] [--trace-sample P]
//                [--access-log[=FILE]] [--access-log-max-bytes N]
//                [--postmortem[=DIR]] [--watchdog-ms N]
//                [--obs-selftest MODE]
//
// Accepts model-solve requests over HTTP/JSON and answers them from the
// process-wide thread pool behind a bounded admission queue:
//
//   POST /solve   {"model": "<model source>", "id": "...", "times": [...],
//                  "timeout_ms": N}  (or {"path": ...} with --allow-paths)
//   GET  /healthz liveness
//   GET  /readyz  readiness (503 while draining)
//   GET  /metrics OpenMetrics exposition of the obs registry
//   GET  /statusz in-flight request table + rolling latency SLOs
//
// Responses reuse the relkit_cli --batch JSON fields, so a served solve is
// bit-identical to a CLI solve of the same model. Requests past the queue
// capacity are shed with 503 ("overload"); per-request deadlines produce
// flagged degraded responses carrying the solver's partial result. On
// SIGTERM/SIGINT the daemon stops admissions, drains queued requests, and
// prints the same per-error-class summary line that --batch prints.
//
// Every request gets a 128-bit trace id (adopted from a valid incoming
// `traceparent`, generated otherwise). --trace[=FILE] records sampled
// requests' span trees into a Chrome trace-event file on shutdown
// (--trace-sample P sets the fraction); --access-log[=FILE] appends one
// JSONL line per request, rotated once past --access-log-max-bytes.
// --postmortem[=DIR] installs the crash handler (a dying daemon leaves
// DIR/relkit-crash-<pid>.json behind); --watchdog-ms N starts the stall
// watchdog, whose state /statusz reports; --obs-selftest MODE crashes or
// stalls on purpose before serving starts (crash-path tests only). See
// docs/postmortem.md. Full reference: docs/serving.md.
//
// Exit codes: 0 clean shutdown, 1 usage error, 4 invalid argument.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "parallel/pool.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(stderr,
               "usage: relkit_serve [--port N] [--bind ADDR] [--jobs N] "
               "[--queue-cap N] [--timeout-ms N] [--read-timeout-ms N] "
               "[--write-timeout-ms N] [--max-body BYTES] [--allow-paths] "
               "[--time t ...] [--trace[=FILE]] [--trace-sample P] "
               "[--access-log[=FILE]] [--access-log-max-bytes N] "
               "[--postmortem[=DIR]] [--watchdog-ms N] "
               "[--obs-selftest segv|abort|terminate|stall]\n");
}

/// Parses the value of `--flag N` / `--flag=N` as a long in [lo, hi];
/// exits 4 on malformed input (matching relkit_cli's convention).
long parse_count(int argc, char** argv, int& i, const char* flag, long lo,
                 long hi) {
  const std::size_t flag_len = std::strlen(flag);
  const char* value = argv[i][flag_len] == '=' ? argv[i] + flag_len + 1
                                               : nullptr;
  if (value == nullptr) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "invalid argument: %s needs a value\n", flag);
      usage();
      std::exit(4);
    }
    value = argv[++i];
  }
  char* rest = nullptr;
  const long parsed = std::strtol(value, &rest, 10);
  if (rest == value || *rest != '\0' || parsed < lo || parsed > hi) {
    std::fprintf(stderr,
                 "invalid argument: %s needs an integer in [%ld, %ld], got "
                 "'%s'\n",
                 flag, lo, hi, value);
    usage();
    std::exit(4);
  }
  return parsed;
}

bool matches(const char* arg, const char* flag) {
  const std::size_t len = std::strlen(flag);
  return std::strncmp(arg, flag, len) == 0 &&
         (arg[len] == '\0' || arg[len] == '=');
}

/// Parses the value of `--flag P` / `--flag=P` as a double in [lo, hi];
/// exits 4 on malformed input.
double parse_fraction(int argc, char** argv, int& i, const char* flag,
                      double lo, double hi) {
  const std::size_t flag_len = std::strlen(flag);
  const char* value = argv[i][flag_len] == '=' ? argv[i] + flag_len + 1
                                               : nullptr;
  if (value == nullptr) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "invalid argument: %s needs a value\n", flag);
      usage();
      std::exit(4);
    }
    value = argv[++i];
  }
  char* rest = nullptr;
  const double parsed = std::strtod(value, &rest);
  if (rest == value || *rest != '\0' || !(parsed >= lo) || !(parsed <= hi)) {
    std::fprintf(stderr,
                 "invalid argument: %s needs a number in [%g, %g], got "
                 "'%s'\n",
                 flag, lo, hi, value);
    usage();
    std::exit(4);
  }
  return parsed;
}

/// `--flag` (default value) or `--flag=PATH`; a separate-word PATH form is
/// deliberately not supported so the optional value stays unambiguous.
std::string parse_optional_path(const char* arg, const char* flag,
                                const char* default_path) {
  const std::size_t len = std::strlen(flag);
  return arg[len] == '=' ? std::string(arg + len + 1)
                         : std::string(default_path);
}

}  // namespace

int main(int argc, char** argv) {
  relkit::serve::ServerOptions options;
  unsigned jobs = 0;
  bool want_postmortem = false;
  std::string postmortem_dir;
  long watchdog_ms = 0;
  std::string selftest_mode;
  for (int i = 1; i < argc; ++i) {
    if (matches(argv[i], "--port")) {
      options.port = static_cast<int>(
          parse_count(argc, argv, i, "--port", 0, 65535));
    } else if (std::strcmp(argv[i], "--bind") == 0 ||
               std::strncmp(argv[i], "--bind=", 7) == 0) {
      if (argv[i][6] == '=') {
        options.bind_address = argv[i] + 7;
      } else if (i + 1 < argc) {
        options.bind_address = argv[++i];
      } else {
        std::fprintf(stderr, "invalid argument: --bind needs an address\n");
        usage();
        return 4;
      }
    } else if (matches(argv[i], "--jobs")) {
      jobs = static_cast<unsigned>(
          parse_count(argc, argv, i, "--jobs", 1, 4096));
    } else if (matches(argv[i], "--queue-cap")) {
      options.queue_capacity = static_cast<std::size_t>(
          parse_count(argc, argv, i, "--queue-cap", 1, 1 << 20));
    } else if (matches(argv[i], "--timeout-ms")) {
      options.default_timeout_ms = static_cast<int>(
          parse_count(argc, argv, i, "--timeout-ms", 1, 86400000));
    } else if (matches(argv[i], "--read-timeout-ms")) {
      options.read_timeout_ms = static_cast<int>(
          parse_count(argc, argv, i, "--read-timeout-ms", 1, 86400000));
    } else if (matches(argv[i], "--write-timeout-ms")) {
      options.write_timeout_ms = static_cast<int>(
          parse_count(argc, argv, i, "--write-timeout-ms", 1, 86400000));
    } else if (matches(argv[i], "--max-body")) {
      options.max_body_bytes = static_cast<std::size_t>(
          parse_count(argc, argv, i, "--max-body", 1, 1L << 30));
    } else if (std::strcmp(argv[i], "--allow-paths") == 0) {
      options.allow_path_requests = true;
    } else if (matches(argv[i], "--trace-sample")) {
      options.trace_sample =
          parse_fraction(argc, argv, i, "--trace-sample", 0.0, 1.0);
    } else if (matches(argv[i], "--trace")) {
      options.trace_path =
          parse_optional_path(argv[i], "--trace", "relkit_serve_trace.json");
    } else if (matches(argv[i], "--access-log-max-bytes")) {
      options.access_log_max_bytes = static_cast<std::size_t>(
          parse_count(argc, argv, i, "--access-log-max-bytes", 0, 1L << 40));
    } else if (matches(argv[i], "--access-log")) {
      options.access_log_path = parse_optional_path(
          argv[i], "--access-log", "relkit_serve_access.log");
    } else if (matches(argv[i], "--postmortem")) {
      want_postmortem = true;
      postmortem_dir = parse_optional_path(argv[i], "--postmortem", ".");
    } else if (matches(argv[i], "--watchdog-ms")) {
      watchdog_ms = parse_count(argc, argv, i, "--watchdog-ms", 1, 86400000);
    } else if (matches(argv[i], "--obs-selftest")) {
      const char* value = argv[i][14] == '=' ? argv[i] + 15 : nullptr;
      if (value == nullptr) {
        if (i + 1 >= argc) {
          std::fprintf(stderr,
                       "invalid argument: --obs-selftest needs a mode\n");
          usage();
          return 4;
        }
        value = argv[++i];
      }
      selftest_mode = value;
    } else if (std::strcmp(argv[i], "--time") == 0) {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        options.default_times.push_back(std::atof(argv[++i]));
      }
    } else {
      usage();
      return 1;
    }
  }

  // Like the CLI, the daemon is a leaf process: default to the hardware
  // concurrency unless --jobs pins a degree.
  relkit::parallel::set_default_jobs(jobs);

  // Crash/stall machinery comes up before the listener so even startup
  // faults leave a report. The daemon always runs with obs on when any of
  // these are requested (the server enables obs for /metrics anyway).
  if (want_postmortem || watchdog_ms > 0 || !selftest_mode.empty()) {
    relkit::obs::set_enabled(true);
  }
  if (want_postmortem &&
      !relkit::obs::postmortem::install(postmortem_dir.c_str())) {
    std::fprintf(stderr,
                 "invalid argument: --postmortem directory '%s' is not "
                 "writable\n",
                 postmortem_dir.c_str());
    return 4;
  }
  if (watchdog_ms > 0) {
    relkit::obs::postmortem::start_watchdog(
        static_cast<unsigned>(watchdog_ms));
  }
  if (!selftest_mode.empty()) {
    return relkit::obs::postmortem::run_selftest(selftest_mode.c_str());
  }

  relkit::serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "invalid argument: cannot start server: %s\n",
                 error.c_str());
    return 4;
  }
  std::printf("listening on %d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    // Sleep until any signal arrives; the handler sets g_stop first.
    sigsuspend(&empty);
  }

  // Graceful drain: stop admissions, answer everything already accepted,
  // then report the same per-error-class summary --batch prints.
  const std::string summary = server.stop(/*drain=*/true);
  std::printf("%s\n", summary.c_str());
  return 0;
}
